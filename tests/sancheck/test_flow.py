"""Tests for the whole-program effect/taint analyzer (repro.sancheck.flow).

The fixture package at ``tests/sancheck/fixtures/badckpt`` seeds one of
every violation class the analyzer promises to catch; the assertions
here are exact so a regression in any pass (call graph, intrinsic
effects, propagation, lifecycle rules) shows up as a missing or extra
finding, not a vague count change.
"""

from pathlib import Path

from repro.sancheck import default_lint_root
from repro.sancheck.flow import (
    FlowConfig,
    RNG_UNSEEDED,
    WALLCLOCK,
    analyze_paths,
    build_index,
    propagate,
)
from repro.sancheck.flow.effects import build_intrinsics
from repro.sancheck.flow.export import to_jsonl
from repro.sancheck.flow.lifecycle import kernel_functions, protocol_classes

FIXTURE = Path(__file__).parent / "fixtures" / "badckpt"


def fixture_findings():
    return analyze_paths([FIXTURE])


def by_rule(findings):
    out = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f)
    return out


class TestIndex:
    def test_fixture_classes_and_shm_attrs(self):
        index = build_index([FIXTURE])
        cls = index.classes["proto.EvilCheckpoint"]
        assert cls.shm_attrs == {"_b", "_ctrl"}
        assert {"checkpoint", "try_restore", "_wipe", "scribble"} <= set(
            cls.methods
        )

    def test_cross_module_calls_resolve(self):
        index = build_index([FIXTURE])
        ckpt = index.functions["proto.EvilCheckpoint.checkpoint"]
        callees = {q for q, _line in ckpt.calls}
        assert "helpers.jitter" in callees
        assert "proto.EvilCheckpoint.gen_block" in callees

    def test_duck_typed_protocol_detected_structurally(self):
        index = build_index([FIXTURE])
        assert protocol_classes(index, "Checkpointer") == [
            "proto.EvilCheckpoint"
        ]

    def test_kernel_module_detected_by_name(self):
        index = build_index([FIXTURE])
        assert kernel_functions(index, ("stripes",)) == [
            "stripes.encode_stripe"
        ]


class TestPropagation:
    def test_unseeded_default_argument_is_its_own_source(self):
        """Violation 3 of the fixture: ``gen_block``'s default argument
        alone makes it an RNG source, independent of ``jitter``."""
        config = FlowConfig()
        index = build_index([FIXTURE])
        summaries = propagate(
            index,
            build_intrinsics(
                index.functions, config.wallclock_allow, config.rng_allow
            ),
        )
        w = summaries["proto.EvilCheckpoint.gen_block"][RNG_UNSEEDED]
        assert "default_rng" in w.site

    def test_wallclock_taints_through_helper_module(self):
        config = FlowConfig()
        index = build_index([FIXTURE])
        summaries = propagate(
            index,
            build_intrinsics(
                index.functions, config.wallclock_allow, config.rng_allow
            ),
        )
        w = summaries["proto.EvilCheckpoint.try_restore"][WALLCLOCK]
        assert w.chain[-1] == "helpers.stamp"


class TestFindings:
    def test_exact_rule_counts(self):
        rules = {r: len(fs) for r, fs in by_rule(fixture_findings()).items()}
        assert rules == {
            "flow-nondet": 2,
            "flow-kernel-nondet": 1,
            "lifecycle-premature-write": 2,
            "lifecycle-phase-escape": 1,
        }

    def test_severities(self):
        fs = fixture_findings()
        warnings = [f for f in fs if f.severity == "warning"]
        assert [f.rule for f in warnings] == ["lifecycle-phase-escape"]
        assert all(
            f.severity == "error"
            for f in fs
            if f.rule != "lifecycle-phase-escape"
        )

    def test_hidden_rng_witness_names_the_helper(self):
        nondet = by_rule(fixture_findings())["flow-nondet"]
        rng = [f for f in nondet if "unseeded RNG" in f.message]
        assert len(rng) == 1
        assert "checkpoint" in rng[0].message
        assert "jitter" in rng[0].message  # the full chain, not just the sink

    def test_cross_module_wallclock_witness(self):
        nondet = by_rule(fixture_findings())["flow-nondet"]
        wc = [f for f in nondet if "wall clock" in f.message]
        assert len(wc) == 1
        assert "try_restore" in wc[0].message
        assert "stamp" in wc[0].message

    def test_premature_writes_stop_at_the_status_exchange(self):
        fs = by_rule(fixture_findings())["lifecycle-premature-write"]
        # the two pre-exchange writes, and ONLY those — the post-allgather
        # write on line 43 must not be flagged
        assert sorted(f.line for f in fs) == [40, 41]

    def test_phase_escape_names_the_method(self):
        (f,) = by_rule(fixture_findings())["lifecycle-phase-escape"]
        assert "scribble" in f.message

    def test_kernel_nondet(self):
        (f,) = by_rule(fixture_findings())["flow-kernel-nondet"]
        assert f.file == "badckpt/stripes.py"
        assert "encode_stripe" in f.message


class TestDeterminism:
    def test_byte_identical_across_runs(self):
        """Acceptance: two consecutive analyses of the same tree must
        render byte-identically."""
        a = to_jsonl(fixture_findings())
        b = to_jsonl(fixture_findings())
        assert a == b

    def test_findings_arrive_sorted(self):
        fs = fixture_findings()
        keys = [f.sort_key() for f in fs]
        assert keys == sorted(keys)


class TestRealTree:
    def test_shipped_package_has_no_errors(self):
        """The shipped protocols must satisfy their own lifecycle
        discipline (warnings may exist; errors may not)."""
        fs = analyze_paths([default_lint_root()])
        assert [f for f in fs if f.severity == "error"] == []

    def test_all_shipped_protocols_are_seen(self):
        index = build_index([default_lint_root()])
        names = {q.split(".")[-1] for q in protocol_classes(index, "Checkpointer")}
        # nominal subclasses AND the duck-typed protocols
        assert {
            "SelfCheckpoint",
            "SelfCheckpointRS",
            "DoubleCheckpoint",
            "MultiLevelCheckpoint",
            "DiskCheckpoint",
        } <= names
