"""Tests for the static invariant linter (repro.sancheck.simlint)."""

import textwrap

from repro.sancheck import default_lint_root, lint_paths, lint_source
from repro.sancheck.simlint import module_name_for
from pathlib import Path


def lint(source, module="somepkg.mod"):
    return lint_source(textwrap.dedent(source), filename="mod.py", module=module)


def rules(findings):
    return [f.rule for f in findings]


class TestWallclock:
    def test_time_sleep_flagged(self):
        fs = lint("import time\ntime.sleep(1)\n")
        assert rules(fs) == ["wallclock"]
        assert "time.sleep" in fs[0].message
        assert fs[0].line == 2

    def test_aliased_import_resolved(self):
        fs = lint("import time as _walltime\n_walltime.monotonic()\n")
        assert rules(fs) == ["wallclock"]

    def test_from_import_resolved(self):
        fs = lint("from time import sleep\nsleep(0.1)\n")
        assert rules(fs) == ["wallclock"]

    def test_datetime_now_flagged(self):
        fs = lint("from datetime import datetime\ndatetime.now()\n")
        assert rules(fs) == ["wallclock"]

    def test_allowlisted_module_clean(self):
        fs = lint("import time\ntime.monotonic()\n", module="repro.sim.mpi")
        assert fs == []

    def test_pragma_suppresses(self):
        fs = lint("import time\ntime.sleep(1)  # simlint: allow[wallclock]\n")
        assert fs == []

    def test_pragma_is_rule_specific(self):
        fs = lint("import time\ntime.sleep(1)  # simlint: allow[threading]\n")
        assert rules(fs) == ["wallclock"]


class TestPragmaAnchoring:
    DECORATED = """\
        import time


        def stamp_at(t):
            def deco(fn):
                return fn
            return deco


        @stamp_at(time.time()){pragma_dec}
        def f():{pragma_def}
            return 1
        """

    def decorated(self, pragma_def="", pragma_dec=""):
        return lint(
            self.DECORATED.format(pragma_def=pragma_def, pragma_dec=pragma_dec)
        )

    def test_finding_lands_on_the_decorator_line(self):
        fs = self.decorated()
        assert rules(fs) == ["wallclock"]
        assert fs[0].line == 10  # the @stamp_at(...) line, not the def

    def test_def_line_pragma_covers_decorator_lines(self):
        assert self.decorated(pragma_def="  # simlint: allow[wallclock]") == []

    def test_disable_spelling_accepted(self):
        assert self.decorated(pragma_def="  # simlint: disable=wallclock") == []

    def test_bare_disable_covers_all_rules(self):
        assert self.decorated(pragma_def="  # simlint: disable") == []

    def test_def_line_pragma_stays_rule_specific(self):
        fs = self.decorated(pragma_def="  # simlint: disable=rng")
        assert rules(fs) == ["wallclock"]

    def test_decorator_line_pragma_still_works(self):
        assert self.decorated(pragma_dec="  # simlint: disable=wallclock") == []

    def test_disable_suppresses_plain_statement(self):
        fs = lint("import time\ntime.sleep(1)  # simlint: disable=wallclock\n")
        assert fs == []

    def test_def_pragma_merges_with_decorator_pragma(self):
        # rule sets on the def line and the decorator line union together
        fs = self.decorated(
            pragma_def="  # simlint: disable=wallclock",
            pragma_dec="  # simlint: disable=rng",
        )
        assert fs == []


class TestThreading:
    def test_lock_flagged(self):
        fs = lint("import threading\nlock = threading.Lock()\n")
        assert rules(fs) == ["threading"]

    def test_thread_flagged(self):
        fs = lint(
            "from threading import Thread\nt = Thread(target=print)\n"
        )
        assert rules(fs) == ["threading"]

    def test_sim_package_allowed(self):
        fs = lint(
            "import threading\nlock = threading.Lock()\n",
            module="repro.sim.newmodule",
        )
        assert fs == []


class TestRng:
    def test_stdlib_random_flagged(self):
        fs = lint("import random\nrandom.randint(0, 5)\n")
        assert rules(fs) == ["rng"]

    def test_numpy_legacy_flagged(self):
        fs = lint("import numpy as np\nnp.random.rand(3)\n")
        assert rules(fs) == ["rng"]

    def test_unseeded_default_rng_flagged(self):
        fs = lint("import numpy as np\nnp.random.default_rng()\n")
        assert rules(fs) == ["rng"]

    def test_seeded_default_rng_ok(self):
        assert lint("import numpy as np\nnp.random.default_rng(42)\n") == []

    def test_rng_module_allowed(self):
        fs = lint(
            "import numpy as np\nnp.random.seed(1)\n", module="repro.util.rng"
        )
        assert fs == []


class TestRecvMutate:
    def test_augassign_after_recv_flagged(self):
        fs = lint(
            """
            def f(comm):
                x = comm.recv(source=0)
                x += 1
                return x
            """
        )
        assert rules(fs) == ["recv-mutate"]

    def test_subscript_store_flagged(self):
        fs = lint(
            """
            def f(comm):
                x = comm.allreduce(None)
                x[0] = 3.0
            """
        )
        assert rules(fs) == ["recv-mutate"]

    def test_mutator_method_flagged(self):
        fs = lint(
            """
            def f(comm):
                x = comm.bcast(None)
                x.fill(0)
            """
        )
        assert rules(fs) == ["recv-mutate"]

    def test_copied_result_ok(self):
        fs = lint(
            """
            import numpy as np

            def f(comm):
                x = np.array(comm.recv(source=0), copy=True)
                x += 1
                y = comm.recv(source=1).copy()
                y[0] = 2
            """
        )
        assert fs == []

    def test_rebinding_clears_taint(self):
        fs = lint(
            """
            def f(comm):
                x = comm.recv(source=0)
                x = x * 2
                x += 1
            """
        )
        assert fs == []

    def test_taint_is_function_scoped(self):
        fs = lint(
            """
            def f(comm):
                x = comm.recv(source=0)

            def g(x):
                x += 1
            """
        )
        assert fs == []


class TestObsLabel:
    def test_unregistered_span_label_flagged(self):
        fs = lint('ctx.span("ckpt.enc0de")\n')
        assert rules(fs) == ["obs-label"]
        assert "SPAN_LABELS" in fs[0].message

    def test_registered_span_label_clean(self):
        assert lint('ctx.span("ckpt.encode", nbytes=8)\n') == []

    def test_unregistered_metric_name_flagged(self):
        fs = lint('reg.counter("mpi.bytes_snet", rank=0)\n')
        assert rules(fs) == ["obs-label"]
        assert "METRIC_NAMES" in fs[0].message

    def test_registered_metric_names_clean(self):
        src = """\
            reg.counter("mpi.bytes_sent", rank=0)
            reg.gauge("job.makespan_s")
            reg.histogram("mpi.blocked_s", rank=1)
            """
        assert lint(src) == []

    def test_dynamic_name_not_flagged(self):
        # non-literal names are validated at runtime by the registry
        assert lint("ctx.span(label)\nreg.counter(name, rank=0)\n") == []

    def test_pragma_suppresses(self):
        fs = lint('ctx.span("scratch")  # simlint: allow[obs-label]\n')
        assert fs == []


class TestTree:
    def test_repo_source_tree_is_clean(self):
        """The shipped package must satisfy its own invariants."""
        assert lint_paths([default_lint_root()]) == []

    def test_lint_flags_bad_file_on_disk(self, tmp_path):
        bad = tmp_path / "offender.py"
        bad.write_text("import time\ntime.sleep(3)\n")
        fs = lint_paths([bad])
        assert rules(fs) == ["wallclock"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        fs = lint_paths([bad])
        assert rules(fs) == ["syntax"]


class TestModuleNames:
    def test_package_paths(self):
        assert (
            module_name_for(Path("src/repro/sim/mpi.py")) == "repro.sim.mpi"
        )
        assert module_name_for(Path("src/repro/sim/__init__.py")) == "repro.sim"
        assert module_name_for(Path("/tmp/loose.py")) == "loose"


class TestParallel:
    def test_multiprocessing_import_flagged(self):
        fs = lint("import multiprocessing\n")
        assert rules(fs) == ["parallel"]
        assert "repro.par.ParallelEngine" in fs[0].message

    def test_concurrent_futures_flagged(self):
        fs = lint(
            "from concurrent.futures import ProcessPoolExecutor\n"
        )
        assert rules(fs) == ["parallel"]

    def test_submodule_import_flagged(self):
        fs = lint("import multiprocessing.pool\n")
        assert rules(fs) == ["parallel"]

    def test_repro_par_allowed(self):
        fs = lint("import multiprocessing\n", module="repro.par.engine")
        assert fs == []

    def test_pragma_escape_hatch(self):
        fs = lint(
            "import multiprocessing  # simlint: allow[parallel]\n"
        )
        assert fs == []

    def test_plain_concurrent_name_not_flagged(self):
        # only the concurrent.futures subpackage carries executors
        fs = lint("import concurrency_helpers\n")
        assert fs == []


class TestKernelBackend:
    def test_numba_import_flagged(self):
        fs = lint("import numba\n")
        assert rules(fs) == ["kernel-backend"]
        assert "repro.ckpt.kernels" in fs[0].message

    def test_from_import_flagged(self):
        fs = lint("from numba import njit\n")
        assert rules(fs) == ["kernel-backend"]

    def test_submodule_import_flagged(self):
        fs = lint("import numba.typed\n")
        assert rules(fs) == ["kernel-backend"]

    def test_kernel_module_allowed(self):
        fs = lint("import numba\n", module="repro.ckpt.kernels")
        assert fs == []

    def test_function_scoped_lazy_import_still_flagged(self):
        # the lazy-import idiom does not exempt other modules: backend
        # probing belongs to repro.ckpt.kernels alone
        fs = lint("def f():\n    import numba\n    return numba\n")
        assert rules(fs) == ["kernel-backend"]

    def test_pragma_escape_hatch(self):
        fs = lint("import numba  # simlint: allow[kernel-backend]\n")
        assert fs == []

    def test_similar_name_not_flagged(self):
        fs = lint("import numbawrap\n")
        assert fs == []
