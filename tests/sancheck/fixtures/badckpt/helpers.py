"""Deliberately nondeterministic helpers for the flow-analyzer fixture.

The violations live here, one module away from the protocol class that
calls them — the whole point of the interprocedural pass is that hiding
``random``/``time`` behind an innocent-looking helper does not help.
"""

import random
import time


def jitter():
    return random.random() * 1e-6


def stamp():
    return time.time()
