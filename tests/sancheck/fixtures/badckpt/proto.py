"""A deliberately phase-violating checkpoint protocol (fixture).

tests/sancheck/test_flow.py asserts the exact findings this file
produces — keep the violations (and their count) in sync when editing:

* ``checkpoint()`` reaches unseeded RNG two ways: through the
  cross-module ``jitter()`` helper and through ``gen_block()``'s
  unseeded ``default_rng()`` *default argument*;
* ``try_restore()`` reaches the wall clock through ``stamp()``;
* ``try_restore()`` writes SHM twice before the ``allgather`` status
  exchange — once directly, once through ``_wipe()``;
* ``scribble()`` mutates SHM but no lifecycle root can reach it.
"""

import numpy as np

from helpers import jitter, stamp


class EvilCheckpoint:
    """Duck-typed protocol: defines ``checkpoint``/``try_restore``
    without subclassing ``Checkpointer`` — structural detection must
    still register it."""

    def __init__(self, ctx, comm):
        self.ctx = ctx
        self.comm = comm
        self._b = ctx.shm_create("b", 64).array
        self._ctrl = ctx.shm_create("ctrl", 8).array

    def gen_block(self, rng=np.random.default_rng()):
        return rng.standard_normal(4)

    def checkpoint(self):
        block = self.gen_block()
        self._b[0] = block[0] + jitter()
        self.comm.barrier()

    def try_restore(self):
        self._ctrl[0] = 1
        self._wipe()
        statuses = self.comm.allgather(stamp())
        self._b[0] = 0.0
        return bool(statuses)

    def _wipe(self):
        self._b[0] = 0.0

    def scribble(self):
        self._ctrl[1] = 2
