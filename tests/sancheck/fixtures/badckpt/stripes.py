"""An impure "kernel" module (fixture).

The module is named ``stripes`` so the flow analyzer treats it as an
encode/reconstruct kernel; kernels are documented pure, and this one
reads the wall clock.
"""

import time


def encode_stripe(block):
    started = time.time()
    return block, started
