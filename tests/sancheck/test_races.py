"""Tests for the vector-clock SHM race detector."""

from repro.sancheck import RaceDetector, VectorClock, merge_all
from repro.sancheck.scenarios import (
    run_clean_selfckpt,
    run_seeded_race,
    run_synchronized_shm,
)
from repro.sim import Cluster, Job


class TestVectorClock:
    def test_ordering(self):
        a = VectorClock.of([1, 0])
        b = VectorClock.of([1, 1])
        assert a <= b and not (b <= a)
        assert not a.concurrent(b)

    def test_concurrency(self):
        a = VectorClock.of([2, 0])
        b = VectorClock.of([0, 2])
        assert a.concurrent(b) and b.concurrent(a)

    def test_merge_all(self):
        m = merge_all([VectorClock.of([2, 0, 1]), VectorClock.of([0, 3, 1])])
        assert m.ticks == [2, 3, 1]

    def test_copy_is_independent(self):
        a = VectorClock.of([1, 1])
        c = a.copy()
        a.tick(0)
        assert c.ticks == [1, 1]


class TestSeededRace:
    def test_unsynchronized_write_is_flagged(self):
        """The issue's acceptance fixture: a deliberate unsynchronized SHM
        write must be reported as a race with the offending ranks."""
        result, det = run_seeded_race()
        assert result.completed
        assert len(det.findings) >= 1
        f = det.findings[0]
        assert f.tool == "race" and f.rule == "shm-race"
        assert set(f.ranks) == {0, 1}
        assert "race.target" in f.message

    def test_message_creates_happens_before(self):
        """Same access pattern, but ordered by a send/recv: no race."""
        result, det = run_synchronized_shm()
        assert result.completed
        assert det.findings == []

    def test_collective_creates_happens_before(self):
        """A barrier between the two writes also orders them."""

        def app(ctx):
            if ctx.world.rank == 0:
                seg = ctx.shm_create("c.target", 4)
                seg.write(1.0)
            ctx.world.barrier()
            if ctx.world.rank == 1:
                seg = ctx.shm_attach("c.target")
                seg.write(2.0)
            return True

        cluster = Cluster(1)
        det = RaceDetector(2)
        job = Job(cluster, app, 2, ranklist=[0, 0])
        det.install(job)
        result = job.run()
        assert result.completed, result.rank_errors
        assert det.findings == []

    def test_read_read_never_conflicts(self):
        def app(ctx):
            seg = ctx.shm_create("rr", 4, exist_ok=True)
            seg.read()
            return True

        cluster = Cluster(1)
        det = RaceDetector(2)
        job = Job(cluster, app, 2, ranklist=[0, 0])
        det.install(job)
        assert job.run().completed
        # create vs attach/read may race (create is a write); but two pure
        # reads after a common create must not add a second finding pair
        reads = [f for f in det.findings if "read" in f.message and "create" not in f.message]
        assert reads == []

    def test_duplicate_pairs_reported_once(self):
        result, det = run_seeded_race()
        keys = {(f.rule, tuple(sorted(f.ranks))) for f in det.findings}
        assert len(keys) == len(det.findings)


class TestCleanRun:
    def test_self_checkpoint_run_has_zero_findings(self):
        """A correct self-checkpoint HPL-style run must certify clean."""
        result, race, deadlock = run_clean_selfckpt()
        assert result.completed, result.rank_errors
        assert race.findings == []
        assert deadlock.findings == []

    def test_segment_inventory_uses_snapshot(self):
        result, race, _ = run_clean_selfckpt()
        inv = race.segment_inventory()
        assert inv, "self-checkpoint leaves its SHM segments resident"
        for node_id, segs in inv.items():
            for name, nbytes in segs:
                assert isinstance(name, str) and nbytes > 0


class TestObserverComposition:
    def test_vc_tokens_survive_multi_observer(self):
        """With two observers installed, envelope tokens are routed back to
        the right one (the MultiObserver tuple path)."""
        from repro.sancheck import DeadlockDetector

        def app(ctx):
            if ctx.world.rank == 0:
                seg = ctx.shm_create("m.target", 4)
                seg.write(1.0)
                ctx.world.send(None, dest=1)
            else:
                ctx.world.recv(source=0)
                seg = ctx.shm_attach("m.target")
                seg.write(2.0)
            return True

        cluster = Cluster(1)
        race = RaceDetector(2)
        deadlock = DeadlockDetector()
        job = Job(cluster, app, 2, ranklist=[0, 0])
        deadlock.install(job)  # install FIRST so race rides a MultiObserver
        race.install(job)
        result = job.run()
        assert result.completed, result.rank_errors
        assert race.findings == []  # the happens-before edge must survive
        assert deadlock.findings == []
