"""Golden tests for the SARIF/JSONL exporters and the baseline file.

These formats are contracts with CI and with future runs of the tool
itself (the baseline must be byte-stable or every run churns it), so
the tests pin shapes and round-trips, not just "it doesn't crash".
"""

import json
from pathlib import Path

from repro.sancheck.findings import Finding, Report
from repro.sancheck.flow import analyze_paths
from repro.sancheck.flow.baseline import (
    BASELINE_SCHEMA,
    fingerprint,
    load_baseline,
    render_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.sancheck.flow.export import (
    finding_to_dict,
    to_jsonl,
    to_sarif,
    write_jsonl,
    write_sarif,
)

import pytest

FIXTURE = Path(__file__).parent / "fixtures" / "badckpt"


def sample_findings():
    return [
        Finding(
            tool="flow",
            rule="flow-nondet",
            severity="error",
            message="checkpoint() can reach unseeded RNG",
            file="repro/ckpt/x.py",
            line=10,
        ),
        Finding(
            tool="flow",
            rule="lifecycle-phase-escape",
            severity="warning",
            message="scribble() mutates SHM outside the lifecycle",
            file="repro/ckpt/x.py",
            line=30,
        ),
        Finding(
            tool="race",
            rule="shm-race",
            severity="error",
            message="unsynchronized write",
            ranks=(0, 1),
            clock=1.5,
        ),
    ]


class TestJsonl:
    def test_fixed_key_order(self):
        d = finding_to_dict(sample_findings()[0])
        assert list(d) == ["tool", "rule", "severity", "file", "line", "message"]

    def test_dynamic_finding_carries_ranks_and_clock(self):
        d = finding_to_dict(sample_findings()[2])
        assert d["ranks"] == [0, 1] and d["clock"] == 1.5

    def test_round_trip(self):
        fs = sample_findings()
        lines = to_jsonl(fs).splitlines()
        assert len(lines) == len(fs)
        parsed = [json.loads(line) for line in lines]
        # output is sorted by the canonical key: dynamic findings
        # (file == "") sort first
        assert [p["rule"] for p in parsed] == [
            "shm-race",
            "flow-nondet",
            "lifecycle-phase-escape",
        ]

    def test_write_jsonl(self, tmp_path):
        out = tmp_path / "nested" / "findings.jsonl"
        write_jsonl(out, sample_findings())
        assert len(out.read_text().splitlines()) == 3


class TestSarif:
    def test_structure(self):
        doc = to_sarif(sample_findings())
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-sancheck"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "flow/flow-nondet" in rule_ids
        assert "race/shm-race" in rule_ids

    def test_levels_and_locations(self):
        doc = to_sarif(sample_findings())
        results = doc["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        assert by_rule["flow/flow-nondet"]["level"] == "error"
        assert by_rule["flow/lifecycle-phase-escape"]["level"] == "warning"
        loc = by_rule["flow/flow-nondet"]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "repro/ckpt/x.py"
        assert loc["region"]["startLine"] == 10
        # dynamic findings have no file, hence no location block
        assert "locations" not in by_rule["race/shm-race"]

    def test_write_sarif_round_trip(self, tmp_path):
        out = tmp_path / "out.sarif"
        write_sarif(out, analyze_paths([FIXTURE]))
        doc = json.loads(out.read_text())
        assert len(doc["runs"][0]["results"]) == 6


class TestBaseline:
    def test_round_trip(self, tmp_path):
        fs = sample_findings()
        path = tmp_path / "baseline.json"
        write_baseline(path, fs)
        baseline = load_baseline(path)
        new, known = split_by_baseline(fs, baseline)
        # static findings baselined; the dynamic race finding never is
        assert [f.rule for f in new] == ["shm-race"]
        assert len(known) == 2

    def test_fingerprint_survives_line_drift(self):
        f = sample_findings()[0]
        moved = Finding(
            tool=f.tool,
            rule=f.rule,
            severity=f.severity,
            message=f.message,
            file=f.file,
            line=f.line + 7,
        )
        assert fingerprint(f) == fingerprint(moved)

    def test_fingerprint_changes_with_message(self):
        f = sample_findings()[0]
        other = Finding(
            tool=f.tool,
            rule=f.rule,
            message=f.message + " (worse)",
            file=f.file,
            line=f.line,
        )
        assert fingerprint(f) != fingerprint(other)

    def test_regeneration_is_a_byte_noop(self, tmp_path):
        fs = analyze_paths([FIXTURE])
        path = tmp_path / "baseline.json"
        write_baseline(path, fs)
        first = path.read_bytes()
        write_baseline(path, analyze_paths([FIXTURE]))
        assert path.read_bytes() == first

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_schema_constant_in_rendered_doc(self):
        doc = json.loads(render_baseline(sample_findings()))
        assert doc["schema"] == BASELINE_SCHEMA


class TestReportFinalize:
    def test_sorts_and_dedups(self):
        fs = sample_findings()
        report = Report(findings=[fs[1], fs[0], fs[1], fs[2]])
        report.finalize()
        assert [f.rule for f in report.findings] == [
            "shm-race",
            "flow-nondet",
            "lifecycle-phase-escape",
        ]

    def test_fail_on_thresholds(self):
        report = Report(findings=sample_findings())
        assert report.count("error") == 2
        assert report.count("warning") == 3
        assert report.count("any") == 3
        warn_only = Report(
            findings=[f for f in sample_findings() if f.severity == "warning"]
        )
        assert warn_only.exit_code("error") == 0
        assert warn_only.exit_code("warning") == 1
        assert warn_only.exit_code() == 1

    def test_rendered_report_is_byte_stable(self):
        a = Report(findings=analyze_paths([FIXTURE]))
        b = Report(findings=analyze_paths([FIXTURE]))
        assert a.render() == b.render()
