"""Tests for the wait-for-graph deadlock detector."""

import time

from repro.sancheck import DeadlockDetector
from repro.sancheck.scenarios import run_clean_selfckpt, run_seeded_deadlock
from repro.sim import Cluster, Job


class TestSeededDeadlock:
    def test_mismatched_tags_reported_as_cycle(self):
        """The issue's acceptance fixture: a mismatched send/recv tag pair
        must be reported as a deadlock cycle."""
        result, det = run_seeded_deadlock()
        assert result.aborted
        assert len(det.findings) == 1
        f = det.findings[0]
        assert f.tool == "deadlock" and f.rule == "deadlock-cycle"
        assert set(f.ranks) == {0, 1}

    def test_stuck_tag_diagnosis_present(self):
        _, det = run_seeded_deadlock()
        detail = det.findings[0].detail
        assert "tag=99" in detail and "tag=1" in detail
        assert "mismatched send/recv tags" in detail

    def test_detection_beats_wallclock_timeout(self):
        """Structural detection must fire orders of magnitude before the
        wall-clock safety net (20s here) would."""
        t0 = time.monotonic()
        result, det = run_seeded_deadlock(timeout_s=20.0)
        assert time.monotonic() - t0 < 5.0
        assert det.findings

    def test_timeline_rendered_when_traced(self):
        _, det = run_seeded_deadlock()
        detail = det.findings[0].detail
        assert "r0" in detail and "exchange" in detail

    def test_collective_vs_recv_mismatch(self):
        """One rank skips a barrier and waits on a message nobody sends:
        the cycle runs through the collective's missing-member edge."""

        def app(ctx):
            comm = ctx.world
            if comm.rank == 0:
                # BUG (on purpose): waits for a message that never comes
                # instead of joining the barrier
                comm.recv(source=1, tag=3)
            comm.barrier()
            return True

        cluster = Cluster(2)
        det = DeadlockDetector()
        job = Job(cluster, app, 2, procs_per_node=1, deadlock_timeout_s=20.0)
        det.install(job)
        result = job.run()
        assert result.aborted
        assert len(det.findings) == 1
        assert set(det.findings[0].ranks) == {0, 1}

    def test_three_rank_ring_deadlock(self):
        def app(ctx):
            comm = ctx.world
            # everyone receives from the left neighbour first: classic
            # circular wait (no one ever sends)
            left = (comm.rank - 1) % comm.size
            comm.recv(source=left, tag=0)
            comm.send(None, dest=(comm.rank + 1) % comm.size, tag=0)
            return True

        cluster = Cluster(3)
        det = DeadlockDetector()
        job = Job(cluster, app, 3, procs_per_node=1, deadlock_timeout_s=20.0)
        det.install(job)
        result = job.run()
        assert result.aborted
        assert set(det.findings[0].ranks) == {0, 1, 2}


class TestNoFalsePositives:
    def test_clean_self_checkpoint_run(self):
        result, _, deadlock = run_clean_selfckpt()
        assert result.completed, result.rank_errors
        assert deadlock.findings == []

    def test_blocked_recv_with_late_sender_is_not_a_deadlock(self):
        """A receiver waiting on a slow-but-running sender must not be
        flagged; the in-flight message makes the wait satisfiable."""

        def app(ctx):
            comm = ctx.world
            if comm.rank == 0:
                got = comm.recv(source=1, tag=4)
                assert got == "late"
            else:
                comm.send("late", dest=0, tag=4)
            return True

        cluster = Cluster(2)
        det = DeadlockDetector()
        job = Job(cluster, app, 2, procs_per_node=1)
        det.install(job)
        result = job.run()
        assert result.completed, result.rank_errors
        assert det.findings == []

    def test_back_to_back_collectives_are_clean(self):
        """Join-gate blocking (waiting for the previous collective to
        drain) must never look like a cycle."""

        def app(ctx):
            for _ in range(20):
                ctx.world.barrier()
            return True

        cluster = Cluster(4)
        det = DeadlockDetector()
        job = Job(cluster, app, 4, procs_per_node=1)
        det.install(job)
        result = job.run()
        assert result.completed, result.rank_errors
        assert det.findings == []

    def test_abort_can_be_disabled(self):
        _, det = run_seeded_deadlock_no_abort()
        assert det.findings  # still detected, job died via the safety net


def run_seeded_deadlock_no_abort():
    def app(ctx):
        comm = ctx.world
        if comm.rank == 0:
            comm.send(b"x", dest=1, tag=1)
            comm.recv(source=1, tag=2)
        else:
            comm.recv(source=0, tag=99)
            comm.send(b"y", dest=0, tag=2)
        return True

    cluster = Cluster(2)
    det = DeadlockDetector(abort_on_deadlock=False)
    job = Job(cluster, app, 2, procs_per_node=1, deadlock_timeout_s=1.0)
    det.install(job)
    result = job.run()
    return result, det
