"""Tests for the ``repro check`` exit-code/baseline/export contract."""

import json
import textwrap
from pathlib import Path

from repro.cli import main

FIXTURE = str(Path(__file__).parent / "fixtures" / "badckpt")

WARN_ONLY = """\
    class QuietCheckpoint:
        def __init__(self, ctx, comm):
            self.comm = comm
            self._b = ctx.shm_create("b", 64).array

        def checkpoint(self):
            self.comm.barrier()

        def try_restore(self):
            return bool(self.comm.allgather(True))

        def scribble(self):
            self._b[0] = 1
    """


def write_warn_only(tmp_path):
    p = tmp_path / "quiet.py"
    p.write_text(textwrap.dedent(WARN_ONLY))
    return str(p)


class TestExitCodes:
    def test_flow_fixture_fails(self, capsys):
        assert main(["check", "flow", "--path", FIXTURE, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "flow-nondet" in out
        assert "lifecycle-premature-write" in out

    def test_fail_on_error_ignores_warnings(self, tmp_path, capsys):
        quiet = write_warn_only(tmp_path)
        args = ["check", "flow", "--path", quiet, "--no-baseline"]
        assert main(args + ["--fail-on", "error"]) == 0
        assert main(args + ["--fail-on", "warning"]) == 1
        assert main(args) == 1  # default: any finding fails
        out = capsys.readouterr().out
        assert "lifecycle-phase-escape" in out

    def test_analyzer_crash_exits_2(self, monkeypatch, capsys):
        def boom(report, paths):
            raise RuntimeError("seeded crash")

        monkeypatch.setattr("repro.sancheck.cli._run_flow", boom)
        assert main(["check", "flow"]) == 2
        assert "analyzer crashed" in capsys.readouterr().err

    def test_deep_clean_on_shipped_tree(self, capsys):
        """Acceptance: ``repro check --deep --fail-on error`` is clean on
        main (modulo the committed baseline)."""
        assert main(["check", "--deep", "--fail-on", "error"]) == 0
        out = capsys.readouterr().out
        assert "simlint" in out and "flow" in out

    def test_deep_requires_an_analysis_list_or_flag(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["check"])


class TestBaselineWorkflow:
    def test_update_then_subtract(self, tmp_path, capsys):
        bl = str(tmp_path / "bl.json")
        assert (
            main(
                [
                    "check",
                    "flow",
                    "--path",
                    FIXTURE,
                    "--update-baseline",
                    "--baseline",
                    bl,
                ]
            )
            == 0
        )
        assert "baseline updated" in capsys.readouterr().out
        doc = json.loads(Path(bl).read_text())
        assert doc["schema"] == 1 and len(doc["findings"]) == 6

        # with every finding accepted, the same analysis is green
        assert (
            main(["check", "flow", "--path", FIXTURE, "--baseline", bl]) == 0
        )
        out = capsys.readouterr().out
        assert "0 findings" in out and "6 baselined" in out

    def test_no_baseline_overrides_the_file(self, tmp_path, capsys):
        bl = str(tmp_path / "bl.json")
        main(
            [
                "check",
                "flow",
                "--path",
                FIXTURE,
                "--update-baseline",
                "--baseline",
                bl,
            ]
        )
        capsys.readouterr()
        args = ["check", "flow", "--path", FIXTURE, "--baseline", bl]
        assert main(args + ["--no-baseline"]) == 1

    def test_update_baseline_requires_static_analysis(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["check", "races", "--update-baseline"])


class TestExports:
    def test_sarif_and_jsonl_carry_prebaseline_findings(self, tmp_path, capsys):
        bl = str(tmp_path / "bl.json")
        sarif = tmp_path / "out.sarif"
        jsonl = tmp_path / "out.jsonl"
        main(
            [
                "check",
                "flow",
                "--path",
                FIXTURE,
                "--update-baseline",
                "--baseline",
                bl,
            ]
        )
        capsys.readouterr()
        # baselined to green — the machine exports still carry everything
        assert (
            main(
                [
                    "check",
                    "flow",
                    "--path",
                    FIXTURE,
                    "--baseline",
                    bl,
                    "--sarif",
                    str(sarif),
                    "--jsonl",
                    str(jsonl),
                ]
            )
            == 0
        )
        doc = json.loads(sarif.read_text())
        assert len(doc["runs"][0]["results"]) == 6
        assert len(jsonl.read_text().splitlines()) == 6
