"""Progress reporting and engine host metrics.

The progress line is the one wall-clock surface of the replay engine; it
must always terminate with a final un-throttled summary (even when the
whole campaign resolves inside one throttle window), and ``NullProgress``
must keep stderr byte-silent.  The engine's deterministic host counters
(``par.worker_tasks``, ``par.queue_depth``, ``par.cache_corrupt``) are
dispatch-order quantities, never OS-scheduling ones.
"""

import io
import os

from repro.obs.metrics import MetricsRegistry
from repro.par import MemoCache, ParallelEngine
from repro.par.progress import NullProgress, ProgressReporter


def _identity(x):
    return x


class TestProgressReporter:
    def test_finish_always_emits_final_line(self):
        # min_interval_s is huge: every intermediate update is throttled
        # away, yet finish must still print the totals
        buf = io.StringIO()
        rep = ProgressReporter("camp", stream=buf, min_interval_s=3600.0)
        rep.start(3, 2)
        for done in (1, 2, 3):
            rep.update(done, 3, 0, 2)
        rep.finish(3, 3, 0, 2)
        out = buf.getvalue()
        assert out.endswith("\n")
        final = out.rstrip("\n").rsplit("\r", 1)[-1]
        assert final.startswith("camp: 3/3 replays")
        assert "2 workers" in final
        assert "s)" in final  # elapsed time, not util%, on the final line

    def test_last_update_inside_window_not_dropped_silently(self):
        buf = io.StringIO()
        rep = ProgressReporter("c", stream=buf, min_interval_s=3600.0)
        rep.start(2, 1)
        rep.update(1, 2, 0, 1)  # throttled
        rep.finish(2, 2, 1, 1)
        final = buf.getvalue().rstrip("\n").rsplit("\r", 1)[-1]
        assert "2/2" in final
        assert "1 cached" in final

    def test_live_line_reports_utilization_and_queue(self):
        buf = io.StringIO()
        rep = ProgressReporter("c", stream=buf, min_interval_s=0.0)
        rep.start(5, 2)
        rep.update(1, 5, 0, 2)
        live = buf.getvalue().rsplit("\r", 1)[-1]
        assert "100% util" in live  # 4 left >= 2 workers: pool saturated
        assert "2 queued" in live

    def test_tail_drain_utilization(self):
        buf = io.StringIO()
        rep = ProgressReporter("c", stream=buf, min_interval_s=0.0)
        rep.start(2, 4)
        rep.update(1, 2, 0, 4)  # one task left on a 4-wide pool
        live = buf.getvalue().rsplit("\r", 1)[-1]
        assert "25% util" in live
        assert "0 queued" in live

    def test_engine_uses_reporter_and_ends_with_newline(self):
        buf = io.StringIO()
        rep = ProgressReporter("eng", stream=buf, min_interval_s=3600.0)
        engine = ParallelEngine(1, progress=rep)
        assert engine.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        out = buf.getvalue()
        assert out.endswith("\n")
        assert "eng: 3/3 replays" in out.rsplit("\r", 1)[-1]

    def test_null_progress_is_byte_silent(self, capsys):
        engine = ParallelEngine(1, progress=NullProgress())
        engine.map(lambda x: x + 1, [1, 2, 3])
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out == ""

    def test_default_engine_progress_is_silent(self, capsys):
        engine = ParallelEngine(1)
        engine.map(lambda x: x + 1, [1, 2])
        assert capsys.readouterr().err == ""


class TestHostMetrics:
    def test_worker_tasks_attributed_by_dispatch_slot(self):
        reg = MetricsRegistry()
        engine = ParallelEngine(2, registry=reg)
        engine.map(_identity, list(range(5)))
        # n_procs=2: slots get pending[0::2] and pending[1::2] -> 3 and 2
        assert reg.counter("par.worker_tasks", worker=0).value == 3
        assert reg.counter("par.worker_tasks", worker=1).value == 2
        assert reg.counter("par.tasks").value == 5

    def test_queue_depth_is_backlog_beyond_pool(self):
        reg = MetricsRegistry()
        ParallelEngine(2, registry=reg).map(_identity, list(range(5)))
        assert reg.gauge("par.queue_depth").value == 3
        reg2 = MetricsRegistry()
        ParallelEngine(8, registry=reg2).map(_identity, list(range(5)))
        assert reg2.gauge("par.queue_depth").value == 0

    def test_serial_engine_attributes_all_to_slot_zero(self):
        reg = MetricsRegistry()
        ParallelEngine(1, registry=reg).map(_identity, list(range(4)))
        assert reg.counter("par.worker_tasks", worker=0).value == 4

    def test_cache_corrupt_counter(self, tmp_path):
        cache = MemoCache(str(tmp_path / "memo"))
        reg = MetricsRegistry()
        engine = ParallelEngine(1, registry=reg, progress=NullProgress())

        calls = []

        def fn(task):
            calls.append(task)
            from repro.par.replay import ReplayOutcome

            return ReplayOutcome(
                verdict="survived", n_restarts=0, makespan_s=1.0
            )

        engine.map(fn, ["t"], cache=cache, key=lambda t: f"key-{t}")
        assert reg.counter("par.cache_corrupt").value == 0
        # smash the on-disk entry; drop the in-memory copy so the engine
        # must go back to disk and trip over the corruption
        (entry,) = [
            p for p in os.listdir(cache.path) if p.endswith(".json")
        ]
        with open(os.path.join(cache.path, entry), "w") as f:
            f.write("{ not json")
        cache._mem.clear()
        engine.map(fn, ["t"], cache=cache, key=lambda t: f"key-{t}")
        assert reg.counter("par.cache_corrupt").value == 1
        assert len(calls) == 2  # corrupt entry counted as a miss and re-ran

    def test_cache_hit_path_counts(self, tmp_path):
        cache = MemoCache(str(tmp_path / "memo"))
        reg = MetricsRegistry()
        engine = ParallelEngine(1, registry=reg)
        from repro.par.replay import ReplayOutcome

        fn = lambda t: ReplayOutcome(
            verdict="survived", n_restarts=0, makespan_s=1.0
        )
        engine.map(fn, ["a", "b"], cache=cache, key=lambda t: f"k-{t}")
        engine.map(fn, ["a", "b"], cache=cache, key=lambda t: f"k-{t}")
        assert reg.counter("par.cache_misses").value == 2
        assert reg.counter("par.cache_hits").value == 2
        assert reg.counter("par.cache_corrupt").value == 0
