"""Tests for the parallel execution engine (repro.par.engine)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.par import (
    AUTO_WORKERS_CAP,
    MemoCache,
    ParallelEngine,
    default_workers,
    resolve_workers,
)


# pool workers unpickle tasks by reference, so the mapped functions must
# be module-level
def _square(task):
    return task * task


def _boom_on_three(task):
    if task == 3:
        raise ValueError(f"bad task {task}")
    return task * task


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 1

    def test_int_and_string_forms(self):
        assert resolve_workers(4) == 4
        assert resolve_workers("3") == 3

    def test_auto_is_bounded(self):
        n = resolve_workers("auto")
        assert 1 <= n <= AUTO_WORKERS_CAP
        assert n == default_workers()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("-2")


class TestMapOrdering:
    def test_serial_preserves_task_order(self):
        engine = ParallelEngine(1)
        assert engine.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_preserves_task_order(self):
        engine = ParallelEngine(2)
        tasks = list(range(10))
        assert engine.map(_square, tasks) == [t * t for t in tasks]

    def test_parallel_equals_serial(self):
        tasks = [5, 3, 8, 1]
        assert ParallelEngine(2).map(_square, tasks) == ParallelEngine(1).map(
            _square, tasks
        )

    def test_empty_task_list(self):
        assert ParallelEngine(2).map(_square, []) == []


class TestErrorFolding:
    def test_without_on_error_the_exception_propagates(self):
        with pytest.raises(ValueError, match="bad task 3"):
            ParallelEngine(1).map(_boom_on_three, [1, 3])

    def test_on_error_folds_into_the_slot(self):
        folded = ParallelEngine(1).map(
            _boom_on_three,
            [1, 3, 4],
            on_error=lambda task, exc: ("crashed", task, str(exc)),
        )
        assert folded == [1, ("crashed", 3, "bad task 3"), 16]

    def test_on_error_folds_in_pool_workers_too(self):
        folded = ParallelEngine(2).map(
            _boom_on_three,
            [1, 3, 4, 5],
            on_error=lambda task, exc: ("crashed", task),
        )
        assert folded == [1, ("crashed", 3), 16, 25]


class TestMemoization:
    def test_hits_skip_execution(self):
        cache = MemoCache()
        key = str
        cache.put("3", 99)  # pre-classified: must win over _square
        got = ParallelEngine(1).map(_square, [2, 3], cache=cache, key=key)
        assert got == [4, 99]

    def test_misses_are_stored(self):
        cache = MemoCache()
        ParallelEngine(1).map(_square, [2, 3], cache=cache, key=str)
        assert cache.get("2") == 4 and cache.get("3") == 9

    def test_error_folded_results_are_never_cached(self):
        cache = MemoCache()
        ParallelEngine(1).map(
            _boom_on_three,
            [1, 3],
            cache=cache,
            key=str,
            on_error=lambda task, exc: "crashed",
        )
        assert cache.get("1") == 1
        assert cache.get("3") is None  # a crash is not a classification


class TestAccounting:
    def test_metrics_counters(self):
        registry = MetricsRegistry()
        cache = MemoCache()
        cache.put("1", 1)
        engine = ParallelEngine(1, registry=registry)
        engine.map(_square, [1, 2, 3], cache=cache, key=str)
        assert registry.total("par.tasks") == 3
        assert registry.total("par.cache_hits") == 1
        assert registry.total("par.cache_misses") == 2

    def test_progress_sees_every_resolution(self):
        calls = []

        class Probe:
            def start(self, total, workers):
                calls.append(("start", total))

            def update(self, done, total, cache_hits, workers):
                calls.append(("update", done, total))

            def finish(self, done, total, cache_hits, workers):
                calls.append(("finish", done, total))

        ParallelEngine(1, progress=Probe()).map(_square, [1, 2])
        assert calls[0] == ("start", 2)
        assert calls[-1] == ("finish", 2, 2)
        assert ("update", 2, 2) in calls
