"""Tests for scenario specs, fingerprints and the memo cache (repro.par)."""

import pytest

from repro.par import (
    MemoCache,
    ReplayOutcome,
    ReplaySpec,
    ScenarioSpec,
    code_fingerprint,
    registered_kinds,
    replay_fingerprint,
)
from repro.sim.failures import PhaseTrigger, TimeTrigger


def _spec(**overrides):
    from repro.chaos.scenarios import selfckpt_scenario

    return selfckpt_scenario(**overrides).spec


class TestScenarioSpec:
    def test_kwargs_are_order_canonical(self):
        a = ScenarioSpec.create("k", x=1, y=2)
        b = ScenarioSpec.create("k", y=2, x=1)
        assert a == b and hash(a) == hash(b)

    def test_builtin_kinds_registered_on_import(self):
        _spec()  # importing repro.chaos.scenarios registers the builders
        assert {"selfckpt", "skt-hpl"} <= set(registered_kinds())

    def test_build_round_trips_the_spec(self):
        spec = _spec(n_nodes=2, iters=4)
        rebuilt = spec.build()
        assert rebuilt.spec == spec
        assert rebuilt.params["n_nodes"] == 2

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="no scenario builder"):
            ScenarioSpec.create("no-such-kind").build()

    def test_custom_protocol_scenario_has_no_spec(self):
        from repro.chaos.scenarios import selfckpt_scenario

        sc = selfckpt_scenario(protocol_factory=lambda *a, **k: None)
        assert sc.spec is None


class TestFingerprint:
    def test_deterministic(self):
        spec = ReplaySpec(_spec(), (TimeTrigger(node_id=0, at_time=1.5),))
        assert replay_fingerprint(spec) == replay_fingerprint(spec)

    def test_sensitive_to_scenario_params(self):
        t = (TimeTrigger(node_id=0, at_time=1.5),)
        assert replay_fingerprint(
            ReplaySpec(_spec(iters=4), t)
        ) != replay_fingerprint(ReplaySpec(_spec(iters=6), t))

    def test_sensitive_to_triggers(self):
        spec = _spec()
        a = ReplaySpec(spec, (TimeTrigger(node_id=0, at_time=1.5),))
        b = ReplaySpec(
            spec,
            (
                TimeTrigger(node_id=0, at_time=1.5),
                PhaseTrigger(node_id=1, phase="ckpt.encode"),
            ),
        )
        assert replay_fingerprint(a) != replay_fingerprint(b)

    def test_sensitive_to_schema_version(self, monkeypatch):
        import repro.par.cache as cache_mod

        spec = ReplaySpec(_spec(), ())
        before = replay_fingerprint(spec)
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", 999)
        assert replay_fingerprint(spec) != before

    def test_code_fingerprint_is_a_stable_digest(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestMemoCache:
    def _outcome(self, verdict="survived"):
        return ReplayOutcome(
            verdict=verdict, n_restarts=1, makespan_s=12.5, fired=("kill n0",)
        )

    def test_in_memory_roundtrip(self):
        cache = MemoCache()
        assert cache.get("k") is None
        cache.put("k", self._outcome())
        assert cache.get("k") == self._outcome()
        assert len(cache) == 1

    def test_disk_persistence_across_instances(self, tmp_path):
        MemoCache(str(tmp_path)).put("k", self._outcome())
        assert MemoCache(str(tmp_path)).get("k") == self._outcome()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = MemoCache(str(tmp_path))
        cache.put("k", self._outcome())
        (tmp_path / "k.json").write_text("{not json", encoding="utf-8")
        assert MemoCache(str(tmp_path)).get("k") is None

    def test_outcome_json_roundtrip(self):
        out = self._outcome(verdict="gave-up")
        assert ReplayOutcome.from_json(out.to_json()) == out
