"""Tests for SHM segments, node memory accounting, and node failure."""

import numpy as np
import pytest

from repro.sim import Node, NodeSpec, OutOfMemoryError, ShmError
from repro.util import GiB


@pytest.fixture
def node():
    return Node(0, NodeSpec(cores=4, flops=1e11, mem_bytes=GiB))


class TestNodeSpec:
    def test_derived_quantities(self):
        spec = NodeSpec(cores=24, flops=422.4e9, mem_bytes=64 * GiB)
        assert spec.flops_per_core == pytest.approx(17.6e9)
        assert spec.mem_per_core == 64 * GiB // 24

    @pytest.mark.parametrize(
        "kwargs", [{"cores": 0}, {"flops": 0}, {"mem_bytes": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NodeSpec(**kwargs)


class TestShm:
    def test_create_and_attach(self, node):
        seg = node.shm.create("x", (4, 4))
        seg.array[:] = 7.0
        again = node.shm.attach("x")
        assert np.all(again.array == 7.0)

    def test_create_duplicate_rejected(self, node):
        node.shm.create("x", 4)
        with pytest.raises(ShmError):
            node.shm.create("x", 4)

    def test_create_exist_ok_returns_same_content(self, node):
        seg = node.shm.create("x", 8)
        seg.array[:] = 3.0
        seg2 = node.shm.create("x", 8, exist_ok=True)
        assert np.all(seg2.array == 3.0)

    def test_exist_ok_shape_mismatch_rejected(self, node):
        node.shm.create("x", 8)
        with pytest.raises(ShmError):
            node.shm.create("x", 16, exist_ok=True)

    def test_attach_missing(self, node):
        with pytest.raises(ShmError):
            node.shm.attach("ghost")

    def test_unlink_releases_memory(self, node):
        node.shm.create("x", 1024, np.uint8)
        used = node.mem_used
        node.shm.unlink("x")
        assert node.mem_used == used - 1024
        assert not node.shm.exists("x")

    def test_unlink_missing_ok(self, node):
        node.shm.unlink("ghost", missing_ok=True)
        with pytest.raises(ShmError):
            node.shm.unlink("ghost")

    def test_names_and_len(self, node):
        node.shm.create("b", 4)
        node.shm.create("a", 4)
        assert node.shm.names() == ["a", "b"]
        assert len(node.shm) == 2

    def test_total_bytes(self, node):
        node.shm.create("x", 100, np.uint8)
        node.shm.create("y", 28, np.uint8)
        assert node.shm.total_bytes() == 128


class TestNodeLifecycle:
    def test_failure_destroys_shm(self, node):
        node.shm.create("ckpt", 64)
        node.fail(when=12.5)
        assert not node.alive
        assert node.failed_at == 12.5
        assert len(node.shm) == 0
        assert node.mem_used == 0

    def test_fail_idempotent(self, node):
        node.fail(1.0)
        node.fail(2.0)
        assert node.failed_at == 1.0

    def test_repair(self, node):
        node.fail()
        node.repair()
        assert node.alive and node.failed_at is None


class TestMemoryAccounting:
    def test_malloc_free(self, node):
        node.malloc(100)
        assert node.mem_used == 100
        node.free(40)
        assert node.mem_used == 60
        assert node.mem_free == node.spec.mem_bytes - 60

    def test_enforcement(self):
        node = Node(0, NodeSpec(mem_bytes=1000), enforce_memory=True)
        node.malloc(900)
        with pytest.raises(OutOfMemoryError):
            node.malloc(200)

    def test_no_enforcement_by_default(self, node):
        node.malloc(node.spec.mem_bytes * 2)  # allowed: accounting only

    def test_free_floors_at_zero(self, node):
        node.free(10**9)
        assert node.mem_used == 0


class TestSnapshot:
    """ShmStore.snapshot(): the sanctioned concurrent-enumeration API."""

    def test_snapshot_lists_segments(self, node):
        node.shm.create("a", 4)
        node.shm.create("b", 8)
        segs = {s.name: s for s in node.shm.snapshot()}
        assert set(segs) == {"a", "b"}

    def test_iter_goes_through_snapshot(self, node):
        node.shm.create("a", 4)
        names = [s.name for s in node.shm]
        assert names == ["a"]

    def test_meta_is_copied(self, node):
        seg = node.shm.create("a", 4)
        seg.meta["epoch"] = 1
        snap = node.shm.snapshot()[0]
        seg.meta["epoch"] = 2  # later mutation by a rank...
        assert snap.meta["epoch"] == 1  # ...must not leak into the snapshot

    def test_array_stays_live_view(self, node):
        seg = node.shm.create("a", 4)
        snap = node.shm.snapshot()[0]
        seg.array[:] = 7.0
        assert np.all(snap.array == 7.0)

    def test_snapshot_safe_during_unlink(self, node):
        node.shm.create("a", 4)
        snap = node.shm.snapshot()
        node.shm.unlink("a")
        assert snap[0].name == "a"  # snapshot unaffected by later unlink


class TestSegmentHooks:
    """ShmSegment.read()/write() route through the store observer."""

    def test_read_write_notify_observer(self, node):
        events = []

        class Spy:
            def on_shm(self, node_id, name, kind, nbytes=0):
                events.append((node_id, name, kind))

        node.shm.observer = Spy()
        seg = node.shm.create("a", 4)
        seg.write(3.0)
        got = seg.read()
        assert np.all(got == 3.0)
        node.shm.unlink("a")
        assert events == [
            (0, "a", "create"),
            (0, "a", "write"),
            (0, "a", "read"),
            (0, "a", "unlink"),
        ]

    def test_exist_ok_reattach_reports_attach(self, node):
        events = []

        class Spy:
            def on_shm(self, node_id, name, kind, nbytes=0):
                events.append(kind)

        node.shm.observer = Spy()
        node.shm.create("a", 4)
        node.shm.create("a", 4, exist_ok=True)
        assert events == ["create", "attach"]

    def test_write_supports_slices(self, node):
        seg = node.shm.create("a", 4)
        seg.write(5.0, where=slice(0, 2))
        assert list(seg.array) == [5.0, 5.0, 0.0, 0.0]
