"""Stress tests: larger rank counts and heavy collective traffic exercise
the thread scheduler, rendezvous bookkeeping, and clock invariants."""

import numpy as np

from repro.sim import Cluster, Job


class TestScale:
    def test_64_rank_collective_storm(self):
        def main(ctx):
            comm = ctx.world
            for i in range(10):
                s = comm.allreduce(np.array([1.0]))
                assert s[0] == comm.size
                if i % 3 == 0:
                    comm.barrier()
            return comm.allgather(comm.rank) == list(range(comm.size))

        cl = Cluster(8)
        res = Job(cl, main, 64, procs_per_node=8).run()
        assert res.completed
        assert all(res.rank_results.values())

    def test_32_rank_ring_pipeline(self):
        def main(ctx):
            comm = ctx.world
            r, p = comm.rank, comm.size
            token = r
            for _ in range(p):
                comm.send(token, (r + 1) % p, tag=1)
                token = comm.recv((r - 1) % p, tag=1)
            return token  # full loop: back to the origin value

        cl = Cluster(4)
        res = Job(cl, main, 32, procs_per_node=8).run()
        assert res.completed
        assert all(res.rank_results[r] == r for r in range(32))

    def test_many_groups_concurrent_checkpoints(self):
        from repro.ckpt import CheckpointManager

        def app(ctx):
            mgr = CheckpointManager(ctx, ctx.world, group_size=2, method="self")
            a = mgr.alloc("d", 32)
            mgr.commit()
            mgr.try_restore()
            for it in range(3):
                a += 1.0
                mgr.local["it"] = it
                mgr.checkpoint()
            return float(a[0])

        cl = Cluster(8)
        res = Job(cl, app, 32, procs_per_node=4).run()
        assert res.completed, res.rank_errors
        assert all(v == 3.0 for v in res.rank_results.values())


class TestClockInvariants:
    def test_clocks_never_regress_through_collectives(self):
        def main(ctx):
            comm = ctx.world
            last = 0.0
            for i in range(20):
                ctx.elapse(0.01 * (ctx.rank + 1))
                comm.allreduce(np.array([0.0]))
                assert ctx.clock >= last
                last = ctx.clock
            return last

        cl = Cluster(4)
        res = Job(cl, main, 4, procs_per_node=1).run()
        assert res.completed
        # after many synchronizing collectives the clocks are tightly grouped
        clocks = list(res.rank_results.values())
        assert max(clocks) - min(clocks) < max(clocks) * 0.5

    def test_recv_clock_respects_causality(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                ctx.elapse(5.0)
                comm.send("late", 1)
                return ctx.clock
            t_before = ctx.clock
            comm.recv(0)
            assert ctx.clock >= 5.0 > t_before
            return ctx.clock

        cl = Cluster(2)
        assert Job(cl, main, 2, procs_per_node=1).run().completed

    def test_interleaved_pt2pt_and_collectives(self):
        def main(ctx):
            comm = ctx.world
            r, p = comm.rank, comm.size
            for i in range(5):
                comm.send((r, i), (r + 1) % p, tag=i)
                comm.allreduce(np.array([float(i)]))
                got = comm.recv((r - 1) % p, tag=i)
                assert got == ((r - 1) % p, i)
            return True

        cl = Cluster(8)
        res = Job(cl, main, 8, procs_per_node=1).run()
        assert res.completed, res.rank_errors
