"""Tests for the cluster (spares, ranklists) and failure machinery."""

import pytest

from repro.sim import (
    Cluster,
    FailurePlan,
    MTBFFailureGenerator,
    NodeSpec,
    PhaseTrigger,
    SimError,
    TimeTrigger,
)


class TestCluster:
    def test_sizes(self):
        cl = Cluster(4, n_spares=2)
        assert len(cl.nodes) == 4
        assert cl.spare_ids == [4, 5]
        assert len(cl.all_nodes()) == 6

    def test_needs_one_node(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_default_ranklist_block_placement(self):
        cl = Cluster(3, NodeSpec(cores=2))
        assert cl.default_ranklist(6) == [0, 0, 1, 1, 2, 2]
        assert cl.default_ranklist(3, procs_per_node=1) == [0, 1, 2]

    def test_ranklist_overflow(self):
        cl = Cluster(2, NodeSpec(cores=2))
        with pytest.raises(SimError):
            cl.default_ranklist(5)

    def test_replace_dead_uses_spares_in_order(self):
        cl = Cluster(4, n_spares=2)
        cl.fail_node(1)
        cl.fail_node(3)
        repl = cl.replace_dead()
        assert repl == {1: 4, 3: 5}
        assert cl.active_ids == [0, 4, 2, 5]
        assert cl.dead_nodes() == []

    def test_spare_pool_exhaustion(self):
        cl = Cluster(2, n_spares=0)
        cl.fail_node(0)
        with pytest.raises(SimError):
            cl.replace_dead()

    def test_dead_spare_skipped(self):
        cl = Cluster(2, n_spares=2)
        cl.fail_node(2)  # kill the first spare
        cl.fail_node(0)
        repl = cl.replace_dead()
        assert repl == {0: 3}

    def test_add_spares(self):
        cl = Cluster(2, n_spares=0)
        cl.add_spares(3)
        assert len(cl.spare_ids) == 3

    def test_ranks_on_node(self):
        cl = Cluster(2, NodeSpec(cores=2))
        rl = cl.default_ranklist(4)
        assert cl.ranks_on_node(rl, 0) == [0, 1]
        assert cl.ranks_on_node(rl, 1) == [2, 3]

    def test_healthy(self):
        cl = Cluster(3)
        assert cl.healthy([0, 1, 2])
        cl.fail_node(1)
        assert not cl.healthy([0, 1])
        assert cl.healthy([0, 2])

    def test_stable_store_survives_failure(self):
        cl = Cluster(2)
        cl.stable_store["k"] = b"data"
        cl.fail_node(0)
        assert cl.stable_store["k"] == b"data"


class TestTriggers:
    def test_time_trigger_fires_once(self):
        plan = FailurePlan([TimeTrigger(node_id=1, at_time=5.0)])
        assert not plan.check_time(1, 4.9)
        assert plan.check_time(1, 5.0)
        assert not plan.check_time(1, 6.0)  # consumed
        assert len(plan.fired) == 1

    def test_time_trigger_other_node_ignored(self):
        plan = FailurePlan([TimeTrigger(node_id=1, at_time=5.0)])
        assert not plan.check_time(0, 100.0)

    def test_phase_trigger_occurrence(self):
        plan = FailurePlan([PhaseTrigger(node_id=0, phase="ckpt", occurrence=3)])
        assert not plan.check_phase(0, 0, "ckpt")
        assert not plan.check_phase(0, 0, "ckpt")
        assert plan.check_phase(0, 0, "ckpt")

    def test_phase_trigger_rank_filter(self):
        plan = FailurePlan([PhaseTrigger(node_id=0, phase="p", rank=2)])
        assert not plan.check_phase(0, 1, "p")
        assert plan.check_phase(0, 2, "p")

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeTrigger(node_id=0, at_time=-1)
        with pytest.raises(ValueError):
            PhaseTrigger(node_id=0, phase="p", occurrence=0)

    def test_empty(self):
        assert FailurePlan().empty
        assert not FailurePlan([TimeTrigger(0, 1.0)]).empty


class TestMTBF:
    def test_deterministic_with_seed(self):
        a = MTBFFailureGenerator(1000.0, seed=3).draw_failure_time()
        b = MTBFFailureGenerator(1000.0, seed=3).draw_failure_time()
        assert a == b

    def test_schedule_within_horizon(self):
        gen = MTBFFailureGenerator(100.0, seed=1)
        trig = gen.schedule(list(range(50)), horizon_s=50.0)
        assert all(t.at_time <= 50.0 for t in trig)
        assert trig == sorted(trig, key=lambda t: t.at_time)

    def test_system_mtbf_scales_inversely(self):
        gen = MTBFFailureGenerator(1e6)
        assert gen.system_mtbf(1000) == pytest.approx(1e3)

    def test_mean_is_roughly_mtbf(self):
        gen = MTBFFailureGenerator(500.0, seed=7)
        xs = [gen.draw_failure_time() for _ in range(4000)]
        assert sum(xs) / len(xs) == pytest.approx(500.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            MTBFFailureGenerator(0)
