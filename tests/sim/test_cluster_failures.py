"""Tests for the cluster (spares, ranklists) and failure machinery."""

import pytest

from repro.sim import (
    Cluster,
    FailurePlan,
    Job,
    MTBFFailureGenerator,
    NodeSpec,
    PhaseTrigger,
    SimError,
    TimeTrigger,
)


class TestCluster:
    def test_sizes(self):
        cl = Cluster(4, n_spares=2)
        assert len(cl.nodes) == 4
        assert cl.spare_ids == [4, 5]
        assert len(cl.all_nodes()) == 6

    def test_needs_one_node(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_default_ranklist_block_placement(self):
        cl = Cluster(3, NodeSpec(cores=2))
        assert cl.default_ranklist(6) == [0, 0, 1, 1, 2, 2]
        assert cl.default_ranklist(3, procs_per_node=1) == [0, 1, 2]

    def test_ranklist_overflow(self):
        cl = Cluster(2, NodeSpec(cores=2))
        with pytest.raises(SimError):
            cl.default_ranklist(5)

    def test_replace_dead_uses_spares_in_order(self):
        cl = Cluster(4, n_spares=2)
        cl.fail_node(1)
        cl.fail_node(3)
        repl = cl.replace_dead()
        assert repl == {1: 4, 3: 5}
        assert cl.active_ids == [0, 4, 2, 5]
        assert cl.dead_nodes() == []

    def test_spare_pool_exhaustion(self):
        cl = Cluster(2, n_spares=0)
        cl.fail_node(0)
        with pytest.raises(SimError):
            cl.replace_dead()

    def test_dead_spare_skipped(self):
        cl = Cluster(2, n_spares=2)
        cl.fail_node(2)  # kill the first spare
        cl.fail_node(0)
        repl = cl.replace_dead()
        assert repl == {0: 3}

    def test_add_spares(self):
        cl = Cluster(2, n_spares=0)
        cl.add_spares(3)
        assert len(cl.spare_ids) == 3

    def test_ranks_on_node(self):
        cl = Cluster(2, NodeSpec(cores=2))
        rl = cl.default_ranklist(4)
        assert cl.ranks_on_node(rl, 0) == [0, 1]
        assert cl.ranks_on_node(rl, 1) == [2, 3]

    def test_healthy(self):
        cl = Cluster(3)
        assert cl.healthy([0, 1, 2])
        cl.fail_node(1)
        assert not cl.healthy([0, 1])
        assert cl.healthy([0, 2])

    def test_stable_store_survives_failure(self):
        cl = Cluster(2)
        cl.stable_store["k"] = b"data"
        cl.fail_node(0)
        assert cl.stable_store["k"] == b"data"


class TestTriggers:
    def test_time_trigger_fires_once(self):
        plan = FailurePlan([TimeTrigger(node_id=1, at_time=5.0)])
        assert not plan.check_time(1, 4.9)
        assert plan.check_time(1, 5.0)
        assert not plan.check_time(1, 6.0)  # consumed
        assert len(plan.fired) == 1

    def test_time_trigger_other_node_ignored(self):
        plan = FailurePlan([TimeTrigger(node_id=1, at_time=5.0)])
        assert not plan.check_time(0, 100.0)

    def test_phase_trigger_occurrence(self):
        plan = FailurePlan([PhaseTrigger(node_id=0, phase="ckpt", occurrence=3)])
        assert not plan.check_phase(0, 0, "ckpt")
        assert not plan.check_phase(0, 0, "ckpt")
        assert plan.check_phase(0, 0, "ckpt")

    def test_phase_trigger_rank_filter(self):
        plan = FailurePlan([PhaseTrigger(node_id=0, phase="p", rank=2)])
        assert not plan.check_phase(0, 1, "p")
        assert plan.check_phase(0, 2, "p")

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeTrigger(node_id=0, at_time=-1)
        with pytest.raises(ValueError):
            PhaseTrigger(node_id=0, phase="p", occurrence=0)

    def test_empty(self):
        assert FailurePlan().empty
        assert not FailurePlan([TimeTrigger(0, 1.0)]).empty


class TestRankScopedTriggers:
    """Rank-scoped phase triggers count the *target rank's* announcements,
    not the node-wide total (the historical misfire: with several ranks per
    node, another rank's announcements advanced the count and the trigger
    fired on the wrong rank's phase, or early)."""

    def test_non_target_rank_does_not_advance_count(self):
        plan = FailurePlan(
            [PhaseTrigger(node_id=0, phase="p", rank=1, occurrence=2)]
        )
        assert not plan.check_phase(0, 0, "p")  # rank 0 announces first
        assert not plan.check_phase(0, 1, "p")  # rank 1's 1st
        assert not plan.check_phase(0, 0, "p")  # rank 0 again
        assert plan.check_phase(0, 1, "p")  # rank 1's 2nd -> fires

    def test_rank_scoped_ignores_high_node_wide_count(self):
        # node-wide count far past the occurrence before the target rank
        # ever announces: the trigger must wait for the rank's own 1st
        plan = FailurePlan([PhaseTrigger(node_id=0, phase="p", rank=2)])
        for _ in range(5):
            assert not plan.check_phase(0, 0, "p")
        assert plan.check_phase(0, 2, "p")
        assert plan.fired_records[0].rank == 2
        assert plan.fired_records[0].count == 1

    def test_node_wide_trigger_counts_all_ranks(self):
        plan = FailurePlan([PhaseTrigger(node_id=0, phase="p", occurrence=3)])
        assert not plan.check_phase(0, 0, "p")
        assert not plan.check_phase(0, 1, "p")
        assert plan.check_phase(0, 2, "p")  # 3rd announcement on the node

    def test_fired_record_provenance(self):
        plan = FailurePlan([PhaseTrigger(node_id=3, phase="ckpt.flush")])
        plan.check_phase(3, 1, "ckpt.flush", clock=7.5)
        (rec,) = plan.fired_records
        assert rec.node_id == 3
        assert rec.phase == "ckpt.flush"
        assert rec.rank == 1
        assert rec.clock == 7.5
        assert "ckpt.flush" in rec.describe()

    def test_phase_count_helper(self):
        plan = FailurePlan()
        plan.check_phase(0, 0, "p")
        plan.check_phase(0, 1, "p")
        assert plan.phase_count(0, "p") == 2
        assert plan.phase_count(0, "p", rank=1) == 1
        assert plan.phase_count(0, "p", rank=9) == 0

    def test_rank_scoped_in_multirank_job(self):
        """Integration: two ranks per node; the non-target rank announces
        the phase first (earlier virtual time) yet the trigger kills the
        node only at the target rank's own announcement."""
        plan = FailurePlan(
            [PhaseTrigger(node_id=0, phase="work", rank=1, occurrence=1)]
        )
        cl = Cluster(2, NodeSpec(cores=2))

        def main(ctx):
            if ctx.rank == 1:
                ctx.elapse(0.5)  # the target rank announces last
            ctx.phase("work")
            ctx.elapse(1.0)

        result = Job(cl, main, 4, failure_plan=plan, procs_per_node=2).run()
        assert not result.completed
        assert result.failed_nodes == [0]
        (rec,) = plan.fired_records
        assert rec.rank == 1
        assert rec.clock == pytest.approx(0.5)


class TestMTBF:
    def test_deterministic_with_seed(self):
        a = MTBFFailureGenerator(1000.0, seed=3).draw_failure_time()
        b = MTBFFailureGenerator(1000.0, seed=3).draw_failure_time()
        assert a == b

    def test_schedule_within_horizon(self):
        gen = MTBFFailureGenerator(100.0, seed=1)
        trig = gen.schedule(list(range(50)), horizon_s=50.0)
        assert all(t.at_time <= 50.0 for t in trig)
        assert trig == sorted(trig, key=lambda t: t.at_time)

    def test_system_mtbf_scales_inversely(self):
        gen = MTBFFailureGenerator(1e6)
        assert gen.system_mtbf(1000) == pytest.approx(1e3)

    def test_mean_is_roughly_mtbf(self):
        gen = MTBFFailureGenerator(500.0, seed=7)
        xs = [gen.draw_failure_time() for _ in range(4000)]
        assert sum(xs) / len(xs) == pytest.approx(500.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            MTBFFailureGenerator(0)

    def test_repeated_failures_per_node(self):
        """A horizon spanning many MTBFs draws *several* failures per node
        (the historical bug: one draw per node, silently understating the
        failure rate for long runs)."""
        gen = MTBFFailureGenerator(10.0, seed=5)
        trig = gen.schedule([0, 1], horizon_s=100.0)
        per_node = {n: sum(1 for t in trig if t.node_id == n) for n in (0, 1)}
        assert all(c >= 2 for c in per_node.values())

    def test_max_failures_per_node_cap(self):
        gen = MTBFFailureGenerator(1.0, seed=5)
        trig = gen.schedule([0, 1, 2], horizon_s=1000.0, max_failures_per_node=3)
        for n in (0, 1, 2):
            assert sum(1 for t in trig if t.node_id == n) == 3

    def test_per_node_times_strictly_increase(self):
        gen = MTBFFailureGenerator(5.0, seed=9)
        trig = gen.schedule([0], horizon_s=60.0)
        times = [t.at_time for t in trig]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_schedule_deterministic(self):
        a = MTBFFailureGenerator(10.0, seed=4).schedule([0, 1], horizon_s=80.0)
        b = MTBFFailureGenerator(10.0, seed=4).schedule([0, 1], horizon_s=80.0)
        assert a == b
