"""Live topology costs: cross-rack messages must cost more virtual time."""

import numpy as np
import pytest

from repro.sim import Cluster, Job, Topology


def _exchange_makespan(pairs, topology=None, n_ranks=4):
    """Each pair exchanges a large message; return the makespan."""

    def main(ctx):
        comm = ctx.world
        r = comm.rank
        for a, b in pairs:
            if r == a:
                comm.send(np.zeros(2**20), b, tag=7)
            elif r == b:
                comm.recv(a, tag=7)
        return ctx.clock

    cluster = Cluster(n_ranks)
    res = Job(
        cluster, main, n_ranks, procs_per_node=1, topology=topology
    ).run()
    assert res.completed, res.rank_errors
    return res.makespan


class TestLiveTopologyCosts:
    def test_cross_rack_slower_than_intra_rack(self):
        topo = Topology(nodes_per_rack=2, inter_rack_bw_factor=0.25)
        intra = _exchange_makespan([(0, 1)], topology=topo)
        cross = _exchange_makespan([(0, 2)], topology=topo)
        assert cross > 2 * intra

    def test_no_topology_means_uniform(self):
        a = _exchange_makespan([(0, 1)])
        b = _exchange_makespan([(0, 2)])
        assert a == pytest.approx(b)

    def test_factor_one_is_noop(self):
        topo = Topology(nodes_per_rack=2, inter_rack_bw_factor=1.0)
        with_topo = _exchange_makespan([(0, 2)], topology=topo)
        without = _exchange_makespan([(0, 2)])
        assert with_topo == pytest.approx(without)

    def test_stencil_placement_sensitivity(self):
        """A halo-exchange kernel runs measurably faster when neighbouring
        strips sit in the same rack — the §3.3 performance force, live."""
        from repro.apps import StencilConfig, stencil_main

        cfg = StencilConfig(nx=256, ny_per_rank=4, steps=10, ckpt_every=1000)
        topo = Topology(nodes_per_rack=4, inter_rack_bw_factor=0.1)

        def run(ranklist):
            cluster = Cluster(8)
            res = Job(
                cluster,
                stencil_main,
                8,
                args=(cfg,),
                procs_per_node=1,
                ranklist=ranklist,
                topology=topo,
            ).run()
            assert res.completed, res.rank_errors
            return res.makespan

        neighbours_colocated = list(range(8))  # strips 0-3 rack 0, 4-7 rack 1
        neighbours_split = [0, 4, 1, 5, 2, 6, 3, 7]  # every halo crosses racks
        assert run(neighbours_split) > run(neighbours_colocated)
