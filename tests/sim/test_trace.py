"""Tests for virtual-time event tracing."""

import pytest

from repro.sim import (
    OPEN_SPAN_DURATION,
    Cluster,
    Job,
    Trace,
    phase_spans,
    render_timeline,
    span_stats,
)


def traced_run(main, n_ranks=4):
    trace = Trace()
    cluster = Cluster(n_ranks)
    res = Job(cluster, main, n_ranks, procs_per_node=1, trace=trace).run()
    assert res.completed, res.rank_errors
    return trace


class TestTrace:
    def test_phases_recorded_with_clocks(self):
        def main(ctx):
            ctx.phase("a")
            ctx.elapse(1.0)
            ctx.phase("b")

        trace = traced_run(main)
        assert len(trace) == 8  # 2 phases x 4 ranks
        for r in range(4):
            events = trace.by_rank(r)
            assert [e.label for e in events] == ["a", "b"]
            assert events[1].clock - events[0].clock == pytest.approx(1.0)

    def test_no_trace_by_default(self):
        cluster = Cluster(2)
        res = Job(
            cluster, lambda ctx: ctx.phase("x"), 2, procs_per_node=1
        ).run()
        assert res.completed  # phase without a trace must not crash

    def test_labels(self):
        def main(ctx):
            ctx.phase("zz")
            ctx.phase("aa")

        trace = traced_run(main, n_ranks=1)
        assert trace.labels() == ["aa", "zz"]


class TestSpans:
    def _trace(self):
        def main(ctx):
            for i in range(3):
                ctx.phase("work.begin")
                ctx.elapse(0.5 + 0.25 * ctx.rank)
                ctx.phase("work.done")

        return traced_run(main, n_ranks=2)

    def test_pairing(self):
        spans = phase_spans(self._trace(), "work.begin", "work.done")
        assert len(spans) == 6  # 3 spans x 2 ranks
        for rank, start, duration in spans:
            assert duration == pytest.approx(0.5 + 0.25 * rank)

    def test_rank_filter(self):
        spans = phase_spans(self._trace(), "work.begin", "work.done", rank=1)
        assert len(spans) == 3
        assert all(r == 1 for r, _, _ in spans)

    def test_stats(self):
        spans = phase_spans(self._trace(), "work.begin", "work.done")
        stats = span_stats(spans)
        assert stats["count"] == 6
        assert stats["min"] == pytest.approx(0.5)
        assert stats["max"] == pytest.approx(0.75)

    def test_stats_empty(self):
        assert span_stats([]) == {
            "count": 0,
            "min": 0.0,
            "mean": 0.0,
            "max": 0.0,
            "open": 0,
        }

    def test_unmatched_begin_reported_open(self):
        def main(ctx):
            ctx.phase("x.begin")  # never closed (e.g. the rank died here)

        trace = traced_run(main, n_ranks=1)
        spans = phase_spans(trace, "x.begin", "x.done")
        assert spans == [(0, 0.0, OPEN_SPAN_DURATION)]
        stats = span_stats(spans)
        assert stats["count"] == 0  # open spans never enter the aggregates
        assert stats["open"] == 1

    def test_rebegin_reports_prior_open(self):
        def main(ctx):
            ctx.phase("x.begin")  # interrupted: begun again without a done
            ctx.elapse(1.0)
            ctx.phase("x.begin")
            ctx.elapse(0.5)
            ctx.phase("x.done")

        trace = traced_run(main, n_ranks=1)
        spans = phase_spans(trace, "x.begin", "x.done")
        assert (0, 0.0, OPEN_SPAN_DURATION) in spans
        assert (0, 1.0, 0.5) in spans
        stats = span_stats(spans)
        assert stats["count"] == 1 and stats["open"] == 1
        assert stats["mean"] == pytest.approx(0.5)


class TestTimeline:
    def test_renders_rows_per_rank(self):
        def main(ctx):
            ctx.phase("alpha")
            ctx.elapse(1.0)
            ctx.phase("beta")

        out = render_timeline(traced_run(main, n_ranks=3))
        lines = out.splitlines()
        assert lines[0].startswith("r0")
        assert sum(1 for l in lines if l.startswith("r")) == 3
        assert "a=alpha" in out and "b=beta" in out

    def test_empty_trace(self):
        assert render_timeline(Trace()) == "(empty trace)"


class TestCheckpointTracing:
    def test_live_checkpoint_durations_measured(self):
        """A traced SKT-style run yields measurable ckpt.begin->done spans
        in virtual time (how Fig. 10 style breakdowns are obtained live)."""
        from repro.ckpt import CheckpointManager

        def app(ctx):
            mgr = CheckpointManager(ctx, ctx.world, group_size=4, method="self")
            a = mgr.alloc("d", 8192)
            mgr.commit()
            mgr.try_restore()
            for it in range(4):
                a += 1.0
                ctx.compute(1e9)
                mgr.local["it"] = it
                mgr.checkpoint()
            return True

        trace = Trace()
        cluster = Cluster(4)
        res = Job(cluster, app, 4, procs_per_node=1, trace=trace).run()
        assert res.completed
        spans = phase_spans(trace, "ckpt.begin", "ckpt.done")
        stats = span_stats(spans)
        assert stats["count"] == 16  # 4 checkpoints x 4 ranks
        assert stats["min"] > 0
