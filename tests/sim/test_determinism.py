"""Virtual-time determinism: results and clocks must not depend on the
host's thread scheduling.

Collectives synchronize every participant to max(entry clocks) + cost, and
point-to-point channels are FIFO with arrival times fixed by the sender's
program order, so a job's virtual makespan (and of course its data) is a
pure function of the program — repeated runs must agree to the bit.
"""

import numpy as np

from repro.hpl import HPLConfig, SKTConfig, hpl_main, skt_hpl_main
from repro.sim import Cluster, Job


def _repeat(build_job, times=3):
    outs = []
    for _ in range(times):
        outs.append(build_job().run())
    return outs


class TestDeterminism:
    def test_hpl_makespan_bit_identical(self):
        cfg = HPLConfig(n=64, nb=8, p=2, q=4)

        def build():
            return Job(
                Cluster(8), lambda ctx: hpl_main(ctx, cfg), 8, procs_per_node=1
            )

        runs = _repeat(build)
        assert len({r.makespan for r in runs}) == 1
        for r in runs[1:]:
            np.testing.assert_array_equal(
                r.rank_results[0].x, runs[0].rank_results[0].x
            )

    def test_per_rank_clocks_identical(self):
        cfg = HPLConfig(n=48, nb=8, p=2, q=2)

        def build():
            return Job(
                Cluster(4), lambda ctx: hpl_main(ctx, cfg), 4, procs_per_node=1
            )

        a, b = _repeat(build, times=2)
        assert a.rank_clocks == b.rank_clocks

    def test_skt_checkpointed_run_deterministic(self):
        cfg = HPLConfig(n=64, nb=8, p=2, q=4)
        scfg = SKTConfig(hpl=cfg, method="self", group_size=4, interval_panels=2)

        def build():
            return Job(Cluster(8), skt_hpl_main, 8, args=(scfg,), procs_per_node=1)

        runs = _repeat(build)
        spans = {r.makespan for r in runs}
        assert len(spans) == 1
        encodes = {r.rank_results[0].ckpt_encode_s for r in runs}
        assert len(encodes) == 1

    def test_mixed_pt2pt_collective_deterministic(self):
        def ring(ctx):
            comm = ctx.world
            r, p = comm.rank, comm.size
            acc = 0.0
            for i in range(10):
                comm.send(np.full(64, float(r + i)), (r + 1) % p, tag=i)
                acc += float(comm.recv((r - 1) % p, tag=i)[0])
                comm.allreduce(np.array([acc]))
            return (acc, ctx.clock)

        outs = []
        for _ in range(3):
            res = Job(Cluster(8), ring, 8, procs_per_node=1).run()
            assert res.completed
            outs.append(tuple(sorted(res.rank_results.items())))
        assert outs[0] == outs[1] == outs[2]
