"""Error-path and payload-variety tests for the communicator."""

import numpy as np
import pytest

from repro.sim import Cluster, Job, ReduceOp, SimError


def run(main, n_ranks=4, **kw):
    cl = Cluster(n_ranks)
    res = Job(cl, main, n_ranks, procs_per_node=1, **kw).run()
    return res


class TestErrorPaths:
    def test_scatter_wrong_length_raises(self):
        def main(ctx):
            comm = ctx.world
            items = [1, 2] if comm.rank == 0 else None  # too short for 4
            try:
                comm.scatter(items, root=0)
            except Exception:
                return "raised"
            return "ok"

        res = run(main)
        # the compute callback raises in the completing rank; the job fails
        assert not res.completed or "raised" in res.rank_results.values()

    def test_alltoall_wrong_length_rejected_locally(self):
        def main(ctx):
            with pytest.raises(SimError):
                ctx.world.alltoall([1, 2])  # needs size items
            ctx.world.barrier()
            return True

        assert run(main).completed

    def test_comm_use_outside_rank_thread_rejected(self):
        cl = Cluster(1)
        job = Job(cl, lambda ctx: None, 1, procs_per_node=1)
        job.run()
        with pytest.raises(RuntimeError, match="no RankContext"):
            _ = job.world.rank


class TestPayloadVariety:
    @pytest.mark.parametrize(
        "payload",
        [
            42,
            3.14,
            "string",
            b"bytes",
            None,
            {"nested": {"dict": [1, 2]}},
            (1, "two", 3.0),
            np.arange(6).reshape(2, 3),
            np.array([], dtype=np.float32),
            np.float32(1.5),
        ],
        ids=lambda p: type(p).__name__ + (str(getattr(p, "shape", "")) or ""),
    )
    def test_roundtrip_many_types(self, payload):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                comm.send(payload, 1)
                return True
            got = comm.recv(0)
            if isinstance(payload, np.ndarray):
                np.testing.assert_array_equal(got, payload)
            elif isinstance(payload, np.floating):
                assert got == payload
            else:
                assert got == payload
            return True

        res = run(main, n_ranks=2)
        assert res.completed, res.rank_errors

    def test_fortran_order_array(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                a = np.asfortranarray(np.arange(12).reshape(3, 4))
                comm.send(a, 1)
            else:
                got = comm.recv(0)
                np.testing.assert_array_equal(got, np.arange(12).reshape(3, 4))
            return True

        assert run(main, n_ranks=2).completed

    def test_reduce_preserves_dtype(self):
        def main(ctx):
            comm = ctx.world
            out = comm.allreduce(np.ones(4, dtype=np.int32), ReduceOp.SUM)
            assert out.dtype == np.int32
            assert np.all(out == comm.size)
            return True

        assert run(main).completed
