"""Tests for non-blocking point-to-point (isend/irecv/probe)."""

import numpy as np
import pytest

from repro.sim import Cluster, Job


def run(main, n_ranks=2):
    cl = Cluster(n_ranks)
    res = Job(cl, main, n_ranks, procs_per_node=1).run()
    assert res.completed, res.rank_errors
    return res


class TestNonBlocking:
    def test_isend_irecv_roundtrip(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                req = comm.isend(np.arange(8), 1, tag=3)
                req.wait()
            else:
                req = comm.irecv(0, tag=3)
                got = req.wait()
                assert np.all(got == np.arange(8))
            return True

        run(main)

    def test_isend_buffer_reusable_immediately(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                buf = np.ones(4)
                req = comm.isend(buf, 1)
                buf[:] = -1.0  # mutate before wait: must not affect payload
                req.wait()
            else:
                assert np.all(comm.irecv(0).wait() == 1.0)
            return True

        run(main)

    def test_overlap_pattern(self):
        """Post receives early, compute, then complete — the overlap idiom."""

        def main(ctx):
            comm = ctx.world
            r, p = comm.rank, comm.size
            reqs = [comm.irecv((r - 1) % p, tag=9)]
            comm.isend(r * 10, (r + 1) % p, tag=9).wait()
            ctx.compute(1e8)  # overlapped work
            got = reqs[0].wait()
            assert got == ((r - 1) % p) * 10
            return True

        run(main, n_ranks=4)

    def test_request_test_and_probe(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                comm.world_rank(0)  # no-op touch
                comm.barrier()  # peer sends after this barrier
                req = comm.irecv(1, tag=5)
                # the message was sent before the barrier completed on rank 1?
                # not guaranteed; wait() must work regardless of test()
                req.wait()
                assert comm.probe(1, tag=5) is False
            else:
                comm.send("x", 0, tag=5)
                comm.barrier()
            return True

        run(main)

    def test_wait_idempotent(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                comm.send(42, 1)
            else:
                req = comm.irecv(0)
                assert req.wait() == 42
                assert req.wait() == 42  # second wait returns cached value
                assert req.test()
            return True

        run(main)

    def test_send_request_test_always_true(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                req = comm.isend(1, 1)
                assert req.test()
                req.wait()
            else:
                comm.recv(0)
            return True

        run(main)

    def test_isend_bad_dest(self):
        def main(ctx):
            with pytest.raises(ValueError):
                ctx.world.isend(1, dest=99)
            return True

        run(main, n_ranks=1)

    def test_probe_empty(self):
        def main(ctx):
            assert ctx.world.probe(0, tag=77) is False
            return True

        run(main, n_ranks=1)
