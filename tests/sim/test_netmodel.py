"""Tests for the alpha-beta network cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import NetworkModel, NetworkParams


@pytest.fixture
def model():
    return NetworkModel(NetworkParams(latency_s=1e-6, bandwidth_Bps=1e9))


class TestParams:
    def test_defaults_valid(self):
        NetworkParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_s": -1e-6},
            {"bandwidth_Bps": 0},
            {"procs_per_port": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            NetworkParams(**kwargs)

    def test_port_sharing_divides_bandwidth(self):
        p = NetworkParams(bandwidth_Bps=24e9, procs_per_port=24)
        assert p.per_process_bandwidth_Bps == pytest.approx(1e9)


class TestP2P:
    def test_latency_plus_bandwidth(self, model):
        assert model.p2p_time(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_contended_is_slower(self):
        m = NetworkModel(NetworkParams(bandwidth_Bps=1e9, procs_per_port=4))
        assert m.p2p_time(10**6, contended=True) > m.p2p_time(10**6)

    def test_zero_bytes_costs_latency(self, model):
        assert model.p2p_time(0) == pytest.approx(1e-6)


class TestCollectives:
    def test_bcast_log_scaling(self, model):
        assert model.bcast_time(1000, 16) == pytest.approx(
            4 * model.p2p_time(1000)
        )

    def test_single_proc_collectives_free(self, model):
        assert model.bcast_time(1000, 1) == 0.0
        assert model.allgather_time(1000, 1) == 0.0
        assert model.alltoall_time(1000, 1) == 0.0

    def test_allreduce_is_reduce_plus_bcast(self, model):
        assert model.allreduce_time(1000, 8) == pytest.approx(
            model.reduce_time(1000, 8) + model.bcast_time(1000, 8)
        )

    def test_gather_linear_in_ranks(self, model):
        assert model.gather_time(100, 9) == pytest.approx(8 * model.p2p_time(100))

    def test_barrier_latency_only(self, model):
        t4, t16 = model.barrier_time(4), model.barrier_time(16)
        assert 0 < t4 < t16 < 1e-3

    @given(
        nbytes=st.integers(min_value=8, max_value=2**30),
        nprocs=st.integers(min_value=2, max_value=4096),
    )
    def test_costs_positive_and_finite(self, nbytes, nprocs):
        m = NetworkModel(NetworkParams())
        for fn in (m.bcast_time, m.reduce_time):
            t = fn(nbytes, nprocs)
            assert 0 < t < 1e6


class TestStripeEncode:
    def test_grows_slowly_with_group_size(self, model):
        """Fig. 13: encode time grows slowly with group size."""
        m = 512 * 2**20
        t4 = model.stripe_encode_time(m, 4)
        t8 = model.stripe_encode_time(m, 8)
        t16 = model.stripe_encode_time(m, 16)
        assert t4 < t8 < t16
        # doubling the group size must not come close to doubling the time
        assert t16 / t4 < 1.5

    def test_port_sharing_dominates_group_size(self):
        """Fig. 13: Tianhe-2 encodes slower than Tianhe-1A despite smaller
        checkpoints, because 24 (vs 12) processes share one port."""
        th1a = NetworkModel(
            NetworkParams(bandwidth_Bps=6.9e9, procs_per_port=12)
        )
        th2 = NetworkModel(NetworkParams(bandwidth_Bps=7.1e9, procs_per_port=24))
        m1, m2 = 1.5 * 2**30, 1.1 * 2**30  # TH-1A ckpt even larger
        assert th2.stripe_encode_time(m2, 8) > th1a.stripe_encode_time(m1, 8)

    def test_single_root_worse_than_stripes(self, model):
        """The stripe layout avoids the root bottleneck (paper §2.1)."""
        m = 256 * 2**20
        for n in (4, 8, 16):
            assert model.single_root_encode_time(m, n) > model.stripe_encode_time(
                m, n
            ) / n  # per-root comparison
            # and N sequential single-root reduces are far worse
            assert n * model.single_root_encode_time(m, n) > model.stripe_encode_time(m, n)

    def test_degenerate_group(self, model):
        assert model.stripe_encode_time(1000, 1) == 0.0
