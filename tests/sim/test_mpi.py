"""Tests for the MPI-like communicator: pt2pt, collectives, split, clocks."""

import numpy as np
import pytest

from repro.sim import Cluster, Job, ReduceOp


def run(main, n_ranks=4, procs_per_node=2, n_nodes=4, **job_kwargs):
    cl = Cluster(n_nodes)
    job = Job(cl, main, n_ranks, procs_per_node=procs_per_node, **job_kwargs)
    res = job.run()
    assert res.completed, res.rank_errors
    return res


class TestPointToPoint:
    def test_ring_exchange(self):
        def main(ctx):
            comm = ctx.world
            r, p = comm.rank, comm.size
            comm.send(np.full(8, r, dtype=np.int64), (r + 1) % p, tag=5)
            got = comm.recv((r - 1) % p, tag=5)
            assert np.all(got == (r - 1) % p)
            return True

        run(main)

    def test_payload_isolation(self):
        """A received array must not alias the sender's buffer."""

        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                buf = np.ones(4)
                comm.send(buf, 1)
                buf[:] = 99.0  # mutate after send
            elif comm.rank == 1:
                got = comm.recv(0)
                assert np.all(got == 1.0)
            return True

        run(main, n_ranks=2)

    def test_tag_matching(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
            elif comm.rank == 1:
                assert comm.recv(0, tag=2) == "b"
                assert comm.recv(0, tag=1) == "a"
            return True

        run(main, n_ranks=2)

    def test_fifo_per_channel(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, 1)
            elif comm.rank == 1:
                got = [comm.recv(0) for _ in range(5)]
                assert got == list(range(5))
            return True

        run(main, n_ranks=2)

    def test_sendrecv(self):
        def main(ctx):
            comm = ctx.world
            r, p = comm.rank, comm.size
            got = comm.sendrecv(r, dest=(r + 1) % p, source=(r - 1) % p)
            assert got == (r - 1) % p
            return True

        run(main)

    def test_recv_advances_clock(self):
        def main(ctx):
            comm = ctx.world
            if comm.rank == 0:
                ctx.elapse(1.0)
                comm.send(np.zeros(1000), 1)
            elif comm.rank == 1:
                comm.recv(0)
                assert ctx.clock >= 1.0  # receive completes after the send
            return True

        run(main, n_ranks=2)

    def test_bad_dest_rejected(self):
        def main(ctx):
            if ctx.world.rank == 0:
                with pytest.raises(ValueError):
                    ctx.world.send(1, dest=99)
            return True

        run(main, n_ranks=2)


class TestCollectives:
    def test_bcast(self):
        def main(ctx):
            comm = ctx.world
            data = {"v": 42} if comm.rank == 1 else None
            got = comm.bcast(data, root=1)
            assert got == {"v": 42}
            return True

        run(main)

    def test_reduce_sum_root_only(self):
        def main(ctx):
            comm = ctx.world
            out = comm.reduce(np.full(4, float(comm.rank)), ReduceOp.SUM, root=2)
            if comm.rank == 2:
                assert np.all(out == sum(range(comm.size)))
            else:
                assert out is None
            return True

        run(main)

    def test_allreduce_bxor(self):
        def main(ctx):
            comm = ctx.world
            v = np.array([1 << comm.rank], dtype=np.uint64)
            out = comm.allreduce(v, ReduceOp.BXOR)
            assert out[0] == (1 << comm.size) - 1
            return True

        run(main)

    def test_allreduce_max_min(self):
        def main(ctx):
            comm = ctx.world
            r = float(comm.rank)
            assert comm.allreduce(np.array([r]), ReduceOp.MAX)[0] == comm.size - 1
            assert comm.allreduce(np.array([r]), ReduceOp.MIN)[0] == 0.0
            return True

        run(main)

    def test_allreduce_obj_maxloc(self):
        """The HPL pivot-search pattern."""

        def main(ctx):
            comm = ctx.world
            mine = (abs(3.0 - comm.rank), comm.rank)  # rank 3 has max... min value
            best = comm.allreduce_obj(mine, lambda a, b: max(a, b))
            assert best[1] == 0  # rank 0 holds value 3.0, the max
            return True

        run(main)

    def test_gather_allgather(self):
        def main(ctx):
            comm = ctx.world
            out = comm.gather(comm.rank * 10, root=0)
            if comm.rank == 0:
                assert out == [0, 10, 20, 30]
            else:
                assert out is None
            assert comm.allgather(comm.rank) == [0, 1, 2, 3]
            return True

        run(main)

    def test_scatter(self):
        def main(ctx):
            comm = ctx.world
            items = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            got = comm.scatter(items, root=0)
            assert got == comm.rank**2
            return True

        run(main)

    def test_alltoall(self):
        def main(ctx):
            comm = ctx.world
            out = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
            assert out == [f"{s}->{comm.rank}" for s in range(comm.size)]
            return True

        run(main)

    def test_barrier_synchronizes_clocks(self):
        def main(ctx):
            comm = ctx.world
            ctx.elapse(float(comm.rank))  # skewed clocks
            comm.barrier()
            assert ctx.clock >= comm.size - 1
            return True

        run(main)

    def test_collective_clock_sync(self):
        def main(ctx):
            comm = ctx.world
            ctx.elapse(2.0 if comm.rank == 0 else 0.0)
            comm.allreduce(np.zeros(8))
            assert ctx.clock >= 2.0  # everyone waits for the slowest
            return True

        run(main)

    def test_back_to_back_collectives(self):
        def main(ctx):
            comm = ctx.world
            for i in range(20):
                s = comm.allreduce(np.array([1.0]))
                assert s[0] == comm.size
            return True

        run(main, n_ranks=8, n_nodes=4)

    def test_bcast_deep_copies_to_peers(self):
        def main(ctx):
            comm = ctx.world
            arr = comm.bcast(np.zeros(4), root=0)
            arr += comm.rank  # each rank's copy is private
            total = comm.allreduce(arr, ReduceOp.SUM)
            assert total[0] == sum(range(comm.size))
            return True

        run(main)


class TestSplit:
    def test_split_by_parity(self):
        def main(ctx):
            comm = ctx.world
            sub = comm.split(color=comm.rank % 2)
            assert sub.size == comm.size // 2
            assert sub.members == [
                r for r in range(comm.size) if r % 2 == comm.rank % 2
            ]
            s = sub.allreduce(np.array([float(comm.rank)]))
            expect = sum(r for r in range(comm.size) if r % 2 == comm.rank % 2)
            assert s[0] == expect
            return True

        run(main, n_ranks=8, n_nodes=4)

    def test_split_key_ordering(self):
        def main(ctx):
            comm = ctx.world
            sub = comm.split(color=0, key=-comm.rank)  # reversed order
            assert sub.rank == comm.size - 1 - comm.rank
            return True

        run(main)

    def test_nested_split(self):
        def main(ctx):
            comm = ctx.world
            row = comm.split(color=comm.rank // 2)
            col = comm.split(color=comm.rank % 2)
            assert row.size == 2 and col.size == 2
            row.barrier()
            col.barrier()
            return True

        run(main)


class TestVirtualTime:
    def test_compute_charges_core_speed(self):
        def main(ctx):
            ctx.compute(ctx.node.spec.flops_per_core)  # exactly 1s of work
            assert ctx.clock == pytest.approx(1.0)
            return True

        run(main, n_ranks=1, procs_per_node=1, n_nodes=1)

    def test_efficiency_scales_time(self):
        def main(ctx):
            ctx.compute(ctx.node.spec.flops_per_core, efficiency=0.5)
            assert ctx.clock == pytest.approx(2.0)
            return True

        run(main, n_ranks=1, procs_per_node=1, n_nodes=1)

    def test_negative_elapse_rejected(self):
        def main(ctx):
            with pytest.raises(ValueError):
                ctx.elapse(-1.0)
            return True

        run(main, n_ranks=1, procs_per_node=1, n_nodes=1)


class TestPayloadNbytes:
    """Wire-size accounting, incl. the dict-key undercount fix."""

    def test_array_uses_nbytes(self):
        from repro.sim.mpi import _payload_nbytes

        assert _payload_nbytes(np.zeros(16, dtype=np.float64)) == 128

    def test_dict_charges_keys_and_values(self):
        from repro.sim.mpi import _payload_nbytes

        arr = np.zeros(8, dtype=np.float64)  # 64 bytes
        d = {"epoch": arr}
        # 5 bytes of key + 64 bytes of value — the key must be charged
        assert _payload_nbytes(d) == len("epoch") + arr.nbytes

    def test_metadata_heavy_dict_not_undercounted(self):
        from repro.sim.mpi import _payload_nbytes

        meta = {f"flag.{i:04d}": 0 for i in range(100)}
        only_values = 100 * 64  # _SMALL_OBJ_BYTES per int value
        assert _payload_nbytes(meta) > only_values

    def test_string_payload_charged_by_length(self):
        from repro.sim.mpi import _payload_nbytes

        assert _payload_nbytes("x" * 256) == 256

    def test_nested_containers(self):
        from repro.sim.mpi import _payload_nbytes

        inner = np.zeros(4, dtype=np.float64)  # 32 bytes
        assert _payload_nbytes([{"a": inner}, {"b": inner}]) == 2 * (1 + 32)
