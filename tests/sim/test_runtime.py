"""Tests for job execution, abort semantics, and failure delivery."""

import pytest

from repro.sim import (
    Cluster,
    FailurePlan,
    Job,
    JobAbortedError,
    NodeFailedError,
    PhaseTrigger,
    SimError,
    TimeTrigger,
)
from repro.sim.runtime import RankExit


class TestBasicExecution:
    def test_results_collected_per_rank(self):
        cl = Cluster(2)
        res = Job(cl, lambda ctx: ctx.rank * 2, 4, procs_per_node=2).run()
        assert res.completed
        assert res.rank_results == {0: 0, 1: 2, 2: 4, 3: 6}

    def test_args_forwarded(self):
        cl = Cluster(1)
        res = Job(cl, lambda ctx, a, b: a + b, 2, args=(3, 4), procs_per_node=2).run()
        assert res.rank_results[0] == 7

    def test_rank_exit_value(self):
        def main(ctx):
            raise RankExit("early")

        cl = Cluster(1)
        res = Job(cl, main, 2, procs_per_node=2).run()
        assert res.completed
        assert res.rank_results == {0: "early", 1: "early"}

    def test_makespan_is_slowest_rank(self):
        def main(ctx):
            ctx.elapse(float(ctx.rank))
            return None

        cl = Cluster(4)
        res = Job(cl, main, 4, procs_per_node=1).run()
        assert res.makespan == pytest.approx(3.0)

    def test_user_exception_raises_simerror(self):
        def main(ctx):
            if ctx.rank == 1:
                raise ValueError("user bug")
            ctx.world.barrier()

        cl = Cluster(2)
        with pytest.raises(SimError, match="crashed"):
            Job(cl, main, 2, procs_per_node=1).run()

    def test_ranklist_validation(self):
        cl = Cluster(2)
        with pytest.raises(ValueError):
            Job(cl, lambda ctx: None, 2, ranklist=[0])
        cl.fail_node(1)
        with pytest.raises(SimError):
            Job(cl, lambda ctx: None, 2, ranklist=[0, 1])


class TestFailureDelivery:
    def _blocked_app(self, ctx):
        ctx.phase("work")
        ctx.world.barrier()  # survivors block here when a peer dies
        ctx.phase("after")
        return "done"

    def test_phase_trigger_aborts_world(self):
        cl = Cluster(4)
        plan = FailurePlan([PhaseTrigger(node_id=2, phase="work")])
        res = Job(cl, self._blocked_app, 4, procs_per_node=1, failure_plan=plan).run()
        assert res.aborted
        assert res.failed_nodes == [2]
        assert not cl.node(2).alive
        kinds = {r: type(e) for r, e in res.rank_errors.items()}
        assert kinds[2] is NodeFailedError
        assert all(k is JobAbortedError for r, k in kinds.items() if r != 2)

    def test_time_trigger(self):
        def main(ctx):
            for _ in range(100):
                ctx.elapse(0.1)
                ctx.world.barrier()
            return True

        cl = Cluster(2)
        plan = FailurePlan([TimeTrigger(node_id=1, at_time=2.05)])
        res = Job(cl, main, 2, procs_per_node=1, failure_plan=plan).run()
        assert res.aborted
        assert cl.node(1).failed_at == pytest.approx(2.1, abs=0.2)

    def test_shm_survives_on_healthy_nodes_only(self):
        def main(ctx):
            seg = ctx.shm_create(f"state.{ctx.rank}", 4)
            seg.array[:] = ctx.rank
            ctx.world.barrier()  # all segments exist before anyone can die
            ctx.phase("work")
            ctx.world.barrier()

        cl = Cluster(4)
        plan = FailurePlan([PhaseTrigger(node_id=1, phase="work")])
        Job(cl, main, 4, procs_per_node=1, failure_plan=plan).run()
        assert cl.node(0).shm.exists("state.0")
        assert cl.node(2).shm.exists("state.2")
        assert not cl.node(1).shm.exists("state.1")  # lost with the node

    def test_co_resident_ranks_die_together(self):
        def main(ctx):
            ctx.phase("work")
            ctx.world.barrier()

        cl = Cluster(2)
        plan = FailurePlan([PhaseTrigger(node_id=0, phase="work")])
        res = Job(cl, main, 4, procs_per_node=2, failure_plan=plan).run()
        assert res.aborted
        dead_ranks = {
            r for r, e in res.rank_errors.items() if isinstance(e, NodeFailedError)
        }
        assert dead_ranks == {0, 1}  # both ranks of node 0

    def test_abort_without_failure(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.job.abort()
                ctx.phase("x")
            else:
                ctx.world.barrier()

        cl = Cluster(2)
        res = Job(cl, main, 2, procs_per_node=1).run()
        assert res.aborted and res.failed_nodes == []

    def test_restart_attaches_to_prior_shm(self):
        """The core restart pattern: healthy-node SHM persists across jobs."""

        def writer(ctx):
            ctx.shm_create(f"d.{ctx.rank}", 4).array[:] = 7.0

        def reader(ctx):
            return float(ctx.shm_attach(f"d.{ctx.rank}").array[0])

        cl = Cluster(2)
        Job(cl, writer, 2, procs_per_node=1).run()
        res = Job(cl, reader, 2, procs_per_node=1).run()
        assert res.rank_results == {0: 7.0, 1: 7.0}

    def test_deadlock_watchdog(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.world.recv(1)  # never sent
            return True

        cl = Cluster(2)
        res = Job(
            cl, main, 2, procs_per_node=1, deadlock_timeout_s=0.3
        ).run()
        assert not res.completed
        assert isinstance(res.rank_errors[0], SimError)


class TestPhaseLog:
    def test_phases_recorded(self):
        def main(ctx):
            ctx.phase("a")
            ctx.phase("b")
            return ctx.phase_log

        cl = Cluster(1)
        res = Job(cl, main, 1, procs_per_node=1).run()
        assert res.rank_results[0] == ["a", "b"]
