"""Tests for rack topology, correlated rack failures, and the rack-spread
group mapping (the paper's §3.3 future-work exploration)."""

import numpy as np
import pytest

from repro.ckpt import CheckpointManager, partition_groups
from repro.sim import Cluster, Job, SimError, Topology, UnrecoverableError, fail_rack


@pytest.fixture
def topo():
    return Topology(nodes_per_rack=4)


class TestTopology:
    def test_rack_of(self, topo):
        assert [topo.rack_of(i) for i in (0, 3, 4, 11)] == [0, 0, 1, 2]

    def test_nodes_in_rack_clipped(self, topo):
        assert topo.nodes_in_rack(1, n_nodes=6) == [4, 5]

    def test_n_racks(self, topo):
        assert topo.n_racks(8) == 2
        assert topo.n_racks(9) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(nodes_per_rack=0)
        with pytest.raises(ValueError):
            Topology(nodes_per_rack=4, inter_rack_bw_factor=0.0)

    def test_group_rack_spread_metric(self, topo):
        ranklist = list(range(8))  # rank r on node r
        assert topo.group_rack_spread([0, 1, 2, 3], ranklist) == 0.25
        assert topo.group_rack_spread([0, 4], ranklist) == 1.0

    def test_max_members_in_one_rack(self, topo):
        ranklist = list(range(8))
        assert topo.max_members_in_one_rack([0, 1, 2, 3], ranklist) == 4
        assert topo.max_members_in_one_rack([0, 1, 4, 5], ranklist) == 2

    def test_encode_bw_factor_bounds(self, topo):
        ranklist = list(range(8))
        intra = topo.encode_bw_factor([0, 1, 2, 3], ranklist)
        spread = topo.encode_bw_factor([0, 4], ranklist)
        assert intra == 1.0  # all in one rack: full port speed
        assert spread == pytest.approx(topo.inter_rack_bw_factor)
        mixed = topo.encode_bw_factor([0, 1, 4, 5], ranklist)
        assert spread < mixed < intra


class TestRackFailure:
    def test_kills_whole_rack(self, topo):
        cluster = Cluster(8)
        victims = fail_rack(cluster, topo, rack=1)
        assert victims == [4, 5, 6, 7]
        assert cluster.dead_nodes() == [4, 5, 6, 7]
        assert all(cluster.node(i).alive for i in range(4))

    def test_empty_rack_rejected(self, topo):
        cluster = Cluster(8)
        fail_rack(cluster, topo, rack=0)
        with pytest.raises(SimError):
            fail_rack(cluster, topo, rack=0)


class TestRackSpreadMapping:
    def test_groups_cross_racks(self, topo):
        ranklist = list(range(8))
        layout = partition_groups(
            8, 2, strategy="rack-spread", ranklist=ranklist, topology=topo
        )
        for group in layout.groups:
            assert topo.group_rack_spread(group, ranklist) == 1.0

    def test_needs_topology(self):
        with pytest.raises(ValueError, match="topology"):
            partition_groups(8, 2, strategy="rack-spread", ranklist=list(range(8)))

    def test_covers_all_ranks(self, topo):
        layout = partition_groups(
            16, 4, strategy="rack-spread", ranklist=list(range(16)), topology=topo
        )
        assert sorted(r for g in layout.groups for r in g) == list(range(16))

    def test_rack_loss_survival_vs_block_mapping(self, topo):
        """The paper's trade-off, demonstrated live: after a whole-rack
        power-off, rack-spread groups recover; block groups (which
        co-locate a group inside one rack) are unrecoverable."""

        def make_app(strategy):
            def app(ctx):
                mgr = CheckpointManager(
                    ctx,
                    ctx.world,
                    group_size=2,
                    method="self",
                    strategy=strategy,
                    topology=topo,
                )
                a = mgr.alloc("d", 16)
                mgr.commit()
                rep = mgr.try_restore()
                start = rep.local["it"] if rep else 0
                for it in range(start, 4):
                    a += ctx.world.rank + 1
                    if (it + 1) % 2 == 0:
                        mgr.local["it"] = it + 1
                        mgr.checkpoint()
                return a.copy()

            return app

        # rack-spread: every pair spans racks -> a whole-rack loss takes at
        # most one member per group -> recoverable
        cluster = Cluster(8, n_spares=4)
        job = Job(cluster, make_app("rack-spread"), 8, procs_per_node=1)
        assert job.run().completed
        fail_rack(cluster, topo, rack=0)  # nodes 0-3 die together
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, make_app("rack-spread"), 8, ranklist=ranklist).run()
        assert res.completed, res.rank_errors
        for r in range(8):
            assert np.all(res.rank_results[r] == 4 * (r + 1))

        # block mapping: pairs (0,1),(2,3)... co-located in rack 0 -> fatal
        cluster = Cluster(8, n_spares=4)
        job = Job(cluster, make_app("block"), 8, procs_per_node=1)
        assert job.run().completed
        fail_rack(cluster, topo, rack=0)
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, make_app("block"), 8, ranklist=ranklist).run()
        assert not res.completed
        assert any(
            isinstance(e, UnrecoverableError) for e in res.rank_errors.values()
        )
