"""The infra-chaos torture suite: every fault class in
``REPRO_SHARD_FAULTS`` driven end-to-end through the sharded campaign
engine, with artifacts compared against an uninterrupted serial run.

The acceptance bar (docs/CHAOS.md): under kill / zombie / busy / skew
faults the final artifacts are byte-identical to serial; poison-unit
quarantine is the one *documented* degradation (a synthesized
``gave-up`` row), and it must terminate the campaign within the
attempts cap instead of crash-looping.
"""

import os
import subprocess
import sys

import pytest

from repro.chaos import (
    probe_baseline,
    run_kill_matrix,
    selfckpt_scenario,
)
from repro.chaos import bench as chaos_bench
from repro.chaos.report import render_campaign
from repro.shard import (
    QueueCorruptError,
    ShardCampaignError,
    plan_campaign,
    quarantined_ords,
    run_sharded_campaign,
)
from repro.shard.faults import FAULTS_ENV, POISON_EXIT_CODE
from repro.shard.health import is_quarantined
from repro.shard.queue import ShardQueue, queue_path_for

SEED = 11
CFG = dict(
    n_nodes=2, procs_per_node=1, group_size=2, iters=4, ckpt_every=2
)


def scenarios():
    return [selfckpt_scenario(method="self", **CFG)]


def _bench_bytes(matrices):
    return chaos_bench.bench_json(
        chaos_bench.bench_record(matrices, None, None, seed=SEED)
    )


@pytest.fixture(scope="module")
def serial():
    sc = scenarios()[0]
    return [run_kill_matrix(sc, probe=probe_baseline(sc), max_occurrences=1)]


@pytest.fixture(scope="module")
def the_plan():
    """The same plan the driver will freeze — used to pick poison ords."""
    return plan_campaign(
        scenarios(), n_shards=2, seed=SEED, max_occurrences=1
    )


@pytest.fixture(autouse=True)
def no_stray_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)


def run_sharded(out_dir, **kw):
    kw.setdefault("n_shards", 2)
    kw.setdefault("seed", SEED)
    kw.setdefault("max_occurrences", 1)
    kw.setdefault("lease_s", 0.5)
    kw.setdefault("respawn_backoff_s", 0.01)
    return run_sharded_campaign(scenarios(), out_dir=str(out_dir), **kw)


def assert_matches_serial(serial, matrices):
    assert _bench_bytes(matrices) == _bench_bytes(serial)
    assert render_campaign(matrices, None) == render_campaign(serial, None)


class TestKillFaults:
    def test_kill_heals_by_reissue_to_survivors(
        self, serial, tmp_path, monkeypatch
    ):
        """Executor 0 SIGKILLs itself after one unit; with no respawn
        budget the survivors absorb its shards via lease expiry."""
        monkeypatch.setenv(FAULTS_ENV, "kill:after=1,worker=0")
        plan, matrices, _, stats = run_sharded(tmp_path / "out")
        assert stats["done_units"] == plan.n_units
        assert stats["executor_crashes"] >= 1
        assert stats["respawns"] == 0
        assert_matches_serial(serial, matrices)

    def test_respawn_budget_restores_width(
        self, serial, tmp_path, monkeypatch, the_plan
    ):
        """Every executor dies after two units, every time — only the
        supervisor's respawns keep the campaign moving."""
        monkeypatch.setenv(FAULTS_ENV, "kill:after=2,worker=all")
        budget = the_plan.n_units  # generous: ~one respawn per 2 units
        plan, matrices, _, stats = run_sharded(
            tmp_path / "out", respawn=budget
        )
        assert stats["done_units"] == plan.n_units
        assert stats["respawns"] >= 1
        assert_matches_serial(serial, matrices)

    def test_exhausted_budget_names_the_remedy(
        self, serial, tmp_path, monkeypatch
    ):
        """Budget too small: the campaign aborts resumably and the error
        says both how to resume and how to raise the budget."""
        out = tmp_path / "out"
        monkeypatch.setenv(FAULTS_ENV, "kill:after=1,worker=all")
        with pytest.raises(
            ShardCampaignError, match="respawn budget exhausted"
        ) as exc:
            run_sharded(out, respawn=1)
        assert "--resume" in str(exc.value)
        monkeypatch.delenv(FAULTS_ENV)
        plan, matrices, _, stats = run_sharded(out)
        assert stats["done_units"] == plan.n_units
        assert_matches_serial(serial, matrices)


class TestZombieFault:
    def test_zombie_writes_fenced_artifacts_identical(
        self, serial, tmp_path, monkeypatch
    ):
        """Executor 0 stalls past its lease (heartbeat frozen, as under
        SIGSTOP), the shard is re-issued, the zombie revives and keeps
        writing — every write is rejected and the artifacts stay
        byte-identical."""
        monkeypatch.setenv(FAULTS_ENV, "zombie:after=1,worker=0,stall=2.5")
        plan, matrices, _, stats = run_sharded(tmp_path / "out")
        assert stats["done_units"] == plan.n_units
        assert stats["fence_rejections"] >= 1
        assert_matches_serial(serial, matrices)


class TestPoisonFault:
    def test_poison_unit_quarantined_within_cap(
        self, serial, tmp_path, monkeypatch, the_plan
    ):
        """A unit that kills *every* executor that runs it is journaled
        as a synthesized gave-up after at most attempts_cap barren
        re-issues — the campaign terminates instead of crash-looping."""
        victim = the_plan.n_units // 2
        cap = 2
        monkeypatch.setenv(FAULTS_ENV, f"poison:ord={victim},worker=all")
        out = tmp_path / "out"
        plan, matrices, _, stats = run_sharded(
            out, respawn=10, attempts_cap=cap
        )
        assert stats["done_units"] == plan.n_units
        assert stats["quarantined"] == 1
        # ≤ cap barren re-issues (+1 first run that made progress)
        assert stats["executor_crashes"] <= cap + 1
        with ShardQueue(queue_path_for(str(out))) as queue:
            outcomes = queue.outcomes()
        assert quarantined_ords(outcomes) == [victim]
        assert is_quarantined(outcomes[victim])
        assert outcomes[victim].verdict == "gave-up"
        # documented degradation: exactly the poisoned cell diverges
        assert _bench_bytes(matrices) != _bench_bytes(serial)
        clean = {
            ord_: out_
            for ord_, out_ in outcomes.items()
            if ord_ != victim
        }
        assert len(clean) == plan.n_units - 1

    def test_resume_requarantines_to_the_identical_row(
        self, tmp_path, monkeypatch, the_plan
    ):
        """Quarantine provenance is deterministic: killing the campaign
        after a quarantine and resuming keeps the identical journal row
        (no pids, no wallclock in the synthesized outcome)."""
        victim = the_plan.n_units // 2
        monkeypatch.setenv(FAULTS_ENV, f"poison:ord={victim},worker=all")
        out = tmp_path / "out"
        run_sharded(out, respawn=10, attempts_cap=2)
        with ShardQueue(queue_path_for(str(out))) as queue:
            first = queue.outcomes()[victim]
        monkeypatch.delenv(FAULTS_ENV)
        _, matrices, _, stats = run_sharded(out)  # resume: all journaled
        with ShardQueue(queue_path_for(str(out))) as queue:
            assert queue.outcomes()[victim] == first


class TestBusyFault:
    def test_injected_operational_errors_are_absorbed(
        self, serial, tmp_path, monkeypatch
    ):
        """The first queue ops of every executor raise ``database is
        locked``; jittered retry absorbs them all and the campaign never
        notices."""
        monkeypatch.setenv(FAULTS_ENV, "busy:ops=4,worker=all")
        plan, matrices, _, stats = run_sharded(tmp_path / "out")
        assert stats["done_units"] == plan.n_units
        assert stats["executor_crashes"] == 0
        assert_matches_serial(serial, matrices)


class TestSkewFault:
    def test_skewed_executor_clock_is_harmless(
        self, serial, tmp_path, monkeypatch
    ):
        """Executor 0's queue clock runs 30s behind; lease arithmetic
        under the wrong clock must not lose or duplicate work."""
        monkeypatch.setenv(FAULTS_ENV, "skew:delta=-30,worker=0")
        plan, matrices, _, stats = run_sharded(
            tmp_path / "out", lease_s=60.0
        )
        assert stats["done_units"] == plan.n_units
        assert_matches_serial(serial, matrices)


class TestSalvage:
    def _partial_then_corrupt(self, out, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:after=1,worker=all")
        with pytest.raises(ShardCampaignError):
            run_sharded(out)
        monkeypatch.delenv(FAULTS_ENV)
        path = queue_path_for(str(out))
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.seek(max(1024, size // 3))
            f.write(b"\xde\xad\xbe\xef" * 1024)
        return path

    def test_corrupt_queue_refused_without_salvage(
        self, tmp_path, monkeypatch
    ):
        out = tmp_path / "out"
        self._partial_then_corrupt(out, monkeypatch)
        with pytest.raises(QueueCorruptError, match="--salvage"):
            run_sharded(out)

    def test_salvage_rebuilds_and_completes(
        self, serial, tmp_path, monkeypatch
    ):
        out = tmp_path / "out"
        path = self._partial_then_corrupt(out, monkeypatch)
        plan, matrices, _, stats = run_sharded(out, salvage=True)
        assert stats["done_units"] == plan.n_units
        assert_matches_serial(serial, matrices)
        assert os.path.exists(path + ".corrupt")  # moved aside, kept


CLI_FLAGS = [
    "--methods", "self", "--nodes", "2", "--ppn", "1",
    "--group-size", "2", "--iters", "4", "--ckpt-every", "2",
    "--max-occurrences", "1", "--seed", str(SEED), "--no-progress",
]


def cli(*extra, env_extra=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.pop(FAULTS_ENV, None)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", "chaos", *CLI_FLAGS, *extra],
        env=env, capture_output=True, text=True, timeout=300,
    )


class TestCLIExitContract:
    """The exit-code contract documented in docs/CHAOS.md: 0 clean,
    1 findings, 2 infra misuse/corruption, 3 resumable abort."""

    def test_malformed_fault_spec_is_exit_2_not_a_crash_loop(
        self, tmp_path
    ):
        res = cli(
            "--shards", "2", "--out", str(tmp_path / "out"),
            env_extra={FAULTS_ENV: "explode:when=now"},
        )
        assert res.returncode == 2
        assert FAULTS_ENV in res.stderr
        assert "explode" in res.stderr

    def test_salvage_without_resume_is_a_usage_error(self, tmp_path):
        res = cli(
            "--shards", "2", "--out", str(tmp_path / "out"), "--salvage"
        )
        assert res.returncode == 2
        assert "--resume" in res.stderr

    def test_quarantine_surfaces_on_stdout_and_campaign_succeeds(
        self, tmp_path, the_plan
    ):
        victim = the_plan.n_units // 2
        out = tmp_path / "out"
        res = cli(
            "--shards", "2", "--out", str(out),
            "--respawn", "10", "--attempts-cap", "2",
            env_extra={FAULTS_ENV: f"poison:ord={victim},worker=all"},
        )
        assert res.returncode in (0, 1), res.stderr
        assert "quarantined" in res.stdout
        assert str(victim) in res.stdout
        assert "respawned" in res.stdout


def test_poison_exit_code_is_observable():
    """Torture bookkeeping: poison deaths are distinguishable from kill
    deaths by exit code, so the CI job can assert which fault fired."""
    assert POISON_EXIT_CODE != 0
