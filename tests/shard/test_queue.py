"""Tests for the SQLite work queue (repro.shard.queue)."""

import pytest

from repro.chaos import probe_baseline, selfckpt_scenario
from repro.par import ReplayOutcome
from repro.shard import ShardQueue, plan_campaign
from repro.shard.queue import QueueMismatchError, queue_path_for


def small_scenario(**kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("group_size", 2)
    kw.setdefault("iters", 4)
    kw.setdefault("ckpt_every", 2)
    kw.setdefault("method", "self")
    return selfckpt_scenario(**kw)


@pytest.fixture(scope="module")
def plans():
    sc = small_scenario()
    probe = probe_baseline(sc)
    return (
        plan_campaign([sc], n_shards=2, probes=[probe]),
        plan_campaign([sc], n_shards=3, probes=[probe]),
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def queue(tmp_path, plans):
    clock = FakeClock()
    q = ShardQueue(queue_path_for(str(tmp_path)), clock=clock)
    q.clock_handle = clock
    assert q.populate(plans[0]) is True
    yield q
    q.close()


def outcome(tag: str = "x") -> ReplayOutcome:
    return ReplayOutcome(
        verdict="survived",
        n_restarts=1,
        makespan_s=12.5,
        gave_up_reason=None,
        fired=(f"fired:{tag}",),
        obs={"metrics": {"runs": 1}},
    )


class TestPopulate:
    def test_repopulate_same_plan_is_noop(self, queue, plans):
        assert queue.populate(plans[0]) is False

    def test_repopulate_preserves_results(self, queue, plans):
        queue.record(0, plans[0].units[0].fingerprint, outcome())
        queue.populate(plans[0])
        assert queue.has_result(0)

    def test_different_plan_rejected(self, queue, plans):
        with pytest.raises(QueueMismatchError, match="plans"):
            queue.populate(plans[1])


class TestLeases:
    def test_claims_come_in_shard_index_order(self, queue, plans):
        first = queue.claim("a", 60.0)
        second = queue.claim("b", 60.0)
        assert first == plans[0].shards[0].shard_id
        assert second == plans[0].shards[1].shard_id

    def test_all_leased_means_no_claim(self, queue):
        queue.claim("a", 60.0)
        queue.claim("a", 60.0)
        assert queue.claim("b", 60.0) is None

    def test_expired_lease_is_reissued(self, queue):
        shard = queue.claim("dead-executor", 30.0)
        queue.claim("other", 1000.0)
        queue.clock_handle.now += 31.0
        assert queue.claim("survivor", 60.0) == shard

    def test_renew_keeps_a_lease_alive(self, queue):
        shard = queue.claim("worker", 30.0)
        queue.clock_handle.now += 25.0
        queue.renew(shard, "worker", 30.0)
        queue.clock_handle.now += 25.0  # past the original expiry
        assert queue.claim("thief", 60.0) != shard

    def test_committed_shard_never_reissued(self, queue):
        shard = queue.claim("worker", 1.0)
        for ord_, fp, _spec in queue.shard_units(shard):
            queue.record(ord_, fp, outcome())
        queue.commit_shard(shard, "worker")
        queue.clock_handle.now += 1e6
        assert queue.claim("late", 60.0) != shard


class TestJournal:
    def test_units_round_trip_their_specs(self, queue, plans):
        from repro.par import replay_fingerprint

        shard = plans[0].shards[0]
        units = queue.shard_units(shard.shard_id)
        assert [u[0] for u in units] == list(shard.unit_ords)
        for ord_, fp, spec in units:
            assert spec == plans[0].units[ord_].spec
            assert replay_fingerprint(spec) == fp

    def test_outcomes_round_trip(self, queue, plans):
        want = outcome("roundtrip")
        queue.record(3, plans[0].units[3].fingerprint, want)
        assert queue.outcomes() == {3: want}

    def test_record_is_idempotent(self, queue, plans):
        fp = plans[0].units[0].fingerprint
        queue.record(0, fp, outcome())
        queue.record(0, fp, outcome())  # lease-race double journal
        assert queue.progress()["done_units"] == 1

    def test_results_key_on_ordinal_not_fingerprint(self, queue):
        queue.record(0, "same-fp", outcome("a"))
        queue.record(1, "same-fp", outcome("b"))
        assert queue.progress()["done_units"] == 2

    def test_all_done_requires_every_shard_committed(self, queue, plans):
        assert not queue.all_done()
        for shard in plans[0].shards:
            sid = queue.claim("w", 60.0)
            for ord_, fp, _spec in queue.shard_units(sid):
                queue.record(ord_, fp, outcome())
            queue.commit_shard(sid, "w")
        assert queue.all_done()
        stats = queue.progress()
        assert stats["done_units"] == stats["total_units"] == plans[0].n_units
        assert stats["done_shards"] == stats["total_shards"] == 2

    def test_two_connections_share_the_journal(self, tmp_path, plans):
        path = queue_path_for(str(tmp_path))
        with ShardQueue(path) as writer, ShardQueue(path) as reader:
            writer.populate(plans[0])
            writer.record(0, plans[0].units[0].fingerprint, outcome())
            assert reader.has_result(0)
            assert reader.progress()["done_units"] == 1
