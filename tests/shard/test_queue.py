"""Tests for the SQLite work queue (repro.shard.queue)."""

import pytest

from repro.chaos import probe_baseline, selfckpt_scenario
from repro.par import ReplayOutcome
from repro.shard import ShardQueue, plan_campaign
from repro.shard.queue import QueueMismatchError, queue_path_for


def small_scenario(**kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("group_size", 2)
    kw.setdefault("iters", 4)
    kw.setdefault("ckpt_every", 2)
    kw.setdefault("method", "self")
    return selfckpt_scenario(**kw)


@pytest.fixture(scope="module")
def plans():
    sc = small_scenario()
    probe = probe_baseline(sc)
    return (
        plan_campaign([sc], n_shards=2, probes=[probe]),
        plan_campaign([sc], n_shards=3, probes=[probe]),
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def queue(tmp_path, plans):
    clock = FakeClock()
    q = ShardQueue(queue_path_for(str(tmp_path)), clock=clock)
    q.clock_handle = clock
    assert q.populate(plans[0]) is True
    yield q
    q.close()


def outcome(tag: str = "x") -> ReplayOutcome:
    return ReplayOutcome(
        verdict="survived",
        n_restarts=1,
        makespan_s=12.5,
        gave_up_reason=None,
        fired=(f"fired:{tag}",),
        obs={"metrics": {"runs": 1}},
    )


class TestPopulate:
    def test_repopulate_same_plan_is_noop(self, queue, plans):
        assert queue.populate(plans[0]) is False

    def test_repopulate_preserves_results(self, queue, plans):
        queue.record(0, plans[0].units[0].fingerprint, outcome())
        queue.populate(plans[0])
        assert queue.has_result(0)

    def test_different_plan_rejected(self, queue, plans):
        with pytest.raises(QueueMismatchError, match="plans"):
            queue.populate(plans[1])


class TestLeases:
    def test_claims_come_in_shard_index_order(self, queue, plans):
        first = queue.claim("a", 60.0)
        second = queue.claim("b", 60.0)
        assert first.shard_id == plans[0].shards[0].shard_id
        assert second.shard_id == plans[0].shards[1].shard_id

    def test_all_leased_means_no_claim(self, queue):
        queue.claim("a", 60.0)
        queue.claim("a", 60.0)
        assert queue.claim("b", 60.0) is None

    def test_expired_lease_is_reissued(self, queue):
        lease = queue.claim("dead-executor", 30.0)
        queue.claim("other", 1000.0)
        queue.clock_handle.now += 31.0
        assert queue.claim("survivor", 60.0).shard_id == lease.shard_id

    def test_renew_keeps_a_lease_alive(self, queue):
        lease = queue.claim("worker", 30.0)
        queue.clock_handle.now += 25.0
        assert queue.renew(lease, 30.0) is True
        queue.clock_handle.now += 25.0  # past the original expiry
        thief = queue.claim("thief", 60.0)
        assert thief.shard_id != lease.shard_id

    def test_committed_shard_never_reissued(self, queue):
        lease = queue.claim("worker", 1.0)
        for ord_, fp, _spec in queue.shard_units(lease.shard_id):
            queue.record(ord_, fp, outcome(), lease)
        assert queue.commit_shard(lease) is True
        queue.clock_handle.now += 1e6
        late = queue.claim("late", 60.0)
        assert late.shard_id != lease.shard_id


class TestFencing:
    """The zombie regression: a stalled-then-revived executor whose
    shard was re-issued must have every write rejected."""

    def _expire_and_steal(self, queue, lease, thief="thief"):
        queue.clock_handle.now += 1e6
        stolen = queue.claim(thief, 60.0)
        assert stolen.shard_id == lease.shard_id
        assert stolen.fence > lease.fence
        return stolen

    def test_fence_tokens_increase_monotonically(self, queue):
        a = queue.claim("a", 60.0)
        b = queue.claim("b", 60.0)
        assert b.fence > a.fence > 0

    def test_zombie_record_rejected(self, queue, plans):
        zombie = queue.claim("zombie", 1.0)
        self._expire_and_steal(queue, zombie)
        ord_, fp, _spec = queue.shard_units(zombie.shard_id)[0]
        assert queue.record(ord_, fp, outcome(), zombie) is False
        assert not queue.has_result(ord_)
        assert queue.stats()["fence_rejections"] == 1

    def test_zombie_commit_rejected(self, queue):
        """Regression: commit_shard used to update WHERE shard_id alone,
        so a zombie could mark a shard 'done' out from under the live
        claimant; now owner+fence+status guard it."""
        zombie = queue.claim("zombie", 1.0)
        live = self._expire_and_steal(queue, zombie)
        assert queue.commit_shard(zombie) is False
        assert not queue.all_done()
        for ord_, fp, _spec in queue.shard_units(live.shard_id):
            queue.record(ord_, fp, outcome(), live)
        assert queue.commit_shard(live) is True

    def test_zombie_renew_rejected(self, queue):
        zombie = queue.claim("zombie", 1.0)
        self._expire_and_steal(queue, zombie)
        assert queue.renew(zombie, 60.0) is False

    def test_expired_but_unclaimed_lease_still_writes(self, queue, plans):
        """An expired lease nobody re-claimed keeps its token: the work
        is deterministic, so letting the laggard finish is safe and
        loses nothing."""
        lease = queue.claim("slow", 1.0)
        queue.clock_handle.now += 100.0
        ord_ = plans[0].shards[0].unit_ords[0]
        fp = plans[0].units[ord_].fingerprint
        assert queue.record(ord_, fp, outcome(), lease) is True

    def test_lease_race_double_run_is_idempotent(self, queue, plans):
        """Satellite: two executors run the same expired shard; the
        journal rows are identical by content and exactly one commit
        survives fencing."""
        import json

        first = queue.claim("first", 1.0)
        # first journals one unit, then stalls past its lease
        units = queue.shard_units(first.shard_id)
        ord0, fp0, _ = units[0]
        assert queue.record(ord0, fp0, outcome("same"), first) is True
        second = self._expire_and_steal(queue, first, thief="second")
        # both replay unit 1 — determinism makes the rows byte-identical
        ord1, fp1, _ = units[1]
        row = json.dumps(outcome("same").to_json(), sort_keys=True)
        assert queue.record(ord1, fp1, outcome("same"), second) is True
        assert queue.record(ord1, fp1, outcome("same"), first) is False
        got = queue._conn.execute(
            "SELECT outcome_json FROM results WHERE ord = ?", (ord1,)
        ).fetchone()[0]
        assert got == row
        # the zombie's commit loses, the live claimant's wins
        for ord_, fp, _spec in units:
            if not queue.has_result(ord_):
                queue.record(ord_, fp, outcome("same"), second)
        assert queue.commit_shard(first) is False
        assert queue.commit_shard(second) is True


class TestAttempts:
    """The poison-unit signal: ``attempts`` counts consecutive re-issues
    with no journal progress, resetting whenever anything was journaled
    since the previous claim."""

    def test_fresh_claim_has_zero_attempts(self, queue):
        assert queue.claim("a", 60.0).attempts == 0

    def test_barren_reissues_accumulate(self, queue):
        lease = queue.claim("w0", 1.0)
        for expected in (1, 2, 3):
            queue.clock_handle.now += 10.0
            lease = queue.claim(f"w{expected}", 1.0)
            assert lease.attempts == expected

    def test_journal_progress_resets_attempts(self, queue):
        lease = queue.claim("w", 1.0)
        queue.clock_handle.now += 10.0
        lease = queue.claim("w", 1.0)
        assert lease.attempts == 1
        ord_, fp, _spec = queue.shard_units(lease.shard_id)[0]
        queue.record(ord_, fp, outcome(), lease)
        queue.clock_handle.now += 10.0
        assert queue.claim("w", 1.0).attempts == 0


class TestJournal:
    def test_units_round_trip_their_specs(self, queue, plans):
        from repro.par import replay_fingerprint

        shard = plans[0].shards[0]
        units = queue.shard_units(shard.shard_id)
        assert [u[0] for u in units] == list(shard.unit_ords)
        for ord_, fp, spec in units:
            assert spec == plans[0].units[ord_].spec
            assert replay_fingerprint(spec) == fp

    def test_outcomes_round_trip(self, queue, plans):
        want = outcome("roundtrip")
        queue.record(3, plans[0].units[3].fingerprint, want)
        assert queue.outcomes() == {3: want}

    def test_record_is_idempotent(self, queue, plans):
        fp = plans[0].units[0].fingerprint
        queue.record(0, fp, outcome())
        queue.record(0, fp, outcome())  # lease-race double journal
        assert queue.progress()["done_units"] == 1

    def test_results_key_on_ordinal_not_fingerprint(self, queue):
        queue.record(0, "same-fp", outcome("a"))
        queue.record(1, "same-fp", outcome("b"))
        assert queue.progress()["done_units"] == 2

    def test_first_unjournaled_walks_the_shard(self, queue, plans):
        shard = plans[0].shards[0]
        units = queue.shard_units(shard.shard_id)
        assert queue.first_unjournaled(shard.shard_id) == (
            units[0][0], units[0][1]
        )
        queue.record(units[0][0], units[0][1], outcome())
        assert queue.first_unjournaled(shard.shard_id) == (
            units[1][0], units[1][1]
        )
        for ord_, fp, _spec in units:
            queue.record(ord_, fp, outcome())
        assert queue.first_unjournaled(shard.shard_id) is None

    def test_all_done_requires_every_shard_committed(self, queue, plans):
        assert not queue.all_done()
        for _shard in plans[0].shards:
            lease = queue.claim("w", 60.0)
            for ord_, fp, _spec in queue.shard_units(lease.shard_id):
                queue.record(ord_, fp, outcome(), lease)
            assert queue.commit_shard(lease) is True
        assert queue.all_done()
        stats = queue.progress()
        assert stats["done_units"] == stats["total_units"] == plans[0].n_units
        assert stats["done_shards"] == stats["total_shards"] == 2

    def test_two_connections_share_the_journal(self, tmp_path, plans):
        path = queue_path_for(str(tmp_path))
        with ShardQueue(path) as writer, ShardQueue(path) as reader:
            writer.populate(plans[0])
            writer.record(0, plans[0].units[0].fingerprint, outcome())
            assert reader.has_result(0)
            assert reader.progress()["done_units"] == 1


class TestIntegrityAndSalvage:
    def test_healthy_queue_reports_no_problems(self, tmp_path, plans):
        from repro.shard.queue import integrity_problems

        path = queue_path_for(str(tmp_path))
        with ShardQueue(path) as q:
            q.populate(plans[0])
        assert integrity_problems(path) == []

    def test_garbage_file_reports_problems(self, tmp_path):
        from repro.shard.queue import integrity_problems

        path = queue_path_for(str(tmp_path))
        with open(path, "wb") as f:
            f.write(b"this is not a sqlite database at all" * 100)
        assert integrity_problems(path) != []

    def test_salvage_recovers_matching_rows(self, tmp_path, plans):
        from repro.shard.queue import salvage_results

        path = queue_path_for(str(tmp_path))
        with ShardQueue(path) as q:
            q.populate(plans[0])
            q.record(0, plans[0].units[0].fingerprint, outcome("keep"))
            q.record(1, "wrong-fingerprint", outcome("drop"))
            q._conn.execute(
                "INSERT INTO results (ord, fingerprint, outcome_json) "
                "VALUES (?,?,?)",
                (2, plans[0].units[2].fingerprint, "{not json"),
            )
        rows = salvage_results(path, plans[0])
        assert [r[0] for r in rows] == [0]

    def test_salvaged_rows_restore_into_fresh_queue(self, tmp_path, plans):
        from repro.shard.queue import salvage_results

        old = queue_path_for(str(tmp_path / "old"))
        (tmp_path / "old").mkdir()
        with ShardQueue(old) as q:
            q.populate(plans[0])
            q.record(0, plans[0].units[0].fingerprint, outcome("keep"))
        rows = salvage_results(old, plans[0])
        new = queue_path_for(str(tmp_path))
        with ShardQueue(new) as q:
            q.populate(plans[0])
            assert q.restore_results(rows) == 1
            assert q.has_result(0)
            assert q.outcomes()[0] == outcome("keep")

    def test_quarantine_queue_file_moves_wal_aside(self, tmp_path, plans):
        import os

        from repro.shard.queue import quarantine_queue_file

        path = queue_path_for(str(tmp_path))
        q = ShardQueue(path)
        q.populate(plans[0])
        q.close()
        target = quarantine_queue_file(path)
        assert not os.path.exists(path)
        assert os.path.exists(target)
