"""Tests for the shard planner (repro.shard.planner)."""

import pytest

from repro.chaos import (
    ChaosError,
    RandomCampaignConfig,
    enumerate_kill_points,
    probe_baseline,
    selfckpt_scenario,
)
from repro.par import ReplaySpec, replay_fingerprint
from repro.shard import plan_campaign
from repro.shard.planner import KIND_KILL, KIND_RANDOM, partition


def small_scenario(**kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("group_size", 2)
    kw.setdefault("iters", 4)
    kw.setdefault("ckpt_every", 2)
    kw.setdefault("method", "self")
    return selfckpt_scenario(**kw)


@pytest.fixture(scope="module")
def scenario():
    return small_scenario()


@pytest.fixture(scope="module")
def probe(scenario):
    return probe_baseline(scenario)


class TestPartition:
    def test_covers_every_ordinal_exactly_once(self):
        stripes = partition(11, 3)
        flat = sorted(o for s in stripes for o in s)
        assert flat == list(range(11))

    def test_round_robin_striping(self):
        assert partition(7, 3) == [(0, 3, 6), (1, 4), (2, 5)]

    def test_more_shards_than_units_drops_empties(self):
        stripes = partition(2, 8)
        assert stripes == [(0,), (1,)]

    def test_one_shard_is_the_identity(self):
        assert partition(5, 1) == [(0, 1, 2, 3, 4)]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            partition(5, 0)


class TestPlan:
    def test_same_inputs_same_plan(self, scenario, probe):
        a = plan_campaign([scenario], n_shards=3, seed=5, probes=[probe])
        b = plan_campaign([scenario], n_shards=3, seed=5, probes=[probe])
        assert a.fingerprint == b.fingerprint
        assert [s.shard_id for s in a.shards] == [s.shard_id for s in b.shards]
        assert [u.fingerprint for u in a.units] == [
            u.fingerprint for u in b.units
        ]

    def test_fingerprint_tracks_shard_count(self, scenario, probe):
        a = plan_campaign([scenario], n_shards=2, probes=[probe])
        b = plan_campaign([scenario], n_shards=3, probes=[probe])
        assert a.fingerprint != b.fingerprint

    def test_unit_identity_is_the_replay_fingerprint(self, scenario, probe):
        from repro.chaos.campaign import point_trigger

        plan = plan_campaign([scenario], n_shards=2, probes=[probe])
        points = enumerate_kill_points(probe)
        assert [u.point for u in plan.units] == points
        for unit, point in zip(plan.units, points):
            spec = ReplaySpec(
                scenario.spec, (point_trigger(point, probe),), obs="off"
            )
            assert unit.fingerprint == replay_fingerprint(spec)

    def test_random_units_ride_behind_the_matrices(self, scenario, probe):
        cfg = RandomCampaignConfig(n_schedules=3, seed=9)
        plan = plan_campaign(
            [scenario], n_shards=2, probes=[probe], random_cfg=cfg
        )
        kinds = [u.kind for u in plan.units]
        n_kill = kinds.count(KIND_KILL)
        assert kinds == [KIND_KILL] * n_kill + [KIND_RANDOM] * 3
        assert [
            u.schedule_index for u in plan.units if u.kind == KIND_RANDOM
        ] == [0, 1, 2]
        assert len(plan.schedules) == 3

    def test_every_unit_lands_in_exactly_one_shard(self, scenario, probe):
        plan = plan_campaign([scenario], n_shards=3, probes=[probe])
        ords = sorted(o for s in plan.shards for o in s.unit_ords)
        assert ords == [u.ord for u in plan.units]

    def test_specless_scenario_rejected(self):
        sc = small_scenario(protocol_factory=lambda *a, **k: None)
        assert sc.spec is None
        with pytest.raises(ChaosError, match="pickleable spec"):
            plan_campaign([sc], n_shards=2)
