"""Tests for the self-healing machinery (repro.shard.health)."""

import sqlite3
import time

import pytest

from repro.chaos import probe_baseline, selfckpt_scenario
from repro.shard import plan_campaign
from repro.shard.health import (
    DEFAULT_ATTEMPTS_CAP,
    ExecutorSupervisor,
    LeaseHeartbeat,
    is_quarantined,
    quarantine_outcome,
    retry_transient,
)
from repro.shard.queue import ShardQueue, queue_path_for


class TestRetryTransient:
    def test_first_try_success_never_sleeps(self):
        slept = []
        assert retry_transient(lambda: 42, sleep=slept.append) == 42
        assert slept == []

    def test_transient_errors_are_absorbed(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        slept = []
        assert retry_transient(flaky, sleep=slept.append) == "ok"
        assert calls["n"] == 3 and len(slept) == 2

    def test_budget_exhaustion_propagates_the_error(self):
        def always():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            retry_transient(always, retries=2, sleep=lambda _s: None)

    def test_non_transient_errors_propagate_immediately(self):
        def broken():
            raise sqlite3.DatabaseError("file is not a database")

        slept = []
        with pytest.raises(sqlite3.DatabaseError):
            retry_transient(broken, sleep=slept.append)
        assert slept == []

    def test_backoff_grows_and_caps(self):
        def always():
            raise sqlite3.OperationalError("locked")

        slept = []
        with pytest.raises(sqlite3.OperationalError):
            retry_transient(
                always, retries=6, base_s=0.1, cap_s=0.4, sleep=slept.append
            )
        # each delay is (capped exponential) * jitter in [0.5, 1.5)
        caps = [min(0.4, 0.1 * 2.0**i) for i in range(6)]
        for got, cap in zip(slept, caps):
            assert 0.5 * cap <= got < 1.5 * cap

    def test_jitter_is_deterministic_per_seed(self):
        def always():
            raise sqlite3.OperationalError("locked")

        def run(seed):
            slept = []
            with pytest.raises(sqlite3.OperationalError):
                retry_transient(
                    always, retries=3, seed=seed, sleep=slept.append
                )
            return slept

        assert run("owner-a") == run("owner-a")
        assert run("owner-a") != run("owner-b")


class TestQuarantineOutcome:
    def test_row_is_deterministic(self):
        a = quarantine_outcome("abcdef0123456789", 7, 3, 3)
        b = quarantine_outcome("abcdef0123456789", 7, 3, 3)
        assert a == b  # resume re-quarantines to the identical row

    def test_provenance_fields_are_in_the_reason(self):
        out = quarantine_outcome("abcdef0123456789", 7, 3, DEFAULT_ATTEMPTS_CAP)
        assert is_quarantined(out)
        assert "unit 7" in out.gave_up_reason
        assert "3 consecutive re-issues" in out.gave_up_reason
        assert f"attempts_cap={DEFAULT_ATTEMPTS_CAP}" in out.gave_up_reason
        assert "abcdef012345" in out.gave_up_reason

    def test_normal_gave_up_is_not_quarantined(self):
        from repro.par import ReplayOutcome

        out = ReplayOutcome(
            verdict="gave-up",
            n_restarts=9,
            makespan_s=1.0,
            gave_up_reason="restart budget exhausted",
            fired=(),
        )
        assert not is_quarantined(out)


def _wait_until(cond, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.01)
    return cond()


@pytest.fixture(scope="module")
def plan():
    sc = selfckpt_scenario(
        n_nodes=2, procs_per_node=1, group_size=2, iters=4,
        ckpt_every=2, method="self",
    )
    return plan_campaign([sc], n_shards=2, probes=[probe_baseline(sc)])


class MutableClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestLeaseHeartbeat:
    """Real threads against a real queue file; lease *expiry* runs on an
    injected clock so nothing here sleeps for a whole lease."""

    def test_heartbeat_keeps_an_expiring_lease_alive(self, tmp_path, plan):
        clock = MutableClock()
        path = queue_path_for(str(tmp_path))
        with ShardQueue(path, clock=clock) as q:
            q.populate(plan)
            lease = q.claim("worker", 10.0)
            q.claim("other", 1000.0)  # park the second shard

            def expiry():
                return q._conn.execute(
                    "SELECT lease_expires FROM shards WHERE shard_id = ?",
                    (lease.shard_id,),
                ).fetchone()[0]

            original = expiry()
            with LeaseHeartbeat(
                path, lease, 10.0, interval_s=0.02, clock=clock
            ):
                clock.now += 11.0  # past the original expiry
                assert _wait_until(lambda: expiry() > original)
                # a renewal landed after the bump, so nothing is stealable
                assert q.claim("thief", 10.0) is None

    def test_fenced_out_heartbeat_latches_lost(self, tmp_path, plan):
        clock = MutableClock()
        path = queue_path_for(str(tmp_path))
        with ShardQueue(path, clock=clock) as q:
            q.populate(plan)
            lease = q.claim("zombie", 10.0)
            hb = LeaseHeartbeat(
                path, lease, 10.0, interval_s=0.02, clock=clock
            ).start()
            try:
                # SIGSTOP analogue: freeze long enough for expiry + theft
                # by expiring via the shared fake clock, then stealing
                clock.now += 11.0
                stolen = q.claim("thief", 1000.0)
                while stolen is not None and stolen.shard_id != lease.shard_id:
                    stolen = q.claim("thief", 1000.0)
                assert stolen is not None
                assert _wait_until(lambda: hb.lost)
            finally:
                hb.stop()

    def test_stop_is_idempotent_and_context_managed(self, tmp_path, plan):
        path = queue_path_for(str(tmp_path))
        with ShardQueue(path) as q:
            q.populate(plan)
            lease = q.claim("worker", 60.0)
        hb = LeaseHeartbeat(path, lease, 60.0, interval_s=0.02)
        with hb:
            pass
        hb.stop()  # second stop is a no-op
        assert not hb.lost


class FakeProc:
    def __init__(self, index):
        self.index = index
        self.exitcode = None

    def is_alive(self):
        return self.exitcode is None

    def join(self, timeout=None):
        return None

    def die(self, code):
        self.exitcode = code


class Harness:
    def __init__(self, **kw):
        self.clock = MutableClock()
        self.procs = []

        def spawn(index):
            proc = FakeProc(index)
            self.procs.append(proc)
            return proc

        self.sup = ExecutorSupervisor(spawn, clock=self.clock, **kw)


class TestExecutorSupervisor:
    def test_start_spawns_every_slot(self):
        h = Harness(n_slots=3)
        h.sup.start()
        assert [p.index for p in h.procs] == [0, 1, 2]
        assert h.sup.poll() == 3

    def test_clean_exit_retires_without_burning_budget(self):
        h = Harness(n_slots=2, respawn=5)
        h.sup.start()
        h.procs[0].die(0)  # queue drained: clean retirement
        assert h.sup.poll() == 1
        assert h.sup.budget == 5 and h.sup.crashes == 0
        assert not h.sup.pending_respawns()

    def test_crash_without_budget_degrades(self):
        h = Harness(n_slots=2, respawn=0)
        h.sup.start()
        h.procs[0].die(1)
        assert h.sup.poll() == 1  # degraded, no respawn ever
        assert h.sup.crashes == 1
        assert h.sup.exhausted()
        h.clock.now += 1e6
        assert h.sup.poll() == 1
        assert len(h.procs) == 2

    def test_respawn_waits_out_exponential_backoff(self):
        h = Harness(n_slots=1, respawn=3, backoff_s=0.25)
        h.sup.start()
        h.procs[0].die(9)
        assert h.sup.poll() == 0  # death reaped; respawn scheduled
        assert h.sup.pending_respawns()
        h.clock.now += 0.1  # backoff (0.25s) not yet served
        assert h.sup.poll() == 0
        assert len(h.procs) == 1
        h.clock.now += 0.2
        assert h.sup.poll() == 1
        assert len(h.procs) == 2
        assert h.sup.respawns == 1 and h.sup.budget == 2
        assert not h.sup.pending_respawns()

    def test_backoff_doubles_per_slot_death_and_caps(self):
        sup = ExecutorSupervisor(
            lambda i: FakeProc(i), 1, respawn=9,
            backoff_s=0.25, backoff_cap_s=1.0,
        )
        assert sup.backoff_for(1) == 0.25
        assert sup.backoff_for(2) == 0.5
        assert sup.backoff_for(3) == 1.0
        assert sup.backoff_for(10) == 1.0  # capped

    def test_budget_is_shared_across_slots(self):
        h = Harness(n_slots=2, respawn=1, backoff_s=0.0)
        h.sup.start()
        h.procs[0].die(9)
        h.procs[1].die(9)
        h.sup.poll()  # both reaped, both scheduled
        alive = h.sup.poll()  # one respawn wins, the other retires
        assert alive == 1
        assert h.sup.respawns == 1 and h.sup.budget == 0
        assert h.sup.exhausted()

    def test_everything_dead_and_exhausted_reaches_zero(self):
        h = Harness(n_slots=2, respawn=1, backoff_s=0.0)
        h.sup.start()
        h.procs[0].die(9)
        h.sup.poll()
        h.sup.poll()  # respawn slot 0
        h.procs[1].die(9)
        h.procs[2].die(9)  # the respawned executor dies too
        h.sup.poll()
        assert h.sup.poll() == 0
        assert not h.sup.pending_respawns()
        assert h.sup.exhausted()

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="n_slots"):
            ExecutorSupervisor(lambda i: FakeProc(i), 0)
        with pytest.raises(ValueError, match="respawn"):
            ExecutorSupervisor(lambda i: FakeProc(i), 1, respawn=-1)
