"""Tests for the declarative infra-chaos fault grammar (repro.shard.faults)."""

import sqlite3

import pytest

from repro.shard.faults import (
    DIE_AFTER_ENV,
    DIE_EXIT_CODE,
    DIE_WORKER_ENV,
    FAULTS_ENV,
    POISON_EXIT_CODE,
    Fault,
    FaultPlan,
    FaultSpecError,
    legacy_kill_fault,
    parse_faults,
)


class TestParse:
    def test_empty_and_none_mean_no_faults(self):
        assert parse_faults(None) == []
        assert parse_faults("") == []
        assert parse_faults("  ; ;  ") == []

    def test_kill(self):
        (f,) = parse_faults("kill:after=2,worker=0")
        assert f == Fault(kind="kill", after=2, worker=0)

    def test_zombie(self):
        (f,) = parse_faults("zombie:after=1,worker=1,stall=2.5")
        assert f == Fault(kind="zombie", after=1, worker=1, stall_s=2.5)

    def test_poison(self):
        (f,) = parse_faults("poison:ord=5")
        assert f == Fault(kind="poison", ord=5)

    def test_busy(self):
        (f,) = parse_faults("busy:ops=3,worker=2")
        assert f == Fault(kind="busy", ops=3, worker=2)

    def test_skew(self):
        (f,) = parse_faults("skew:delta=-30,worker=2")
        assert f == Fault(kind="skew", delta_s=-30.0, worker=2)

    def test_multiple_clauses(self):
        faults = parse_faults("kill:after=2,worker=0; poison:ord=1")
        assert [f.kind for f in faults] == ["kill", "poison"]

    def test_worker_all_targets_everyone(self):
        (f,) = parse_faults("kill:after=1,worker=all")
        assert f.worker is None
        assert f.targets(0) and f.targets(7)

    def test_default_worker_targets_everyone(self):
        (f,) = parse_faults("poison:ord=0")
        assert f.targets(3)

    def test_specific_worker_targets_only_itself(self):
        (f,) = parse_faults("kill:after=1,worker=1")
        assert f.targets(1) and not f.targets(0)


class TestParseErrors:
    """Every rejection names the environment variable — a typo'd chaos
    spec must never look like a passing campaign."""

    @pytest.mark.parametrize(
        "raw",
        [
            "explode:after=1",  # unknown kind
            "kill",  # missing required key
            "kill:after",  # not key=value
            "kill:after=",  # empty value
            "kill:after=soon",  # non-integer
            "kill:after=0",  # below minimum
            "kill:after=1,color=red",  # unknown key
            "kill:after=1,worker=-1",  # negative worker
            "kill:after=1,worker=first",  # non-integer worker
            "zombie:after=1",  # missing stall
            "zombie:after=1,stall=0",  # stall must be positive
            "poison:ord=-1",
            "busy:ops=0",
            "skew:delta=0",  # zero skew is a no-op typo
        ],
    )
    def test_malformed_specs_name_the_env_var(self, raw):
        with pytest.raises(FaultSpecError, match=FAULTS_ENV):
            parse_faults(raw)

    def test_message_carries_the_offending_spec(self):
        with pytest.raises(FaultSpecError, match="explode"):
            parse_faults("explode:after=1")


class TestLegacyEnv:
    def test_absent_means_no_fault(self):
        assert legacy_kill_fault({}) is None

    def test_valid_pair_folds_into_a_kill_fault(self):
        fault = legacy_kill_fault({DIE_AFTER_ENV: "2", DIE_WORKER_ENV: "1"})
        assert fault == Fault(kind="kill", after=2, worker=1)

    def test_worker_defaults_to_zero(self):
        assert legacy_kill_fault({DIE_AFTER_ENV: "1"}).worker == 0

    def test_worker_all(self):
        fault = legacy_kill_fault({DIE_AFTER_ENV: "1", DIE_WORKER_ENV: "all"})
        assert fault.worker is None

    @pytest.mark.parametrize("bad", ["", "two", "1.5", "0", "-3"])
    def test_malformed_die_after_names_its_variable(self, bad):
        with pytest.raises(FaultSpecError, match=DIE_AFTER_ENV):
            legacy_kill_fault({DIE_AFTER_ENV: bad})

    @pytest.mark.parametrize("bad", ["", "first", "-1"])
    def test_malformed_die_worker_names_its_variable(self, bad):
        with pytest.raises(FaultSpecError, match=DIE_WORKER_ENV):
            legacy_kill_fault({DIE_AFTER_ENV: "1", DIE_WORKER_ENV: bad})


class Exited(Exception):
    def __init__(self, code):
        self.code = code


def plan_for(spec, worker=0, environ=None):
    env = {FAULTS_ENV: spec} if spec is not None else {}
    env.update(environ or {})

    def hard_exit(code):
        raise Exited(code)

    slept = []
    plan = FaultPlan.from_env(
        worker, env, sleep=slept.append, hard_exit=hard_exit
    )
    plan.slept = slept
    return plan


class TestFaultPlan:
    def test_unarmed_plan_is_inert(self):
        plan = plan_for(None)
        assert not plan.armed
        plan.queue_hook("claim")
        plan.check_poison(0)
        plan.check_kill(10**6)
        assert plan.zombie_stall(10**6) is None
        assert plan.clock_offset_s == 0.0

    def test_faults_for_other_workers_are_dropped(self):
        plan = plan_for("kill:after=1,worker=0", worker=1)
        assert not plan.armed

    def test_legacy_env_folds_in(self):
        plan = plan_for(None, environ={DIE_AFTER_ENV: "3"})
        assert plan.armed
        with pytest.raises(Exited) as exc:
            plan.check_kill(3)
        assert exc.value.code == DIE_EXIT_CODE

    def test_kill_fires_at_the_threshold(self):
        plan = plan_for("kill:after=2")
        plan.check_kill(1)  # not yet
        with pytest.raises(Exited) as exc:
            plan.check_kill(2)
        assert exc.value.code == DIE_EXIT_CODE

    def test_poison_exit_code_is_distinct(self):
        plan = plan_for("poison:ord=4")
        plan.check_poison(3)
        with pytest.raises(Exited) as exc:
            plan.check_poison(4)
        assert exc.value.code == POISON_EXIT_CODE
        assert POISON_EXIT_CODE != DIE_EXIT_CODE

    def test_busy_budget_raises_then_drains(self):
        plan = plan_for("busy:ops=2")
        for _ in range(2):
            with pytest.raises(sqlite3.OperationalError, match="injected"):
                plan.queue_hook("claim")
        plan.queue_hook("claim")  # budget spent: back to normal

    def test_zombie_stall_fires_exactly_once(self):
        plan = plan_for("zombie:after=1,stall=2.0")
        assert plan.zombie_stall(0) is None
        assert plan.zombie_stall(1) == 2.0
        assert plan.zombie_stall(2) is None  # revived zombies stay revived

    def test_skew_sums_into_clock_offset(self):
        plan = plan_for("skew:delta=-30; skew:delta=5")
        assert plan.clock_offset_s == -25.0

    def test_sleep_goes_through_the_injected_hook(self):
        plan = plan_for("zombie:after=1,stall=1.5")
        plan.sleep(plan.zombie_stall(1))
        assert plan.slept == [1.5]
