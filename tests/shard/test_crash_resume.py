"""Crash/resume equivalence for the sharded campaign engine.

The contract under test is the tentpole's acceptance bar: a sharded
campaign — uninterrupted, with an executor killed mid-shard, or with
the whole invocation killed mid-campaign and resumed — produces
``BENCH_chaos.json`` bytes, report text and trace-store digests
identical to the serial engine's.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.chaos import (
    RandomCampaignConfig,
    probe_baseline,
    random_campaign,
    run_kill_matrix,
    selfckpt_scenario,
)
from repro.chaos import bench as chaos_bench
from repro.chaos.report import render_campaign
from repro.shard import ShardCampaignError, run_sharded_campaign
from repro.shard.executor import DIE_AFTER_ENV, DIE_WORKER_ENV
from repro.shard.queue import ShardQueue, queue_path_for

SEED = 7
CFG = dict(
    n_nodes=2, procs_per_node=1, group_size=2, iters=4, ckpt_every=2
)
METHODS = ("self", "double")


def scenarios():
    return [selfckpt_scenario(method=m, **CFG) for m in METHODS]


def _bench_bytes(matrices, schedules):
    return chaos_bench.bench_json(
        chaos_bench.bench_record(matrices, schedules, None, seed=SEED)
    )


@pytest.fixture(scope="module")
def serial():
    """The uninterrupted serial campaign every sharded run must match."""
    matrices, schedules = [], None
    random_cfg = RandomCampaignConfig(n_schedules=3, seed=SEED)
    for i, sc in enumerate(scenarios()):
        probe = probe_baseline(sc)
        matrices.append(run_kill_matrix(sc, probe=probe, max_occurrences=1))
        if i == 0:
            schedules = random_campaign(sc, random_cfg, probe=probe)
    return matrices, schedules


def run_sharded(out_dir, **kw):
    kw.setdefault("n_shards", 3)
    kw.setdefault("seed", SEED)
    kw.setdefault("max_occurrences", 1)
    kw.setdefault("random_cfg", RandomCampaignConfig(n_schedules=3, seed=SEED))
    return run_sharded_campaign(scenarios(), out_dir=str(out_dir), **kw)


def assert_matches_serial(serial, matrices, schedules):
    s_matrices, s_schedules = serial
    assert _bench_bytes(matrices, schedules) == _bench_bytes(
        s_matrices, s_schedules
    )
    assert render_campaign(matrices, schedules) == render_campaign(
        s_matrices, s_schedules
    )


def store_digest(tmp_path, name, matrices, schedules, probes):
    from repro.obs.store import (
        TraceStore,
        campaign_id_for,
        ingest_kill_matrix,
        ingest_schedules,
    )

    cid = campaign_id_for(SEED, "selfckpt", list(METHODS))
    with TraceStore(str(tmp_path / name)) as store:
        ord_ = 0
        for sc, probe, rep in zip(scenarios(), probes, matrices):
            ord_ = ingest_kill_matrix(
                store, cid, sc, rep,
                seed=SEED, obs_mode="off", ord_base=ord_, probe=probe,
            )
        ingest_schedules(
            store, cid, scenarios()[0], schedules,
            seed=SEED, obs_mode="off", ord_base=ord_,
        )
        return store.digest()


class TestShardedEquivalence:
    def test_sharded_matches_serial(self, serial, tmp_path):
        plan, matrices, schedules, stats = run_sharded(tmp_path / "out")
        assert stats["done_units"] == plan.n_units
        assert_matches_serial(serial, matrices, schedules)

    def test_store_digest_matches_serial(self, serial, tmp_path):
        plan, matrices, schedules, _ = run_sharded(tmp_path / "out")
        probes = [m.probe for m in plan.matrices]
        sharded = store_digest(
            tmp_path, "sharded.sqlite", matrices, schedules, probes
        )
        s_matrices, s_schedules = serial
        serial_d = store_digest(
            tmp_path, "serial.sqlite", s_matrices, s_schedules, probes
        )
        assert sharded == serial_d

    def test_shard_count_is_artifact_invariant(self, serial, tmp_path):
        _, matrices, schedules, _ = run_sharded(
            tmp_path / "one", n_shards=1
        )
        assert_matches_serial(serial, matrices, schedules)


class TestExecutorCrash:
    def test_killed_executor_is_reissued_in_flight(
        self, serial, tmp_path, monkeypatch
    ):
        """Worker 0 hard-exits after one journaled unit; the survivors
        take over its expired lease and finish the same invocation."""
        monkeypatch.setenv(DIE_AFTER_ENV, "1")
        monkeypatch.setenv(DIE_WORKER_ENV, "0")
        plan, matrices, schedules, stats = run_sharded(
            tmp_path / "out", lease_s=0.5
        )
        assert stats["done_units"] == plan.n_units
        assert_matches_serial(serial, matrices, schedules)

    def test_all_executors_dead_leaves_resumable_queue(
        self, serial, tmp_path, monkeypatch
    ):
        """Every executor dies mid-shard (the deterministic stand-in for
        a dead driver); the same out dir resumes to identical results."""
        out = tmp_path / "out"
        monkeypatch.setenv(DIE_AFTER_ENV, "2")
        monkeypatch.setenv(DIE_WORKER_ENV, "all")
        with pytest.raises(ShardCampaignError, match="resume"):
            run_sharded(out)
        with ShardQueue(queue_path_for(str(out))) as queue:
            partial = queue.progress()
        assert 0 < partial["done_units"] < partial["total_units"]
        monkeypatch.delenv(DIE_AFTER_ENV)
        monkeypatch.delenv(DIE_WORKER_ENV)
        plan, matrices, schedules, stats = run_sharded(out)
        assert stats["done_units"] == plan.n_units
        assert_matches_serial(serial, matrices, schedules)


CLI_FLAGS = [
    "--methods", ",".join(METHODS), "--nodes", "2", "--ppn", "1",
    "--group-size", "2", "--iters", "4", "--ckpt-every", "2",
    "--max-occurrences", "1", "--random", "3", "--seed", str(SEED),
    "--no-progress",
]


def cli_cmd(*extra):
    return [sys.executable, "-m", "repro", "chaos", *CLI_FLAGS, *extra]


def cli_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.pop(DIE_AFTER_ENV, None)
    env.pop(DIE_WORKER_ENV, None)
    return env


class TestDriverKill:
    def test_sigkilled_driver_resumes_byte_identical(self, tmp_path):
        """The real thing: SIGKILL the whole driver process group while
        units are being journaled, then ``--resume`` and compare both
        artifacts byte-for-byte against a serial CLI run."""
        serial_out = tmp_path / "serial"
        res = subprocess.run(
            cli_cmd("--out", str(serial_out)),
            env=cli_env(), capture_output=True, text=True, timeout=300,
        )
        assert res.returncode == 0, res.stderr

        shard_out = tmp_path / "sharded"
        proc = subprocess.Popen(
            cli_cmd("--shards", "3", "--out", str(shard_out)),
            env=cli_env(), start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        queue_path = queue_path_for(str(shard_out))
        killed_midway = False
        deadline = time.monotonic() + 300
        while proc.poll() is None and time.monotonic() < deadline:
            if os.path.exists(queue_path):
                with ShardQueue(queue_path) as queue:
                    stats = queue.progress()
                if 0 < stats["done_units"] < stats["total_units"]:
                    os.killpg(proc.pid, signal.SIGKILL)
                    killed_midway = True
                    break
            time.sleep(0.005)
        proc.wait(timeout=300)

        res = subprocess.run(
            cli_cmd("--shards", "3", "--resume", str(shard_out)),
            env=cli_env(), capture_output=True, text=True, timeout=300,
        )
        assert res.returncode == 0, res.stderr
        assert killed_midway, "campaign finished before the kill window"

        for name in ("BENCH_chaos.json", "report.txt"):
            with open(serial_out / name, "rb") as f:
                want = f.read()
            with open(shard_out / name, "rb") as f:
                got = f.read()
            assert got == want, f"{name} diverged after driver kill"
        doc = json.loads((shard_out / "BENCH_chaos.json").read_text())
        assert doc["seed"] == SEED
