"""Interrupted-span export behavior and the OPEN_SPAN_DURATION sentinel.

Two layers report phases a failure cut short:

* ``repro.obs`` spans carry ``status="interrupted"`` (stamped end) or a
  genuinely open ``end=None``; the Chrome exporter must keep the status
  visible through a full export -> parse cycle.
* ``repro.sim.trace`` pairs phase announcements and reports an unmatched
  ``begin`` with the :data:`OPEN_SPAN_DURATION` sentinel, which
  :func:`span_stats` must keep out of the duration aggregates.
"""

import math

from repro.obs.export import (
    chrome_trace_json,
    parse_chrome_trace,
    span_tree,
)
from repro.obs.spans import STATUS_INTERRUPTED, STATUS_OK, SpanTracer
from repro.sim.trace import (
    OPEN_SPAN_DURATION,
    Trace,
    phase_spans,
    span_stats,
)


def _interrupted_tracer():
    tr = SpanTracer()
    tr.begin(0, "ckpt", 1.0)
    tr.begin(0, "ckpt.encode", 1.2)
    tr.end(0, 1.8)
    tr.end(0, 2.0)
    tr.begin(1, "ckpt", 1.0, {"epoch": 3})
    tr.close_rank(1, 1.4)  # failure: closed with status="interrupted"
    tr.begin(2, "restore", 2.0)  # never closed at all: end stays None
    return tr


class TestChromeRoundTrip:
    def test_interrupted_status_survives_round_trip(self):
        spans = _interrupted_tracer().spans()
        back = parse_chrome_trace(chrome_trace_json(spans))
        by_id = {s.span_id: s for s in back}
        orig = {s.span_id: s for s in spans}
        assert set(by_id) == set(orig)
        for sid, s in orig.items():
            assert by_id[sid].status == s.status
        statuses = sorted(s.status for s in back)
        assert statuses.count(STATUS_INTERRUPTED) == 1

    def test_interrupted_span_keeps_its_stamped_end(self):
        spans = _interrupted_tracer().spans()
        orig = next(
            s for s in spans if s.rank == 1 and s.status == STATUS_INTERRUPTED
        )
        assert orig.end == 1.4  # close_rank stamps the clock of death
        back = parse_chrome_trace(chrome_trace_json(spans))
        got = next(s for s in back if s.span_id == orig.span_id)
        assert got.end == 1.4
        assert got.attrs == {"epoch": 3}

    def test_open_span_exports_as_zero_duration(self):
        # A span with end=None has no duration yet; the exporter pins it
        # to its begin time so the trace stays loadable. (Only close_rank
        # marks interruption — a never-closed span keeps status="ok".)
        spans = _interrupted_tracer().spans()
        orig = next(s for s in spans if s.end is None)
        back = parse_chrome_trace(chrome_trace_json(spans))
        got = next(s for s in back if s.span_id == orig.span_id)
        assert got.begin == orig.begin
        assert got.end == orig.begin
        assert got.status == STATUS_OK

    def test_tree_structure_survives(self):
        spans = _interrupted_tracer().spans()
        back = parse_chrome_trace(chrome_trace_json(spans))
        assert span_tree(back) == span_tree(spans)

    def test_ok_spans_stay_ok(self):
        spans = _interrupted_tracer().spans()
        back = parse_chrome_trace(chrome_trace_json(spans))
        ok = [s for s in back if s.rank == 0]
        assert all(s.status == STATUS_OK for s in ok)

    def test_export_is_byte_stable(self):
        a = chrome_trace_json(_interrupted_tracer().spans())
        b = chrome_trace_json(_interrupted_tracer().spans())
        assert a == b


class TestOpenSpanSentinel:
    def _trace(self):
        t = Trace()
        t.record(0, 1.0, "ckpt.begin")
        t.record(0, 2.0, "ckpt.done")
        t.record(1, 1.0, "ckpt.begin")  # rank 1 dies mid-checkpoint
        t.record(0, 3.0, "ckpt.begin")
        t.record(0, 3.5, "ckpt.done")
        return t

    def test_unmatched_begin_reports_sentinel(self):
        spans = phase_spans(self._trace(), "ckpt.begin", "ckpt.done")
        assert len(spans) == 3
        open_spans = [s for s in spans if s[2] == OPEN_SPAN_DURATION]
        assert open_spans == [(1, 1.0, OPEN_SPAN_DURATION)]
        assert math.isinf(OPEN_SPAN_DURATION)

    def test_stats_exclude_sentinel_from_aggregates(self):
        spans = phase_spans(self._trace(), "ckpt.begin", "ckpt.done")
        stats = span_stats(spans)
        assert stats["count"] == 2
        assert stats["open"] == 1
        assert stats["max"] == 1.0  # inf never leaks into the aggregates
        assert stats["mean"] == 0.75

    def test_all_open_is_empty_safe(self):
        t = Trace()
        t.record(0, 1.0, "ckpt.begin")
        stats = span_stats(phase_spans(t, "ckpt.begin", "ckpt.done"))
        assert stats == {
            "count": 0,
            "min": 0.0,
            "mean": 0.0,
            "max": 0.0,
            "open": 1,
        }

    def test_rebegin_closes_prior_as_open(self):
        t = Trace()
        t.record(0, 1.0, "ckpt.begin")
        t.record(0, 2.0, "ckpt.begin")  # restarted: prior never closed
        t.record(0, 2.5, "ckpt.done")
        spans = phase_spans(t, "ckpt.begin", "ckpt.done")
        assert (0, 1.0, OPEN_SPAN_DURATION) in spans
        assert (0, 2.0, 0.5) in spans
