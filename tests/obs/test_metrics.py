"""Metrics registry/observer tests, including accounting under failures."""

import pytest

from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.scenario import run_scenario
from repro.sim import Cluster, Job


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("mpi.msgs_recv", rank=0, cls="pt2pt")
        c.inc()
        c.inc(2)
        assert reg.counter("mpi.msgs_recv", rank=0, cls="pt2pt").value == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("ckpt.count", rank=0).inc(-1)

    def test_unregistered_name_rejected(self):
        with pytest.raises(ValueError, match="unregistered metric name"):
            MetricsRegistry().counter("mpi.bytes_snet")

    def test_strict_names_off(self):
        reg = MetricsRegistry(strict_names=False)
        reg.counter("scratch.anything").inc()
        assert reg.total("scratch.anything") == 1

    def test_total_filters_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("mpi.bytes_sent", rank=0, cls="pt2pt").inc(10)
        reg.counter("mpi.bytes_sent", rank=1, cls="swap").inc(5)
        assert reg.total("mpi.bytes_sent") == 15
        assert reg.total("mpi.bytes_sent", rank=0) == 10
        assert reg.total("mpi.bytes_sent", cls="swap") == 5

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("mpi.blocked_s", rank=0)
        h.observe(0.0)
        h.observe(0.5)
        h.observe(1e9)  # overflow bucket
        assert h.count == 3
        assert h.counts[-1] == 1
        assert h.mean == pytest.approx((0.0 + 0.5 + 1e9) / 3)


class TestObserverAccounting:
    def test_clean_run_sent_equals_recv(self):
        def main(ctx):
            me = ctx.world.rank
            peer = 1 - me
            if me == 0:
                ctx.world.send(b"x" * 128, peer)
            else:
                ctx.world.recv(peer)
            ctx.world.barrier()

        obs = MetricsObserver()
        cluster = Cluster(2)
        job = Job(cluster, main, 2, procs_per_node=1, observer=obs)
        obs.watch_cluster(cluster)
        assert job.run().completed
        sent, recv, posted = obs.message_balance()
        assert sent == recv == posted == 128

    def test_failure_run_sent_equals_recv_and_no_double_count(self):
        """Across a kill + daemon restart, delivered bytes balance exactly;
        a send retried by the restarted incarnation is counted once per
        actual delivery, and bytes stranded in flight show up only in the
        posted counter."""
        run = run_scenario("skt-hpl", fail_at="panel:3", n=32)
        reg = run.registry
        assert run.completed and run.n_restarts == 1
        sent = reg.total("mpi.bytes_sent")
        recv = reg.total("mpi.bytes_recv")
        posted = reg.total("mpi.bytes_posted")
        assert sent == recv
        assert posted >= sent  # stranded in-flight bytes never count as sent
        assert reg.total("job.failures_injected") == 1
        assert reg.total("job.restarts") == 1

    def test_metrics_deterministic_across_runs(self):
        from repro.obs.export import metrics_jsonl

        a = metrics_jsonl(run_scenario("selfckpt", fail_at="encode:2").registry)
        b = metrics_jsonl(run_scenario("selfckpt", fail_at="encode:2").registry)
        assert a == b

    def test_shm_bytes_attributed_to_node(self):
        def main(ctx):
            seg = ctx.shm_create("buf", 16)  # 16 float64 = 128 bytes
            seg.array[:] = 1.0

        obs = MetricsObserver()
        cluster = Cluster(1)
        job = Job(cluster, main, 1, procs_per_node=1, observer=obs)
        obs.watch_cluster(cluster)
        assert job.run().completed
        assert obs.registry.total("shm.bytes_written", node=0) >= 128
        assert obs.registry.total("shm.ops", node=0, kind="create") == 1
