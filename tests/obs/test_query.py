"""Query-engine tests: filters, percentiles, byte-stable output, trend."""

import json
import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.query import (
    QueryFilter,
    aggregate_spans,
    nearest_rank,
    perf_trend_rows,
    query_jsonl,
    query_report,
    run_rows,
    span_rows,
    summary_stats,
    throughput_trend_rows,
    trend_report,
)
from repro.obs.rollup import attempt_payload
from repro.obs.spans import SpanTracer
from repro.obs.store import TraceStore


def _tracer(offset=0.0):
    tr = SpanTracer()
    tr.begin(0, "ckpt", 1.0 + offset)
    tr.end(0, 2.0 + offset)
    tr.begin(0, "ckpt", 3.0 + offset)
    tr.end(0, 3.5 + offset)
    tr.begin(1, "restore", 4.0 + offset)
    tr.close_rank(1, 4.25 + offset)
    return tr


def _store():
    store = TraceStore(":memory:")
    for i, (verdict, off) in enumerate(
        [("survived", 0.0), ("survived", 1.0), ("gave-up", 2.0)]
    ):
        reg = MetricsRegistry()
        reg.counter("job.restarts").inc(i)
        store.ingest_attempt(
            run_id=f"run-{i}",
            campaign_id="camp",
            ord=i,
            kind="kill" if i < 2 else "random",
            scenario="selfckpt",
            method="self",
            seed=0,
            label=f"pt-{i}",
            verdict=verdict,
            n_restarts=i,
            makespan_s=10.0 + i,
            params={},
            obs=attempt_payload(_tracer(off), reg, "full"),
        )
    return store


class TestNearestRank:
    def test_basic_percentiles(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(vals, 0.50) == 2.0
        assert nearest_rank(vals, 0.90) == 4.0
        assert nearest_rank(vals, 1.00) == 4.0
        assert nearest_rank(vals, 0.25) == 1.0

    def test_empty_and_bounds(self):
        assert nearest_rank([], 0.5) == 0.0
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)

    def test_single_value(self):
        assert nearest_rank([7.0], 0.5) == 7.0
        assert nearest_rank([7.0], 0.99) == 7.0


class TestFilters:
    def test_verdict_filter(self):
        store = _store()
        assert len(run_rows(store, QueryFilter())) == 3
        survived = run_rows(store, QueryFilter(verdicts=("survived",)))
        assert [r["run_id"] for r in survived] == ["run-0", "run-1"]

    def test_kind_and_label_filter(self):
        store = _store()
        assert len(run_rows(store, QueryFilter(kinds=("random",)))) == 1
        assert len(run_rows(store, QueryFilter(label_like="pt-1"))) == 1

    def test_span_name_and_rank_filter(self):
        store = _store()
        ckpts = span_rows(store, QueryFilter(names=("ckpt",)))
        assert len(ckpts) == 6  # two per run
        assert {s["name"] for s in ckpts} == {"ckpt"}
        r1 = span_rows(store, QueryFilter(ranks=(1,)))
        assert {s["name"] for s in r1} == {"restore"}

    def test_run_filter_narrows_spans(self):
        store = _store()
        spans = span_rows(
            store, QueryFilter(verdicts=("gave-up",), names=("ckpt",))
        )
        assert len(spans) == 2
        assert all(s["run_id"] == "run-2" for s in spans)


class TestAggregation:
    def test_span_aggregate_percentiles(self):
        store = _store()
        aggs = {a.name: a for a in aggregate_spans(span_rows(store, QueryFilter()))}
        ckpt = aggs["ckpt"]
        assert ckpt.count == 6 and ckpt.open == 0
        # durations alternate 1.0 / 0.5 per run
        assert sorted(ckpt.durations) == [0.5, 0.5, 0.5, 1.0, 1.0, 1.0]
        assert nearest_rank(sorted(ckpt.durations), 0.5) == 0.5
        restore = aggs["restore"]
        assert restore.count == 3 and restore.open == 0

    def test_open_spans_stay_out_of_durations(self):
        tr = SpanTracer()
        tr.begin(0, "ckpt", 1.0)  # never closed
        store = TraceStore(":memory:")
        store.ingest_attempt(
            run_id="r",
            campaign_id="c",
            ord=0,
            kind="kill",
            scenario="s",
            method="self",
            seed=0,
            label="l",
            verdict="survived",
            n_restarts=0,
            makespan_s=1.0,
            params={},
            obs=attempt_payload(tr, MetricsRegistry(), "full"),
        )
        (agg,) = aggregate_spans(span_rows(store, QueryFilter()))
        assert agg.count == 1 and agg.open == 1
        assert agg.durations == []

    def test_summary_stats_rollup(self):
        store = _store()
        rows = {r[0]: r for r in summary_stats(store, QueryFilter())}
        assert rows["job.restarts"][1] == "3"  # 3 runs carry the key
        assert rows["job.restarts"][2] == "3"  # total 0+1+2
        assert "critical_path_s" in rows
        assert "recovery_path_s" in rows

    def test_summary_keys_restriction(self):
        store = _store()
        rows = summary_stats(store, QueryFilter(), keys=("job.restarts",))
        assert [r[0] for r in rows] == ["job.restarts"]


class TestByteStability:
    def test_report_is_identical_across_builds(self):
        a = query_report(_store(), QueryFilter())
        b = query_report(_store(), QueryFilter())
        assert a == b

    def test_jsonl_is_identical_and_parseable(self):
        a = query_jsonl(_store(), QueryFilter())
        b = query_jsonl(_store(), QueryFilter())
        assert a == b
        records = [json.loads(line) for line in a.splitlines()]
        kinds = {r["record"] for r in records}
        assert kinds == {"run", "span_agg", "summary"}

    def test_inf_renders_stably(self):
        from repro.obs.query import _fmt

        assert _fmt(math.inf) == "inf"
        assert _fmt(0.5) == "0.5"
        assert _fmt(1.0 / 3.0) == "0.333333"


class TestTrend:
    def _perf_record(self, speedup):
        return {
            "bench": "perf_kernels",
            "gf_vec_mul": [{"size": 64, "speedup": speedup}],
            "rs_encode": [],
        }

    def _baseline(self):
        return {
            "gf_vec_mul": [{"size": 64, "speedup": 6.0}],
            "rs_encode": [],
        }

    def test_gate_passes_above_floor(self):
        store = TraceStore(":memory:")
        store.ingest_bench_record(self._perf_record(5.0))
        rows, ok = perf_trend_rows(store, self._baseline())
        assert ok and rows[0][-1] == "ok"

    def test_gate_fails_below_floor(self):
        store = TraceStore(":memory:")
        store.ingest_bench_record(self._perf_record(1.0))  # floor is 2.0
        rows, ok = perf_trend_rows(store, self._baseline())
        assert not ok and rows[0][-1] == "REGRESSED"

    def test_no_baseline_never_gates(self):
        store = TraceStore(":memory:")
        store.ingest_bench_record(self._perf_record(0.1))
        rows, ok = perf_trend_rows(store, None)
        assert ok and rows[0][-1] == "no-baseline"

    def test_trend_report_covers_all_benches(self):
        store = TraceStore(":memory:")
        store.ingest_bench_record(self._perf_record(5.0))
        store.ingest_bench_record(
            {"bench": "obs", "scenario": "selfckpt", "seed": 1,
             "completed": True, "n_restarts": 1, "makespan_s": 10.0,
             "ckpt_count": 4.0, "traffic": {"bytes_stranded": 0.0}}
        )
        store.ingest_bench_record(
            {"bench": "chaos", "seed": 0, "survived_all": True,
             "matrices": [{"n_kill_points": 4,
                           "verdicts": {"survived": 4}}]}
        )
        text, ok = trend_report(store, self._baseline())
        assert ok
        assert "perf speedup ratios" in text
        assert "obs run trajectory" in text
        assert "chaos campaign trajectory" in text

    def test_empty_store_renders_placeholder(self):
        text, ok = trend_report(TraceStore(":memory:"), None)
        assert ok and "no bench records" in text

    def test_matrix_encode_group_gates(self):
        store = TraceStore(":memory:")
        rec = self._perf_record(5.0)
        rec["matrix_encode"] = [{"stripe_bytes": 1 << 20, "speedup": 1.0}]
        store.ingest_bench_record(rec)
        baseline = self._baseline()
        baseline["matrix_encode"] = [
            {"stripe_bytes": 1 << 20, "speedup": 4.0}
        ]
        rows, ok = perf_trend_rows(store, baseline)
        assert not ok
        matrix = [r for r in rows if r[1].startswith("matrix_encode")]
        assert matrix and matrix[0][-1] == "REGRESSED"

    def test_throughput_rows_render_host_metrics(self):
        store = TraceStore(":memory:")
        rec = self._perf_record(5.0)
        rec["host_metrics"] = {
            "ckpt.encode_bytes_per_s": 2.5e9,
            "ckpt.decode_bytes_per_s": 0.5e9,
        }
        store.ingest_bench_record(rec)
        rows = throughput_trend_rows(store)
        by_name = {r[1]: r[2] for r in rows}
        assert by_name["ckpt.encode_bytes_per_s"] == "2.5"
        assert by_name["ckpt.decode_bytes_per_s"] == "0.5"
        text, ok = trend_report(store, None)
        assert ok and "kernel throughput" in text

    def test_throughput_rows_absent_without_host_metrics(self):
        store = TraceStore(":memory:")
        store.ingest_bench_record(self._perf_record(5.0))
        assert throughput_trend_rows(store) == []


class TestCliStoreGuard:
    def test_query_refuses_missing_store(self, tmp_path):
        from repro.obs.cli import obs_main

        missing = tmp_path / "nope.sqlite"
        with pytest.raises(SystemExit) as exc:
            obs_main(["query", "--store", str(missing)])
        assert exc.value.code == 2
        # the guard exists so a typo'd path cannot conjure an empty store
        assert not missing.exists()

    def test_trend_refuses_missing_store(self, tmp_path):
        from repro.obs.cli import obs_main

        missing = tmp_path / "nope.sqlite"
        with pytest.raises(SystemExit) as exc:
            obs_main(["trend", "--store", str(missing)])
        assert exc.value.code == 2
        assert not missing.exists()
