"""Trace-store tests: content-addressed ingest, idempotency, digests."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.rollup import (
    attempt_payload,
    attempt_summary,
    span_doc,
    span_from_doc,
)
from repro.obs.scenario import run_scenario
from repro.obs.spans import SpanTracer
from repro.obs.store import TraceStore, attempt_run_id, obs_run_id


def _sample_tracer():
    tr = SpanTracer()
    tr.begin(0, "ckpt", 1.0, {"epoch": 0})
    tr.begin(0, "ckpt.encode", 1.25, {"nbytes": 4096})
    tr.end(0, 1.75)
    tr.end(0, 2.0)
    tr.begin(1, "ckpt", 1.0)
    tr.close_rank(1, 1.5)  # died mid-checkpoint: closed as interrupted
    tr.begin(2, "restore", 2.0)  # never closed: end stays None
    return tr


def _registry():
    reg = MetricsRegistry()
    reg.counter("mpi.bytes_sent", rank=0, cls="pt2pt").inc(128)
    reg.counter("mpi.bytes_posted", rank=0, cls="pt2pt").inc(160)
    reg.gauge("job.makespan_s").set(2.0)
    reg.histogram("mpi.blocked_s", rank=1).observe(0.25)
    return reg


def _ingest_sample(store, run_id="run-a", mode="full"):
    payload = attempt_payload(_sample_tracer(), _registry(), mode)
    return store.ingest_attempt(
        run_id=run_id,
        campaign_id="camp",
        ord=0,
        kind="kill",
        scenario="selfckpt",
        method="self",
        seed=0,
        label="ckpt.begin:1@n0",
        verdict="survived",
        n_restarts=1,
        makespan_s=10.0,
        params={"iters": 2},
        obs=payload,
    )


class TestIngest:
    def test_counts_after_full_ingest(self):
        with TraceStore(":memory:") as store:
            _ingest_sample(store)
            counts = store.counts()
        assert counts["runs"] == 1
        assert counts["spans"] == 4
        assert counts["metrics"] == 4
        assert counts["summaries"] > 0

    def test_summary_mode_skips_streams(self):
        with TraceStore(":memory:") as store:
            _ingest_sample(store, mode="summary")
            counts = store.counts()
        assert counts["runs"] == 1
        assert counts["spans"] == 0
        assert counts["metrics"] == 0
        assert counts["summaries"] > 0

    def test_obs_off_stores_run_row_only(self):
        with TraceStore(":memory:") as store:
            store.ingest_attempt(
                run_id="r",
                campaign_id="c",
                ord=0,
                kind="kill",
                scenario="s",
                method="self",
                seed=0,
                label="l",
                verdict="survived",
                n_restarts=0,
                makespan_s=1.0,
                params={},
                obs=None,
            )
            counts = store.counts()
            row = store.query("SELECT obs_mode FROM runs")[0]
        assert counts == {
            "store_meta": 1,
            "runs": 1,
            "spans": 0,
            "metrics": 0,
            "summaries": 0,
            "bench_records": 0,
        }
        assert row == ("off",)

    def test_reingest_is_idempotent(self):
        with TraceStore(":memory:") as store:
            _ingest_sample(store)
            d1 = store.digest()
            _ingest_sample(store)
            d2 = store.digest()
        assert d1 == d2

    def test_bench_record_content_addressed(self):
        rec = {"bench": "obs", "seed": 7, "makespan_s": 1.5}
        with TraceStore(":memory:") as store:
            a = store.ingest_bench_record(rec)
            b = store.ingest_bench_record(dict(rec))  # same content
            c = store.ingest_bench_record({**rec, "seed": 8})
            n = store.counts()["bench_records"]
        assert a == b != c
        assert n == 2


class TestDigest:
    def test_equal_content_equal_digest(self):
        with TraceStore(":memory:") as a, TraceStore(":memory:") as b:
            _ingest_sample(a)
            _ingest_sample(b)
            assert a.digest() == b.digest()

    def test_different_content_different_digest(self):
        with TraceStore(":memory:") as a, TraceStore(":memory:") as b:
            _ingest_sample(a, run_id="run-a")
            _ingest_sample(b, run_id="run-b")
            assert a.digest() != b.digest()

    def test_digest_covers_logical_dump(self):
        with TraceStore(":memory:") as store:
            _ingest_sample(store)
            dump = store.dump_canonical()
        assert '"table":"runs"' in dump
        assert '"table":"spans"' in dump
        assert dump.endswith("\n")

    def test_file_backed_store_round_trips(self, tmp_path):
        path = str(tmp_path / "obs.sqlite")
        with TraceStore(path) as store:
            _ingest_sample(store)
            d1 = store.digest()
        with TraceStore(path) as store:
            d2 = store.digest()
        assert d1 == d2


class TestRunIdentity:
    def test_obs_run_id_is_content_addressed(self):
        run = run_scenario("selfckpt", seed=3, iters=2, ckpt_every=1)
        again = run_scenario("selfckpt", seed=3, iters=2, ckpt_every=1)
        other = run_scenario("selfckpt", seed=4, iters=2, ckpt_every=1)
        assert obs_run_id(run) == obs_run_id(again)
        assert obs_run_id(run) != obs_run_id(other)

    def test_attempt_run_id_reuses_replay_fingerprint(self):
        from repro.chaos.scenarios import selfckpt_scenario
        from repro.par.cache import replay_fingerprint
        from repro.par.replay import ReplaySpec
        from repro.sim.failures import TimeTrigger

        sc = selfckpt_scenario(
            n_nodes=2, procs_per_node=1, group_size=2, iters=2, ckpt_every=1
        )
        trig = TimeTrigger(node_id=0, at_time=2.5)
        rid = attempt_run_id(sc, (trig,), "summary")
        assert rid == replay_fingerprint(
            ReplaySpec(sc.spec, (trig,), obs="summary")
        )
        # the obs mode is part of the identity: modes never collide
        assert rid != attempt_run_id(sc, (trig,), "off")

    def test_ingest_obs_run_full_fidelity(self):
        run = run_scenario(
            "selfckpt", fail_at="flush:1", seed=3, iters=2, ckpt_every=1
        )
        with TraceStore(":memory:") as store:
            rid = store.ingest_obs_run(run)
            counts = store.counts()
            mode = store.query(
                "SELECT obs_mode, verdict FROM runs WHERE run_id = ?", (rid,)
            )[0]
        assert counts["spans"] == len(run.spans)
        assert counts["summaries"] > 0
        assert mode == ("full", "completed")


class TestSpanDocRoundTrip:
    def test_exact_round_trip_including_interrupted(self):
        spans = _sample_tracer().spans()
        assert any(s.end is None for s in spans)
        back = [span_from_doc(span_doc(s)) for s in spans]
        assert back == spans

    def test_summary_is_float_valued(self):
        summary = attempt_summary(_sample_tracer().spans(), _registry())
        assert summary["spans.count"] == 4.0
        assert summary["spans.interrupted"] == 1.0
        assert all(isinstance(v, float) for v in summary.values())
        assert summary["traffic.bytes_stranded"] == 32.0
