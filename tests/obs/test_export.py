"""Exporter tests: Chrome trace round-trip, metrics JSON-lines."""

import json

from repro.obs.export import (
    chrome_trace_json,
    metrics_jsonl,
    parse_chrome_trace,
    read_metrics_jsonl,
    span_tree,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.scenario import run_scenario
from repro.obs.spans import SpanTracer


def _sample_tracer():
    tr = SpanTracer()
    tr.begin(0, "ckpt", 1.0, {"epoch": 0, "method": "self"})
    tr.begin(0, "ckpt.encode", 1.25, {"nbytes": 4096})
    tr.end(0, 1.75)
    tr.end(0, 2.0)
    tr.begin(1, "ckpt", 1.0, {"epoch": 0})
    tr.close_rank(1, 1.5)  # rank 1 died mid-checkpoint
    tr.new_incarnation(1)
    tr.begin(1, "restore", 0.0, {"missing": 1})
    tr.begin(1, "restore.rebuild", 0.1)
    tr.end(1, 0.6)
    tr.end(1, 0.7)
    return tr


class TestChromeTrace:
    def test_document_shape(self):
        doc = json.loads(chrome_trace_json(_sample_tracer().spans()))
        assert "traceEvents" in doc
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 5
        # one process_name + thread_name pair per (incarnation, rank) track
        assert len(ms) == 2 * 3
        for e in xs:
            assert set(e) == {"ph", "name", "cat", "pid", "tid", "ts", "dur", "args"}
            assert e["args"]["span_id"]

    def test_round_trip_same_span_tree(self):
        spans = _sample_tracer().spans()
        parsed = parse_chrome_trace(chrome_trace_json(spans))
        assert span_tree(parsed) == span_tree(spans)
        for orig, back in zip(spans, parsed):
            assert back.span_id == orig.span_id
            assert back.name == orig.name
            assert back.rank == orig.rank
            assert back.incarnation == orig.incarnation
            assert back.status == orig.status
            assert back.attrs == orig.attrs
            assert abs(back.begin - orig.begin) < 1e-9
            assert abs(back.end - orig.end) < 1e-9

    def test_round_trip_through_file(self, tmp_path):
        spans = _sample_tracer().spans()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), spans)
        parsed = parse_chrome_trace(path.read_text())
        assert span_tree(parsed) == span_tree(spans)

    def test_scenario_round_trip(self):
        """End-to-end golden check: a real failure run exports a trace whose
        parse reproduces the exact span tree, interrupted spans included."""
        run = run_scenario("skt-hpl", fail_at="panel:3", n=32, seed=7)
        spans = run.spans
        parsed = parse_chrome_trace(chrome_trace_json(spans))
        assert span_tree(parsed) == span_tree(spans)
        assert any(s.status != "ok" for s in parsed)  # the kill is visible
        assert {s.incarnation for s in parsed} == {0, 1}

    def test_export_is_deterministic(self):
        a = chrome_trace_json(_sample_tracer().spans())
        b = chrome_trace_json(_sample_tracer().spans())
        assert a == b


class TestMetricsJsonl:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("mpi.bytes_sent", rank=0, cls="pt2pt").inc(100)
        reg.gauge("job.makespan_s").set(12.5)
        reg.histogram("mpi.blocked_s", rank=1).observe(0.25)
        recs = read_metrics_jsonl(metrics_jsonl(reg))
        assert len(recs) == 3
        by_name = {r["name"]: r for r in recs}
        assert by_name["mpi.bytes_sent"]["value"] == 100
        assert by_name["mpi.bytes_sent"]["labels"] == {"cls": "pt2pt", "rank": 0}
        assert by_name["job.makespan_s"]["kind"] == "gauge"
        hist = by_name["mpi.blocked_s"]
        assert hist["count"] == 1 and sum(hist["counts"]) == 1

    def test_empty_registry(self):
        assert metrics_jsonl(MetricsRegistry()) == ""
        assert read_metrics_jsonl("") == []

    def test_ordering_deterministic(self):
        def build():
            reg = MetricsRegistry()
            for r in (3, 1, 2, 0):
                reg.counter("mpi.msgs_recv", rank=r, cls="pt2pt").inc(r)
            reg.counter("shm.ops", node=1, kind="write").inc()
            return metrics_jsonl(reg)

        assert build() == build()
