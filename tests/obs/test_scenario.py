"""Scenario runner, report, bench record and CLI tests."""

import json

import pytest

# alias: bench_* names would otherwise be collected as benchmark functions
from repro.obs.bench import BENCH_SCHEMA_VERSION
from repro.obs.bench import bench_record as make_bench_record
from repro.obs.cli import obs_main
from repro.obs.report import (
    aggregate_by_name,
    critical_path,
    rank_busy,
    recovery_path,
    render_report,
)
from repro.obs.scenario import parse_fail_at, run_scenario, write_artifacts


class TestParseFailAt:
    def test_alias_and_occurrence(self):
        assert parse_fail_at("panel:3") == ("hpl.panel", 3)
        assert parse_fail_at("encode") == ("ckpt.encode", 1)
        assert parse_fail_at("my.phase:2") == ("my.phase", 2)
        assert parse_fail_at(None) is None

    def test_bad_occurrence(self):
        with pytest.raises(ValueError):
            parse_fail_at("panel:0")


class TestScenario:
    def test_clean_run_completes_without_restart(self):
        run = run_scenario("skt-hpl", n=32)
        assert run.completed and run.n_restarts == 0
        assert run.spans
        assert recovery_path(run.spans) == []  # nothing to recover

    def test_failure_run_recovers(self):
        run = run_scenario("skt-hpl", fail_at="panel:3", n=32)
        assert run.completed and run.n_restarts == 1
        names = {s.name for s in run.spans}
        assert {"hpl.panel", "ckpt", "restore"} <= names
        rec = recovery_path(run.spans)
        assert rec and rec[0].name == "restore"
        assert run.registry.total("restore.count") > 0

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("nope")


class TestReport:
    def _spans(self):
        return run_scenario("selfckpt", fail_at="encode:2").spans

    def test_aggregate_sorted_by_total(self):
        rows = aggregate_by_name(self._spans())
        totals = [t for _, _, t, _, _ in rows]
        assert totals == sorted(totals, reverse=True)

    def test_rank_busy_only_roots(self):
        spans = self._spans()
        busy = rank_busy(spans)
        assert set(busy) == {s.rank for s in spans if s.parent_id is None}

    def test_critical_path_is_a_chain(self):
        spans = self._spans()
        chain = critical_path(spans)
        assert chain
        for parent, child in zip(chain, chain[1:]):
            assert child.parent_id == parent.span_id

    def test_render_report_sections(self):
        run = run_scenario("selfckpt", fail_at="encode:2")
        text = render_report(run.spans, run.registry)
        assert "top spans by inclusive virtual time" in text
        assert "per-rank busy-time imbalance" in text
        assert "critical path" in text
        assert "recovery critical path" in text
        assert "message balance" in text


class TestBenchRecord:
    def test_record_fields(self):
        run = run_scenario("skt-hpl", fail_at="panel:3", n=32)
        rec = make_bench_record(run)
        assert rec["schema"] == BENCH_SCHEMA_VERSION
        assert rec["bench"] == "obs"
        assert rec["completed"] is True
        assert rec["n_restarts"] == 1
        assert rec["traffic"]["bytes_sent"] == rec["traffic"]["bytes_recv"]
        assert rec["traffic"]["bytes_stranded"] >= 0
        assert rec["recovery_path"] and rec["recovery_path"][0]["name"] == "restore"
        assert rec["failures_injected"] == 1
        json.dumps(rec)  # must be JSON-serializable as-is


class TestArtifactsAndCli:
    def test_write_artifacts_deterministic(self, tmp_path):
        outs = []
        for sub in ("a", "b"):
            run = run_scenario("skt-hpl", fail_at="panel:3", n=32)
            paths = write_artifacts(run, str(tmp_path / sub))
            outs.append(
                {k: open(p, "rb").read() for k, p in sorted(paths.items())}
            )
        assert outs[0] == outs[1]
        assert len(outs[0]) == 4

    def test_cli_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "obs"
        rc = obs_main(
            [
                "--scenario", "skt-hpl", "--fail-at", "panel:3",
                "--n", "32", "--out", str(out),
            ]
        )
        assert rc == 0
        for name in ("trace.json", "metrics.jsonl", "report.txt", "BENCH_obs.json"):
            assert (out / name).stat().st_size > 0
        doc = json.loads((out / "trace.json").read_text())
        assert doc["traceEvents"]
        printed = capsys.readouterr().out
        assert "recovery critical path" in printed
        assert "wrote bench" in printed

    def test_cli_report_only(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = obs_main(["--scenario", "selfckpt", "--report-only"])
        assert rc == 0
        assert not (tmp_path / "obs-out").exists()
        assert "message balance" in capsys.readouterr().out
