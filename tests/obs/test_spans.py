"""Tests for the span tracer and its runtime integration."""

import pytest

from repro.obs.spans import (
    STATUS_INTERRUPTED,
    STATUS_OK,
    NULL_SPAN,
    SpanTracer,
)
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger


class TestTracerUnit:
    def test_nesting_records_parent(self):
        tr = SpanTracer()
        outer = tr.begin(0, "ckpt", 1.0)
        inner = tr.begin(0, "ckpt.encode", 1.5)
        assert inner.parent_id == outer.span_id
        tr.end(0, 2.0)
        tr.end(0, 2.5)
        assert outer.duration == pytest.approx(1.5)
        assert inner.duration == pytest.approx(0.5)
        assert tr.children_of(outer) == [inner]
        assert tr.roots() == [outer]

    def test_span_ids_are_program_order(self):
        tr = SpanTracer()
        a = tr.begin(1, "ckpt", 0.0)
        tr.end(1, 1.0)
        b = tr.begin(1, "restore", 2.0)
        assert a.span_id == "i0.r1.0"
        assert b.span_id == "i0.r1.1"

    def test_ranks_have_independent_stacks(self):
        tr = SpanTracer()
        a = tr.begin(0, "ckpt", 0.0)
        b = tr.begin(1, "ckpt", 0.0)
        assert a.parent_id is None and b.parent_id is None
        assert tr.end(1, 1.0) is b
        assert tr.end(0, 1.0) is a

    def test_close_rank_marks_interrupted(self):
        tr = SpanTracer()
        tr.begin(0, "ckpt", 0.0)
        tr.begin(0, "ckpt.commit", 0.5)
        closed = tr.close_rank(0, 3.0)
        assert len(closed) == 2
        assert all(s.status == STATUS_INTERRUPTED for s in closed)
        assert all(s.end == 3.0 for s in closed)

    def test_new_incarnation_partitions_ids(self):
        tr = SpanTracer()
        tr.begin(0, "ckpt", 0.0)
        tr.end(0, 1.0)
        tr.new_incarnation(1)
        s = tr.begin(0, "restore", 0.0)
        assert s.span_id == "i1.r0.0"
        assert s.incarnation == 1
        assert [x.incarnation for x in tr.spans()] == [0, 1]

    def test_end_without_open_span_is_noop(self):
        assert SpanTracer().end(0, 1.0) is None

    def test_null_span_context(self):
        with NULL_SPAN:
            pass  # reentrant no-op


class TestRuntimeIntegration:
    def test_spans_recorded_with_virtual_clocks(self):
        def main(ctx):
            with ctx.span("ckpt", epoch=0):
                ctx.elapse(1.0)
                with ctx.span("ckpt.encode", nbytes=64):
                    ctx.elapse(0.5)

        tracer = SpanTracer()
        res = Job(Cluster(2), main, 2, procs_per_node=1, tracer=tracer).run()
        assert res.completed
        spans = tracer.spans()
        assert len(spans) == 4  # 2 spans x 2 ranks
        enc = tracer.by_name("ckpt.encode")
        assert all(s.duration == pytest.approx(0.5) for s in enc)
        assert all(s.attrs == {"nbytes": 64} for s in enc)
        for s in enc:
            (parent,) = [p for p in tracer.spans() if p.span_id == s.parent_id]
            assert parent.name == "ckpt" and parent.rank == s.rank

    def test_no_tracer_is_noop(self):
        def main(ctx):
            with ctx.span("ckpt"):
                ctx.elapse(0.1)
            return True

        res = Job(Cluster(1), main, 1, procs_per_node=1).run()
        assert res.completed

    def test_exception_marks_span_interrupted(self):
        def main(ctx):
            try:
                with ctx.span("ckpt"):
                    raise RuntimeError("boom")
            except RuntimeError:
                return True

        tracer = SpanTracer()
        res = Job(Cluster(1), main, 1, procs_per_node=1, tracer=tracer).run()
        assert res.completed
        (span,) = tracer.spans()
        assert span.status == STATUS_INTERRUPTED

    def test_failure_closes_open_spans_interrupted(self):
        def main(ctx):
            with ctx.span("ckpt"):
                ctx.phase("ckpt.encode")  # the trigger fires here
                ctx.elapse(1.0)

        tracer = SpanTracer()
        plan = FailurePlan([PhaseTrigger(node_id=1, phase="ckpt.encode")])
        res = Job(
            Cluster(2), main, 2, procs_per_node=1,
            failure_plan=plan, tracer=tracer,
        ).run()
        assert res.aborted
        dead = [s for s in tracer.spans() if s.rank == 1]
        assert dead and all(s.status == STATUS_INTERRUPTED for s in dead)
        assert all(s.closed for s in tracer.spans())

    def test_span_ids_deterministic_across_runs(self):
        def main(ctx):
            for e in range(3):
                with ctx.span("ckpt", epoch=e):
                    ctx.elapse(0.25)
                    ctx.world.barrier()

        def fingerprint():
            tracer = SpanTracer()
            Job(Cluster(2), main, 2, procs_per_node=1, tracer=tracer).run()
            return [
                (s.span_id, s.name, s.rank, s.begin, s.end, s.status)
                for s in tracer.spans()
            ]

        assert fingerprint() == fingerprint()

    def test_status_literals_match_obs_constants(self):
        # runtime._SpanHandle uses string literals to avoid importing obs;
        # they must stay in sync with the canonical constants
        assert STATUS_OK == "ok"
        assert STATUS_INTERRUPTED == "interrupted"
