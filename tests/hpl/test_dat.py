"""Tests for HPL.dat parsing/formatting."""

import pytest

from repro.hpl.dat import HPLDat, format_hpl_dat, parse_hpl_dat

SAMPLE = """HPLinpack benchmark input file
Innovative Computing Laboratory, University of Tennessee
HPL.out      output file name (if any)
6            device out (6=stdout,7=stderr,file)
2            # of problems sizes (N)
1000 2000    Ns
2            # of NBs
32 64        NBs
0            PMAP process mapping (0=Row-,1=Column-major)
1            # of process grids (P x Q)
2            Ps
4            Qs
16.0         threshold
"""


class TestParse:
    def test_sample(self):
        dat = parse_hpl_dat(SAMPLE)
        assert dat.ns == [1000, 2000]
        assert dat.nbs == [32, 64]
        assert dat.grids == [(2, 4)]

    def test_configs_cross_product(self):
        dat = parse_hpl_dat(SAMPLE)
        cfgs = dat.configs()
        assert len(cfgs) == 4
        assert {(c.n, c.nb) for c in cfgs} == {
            (1000, 32),
            (2000, 32),
            (1000, 64),
            (2000, 64),
        }
        assert all((c.p, c.q) == (2, 4) for c in cfgs)

    def test_truncated_file_rejected(self):
        with pytest.raises(ValueError, match="12 lines"):
            parse_hpl_dat("just\ntwo lines")

    def test_count_mismatch_rejected(self):
        bad = SAMPLE.replace("2            # of problems sizes", "3            # of problems sizes")
        with pytest.raises(ValueError, match="problem sizes"):
            parse_hpl_dat(bad)


class TestRoundtrip:
    def test_format_then_parse(self):
        dat = HPLDat(ns=[96, 192], nbs=[8, 16], grids=[(2, 2), (1, 4)])
        again = parse_hpl_dat(format_hpl_dat(dat))
        assert again.ns == dat.ns
        assert again.nbs == dat.nbs
        assert again.grids == dat.grids

    def test_configs_runnable(self):
        """Configs parsed from a dat file drive real solver runs."""
        import numpy as np

        from repro.hpl import hpl_main
        from repro.hpl.matgen import dense_matrix, dense_rhs
        from repro.sim import Cluster, Job

        dat = HPLDat(ns=[32], nbs=[8], grids=[(2, 2)])
        text = format_hpl_dat(dat)
        cfg = parse_hpl_dat(text).configs()[0]
        cluster = Cluster(cfg.n_ranks)
        res = Job(
            cluster, lambda ctx: hpl_main(ctx, cfg), cfg.n_ranks, procs_per_node=1
        ).run()
        assert res.completed
        x_ref = np.linalg.solve(dense_matrix(cfg), dense_rhs(cfg))
        np.testing.assert_allclose(res.rank_results[0].x, x_ref, rtol=1e-8)
