"""SKT-HPL integration tests: checkpoint/restore correctness and the
power-off survival the paper validates in sections 6.2-6.3."""

import numpy as np
import pytest

from repro.hpl import (
    HPLConfig,
    JobDaemon,
    RestartPolicy,
    SKTConfig,
    skt_hpl_main,
)
from repro.hpl.matgen import dense_matrix, dense_rhs
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger

CFG = HPLConfig(n=96, nb=8, p=2, q=4)  # 8 ranks, 12 panels


def x_ref():
    return np.linalg.solve(dense_matrix(CFG), dense_rhs(CFG))


def daemon_run(scfg, plan, n_spares=2, max_restarts=3):
    cluster = Cluster(8, n_spares=n_spares)
    daemon = JobDaemon(
        cluster,
        skt_hpl_main,
        8,
        args=(scfg,),
        procs_per_node=1,
        failure_plan=plan,
        policy=RestartPolicy(max_restarts=max_restarts),
    )
    return daemon.run()


class TestFaultFree:
    @pytest.mark.parametrize("method", ["self", "double", "single", "disk-ssd"])
    def test_correct_solution_with_checkpoints(self, method):
        scfg = SKTConfig(hpl=CFG, method=method, group_size=4, interval_panels=3)
        cluster = Cluster(8)
        res = Job(
            cluster, skt_hpl_main, 8, args=(scfg,), procs_per_node=1
        ).run()
        assert res.completed, res.rank_errors
        r0 = res.rank_results[0]
        assert r0.hpl.passed
        assert not r0.restored
        assert r0.n_checkpoints == 3  # panels 3, 6, 9 (12 is last, skipped)
        np.testing.assert_allclose(r0.hpl.x, x_ref(), rtol=1e-8)

    def test_checkpoint_time_accounted(self):
        scfg = SKTConfig(hpl=CFG, method="self", group_size=4, interval_panels=3)
        cluster = Cluster(8)
        res = Job(cluster, skt_hpl_main, 8, args=(scfg,), procs_per_node=1).run()
        r0 = res.rank_results[0]
        assert r0.ckpt_encode_s > 0
        assert r0.ckpt_flush_s > 0
        assert r0.overhead_bytes > 0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SKTConfig(hpl=CFG, interval_panels=0)
        with pytest.raises(ValueError):
            SKTConfig(hpl=CFG, auto_interval_mtbf_s=0.0)

    def test_auto_interval_adapts_to_mtbf(self):
        """Young-driven pacing: a hostile MTBF forces frequent checkpoints,
        a benign one backs off to almost none."""

        def run(mtbf):
            scfg = SKTConfig(
                hpl=CFG,
                method="self",
                group_size=4,
                interval_panels=2,
                auto_interval_mtbf_s=mtbf,
            )
            cluster = Cluster(8)
            res = Job(cluster, skt_hpl_main, 8, args=(scfg,), procs_per_node=1).run()
            assert res.completed, res.rank_errors
            r0 = res.rank_results[0]
            assert r0.hpl.passed
            return r0.n_checkpoints

        # virtual panels take ~10 us here, so the crossover MTBF is tiny
        assert run(1e-9) > run(1e3) >= 1

    def test_auto_interval_recovery_still_works(self):
        scfg = SKTConfig(
            hpl=CFG,
            method="self",
            group_size=4,
            interval_panels=2,
            auto_interval_mtbf_s=1e-9,  # checkpoint every panel
        )
        plan = FailurePlan([PhaseTrigger(node_id=3, phase="ckpt.flush", occurrence=4)])
        report = daemon_run(scfg, plan)
        assert report.completed, report.gave_up_reason
        r0 = report.result.rank_results[0]
        assert r0.restored and r0.hpl.passed


class TestPowerOff:
    """The paper's §6.3 validation: remove a node mid-run; SKT-HPL must
    replace it with a spare, recover the data and pass verification."""

    @pytest.mark.parametrize(
        "phase",
        ["ckpt.encode", "ckpt.flush_license", "ckpt.flush", "ckpt.done"],
    )
    def test_recovers_from_every_checkpoint_phase(self, phase):
        scfg = SKTConfig(hpl=CFG, method="self", group_size=4, interval_panels=3)
        plan = FailurePlan([PhaseTrigger(node_id=3, phase=phase, occurrence=2)])
        report = daemon_run(scfg, plan)
        assert report.completed, report.gave_up_reason
        assert report.n_restarts == 1
        r0 = report.result.rank_results[0]
        assert r0.restored and r0.hpl.passed
        np.testing.assert_allclose(r0.hpl.x, x_ref(), rtol=1e-8)

    def test_resumes_from_checkpoint_not_scratch(self):
        scfg = SKTConfig(hpl=CFG, method="self", group_size=4, interval_panels=3)
        plan = FailurePlan([PhaseTrigger(node_id=1, phase="ckpt.done", occurrence=2)])
        report = daemon_run(scfg, plan)
        r0 = report.result.rank_results[0]
        assert r0.restored_panel == 6  # second checkpoint covered panels 0-5

    def test_two_sequential_failures(self):
        scfg = SKTConfig(hpl=CFG, method="self", group_size=4, interval_panels=3)
        plan = FailurePlan(
            [
                PhaseTrigger(node_id=2, phase="ckpt.done", occurrence=1),
                PhaseTrigger(node_id=5, phase="ckpt.flush", occurrence=3),
            ]
        )
        report = daemon_run(scfg, plan, n_spares=3, max_restarts=4)
        assert report.completed
        assert report.n_restarts == 2
        assert report.result.rank_results[0].hpl.passed

    def test_downtime_accounting(self):
        scfg = SKTConfig(hpl=CFG, method="self", group_size=4, interval_panels=3)
        plan = FailurePlan([PhaseTrigger(node_id=3, phase="ckpt.done", occurrence=2)])
        policy = RestartPolicy(detect_s=63.0, replace_s=10.0, restart_s=9.0)
        cluster = Cluster(8, n_spares=2)
        report = JobDaemon(
            cluster,
            skt_hpl_main,
            8,
            args=(scfg,),
            procs_per_node=1,
            failure_plan=plan,
            policy=policy,
        ).run()
        assert report.downtime_s == pytest.approx(82.0)
        assert report.total_virtual_s > report.downtime_s

    @pytest.mark.parametrize("method", ["double", "disk-hdd", "multilevel"])
    def test_other_recoverable_methods_also_survive(self, method):
        scfg = SKTConfig(hpl=CFG, method=method, group_size=4, interval_panels=3)
        phase = "ckpt.flush" if method == "disk-hdd" else "ckpt.update.mid"
        plan = FailurePlan([PhaseTrigger(node_id=3, phase=phase, occurrence=2)])
        report = daemon_run(scfg, plan)
        assert report.completed, report.gave_up_reason
        r0 = report.result.rank_results[0]
        assert r0.hpl.passed and r0.restored

    def test_single_checkpoint_fails_midupdate(self):
        scfg = SKTConfig(hpl=CFG, method="single", group_size=4, interval_panels=3)
        plan = FailurePlan(
            [PhaseTrigger(node_id=3, phase="ckpt.update.mid", occurrence=2)]
        )
        report = daemon_run(scfg, plan)
        assert not report.completed
        assert report.gave_up_reason == "application state unrecoverable"

    def test_simultaneous_double_loss_rs_recovers(self):
        """Extension: SKT-HPL on the Reed-Solomon scheme survives two
        nodes of one group dying at the same instant."""
        scfg = SKTConfig(hpl=CFG, method="self-rs", group_size=8, interval_panels=3)
        plan = FailurePlan(
            [
                PhaseTrigger(
                    node_id=2, phase="ckpt.flush", occurrence=2, extra_nodes=(5,)
                )
            ]
        )
        report = daemon_run(scfg, plan, n_spares=4)
        assert report.completed, report.gave_up_reason
        r0 = report.result.rank_results[0]
        assert r0.restored and r0.hpl.passed
        np.testing.assert_allclose(r0.hpl.x, x_ref(), rtol=1e-8)

    def test_simultaneous_double_loss_xor_fails(self):
        scfg = SKTConfig(hpl=CFG, method="self", group_size=8, interval_panels=3)
        plan = FailurePlan(
            [
                PhaseTrigger(
                    node_id=2, phase="ckpt.flush", occurrence=2, extra_nodes=(5,)
                )
            ]
        )
        report = daemon_run(scfg, plan, n_spares=4)
        assert not report.completed
        assert report.gave_up_reason == "application state unrecoverable"

    def test_spare_pool_exhaustion_reported(self):
        scfg = SKTConfig(hpl=CFG, method="self", group_size=4, interval_panels=3)
        plan = FailurePlan([PhaseTrigger(node_id=3, phase="ckpt.done", occurrence=1)])
        report = daemon_run(scfg, plan, n_spares=0)
        assert not report.completed
        assert report.gave_up_reason == "spare pool exhausted"
