"""Correctness tests of the distributed HPL solver against serial numpy."""

import numpy as np
import pytest

from repro.hpl import HPLConfig, hpl_main
from repro.hpl.core import RESIDUAL_THRESHOLD, SingularMatrixError, _factor_panel
from repro.hpl.matgen import dense_matrix, dense_rhs
from repro.sim import Cluster, Job


def run_hpl(cfg: HPLConfig):
    cl = Cluster(cfg.n_ranks)
    res = Job(
        cl, lambda ctx: hpl_main(ctx, cfg), cfg.n_ranks, procs_per_node=1
    ).run()
    assert res.completed, res.rank_errors
    return res


@pytest.mark.parametrize(
    "n,nb,p,q",
    [
        (16, 4, 1, 1),  # serial
        (32, 4, 2, 2),  # square grid
        (32, 4, 1, 4),  # row of processes
        (32, 4, 4, 1),  # column of processes
        (37, 5, 2, 3),  # n not divisible by nb, rectangular grid
        (64, 8, 2, 2),
        (60, 7, 3, 2),
        (48, 48, 2, 2),  # single panel spanning everything
    ],
)
def test_solution_matches_serial_reference(n, nb, p, q):
    cfg = HPLConfig(n=n, nb=nb, p=p, q=q)
    res = run_hpl(cfg)
    r0 = res.rank_results[0]
    x_ref = np.linalg.solve(dense_matrix(cfg), dense_rhs(cfg))
    assert r0.passed, r0.residual
    assert r0.residual < RESIDUAL_THRESHOLD
    np.testing.assert_allclose(r0.x, x_ref, rtol=1e-8, atol=1e-10)


def test_all_ranks_agree_on_solution():
    cfg = HPLConfig(n=32, nb=8, p=2, q=2)
    res = run_hpl(cfg)
    for r in range(1, cfg.n_ranks):
        np.testing.assert_array_equal(res.rank_results[0].x, res.rank_results[r].x)


def test_gflops_and_elapsed_positive():
    cfg = HPLConfig(n=32, nb=8, p=2, q=2)
    r0 = run_hpl(cfg).rank_results[0]
    assert r0.elapsed_s > 0
    assert r0.gflops > 0
    assert r0.timers.total() > 0
    assert r0.timers.update > 0  # GEMM dominates


def test_larger_problem_higher_efficiency():
    """The paper's section 4 premise: efficiency rises with problem size."""

    def eff(n):
        cfg = HPLConfig(n=n, nb=8, p=2, q=2)
        res = run_hpl(cfg)
        peak = 4 * Cluster(1).spec.flops_per_core
        return cfg.flops / res.makespan / peak

    assert eff(192) > eff(48)


def test_factor_panel_matches_lapack():
    """The unblocked getf2 against scipy's LU on a tall panel."""
    import scipy.linalg as sla

    class _Ctx:
        clock = 0.0

        def compute(self, *a, **k):
            pass

    rng = np.random.default_rng(0)
    a = rng.standard_normal((12, 4))
    panel = a.copy()
    piv = _factor_panel(_Ctx(), panel, k0=100)
    lu, piv_ref = sla.lu_factor(a)
    # same pivot choices (expressed as global rows offset by k0)
    np.testing.assert_array_equal(piv - 100, piv_ref[:4])
    np.testing.assert_allclose(panel[:4, :], lu[:4, :4], rtol=1e-12)


def test_singular_matrix_detected():
    class _Ctx:
        clock = 0.0

        def compute(self, *a, **k):
            pass

    panel = np.zeros((4, 2))
    with pytest.raises(SingularMatrixError):
        _factor_panel(_Ctx(), panel, k0=0)


def test_deterministic_across_runs():
    cfg = HPLConfig(n=32, nb=4, p=2, q=2)
    x1 = run_hpl(cfg).rank_results[0].x
    x2 = run_hpl(cfg).rank_results[0].x
    np.testing.assert_array_equal(x1, x2)
