"""Tests for block-cyclic maps, the process grid, and matrix generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hpl import BlockCyclicMap, HPLConfig, ProcessGrid
from repro.hpl.matgen import (
    dense_matrix,
    dense_rhs,
    generate_block,
    generate_local_matrix,
    generate_local_rhs,
)
from repro.sim import Cluster, Job


class TestConfig:
    def test_derived_quantities(self):
        cfg = HPLConfig(n=100, nb=16, p=2, q=3)
        assert cfg.n_ranks == 6
        assert cfg.n_blocks == 7
        assert cfg.flops == pytest.approx((2 / 3) * 100**3 + 1.5 * 100**2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0, "nb": 1, "p": 1, "q": 1},
            {"n": 4, "nb": 8, "p": 1, "q": 1},
            {"n": 4, "nb": 2, "p": 0, "q": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HPLConfig(**kwargs)


class TestBlockCyclicMap:
    def test_owner_round_robin_over_blocks(self):
        m = BlockCyclicMap(n=16, nb=4, nprocs=2)
        assert [m.owner(i) for i in (0, 3, 4, 7, 8, 12)] == [0, 0, 1, 1, 0, 1]

    def test_local_index_packing(self):
        m = BlockCyclicMap(n=16, nb=4, nprocs=2)
        # proc 0 owns globals 0-3 and 8-11 at locals 0-7
        assert [m.local_index(i) for i in (0, 3, 8, 11)] == [0, 3, 4, 7]

    def test_globals_inverse(self):
        m = BlockCyclicMap(n=37, nb=5, nprocs=3)
        for p in range(3):
            for li, g in enumerate(m.globals_of(p)):
                assert m.owner(g) == p
                assert m.local_index(g) == li

    def test_counts_partition(self):
        m = BlockCyclicMap(n=37, nb=5, nprocs=3)
        assert sum(m.local_count(p) for p in range(3)) == 37

    def test_local_start_is_suffix_boundary(self):
        m = BlockCyclicMap(n=32, nb=4, nprocs=2)
        for p in range(2):
            gl = m.globals_of(p)
            for cut in (0, 5, 16, 31, 32):
                s = m.local_start(p, cut)
                assert np.all(gl[s:] >= cut)
                assert np.all(gl[:s] < cut)

    @given(
        n=st.integers(min_value=1, max_value=200),
        nb=st.integers(min_value=1, max_value=16),
        nprocs=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_bijection_property(self, n, nb, nprocs):
        m = BlockCyclicMap(n, nb, nprocs)
        seen = set()
        for p in range(nprocs):
            for g in m.globals_of(p):
                seen.add(int(g))
        assert seen == set(range(n))


class TestProcessGrid:
    def test_coords_and_subcomms(self):
        def main(ctx):
            grid = ProcessGrid(ctx.world, 2, 3)
            r = ctx.world.rank
            assert (grid.myrow, grid.mycol) == (r // 3, r % 3)
            assert grid.row_comm.size == 3
            assert grid.col_comm.size == 2
            assert grid.row_comm.rank == grid.mycol
            assert grid.col_comm.rank == grid.myrow
            assert grid.rank_of(grid.myrow, grid.mycol) == r
            return True

        cl = Cluster(6)
        res = Job(cl, main, 6, procs_per_node=1).run()
        assert res.completed, res.rank_errors

    def test_size_mismatch(self):
        def main(ctx):
            with pytest.raises(ValueError):
                ProcessGrid(ctx.world, 2, 3)
            return True

        cl = Cluster(4)
        assert Job(cl, main, 4, procs_per_node=1).run().completed


class TestMatgen:
    def test_block_determinism(self):
        cfg = HPLConfig(n=32, nb=8, p=2, q=2)
        np.testing.assert_array_equal(
            generate_block(cfg, 1, 2), generate_block(cfg, 1, 2)
        )

    def test_blocks_differ(self):
        cfg = HPLConfig(n=32, nb=8, p=2, q=2)
        assert not np.array_equal(generate_block(cfg, 0, 1), generate_block(cfg, 1, 0))

    def test_seed_changes_matrix(self):
        a = generate_block(HPLConfig(n=16, nb=8, p=1, q=1, seed=1), 0, 0)
        b = generate_block(HPLConfig(n=16, nb=8, p=1, q=1, seed=2), 0, 0)
        assert not np.array_equal(a, b)

    def test_edge_blocks_are_cropped(self):
        cfg = HPLConfig(n=10, nb=4, p=1, q=1)
        assert generate_block(cfg, 2, 2).shape == (2, 2)
        assert generate_block(cfg, 2, 0).shape == (2, 4)

    def test_local_pieces_tile_the_dense_matrix(self):
        cfg = HPLConfig(n=37, nb=5, p=2, q=3)
        rowmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.p)
        colmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.q)
        dense = dense_matrix(cfg)
        for pr in range(cfg.p):
            for pc in range(cfg.q):
                loc = generate_local_matrix(cfg, rowmap, colmap, pr, pc)
                ref = dense[np.ix_(rowmap.globals_of(pr), colmap.globals_of(pc))]
                np.testing.assert_array_equal(loc, ref)

    def test_local_rhs_tiles_dense_rhs(self):
        cfg = HPLConfig(n=23, nb=4, p=3, q=1)
        rowmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.p)
        dense = dense_rhs(cfg)
        for pr in range(cfg.p):
            loc = generate_local_rhs(cfg, rowmap, pr)
            np.testing.assert_array_equal(loc, dense[rowmap.globals_of(pr)])

    def test_matrix_is_well_conditioned(self):
        cfg = HPLConfig(n=64, nb=8, p=1, q=1)
        cond = np.linalg.cond(dense_matrix(cfg))
        assert cond < 1e4

    def test_out_buffer_shape_check(self):
        cfg = HPLConfig(n=16, nb=4, p=2, q=2)
        rowmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.p)
        colmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.q)
        with pytest.raises(ValueError):
            generate_local_matrix(cfg, rowmap, colmap, 0, 0, out=np.zeros((1, 1)))
        with pytest.raises(ValueError):
            generate_local_rhs(cfg, rowmap, 0, out=np.zeros(3))
