"""Property-based HPL testing: for ANY small geometry, the distributed
solver must match the serial reference."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hpl import HPLConfig, hpl_main
from repro.hpl.matgen import dense_matrix, dense_rhs
from repro.sim import Cluster, Job


@given(
    n=st.integers(min_value=8, max_value=48),
    nb=st.integers(min_value=2, max_value=12),
    p=st.integers(min_value=1, max_value=3),
    q=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_hpl_matches_serial_for_any_geometry(n, nb, p, q, seed):
    nb = min(nb, n)
    cfg = HPLConfig(n=n, nb=nb, p=p, q=q, seed=seed)
    cluster = Cluster(cfg.n_ranks)
    res = Job(
        cluster, lambda ctx: hpl_main(ctx, cfg), cfg.n_ranks, procs_per_node=1
    ).run()
    assert res.completed, res.rank_errors
    r0 = res.rank_results[0]
    x_ref = np.linalg.solve(dense_matrix(cfg), dense_rhs(cfg))
    assert r0.passed
    np.testing.assert_allclose(r0.x, x_ref, rtol=1e-7, atol=1e-9)


@given(
    n=st.integers(min_value=8, max_value=40),
    nb=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=10, deadline=None)
def test_skt_restart_equals_straight_run(n, nb, seed):
    """Checkpoint/restore must be semantically invisible: an SKT run that
    restores from a clean mid-run checkpoint produces the same solution as
    an uninterrupted run."""
    from repro.hpl import SKTConfig, skt_hpl_main

    nb = min(nb, n)
    cfg = HPLConfig(n=n, nb=nb, p=2, q=2, seed=seed)
    scfg = SKTConfig(hpl=cfg, method="self", group_size=4, interval_panels=2)

    cluster = Cluster(4)
    first = Job(cluster, skt_hpl_main, 4, args=(scfg,), procs_per_node=1).run()
    assert first.completed, first.rank_errors
    # rerun on the same cluster: restores from the last checkpoint
    second = Job(cluster, skt_hpl_main, 4, args=(scfg,), procs_per_node=1).run()
    assert second.completed, second.rank_errors
    np.testing.assert_array_equal(
        first.rank_results[0].hpl.x, second.rank_results[0].hpl.x
    )
    # wipe SHM so the next hypothesis example starts clean
    for node in cluster.all_nodes():
        node.shm.clear()
