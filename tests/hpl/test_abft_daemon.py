"""Tests for the ABFT baseline and the restart daemon."""

import numpy as np
import pytest

from repro.hpl import (
    HPLConfig,
    JobDaemon,
    RestartPolicy,
    abft_hpl_main,
    hpl_main,
)
from repro.hpl.abft import SoftErrorInjection
from repro.hpl.matgen import dense_matrix, dense_rhs
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger, TimeTrigger

CFG = HPLConfig(n=64, nb=8, p=2, q=2)


class TestABFT:
    def test_clean_run_is_correct(self):
        cl = Cluster(4)
        res = Job(
            cl, lambda ctx: abft_hpl_main(ctx, CFG), 4, procs_per_node=1
        ).run()
        assert res.completed
        r0 = res.rank_results[0]
        assert r0.hpl.passed
        assert r0.errors_detected == 0
        assert r0.checks_run == CFG.n_blocks
        x_ref = np.linalg.solve(dense_matrix(CFG), dense_rhs(CFG))
        np.testing.assert_allclose(r0.hpl.x, x_ref, rtol=1e-8)

    @pytest.mark.parametrize("panel,rank,mag", [(2, 1, 2.5), (4, 3, -7.0), (0, 0, 0.5)])
    def test_soft_error_detected_and_corrected(self, panel, rank, mag):
        inj = SoftErrorInjection(panel=panel, world_rank=rank, magnitude=mag)
        cl = Cluster(4)
        res = Job(
            cl,
            lambda ctx: abft_hpl_main(ctx, CFG, inject=inj),
            4,
            procs_per_node=1,
        ).run()
        assert res.completed
        r = res.rank_results[rank]
        assert r.errors_detected >= 1
        assert r.errors_corrected >= 1
        assert r.hpl.passed  # the corrected run still verifies
        x_ref = np.linalg.solve(dense_matrix(CFG), dense_rhs(CFG))
        np.testing.assert_allclose(r.hpl.x, x_ref, rtol=1e-6)

    def test_uncorrected_error_breaks_verification(self):
        """Without ABFT, the same corruption makes HPL fail — the
        detection is doing real work."""

        def corrupted_hpl(ctx):
            # plain HPL, but corrupt local data partway: simulate by
            # corrupting before the solve on one rank
            from repro.hpl import matgen
            from repro.hpl.core import hpl_solve, verify
            from repro.hpl.grid import BlockCyclicMap, ProcessGrid

            grid = ProcessGrid(ctx.world, CFG.p, CFG.q)
            rowmap = BlockCyclicMap(CFG.n, CFG.nb, CFG.p)
            colmap = BlockCyclicMap(CFG.n, CFG.nb, CFG.q)
            a = matgen.generate_local_matrix(CFG, rowmap, colmap, grid.myrow, grid.mycol)
            b = matgen.generate_local_rhs(CFG, rowmap, grid.myrow)
            hook_state = {"done": False}

            def hook(k):
                if k == 2 and ctx.world.rank == 1 and not hook_state["done"]:
                    a[-1, -1] += 2.5
                    hook_state["done"] = True

            x, _ = hpl_solve(ctx, CFG, grid, rowmap, colmap, a, b, on_panel_end=hook)
            residual, passed = verify(ctx, CFG, grid, rowmap, colmap, x)
            return passed

        cl = Cluster(4)
        res = Job(cl, corrupted_hpl, 4, procs_per_node=1).run()
        assert res.completed
        assert not res.rank_results[0]

    def test_errors_on_two_different_ranks_both_corrected(self):
        """The row checksums localize independently per row, so two
        corruptions on different ranks (hence different rows) both heal."""
        from repro.hpl.abft import _ChecksumState  # noqa: F401 (doc ref)

        def main(ctx):
            # inject on rank 1 after panel 2 AND rank 3 after panel 4 by
            # running abft with per-rank injection plumbing
            inj = None
            if ctx.world.rank == 1:
                inj = SoftErrorInjection(panel=2, world_rank=1, magnitude=1.5)
            elif ctx.world.rank == 3:
                inj = SoftErrorInjection(panel=4, world_rank=3, magnitude=-2.5)
            return abft_hpl_main(ctx, CFG, inject=inj)

        cl = Cluster(4)
        res = Job(cl, main, 4, procs_per_node=1).run()
        assert res.completed
        assert res.rank_results[1].errors_corrected >= 1
        assert res.rank_results[3].errors_corrected >= 1
        assert res.rank_results[0].hpl.passed
        x_ref = np.linalg.solve(dense_matrix(CFG), dense_rhs(CFG))
        np.testing.assert_allclose(res.rank_results[0].hpl.x, x_ref, rtol=1e-6)

    def test_check_every_reduces_check_count(self):
        cl = Cluster(4)
        res = Job(
            cl,
            lambda ctx: abft_hpl_main(ctx, CFG, check_every=4),
            4,
            procs_per_node=1,
        ).run()
        assert res.completed
        assert res.rank_results[0].checks_run == CFG.n_blocks // 4

    def test_node_loss_is_fatal_for_abft(self):
        """The paper's §6.2 finding: ABFT cannot recover the run after a
        power-off — a restart starts from scratch (no state survives)."""
        cl = Cluster(4, n_spares=1)
        plan = FailurePlan([TimeTrigger(node_id=1, at_time=1e-4)])
        job = Job(
            cl,
            lambda ctx: abft_hpl_main(ctx, CFG),
            4,
            procs_per_node=1,
            failure_plan=plan,
        )
        res = job.run()
        assert res.aborted
        # nothing in SHM to restore from
        assert all(len(node.shm) == 0 for node in cl.all_nodes() if node.alive)


class TestRestartPolicy:
    def test_machine_presets(self):
        th1a = RestartPolicy.for_machine("Tianhe-1A")
        th2 = RestartPolicy.for_machine("Tianhe-2")
        assert th1a.detect_s == 30.0  # §6.3: ~30 s on average
        assert th2.detect_s == 63.0
        assert th1a.replace_s == th2.replace_s == 10.0

    def test_overrides(self):
        p = RestartPolicy.for_machine("Tianhe-2", max_restarts=2)
        assert p.detect_s == 63.0 and p.max_restarts == 2

    def test_unknown_machine(self):
        with pytest.raises(ValueError):
            RestartPolicy.for_machine("Summit")


class TestDaemonEdgeCases:
    def test_completes_without_failures(self):
        cl = Cluster(4)
        report = JobDaemon(
            cl, lambda ctx: hpl_main(ctx, CFG), 4, procs_per_node=1
        ).run()
        assert report.completed
        assert report.n_restarts == 0
        assert report.cycles == []

    def test_restart_budget_exhaustion(self):
        cl = Cluster(4, n_spares=10)
        # a failure at every incarnation's first work phase
        plan = FailurePlan(
            [TimeTrigger(node_id=i, at_time=1e-5) for i in (1, 4, 5, 6)]
        )

        def fragile(ctx):
            ctx.elapse(1.0)  # trips the next time trigger
            ctx.world.barrier()
            return True

        report = JobDaemon(
            cl,
            fragile,
            4,
            procs_per_node=1,
            failure_plan=plan,
            policy=RestartPolicy(max_restarts=2),
        ).run()
        assert not report.completed
        assert "exceeded" in report.gave_up_reason

    def test_application_error_not_retried(self):
        calls = {"n": 0}

        def buggy(ctx):
            calls["n"] += 1
            ctx.job.abort()
            ctx.world.barrier()

        cl = Cluster(2)
        report = JobDaemon(cl, buggy, 2, procs_per_node=1).run()
        assert not report.completed
        assert "application error" in report.gave_up_reason
        assert calls["n"] == 2  # one incarnation, two ranks

    def test_ranklist_preserved_for_healthy_nodes(self):
        """Healthy ranks must return to their nodes (SHM affinity)."""
        cl = Cluster(4, n_spares=1)
        plan = FailurePlan([PhaseTrigger(node_id=2, phase="work")])

        def app(ctx):
            ctx.phase("work")
            ctx.world.barrier()
            return ctx.node.node_id

        daemon = JobDaemon(cl, app, 4, procs_per_node=1, failure_plan=plan)
        report = daemon.run()
        assert report.completed and report.n_restarts == 1
        assert report.result.rank_results[0] == 0
        assert report.result.rank_results[1] == 1
        assert report.result.rank_results[2] == 4  # the spare
        assert report.result.rank_results[3] == 3
        assert report.cycles[0].replacements == {2: 4}
