"""Tests for the reliability projection module."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.reliability import (
    expected_failures,
    p_fault_free,
    p_interval_survives_grouped,
    scale_sweep,
)


class TestFaultFree:
    def test_zero_duration_certain(self):
        assert p_fault_free(0.0, 1000, 1e6) == 1.0

    def test_matches_closed_form(self):
        assert p_fault_free(100.0, 10, 1000.0) == pytest.approx(math.exp(-1.0))

    def test_scale_erodes_reliability(self):
        ps = [p_fault_free(3600, n, 1e7) for n in (10, 100, 1000, 10000)]
        assert ps == sorted(ps, reverse=True)

    @given(
        run=st.floats(min_value=0, max_value=1e7),
        n=st.integers(min_value=1, max_value=10**6),
        mtbf=st.floats(min_value=1.0, max_value=1e10),
    )
    @settings(max_examples=60, deadline=None)
    def test_probability_bounds(self, run, n, mtbf):
        assert 0.0 <= p_fault_free(run, n, mtbf) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            p_fault_free(-1, 10, 100)
        with pytest.raises(ValueError):
            expected_failures(1, 0, 100)


class TestExpectedFailures:
    def test_daily_failures_at_scale(self):
        """The paper's §1: 'Blue Waters and Titan have failures everyday'.
        ~27k nodes with 5-year per-node MTBF -> about one failure every
        ~1.4 hours of machine time accumulated per day."""
        failures_per_day = expected_failures(
            24 * 3600, 27648, 5 * 365 * 24 * 3600
        )
        assert failures_per_day > 1.0  # daily failures indeed


class TestGroupedInterval:
    def test_better_than_fault_free_requirement(self):
        """Grouped tolerance (1 loss per group per interval) must beat the
        all-or-nothing fault-free probability over the same interval."""
        kwargs = dict(n_nodes=4096, mtbf_node_s=1e7, group_size=16)
        p_grouped = p_interval_survives_grouped(600.0, **kwargs)
        p_none = p_fault_free(600.0, 4096, 1e7)
        assert p_grouped > p_none

    def test_smaller_groups_more_robust(self):
        p4 = p_interval_survives_grouped(600.0, 4096, 1e6, 4)
        p32 = p_interval_survives_grouped(600.0, 4096, 1e6, 32)
        assert p4 > p32


class TestSweep:
    def test_monotone_trends(self):
        points = scale_sweep()
        ff = [p.p_fault_free_run for p in points]
        ef = [p.expected_failures for p in points]
        assert ff == sorted(ff, reverse=True)
        assert ef == sorted(ef)

    def test_exascale_regime_hopeless_without_ft(self):
        """At 65536 nodes and a 5-year node MTBF, a fault-free 24h run is
        essentially impossible — the paper's motivating regime."""
        point = scale_sweep()[-1]
        assert point.n_nodes == 65536
        assert point.p_fault_free_run < 0.01
        assert point.p_interval_ok_grouped > 0.95
