"""Tests for the efficiency model, machine data, TOP500 data, and cost model."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import (
    TIANHE_1A,
    TIANHE_2,
    TOP10_NOV2016,
    EfficiencyModel,
    efficiency_at_memory_fraction,
    efficiency_lower_bound,
    fit_efficiency_model,
    problem_size_for_memory,
)
from repro.models.ckpt_cost import (
    checkpoint_size_per_process,
    encode_time,
    flush_time,
    recovery_time,
)
from repro.models.efficiency import fit_quality
from repro.models.top500 import average_gain_half_vs_third
from repro.util import GiB


class TestEfficiencyModel:
    def test_monotone_increasing_in_n(self):
        m = EfficiencyModel(a=1.2, b=5000)
        effs = [m.efficiency(n) for n in (1e3, 1e4, 1e5, 1e6)]
        assert effs == sorted(effs)

    def test_asymptote(self):
        m = EfficiencyModel(a=1.25, b=100)
        assert m.asymptote == pytest.approx(0.8)
        assert m.efficiency(1e12) == pytest.approx(0.8, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            EfficiencyModel(a=0.9, b=10)
        with pytest.raises(ValueError):
            EfficiencyModel(a=1.1, b=-1)
        with pytest.raises(ValueError):
            EfficiencyModel(a=1.1, b=1).efficiency(0)

    def test_fit_recovers_exact_parameters(self):
        m = EfficiencyModel(a=1.15, b=20000)
        sizes = np.linspace(3e4, 3e5, 10)
        fit = fit_efficiency_model(sizes, [m.efficiency(n) for n in sizes])
        assert fit.a == pytest.approx(1.15, rel=1e-9)
        assert fit.b == pytest.approx(20000, rel=1e-9)

    def test_fit_quality_r2(self):
        m = EfficiencyModel(a=1.15, b=20000)
        sizes = np.linspace(3e4, 3e5, 10)
        effs = [m.efficiency(n) for n in sizes]
        assert fit_quality(m, sizes, effs) == pytest.approx(1.0)

    def test_fit_input_validation(self):
        with pytest.raises(ValueError):
            fit_efficiency_model([100], [0.5])
        with pytest.raises(ValueError):
            fit_efficiency_model([100, 200], [0.5, 1.5])

    @given(
        a=st.floats(min_value=1.0, max_value=3.0),
        b=st.floats(min_value=0.0, max_value=1e6),
        n=st.floats(min_value=1.0, max_value=1e9),
    )
    @settings(max_examples=80, deadline=None)
    def test_efficiency_bounded_property(self, a, b, n):
        e = EfficiencyModel(a=a, b=b).efficiency(n)
        assert 0 < e <= 1.0

    def test_runtime_decreases_with_peak(self):
        m = EfficiencyModel(a=1.1, b=1000)
        assert m.runtime(1e5, 2e15) < m.runtime(1e5, 1e15)


class TestEq8:
    def test_full_memory_is_identity(self):
        assert efficiency_lower_bound(0.85, 1.0) == pytest.approx(0.85)

    def test_less_memory_less_efficiency(self):
        assert efficiency_lower_bound(0.85, 0.5) < 0.85
        assert efficiency_lower_bound(0.85, 1 / 3) < efficiency_lower_bound(0.85, 0.5)

    @given(
        e1=st.floats(min_value=0.05, max_value=0.99),
        k=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_bound_is_a_true_lower_bound(self, e1, k):
        """Eq. 8 must bound the exact model value from below for any a>1."""
        for a in (1.01, 1.2, 2.0):
            if a * e1 >= 1.0:
                continue
            n1 = 1e5
            b = (1 - a * e1) * n1 / e1
            model = EfficiencyModel(a=a, b=b)
            exact = efficiency_at_memory_fraction(model, n1, k)
            bound = efficiency_lower_bound(e1, k)
            assert exact >= bound - 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            efficiency_lower_bound(0.5, 0.0)
        with pytest.raises(ValueError):
            efficiency_lower_bound(1.5, 0.5)


class TestProblemSize:
    def test_matches_manual(self):
        assert problem_size_for_memory(8 * 100**2) == 100

    def test_table3_scale(self):
        """128 ranks x 4 GiB at 80% fill gives the paper's N~234240."""
        n = problem_size_for_memory(128 * 4 * GiB, 0.8)
        assert abs(n - 234240) / 234240 < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            problem_size_for_memory(0)


class TestMachines:
    def test_table2_values(self):
        assert TIANHE_1A.node.cores == 12
        assert TIANHE_1A.node.flops == pytest.approx(140e9)
        assert TIANHE_1A.node.mem_bytes == 48 * GiB
        assert TIANHE_2.node.cores == 24
        assert TIANHE_2.node.flops == pytest.approx(422.4e9)
        assert TIANHE_2.node.mem_bytes == 64 * GiB
        assert TIANHE_2.node.net.bandwidth_Bps == pytest.approx(7.1e9)

    def test_memory_per_core_ordering(self):
        """Table 2's observation: Tianhe-1A has MORE memory per core."""
        assert TIANHE_1A.node.mem_per_core > TIANHE_2.node.mem_per_core

    def test_nodes_for_ranks(self):
        assert TIANHE_2.nodes_for_ranks(24576) == 1024
        assert TIANHE_1A.nodes_for_ranks(1536) == 128


class TestTop500:
    def test_ten_systems(self):
        assert len(TOP10_NOV2016) == 10
        assert TOP10_NOV2016[0].name == "TaihuLight"

    def test_efficiencies_sane(self):
        for s in TOP10_NOV2016:
            assert 0.4 < s.efficiency < 1.0

    def test_projection_ordering(self):
        for s in TOP10_NOV2016:
            assert (
                s.projected_efficiency(1 / 3)
                < s.projected_efficiency(0.5)
                < s.efficiency
            )

    def test_average_gain_positive(self):
        """Fig. 8: more memory -> more efficiency, a multi-point average."""
        assert 2.0 < average_gain_half_vs_third() < 15.0

    def test_average_relative_gain_near_paper_figure(self):
        """The paper reports ~11.96% average improvement; our Eq.8 lower
        bound yields a value of the same order."""
        from repro.models.top500 import average_relative_gain_half_vs_third

        gain = average_relative_gain_half_vs_third()
        assert 5.0 < gain < 16.0


class TestCkptCost:
    def test_checkpoint_size_near_half_memory(self):
        """Fig. 13 right panel: ckpt is close to half the per-core memory
        and not very sensitive to group size."""
        sizes = [checkpoint_size_per_process(TIANHE_2, g) for g in (4, 8, 16)]
        for s in sizes:
            assert 0.35 * TIANHE_2.node.mem_per_core < s < 0.5 * TIANHE_2.node.mem_per_core
        assert max(sizes) / min(sizes) < 1.3

    def test_encode_time_grows_slowly(self):
        ts = [encode_time(TIANHE_2, g) for g in (4, 8, 16)]
        assert ts == sorted(ts)
        assert ts[-1] / ts[0] < 2.0

    def test_tianhe2_slower_than_tianhe1a(self):
        """Fig. 13 left panel: port sharing dominates."""
        assert encode_time(TIANHE_2, 8) > encode_time(TIANHE_1A, 8)

    def test_recovery_slower_than_encode(self):
        """§6.3: recovery (20 s) takes a little longer than checkpoint (16 s)."""
        for m in (TIANHE_1A, TIANHE_2):
            e, r = encode_time(m, 8), recovery_time(m, 8)
            assert e < r < 3 * e

    def test_flush_under_a_second_at_paper_scale(self):
        """§6.6: 'local overwriting time is normally less than one second'."""
        size = checkpoint_size_per_process(TIANHE_2, 16)
        assert flush_time(TIANHE_2, size) < 1.0
