"""Tests for the fault-tolerant 2-D stencil kernel."""

import numpy as np
import pytest

from repro.apps import StencilConfig, stencil_main
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger

N = 8
CFG = StencilConfig(nx=32, ny_per_rank=8, steps=30, ckpt_every=10)


def run(cfg=CFG, plan=None, cluster=None, ranklist=None):
    cluster = cluster or Cluster(N, n_spares=2)
    job = Job(
        cluster,
        stencil_main,
        N,
        args=(cfg,),
        procs_per_node=1,
        failure_plan=plan,
        ranklist=ranklist,
    )
    return cluster, job, job.run()


def serial_reference(cfg=CFG):
    """The same diffusion computed serially on the full grid."""
    from repro.apps.stencil import _initial_strip

    u = np.vstack([_initial_strip(cfg, r) for r in range(N)])
    for _ in range(cfg.steps):
        padded = np.pad(u, 1)
        lap = (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
            - 4.0 * u
        )
        u = u + cfg.alpha * lap
    return u


class TestFaultFree:
    def test_matches_serial_reference(self):
        _, _, res = run()
        assert res.completed, res.rank_errors
        ref = serial_reference()
        for r in range(N):
            strip = res.rank_results[r].field
            np.testing.assert_allclose(
                strip, ref[r * CFG.ny_per_rank : (r + 1) * CFG.ny_per_rank],
                rtol=1e-12,
            )

    def test_heat_decays_with_zero_boundaries(self):
        _, _, res = run()
        total = sum(res.rank_results[r].total_heat_local for r in range(N))
        from repro.apps.stencil import _initial_strip

        initial = sum(float(_initial_strip(CFG, r).sum()) for r in range(N))
        assert 0 < total < initial

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StencilConfig(alpha=0.5)
        with pytest.raises(ValueError):
            StencilConfig(nx=1)
        with pytest.raises(ValueError):
            StencilConfig(ckpt_every=0)


class TestRecovery:
    def test_poweroff_recovery_bit_identical(self):
        cluster, job, ref = run()
        assert ref.completed
        cluster2 = Cluster(N, n_spares=2)
        plan = FailurePlan(
            [PhaseTrigger(node_id=4, phase="ckpt.flush", occurrence=2)]
        )
        _, job2, crashed = run(plan=plan, cluster=cluster2)
        assert crashed.aborted
        repl = cluster2.replace_dead()
        ranklist = [repl.get(n, n) for n in job2.ranklist]
        _, _, rerun = run(cluster=cluster2, ranklist=ranklist)
        assert rerun.completed, rerun.rank_errors
        assert rerun.rank_results[0].restored_step == 20
        for r in range(N):
            np.testing.assert_array_equal(
                rerun.rank_results[r].field, ref.rank_results[r].field
            )
