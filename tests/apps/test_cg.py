"""Tests for the fault-tolerant distributed conjugate-gradient kernel."""

import numpy as np
import pytest

from repro.apps import CGConfig, cg_main
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger

N = 4
CFG = CGConfig(nx=16, ny_per_rank=4, max_iters=300, ckpt_every=20)


def run(cfg=CFG, plan=None, cluster=None, ranklist=None):
    cluster = cluster or Cluster(N, n_spares=2)
    job = Job(
        cluster,
        cg_main,
        N,
        args=(cfg,),
        procs_per_node=1,
        failure_plan=plan,
        ranklist=ranklist,
    )
    return cluster, job, job.run()


class TestFaultFree:
    def test_converges_to_true_solution(self):
        _, _, res = run()
        assert res.completed, res.rank_errors
        r0 = res.rank_results[0]
        assert r0.converged
        assert r0.residual < 1e-8

    def test_matches_dense_solve(self):
        """Assemble the operator densely and cross-check the solution."""
        _, _, res = run()
        nx, nyr = CFG.nx, CFG.ny_per_rank
        n = N * nyr * nx

        # dense assembly of shift*I + 2-D Laplacian with zero boundaries
        a = np.zeros((n, n))
        for row in range(N * nyr):
            for col in range(nx):
                i = row * nx + col
                a[i, i] = CFG.shift + 4.0
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    rr, cc = row + dr, col + dc
                    if 0 <= rr < N * nyr and 0 <= cc < nx:
                        a[i, rr * nx + cc] = -1.0
        from repro.util.rng import block_rng

        b = np.concatenate(
            [block_rng(CFG.seed, r).uniform(-1, 1, nyr * nx) for r in range(N)]
        )
        x_ref = np.linalg.solve(a, b)
        x = np.concatenate([res.rank_results[r].x for r in range(N)])
        np.testing.assert_allclose(x, x_ref, atol=1e-7)

    def test_validation(self):
        with pytest.raises(ValueError):
            CGConfig(shift=-1.0)
        with pytest.raises(ValueError):
            CGConfig(ckpt_every=0)


class TestRecovery:
    def test_poweroff_mid_krylov_bit_identical(self):
        """Recovery mid-iteration continues the exact Krylov trajectory."""
        _, _, ref = run()
        assert ref.completed

        cluster = Cluster(N, n_spares=2)
        plan = FailurePlan(
            [PhaseTrigger(node_id=1, phase="ckpt.encode", occurrence=2)]
        )
        _, job, crashed = run(plan=plan, cluster=cluster)
        assert crashed.aborted
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        _, _, rerun = run(cluster=cluster, ranklist=ranklist)
        assert rerun.completed, rerun.rank_errors
        r0 = rerun.rank_results[0]
        assert r0.restored_iteration == 20  # rolled to the 1st checkpoint
        assert r0.converged
        for r in range(N):
            np.testing.assert_array_equal(
                rerun.rank_results[r].x, ref.rank_results[r].x
            )
        assert rerun.rank_results[0].iterations == ref.rank_results[0].iterations
