"""Tests for the fault-tolerant N-body kernel."""

import numpy as np
import pytest

from repro.apps import NBodyConfig, nbody_main
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger

N = 4
CFG = NBodyConfig(bodies_per_rank=8, steps=30, ckpt_every=10)


def run(cfg=CFG, plan=None, cluster=None, ranklist=None):
    cluster = cluster or Cluster(N, n_spares=2)
    job = Job(
        cluster,
        nbody_main,
        N,
        args=(cfg,),
        procs_per_node=1,
        failure_plan=plan,
        ranklist=ranklist,
    )
    return cluster, job, job.run()


class TestPhysics:
    def test_energy_agreed_across_ranks(self):
        _, _, res = run()
        assert res.completed, res.rank_errors
        energies = {round(res.rank_results[r].energy, 9) for r in range(N)}
        assert len(energies) == 1

    def test_energy_approximately_conserved(self):
        """Leapfrog is symplectic: over the run, energy drift stays small
        relative to the kinetic scale."""
        _, _, short = run(NBodyConfig(bodies_per_rank=8, steps=2, ckpt_every=100))
        _, _, long = run(NBodyConfig(bodies_per_rank=8, steps=30, ckpt_every=100))
        e0 = short.rank_results[0].energy
        e1 = long.rank_results[0].energy
        assert abs(e1 - e0) < 0.05 * max(1.0, abs(e0))

    def test_deterministic(self):
        _, _, a = run()
        _, _, b = run()
        np.testing.assert_array_equal(
            a.rank_results[0].positions, b.rank_results[0].positions
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NBodyConfig(dt=0)
        with pytest.raises(ValueError):
            NBodyConfig(bodies_per_rank=0)


class TestRecovery:
    def test_poweroff_recovery_bit_identical(self):
        _, _, ref = run()
        assert ref.completed
        cluster = Cluster(N, n_spares=2)
        plan = FailurePlan(
            [PhaseTrigger(node_id=2, phase="ckpt.flush", occurrence=2)]
        )
        _, job, crashed = run(plan=plan, cluster=cluster)
        assert crashed.aborted
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        _, _, rerun = run(cluster=cluster, ranklist=ranklist)
        assert rerun.completed, rerun.rank_errors
        assert rerun.rank_results[0].restored_step == 20
        for r in range(N):
            np.testing.assert_array_equal(
                rerun.rank_results[r].positions, ref.rank_results[r].positions
            )
            np.testing.assert_array_equal(
                rerun.rank_results[r].velocities, ref.rank_results[r].velocities
            )
