"""CLI smoke tests."""

import pytest

from repro.cli import TARGETS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig6", "table3", "ablations"):
            assert name in out

    @pytest.mark.parametrize(
        "target", ["fig6", "fig8", "fig11", "fig13", "table1", "table2"]
    )
    def test_fast_targets(self, target, capsys):
        assert main([target]) == 0
        out = capsys.readouterr().out
        assert "—" in out  # every renderer emits a titled table

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_targets_cover_every_table_and_figure(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "table3-live",
            "fig6",
            "fig7",
            "fig8",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablations",
            "endurance",
            "report",
        }
        assert expected <= set(TARGETS)
