"""CLI smoke tests."""

import pytest

from repro.cli import TARGETS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig6", "table3", "ablations"):
            assert name in out

    @pytest.mark.parametrize(
        "target", ["fig6", "fig8", "fig11", "fig13", "table1", "table2"]
    )
    def test_fast_targets(self, target, capsys):
        assert main([target]) == 0
        out = capsys.readouterr().out
        assert "—" in out  # every renderer emits a titled table

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_check_all_smoke(self, capsys):
        """`repro check --all` runs every analysis and certifies clean."""
        assert main(["check", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out
        for analysis in ("simlint", "race", "deadlock"):
            assert analysis in out

    def test_check_lint_clean_tree(self, capsys):
        assert main(["check", "lint"]) == 0
        assert "simlint" in capsys.readouterr().out

    def test_check_lint_nonzero_on_bad_file(self, tmp_path, capsys):
        """Acceptance: a file calling time.sleep outside the allowlist must
        make `repro check lint` exit non-zero."""
        bad = tmp_path / "offender.py"
        bad.write_text("import time\ntime.sleep(1)\n")
        assert main(["check", "lint", "--path", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "wallclock" in out and "time.sleep" in out

    def test_check_rejects_unknown_analysis(self):
        with pytest.raises(SystemExit):
            main(["check", "frobnicate"])

    def test_targets_cover_every_table_and_figure(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "table3-live",
            "fig6",
            "fig7",
            "fig8",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablations",
            "endurance",
            "report",
        }
        assert expected <= set(TARGETS)
