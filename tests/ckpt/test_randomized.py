"""Randomized protocol scenarios (hypothesis): for ANY failure phase and
group configuration, the fully-fault-tolerant protocols must recover the
exact state, and the single-checkpoint must either recover or report the
inconsistency honestly — never return wrong data silently."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger, UnrecoverableError
from tests.ckpt.conftest import make_app

SELF_PHASES = [
    "ckpt.begin",
    "ckpt.copy_a2",
    "ckpt.encode",
    "ckpt.flush_license",
    "ckpt.flush",
    "ckpt.done",
]
UPDATE_PHASES = ["ckpt.begin", "ckpt.update", "ckpt.update.mid", "ckpt.flush", "ckpt.done"]


def _cycle(method, phase, occurrence, fail_node, group_size=4, n_ranks=8, iters=6):
    app = make_app(method, group_size=group_size, iters=iters)
    cluster = Cluster(n_ranks, n_spares=2)
    plan = FailurePlan(
        [PhaseTrigger(node_id=fail_node, phase=phase, occurrence=occurrence)]
    )
    job = Job(cluster, app, n_ranks, procs_per_node=1, failure_plan=plan)
    first = job.run()
    if not first.aborted:
        return "no-failure", first
    repl = cluster.replace_dead()
    ranklist = [repl.get(n, n) for n in job.ranklist]
    second = Job(cluster, app, n_ranks, ranklist=ranklist).run()
    return "restarted", second


def _check_exact(second, n_ranks=8, iters=6):
    for r in range(n_ranks):
        data = second.rank_results[r]["data"]
        assert np.all(data == iters * (r + 1)), (r, data[:4])


class TestRandomizedSelf:
    @given(
        phase=st.sampled_from(SELF_PHASES),
        occurrence=st.integers(min_value=1, max_value=3),
        fail_node=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=25, deadline=None)
    def test_self_always_recovers_exactly(self, phase, occurrence, fail_node):
        kind, second = _cycle("self", phase, occurrence, fail_node)
        if kind == "no-failure":
            return  # trigger never fired (occurrence beyond run length)
        assert second.completed, {
            r: repr(e)[:80] for r, e in second.rank_errors.items()
        }
        _check_exact(second)

    @given(
        phase=st.sampled_from(UPDATE_PHASES),
        occurrence=st.integers(min_value=1, max_value=3),
        fail_node=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=20, deadline=None)
    def test_double_always_recovers_exactly(self, phase, occurrence, fail_node):
        kind, second = _cycle("double", phase, occurrence, fail_node)
        if kind == "no-failure":
            return
        assert second.completed
        _check_exact(second)

    @given(
        phase=st.sampled_from(UPDATE_PHASES),
        occurrence=st.integers(min_value=1, max_value=3),
        fail_node=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=20, deadline=None)
    def test_single_never_lies(self, phase, occurrence, fail_node):
        """Single checkpoint may be unrecoverable — but when it does
        recover, the data must be exact."""
        kind, second = _cycle("single", phase, occurrence, fail_node)
        if kind == "no-failure":
            return
        if second.completed:
            _check_exact(second)
        else:
            assert any(
                isinstance(e, UnrecoverableError)
                for e in second.rank_errors.values()
            )

    @given(
        phase=st.sampled_from(SELF_PHASES),
        occurrence=st.integers(min_value=1, max_value=3),
        fail_node=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=15, deadline=None)
    def test_self_rs_single_loss(self, phase, occurrence, fail_node):
        kind, second = _cycle(
            "self-rs", phase, occurrence, fail_node, group_size=8
        )
        if kind == "no-failure":
            return
        assert second.completed
        _check_exact(second)
