"""Integration tests of the three in-memory protocols under injected
failures — the heart of the reproduction (paper Figs. 2-5).

Scenario matrix: for each protocol, a node is powered off at every protocol
phase; the job is restarted daemon-style and must either recover the exact
state (fully fault-tolerant protocols) or report the precise inconsistency
(single checkpoint mid-update).
"""

import pytest

from repro.sim import Cluster, Job, UnrecoverableError
from tests.ckpt.conftest import assert_final_state, make_app

N = 8  # world size; group size 4 -> 2 groups


class TestSelfCheckpoint:
    """The contribution: recovery succeeds at EVERY phase (Fig. 4)."""

    @pytest.mark.parametrize(
        "phase,expected_source",
        [
            ("ckpt.begin", None),  # before 1st checkpoint -> fresh start
            ("ckpt.copy_a2", None),
            ("ckpt.encode", None),  # D incomplete -> B,C path, but epoch 0
            ("ckpt.flush_license", "workspace"),  # CASE 2
            ("ckpt.flush", "workspace"),  # CASE 2
            ("ckpt.done", "checkpoint"),  # CASE 1 (post-commit)
        ],
    )
    def test_first_checkpoint_failures(self, cycle, phase, expected_source):
        app = make_app("self")
        _, second = cycle(app, n_ranks=N, phase=phase, occurrence=1)
        assert_final_state(second, N)
        report = second.rank_results[0]["restore"]
        if expected_source is None:
            assert report is None
        else:
            assert report.source == expected_source

    @pytest.mark.parametrize(
        "phase,expected_source",
        [
            ("ckpt.encode", "checkpoint"),  # 2nd encode dies -> roll to epoch 1
            ("ckpt.flush", "workspace"),  # 2nd flush dies -> adopt live data
            ("ckpt.done", "checkpoint"),
        ],
    )
    def test_second_checkpoint_failures(self, cycle, phase, expected_source):
        app = make_app("self")
        _, second = cycle(app, n_ranks=N, phase=phase, occurrence=2)
        assert_final_state(second, N)
        assert second.rank_results[0]["restore"].source == expected_source

    def test_restored_epoch_rolls_back_correctly(self, cycle):
        """Failure during 2nd encode loses epoch 2; resume from epoch 1."""
        app = make_app("self")
        _, second = cycle(app, n_ranks=N, phase="ckpt.encode", occurrence=2)
        report = second.rank_results[0]["restore"]
        assert report.local["it"] == 2  # epoch 1 covered iterations 0-1

    def test_replacement_rank_is_reconstructed(self, cycle):
        app = make_app("self")
        _, second = cycle(app, n_ranks=N, phase="ckpt.flush", fail_node=3)
        # node 3 ran world rank 3; stride groups of 4 put it in group 1
        # (odd world ranks) at group-rank 1 — only that group reconstructs
        for r in range(N):
            report = second.rank_results[r]["restore"]
            assert report.reconstructed == ((1,) if r % 2 == 1 else ())
        assert_final_state(second, N)

    def test_two_failures_in_one_group_unrecoverable(self):
        app = make_app("self")
        cluster = Cluster(N, n_spares=4)
        job = Job(cluster, app, N, procs_per_node=1)
        assert job.run().completed
        # kill two nodes of group 0 (stride groups: ranks 0,2,4,6)
        cluster.fail_node(0)
        cluster.fail_node(2)
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, app, N, ranklist=ranklist).run()
        assert not res.completed
        assert any(
            isinstance(e, UnrecoverableError) for e in res.rank_errors.values()
        )

    def test_two_failures_in_different_groups_recoverable(self):
        app = make_app("self")
        cluster = Cluster(N, n_spares=4)
        job = Job(cluster, app, N, procs_per_node=1)
        assert job.run().completed
        cluster.fail_node(0)  # group 0 (rank 0)
        cluster.fail_node(1)  # group 1 (rank 1)
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, app, N, ranklist=ranklist).run()
        assert_final_state(res, N)

    def test_sum_encoding_also_recovers(self, cycle):
        app = make_app("self", op="sum")
        _, second = cycle(app, n_ranks=N, phase="ckpt.flush")
        assert_final_state(second, N)

    def test_restart_without_failure_resumes_from_checkpoint(self):
        """A clean restart (e.g. job killed externally) resumes at the last
        committed checkpoint rather than recomputing everything."""
        app = make_app("self")
        cluster = Cluster(N, n_spares=0)
        job = Job(cluster, app, N, procs_per_node=1)
        assert job.run().completed
        res = Job(cluster, app, N, procs_per_node=1).run()
        assert_final_state(res, N)
        # the rerun restored from the final checkpoint (iteration 6)
        assert res.rank_results[0]["restore"].local["it"] == 6

    def test_memory_overhead_matches_table1(self):
        """Per-rank overhead ~= M + 2M/(N-1) (B + C + D), Table 1."""
        app = make_app("self", group_size=4, array_len=4096)
        cluster = Cluster(N)
        res = Job(cluster, app, N, procs_per_node=1).run()
        overhead = res.rank_results[0]["overhead"]
        padded = None
        # reconstruct expected values from the protocol's sizing rules
        from repro.ckpt.stripes import checksum_size, padded_size

        raw = 4096 * 8 + 8 + 4096  # array + a2 header + a2 capacity
        padded = padded_size(raw, 4)
        cs = checksum_size(padded, 4)
        b2 = 8 + 4096
        ctrl = 8 * 4
        assert overhead == padded + 2 * cs + b2 + ctrl


class TestSingleCheckpoint:
    """Fig. 2: recovers from compute-phase failures only."""

    def test_compute_phase_failure_recovers(self, cycle):
        app = make_app("single")
        _, second = cycle(app, n_ranks=N, phase="ckpt.done", occurrence=1)
        assert_final_state(second, N)
        assert second.rank_results[0]["restore"].epoch == 1

    @pytest.mark.parametrize("phase", ["ckpt.update", "ckpt.update.mid"])
    def test_update_phase_failure_unrecoverable(self, cycle, phase):
        """CASE 2 of Fig. 2: B and C are inconsistent."""
        app = make_app("single")
        _, second = cycle(app, n_ranks=N, phase=phase, occurrence=2)
        assert not second.completed
        assert any(
            isinstance(e, UnrecoverableError)
            for e in second.rank_errors.values()
        )

    def test_failure_before_any_checkpoint_is_fresh_start(self, cycle):
        app = make_app("single")
        _, second = cycle(app, n_ranks=N, phase="ckpt.begin", occurrence=1)
        assert_final_state(second, N)
        assert second.rank_results[0]["restore"] is None


class TestDoubleCheckpoint:
    """Fig. 3: fully fault tolerant via the alternating second copy."""

    @pytest.mark.parametrize(
        "phase,occurrence",
        [
            ("ckpt.update", 1),
            ("ckpt.update.mid", 1),
            ("ckpt.flush", 1),
            ("ckpt.done", 1),
            ("ckpt.update", 2),
            ("ckpt.update.mid", 2),
            ("ckpt.done", 2),
        ],
    )
    def test_recovers_at_every_phase(self, cycle, phase, occurrence):
        app = make_app("double")
        _, second = cycle(app, n_ranks=N, phase=phase, occurrence=occurrence)
        assert_final_state(second, N)

    def test_mid_update_rolls_back_one_epoch(self, cycle):
        """Failure during the 2nd update must recover the 1st checkpoint."""
        app = make_app("double")
        _, second = cycle(app, n_ranks=N, phase="ckpt.update.mid", occurrence=2)
        report = second.rank_results[0]["restore"]
        assert report.epoch == 1
        assert report.local["it"] == 2

    def test_overhead_roughly_twice_single(self):
        cluster = Cluster(N)
        out = {}
        for method in ("single", "double"):
            app = make_app(method, array_len=4096)
            res = Job(
                cluster, app, N, procs_per_node=1
            ).run()
            out[method] = res.rank_results[0]["overhead"]
            # wipe SHM between methods
            for node in cluster.all_nodes():
                node.shm.clear()
        assert out["double"] > 1.9 * out["single"]


class TestCrossGroupConsistency:
    """All groups must restore the same application iteration even though
    only one group lost a member — the global-cut property."""

    @pytest.mark.parametrize("method", ["self", "double"])
    @pytest.mark.parametrize("phase", ["ckpt.flush", "ckpt.done"])
    def test_groups_agree_on_restored_iteration(self, cycle, method, phase):
        app = make_app(method)
        _, second = cycle(app, n_ranks=N, phase=phase, occurrence=2)
        assert_final_state(second, N)
        its = {
            second.rank_results[r]["restore"].local["it"] for r in range(N)
        }
        assert len(its) == 1, f"groups restored different iterations: {its}"
