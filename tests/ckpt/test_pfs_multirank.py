"""PFS device contention and multi-rank-per-node recovery scenarios."""

import pytest

from repro.ckpt import HDD, PFS, CheckpointManager
from repro.sim import Cluster, FailurePlan, Job, NodeSpec, PhaseTrigger
from tests.ckpt.conftest import assert_final_state


class TestPFS:
    def test_whole_job_contention_slower_than_local_disk(self):
        """Paper §6.2: a distributed FS shared by every rank is much slower
        than local devices for checkpoint traffic."""
        image = 256 * 2**20  # 256 MiB per rank
        n_ranks = 1024
        t_pfs = PFS.write_time(image, ranks_sharing=n_ranks)
        t_local_hdd = HDD.write_time(image, ranks_sharing=24)
        assert t_pfs > t_local_hdd

    def test_pfs_fast_for_single_writer(self):
        image = 256 * 2**20
        assert PFS.write_time(image) < HDD.write_time(image)


class TestMultiRankNodes:
    def test_node_loss_kills_two_groups_both_recover(self):
        """Two ranks per node: one power-off removes a member from TWO
        different encoding groups; both must reconstruct."""
        iters = 6

        def app(ctx):
            mgr = CheckpointManager(
                ctx, ctx.world, group_size=4, method="self"
            )
            a = mgr.alloc("data", 16)
            mgr.commit()
            rep = mgr.try_restore()
            start = rep.local["it"] if rep else 0
            for it in range(start, iters):
                a += ctx.world.rank + 1
                ctx.compute(1e8)
                if (it + 1) % 2 == 0:
                    mgr.local["it"] = it + 1
                    mgr.checkpoint()
            return {"data": a.copy(), "restore": rep}

        # 8 ranks on 4 nodes; stride groups of 4 = [0,2,4,6], [1,3,5,7];
        # node 1 hosts ranks 2 and 3 — one member of EACH group
        cluster = Cluster(4, NodeSpec(cores=2), n_spares=2)
        plan = FailurePlan(
            [PhaseTrigger(node_id=1, phase="ckpt.flush", occurrence=2)]
        )
        job = Job(cluster, app, 8, procs_per_node=2, failure_plan=plan)
        first = job.run()
        assert first.aborted and first.failed_nodes == [1]
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        second = Job(cluster, app, 8, ranklist=ranklist).run()
        assert_final_state(second, 8, iters=iters)
        for r in (0, 1):
            rep = second.rank_results[r]["restore"]
            assert rep.reconstructed == (1,)  # grank 1 in each group

    def test_group_node_distinctness_enforced_on_colocated_pairs(self):
        """A grouping that would put two ranks of one group on one node is
        rejected (a single power-off would cost two stripes)."""

        def app(ctx):
            with pytest.raises(ValueError, match="co-located"):
                # 8 ranks on 4 nodes, stride groups of 2 pair ranks
                # (r, r+4): ranks 0 and 4 share... nodes are r//2, so the
                # pair (0, 4) is on nodes (0, 2) — fine; force collision
                # with topology strategy on an adversarial ranklist instead
                from repro.ckpt.grouping import partition_groups

                layout = partition_groups(8, 2, strategy="block")
                layout.validate_node_distinct([r // 2 for r in range(8)])
            return True

        cluster = Cluster(4, NodeSpec(cores=2))
        assert Job(cluster, app, 8, procs_per_node=2).run().completed
