"""Tests for the group-consistency audit API (SelfCheckpoint.verify)."""


from repro.ckpt import CheckpointManager
from repro.sim import Cluster, Job


def run_app(mutate_segment=False, method="self"):
    def app(ctx):
        mgr = CheckpointManager(ctx, ctx.world, group_size=4, method=method)
        a = mgr.alloc("d", 64)
        mgr.commit()
        mgr.try_restore()
        a += ctx.world.rank
        mgr.local["it"] = 1
        mgr.checkpoint()
        if mutate_segment and ctx.world.rank == 2:
            mgr.impl._b[0] ^= 0xFF  # corrupt the committed checkpoint
        ctx.world.barrier()
        return mgr.impl.verify()

    cluster = Cluster(8)
    res = Job(cluster, app, 8, procs_per_node=1).run()
    assert res.completed, res.rank_errors
    return res


class TestVerify:
    def test_consistent_after_checkpoint(self):
        res = run_app()
        for r in range(8):
            out = res.rank_results[r]
            assert out["checkpoint_ok"]
            assert out["epochs"] == (1, 1, 1)

    def test_detects_corruption(self):
        res = run_app(mutate_segment=True)
        # rank 2's group (stride groups: even ranks) sees the corruption;
        # the other group is clean
        assert not res.rank_results[2]["checkpoint_ok"]
        assert not res.rank_results[0]["checkpoint_ok"]
        assert res.rank_results[1]["checkpoint_ok"]

    def test_rs_variant_verifies(self):
        def app(ctx):
            mgr = CheckpointManager(
                ctx, ctx.world, group_size=8, method="self-rs"
            )
            a = mgr.alloc("d", 48)
            mgr.commit()
            mgr.try_restore()
            a += 1.0
            mgr.local["it"] = 1
            mgr.checkpoint()
            return mgr.impl.verify()

        cluster = Cluster(8)
        res = Job(cluster, app, 8, procs_per_node=1).run()
        assert res.completed, res.rank_errors
        assert all(res.rank_results[r]["checkpoint_ok"] for r in range(8))
