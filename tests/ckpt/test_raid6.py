"""Tests for GF(2^8) arithmetic and the RAID-6 double-erasure codec."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckpt import GF256, RSCodec


@pytest.fixture(scope="module")
def gf():
    return GF256()


class TestGF256:
    def test_mul_identity_and_zero(self, gf):
        for a in range(256):
            assert gf.mul(a, 1) == a
            assert gf.mul(a, 0) == 0

    def test_mul_commutative(self, gf):
        for a, b in [(3, 7), (255, 2), (100, 200)]:
            assert gf.mul(a, b) == gf.mul(b, a)

    def test_div_inverse(self, gf):
        for a in range(1, 256):
            assert gf.mul(a, gf.inv(a)) == 1
            assert gf.div(a, a) == 1

    def test_div_by_zero(self, gf):
        with pytest.raises(ZeroDivisionError):
            gf.div(5, 0)

    def test_generator_order(self, gf):
        """g = 2 generates the full multiplicative group (order 255)."""
        seen = set()
        for k in range(255):
            seen.add(gf.pow_g(k))
        assert len(seen) == 255

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        c=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=100, deadline=None)
    def test_distributive_property(self, gf, a, b, c):
        assert gf.mul(a, b ^ c) == gf.mul(a, b) ^ gf.mul(a, c)

    @given(
        c=st.integers(min_value=0, max_value=255),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_vec_mul_matches_scalar(self, gf, c, seed):
        v = np.random.default_rng(seed).integers(0, 256, 32, dtype=np.uint8)
        out = gf.vec_mul(c, v)
        for x, y in zip(v[:8], out[:8]):
            assert gf.mul(c, int(x)) == int(y)

    def test_vec_mul_rejects_wrong_dtype(self, gf):
        with pytest.raises(TypeError):
            gf.vec_mul(3, np.zeros(4, np.float64))


def _data(n, size=64, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(n)]


class TestRSCodec:
    def test_group_size_bounds(self):
        with pytest.raises(ValueError):
            RSCodec(1)
        with pytest.raises(ValueError):
            RSCodec(256)

    def test_encode_shapes(self):
        codec = RSCodec(4)
        p, q = codec.encode(_data(4))
        assert p.shape == q.shape == (64,)

    def test_single_data_loss_via_p(self):
        codec = RSCodec(5)
        bufs = _data(5)
        p, q = codec.encode(bufs)
        for x in range(5):
            got = codec.decode({j: bufs[j] for j in range(5) if j != x}, p, None)
            np.testing.assert_array_equal(got[x], bufs[x])

    def test_single_data_loss_via_q(self):
        codec = RSCodec(5)
        bufs = _data(5)
        p, q = codec.encode(bufs)
        for x in range(5):
            got = codec.decode({j: bufs[j] for j in range(5) if j != x}, None, q)
            np.testing.assert_array_equal(got[x], bufs[x])

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_every_double_data_loss(self, n):
        codec = RSCodec(n)
        bufs = _data(n, seed=n)
        p, q = codec.encode(bufs)
        for x, y in itertools.combinations(range(n), 2):
            survivors = {j: bufs[j] for j in range(n) if j not in (x, y)}
            got = codec.decode(survivors, p, q)
            np.testing.assert_array_equal(got[x], bufs[x])
            np.testing.assert_array_equal(got[y], bufs[y])

    def test_three_erasures_rejected(self):
        codec = RSCodec(5)
        bufs = _data(5)
        p, q = codec.encode(bufs)
        with pytest.raises(ValueError):
            codec.decode({0: bufs[0], 1: bufs[1]}, p, q)
        with pytest.raises(ValueError):
            codec.decode({j: bufs[j] for j in range(3)}, None, None)

    def test_two_data_losses_need_both_parities(self):
        codec = RSCodec(4)
        bufs = _data(4)
        p, q = codec.encode(bufs)
        with pytest.raises(ValueError):
            codec.decode({0: bufs[0], 1: bufs[1]}, p, None)

    def test_nothing_missing(self):
        codec = RSCodec(3)
        bufs = _data(3)
        p, q = codec.encode(bufs)
        assert codec.decode({j: bufs[j] for j in range(3)}, p, q) == {}

    def test_wrong_buffer_count_rejected(self):
        codec = RSCodec(4)
        with pytest.raises(ValueError):
            codec.encode(_data(3))

    @given(
        n=st.integers(min_value=2, max_value=10),
        size=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_double_erasure_property(self, n, size, seed, data):
        """Any two lost members of any group are exactly recoverable."""
        x = data.draw(st.integers(min_value=0, max_value=n - 1))
        y = data.draw(st.integers(min_value=0, max_value=n - 1))
        if x == y:
            return
        codec = RSCodec(n)
        bufs = _data(n, size=size, seed=seed)
        p, q = codec.encode(bufs)
        got = codec.decode(
            {j: bufs[j] for j in range(n) if j not in (x, y)}, p, q
        )
        np.testing.assert_array_equal(got[x], bufs[x])
        np.testing.assert_array_equal(got[y], bufs[y])


class TestCachedKernel:
    """Regressions for the cached 256x256 multiply table: the hot scale
    kernel must never rebuild a lookup table per call (the seed rebuilt a
    256-entry row on *every* vec_mul, dominating encode cost at protocol
    stripe sizes)."""

    def test_vec_mul_allocates_no_table(self, gf, monkeypatch):
        v = np.arange(64, dtype=np.uint8)

        def forbidden(*args, **kwargs):
            raise AssertionError(
                "vec_mul rebuilt a lookup table at call time"
            )

        # the per-call rebuild needed np.arange; the cached kernel may not
        monkeypatch.setattr(np, "arange", forbidden)
        got = gf.vec_mul(7, v)
        assert got.dtype == np.uint8 and len(got) == 64

    def test_mul_table_row_is_a_readonly_view(self, gf):
        row = gf.mul_table(7)
        assert row.base is gf._mul_table  # a view, not a fresh array
        assert not row.flags.writeable
        with pytest.raises(ValueError):
            row[0] = 1

    def test_mul_table_matches_scalar_mul(self, gf):
        for c in (0, 1, 2, 7, 255):
            row = gf.mul_table(c)
            for v in (0, 1, 3, 128, 255):
                assert int(row[v]) == gf.mul(c, v)

    def test_vec_mul_matches_scalar_mul(self, gf):
        v = np.arange(256, dtype=np.uint8)
        for c in (0, 1, 2, 29, 255):
            got = gf.vec_mul(c, v)
            assert got.tolist() == [gf.mul(c, int(x)) for x in v]

    def test_vec_mul_xor_accumulates_in_place(self, gf):
        v = np.arange(64, dtype=np.uint8)
        acc = np.full(64, 0x5A, dtype=np.uint8)
        expect = acc ^ gf.vec_mul(29, v)
        gf.vec_mul_xor(29, v, acc)
        assert np.array_equal(acc, expect)

    def test_vec_mul_xor_trivial_constants(self, gf):
        v = np.arange(32, dtype=np.uint8)
        acc = v.copy()
        gf.vec_mul_xor(0, v, acc)  # c=0: no-op
        assert np.array_equal(acc, v)
        gf.vec_mul_xor(1, v, acc)  # c=1: plain xor
        assert not acc.any()


class TestVecMulOut:
    """``GF256.vec_mul(c, v, out=...)`` must honor ``out`` for every
    constant — including the trivial ``c in (0, 1)`` short-circuits —
    and support ``out is v`` aliasing."""

    @pytest.fixture
    def gf(self):
        return GF256()

    @pytest.mark.parametrize("c", [0, 1, 2, 29, 142, 255])
    def test_out_is_written_and_returned(self, gf, c):
        v = np.arange(200, dtype=np.uint8)
        out = np.full(200, 0xEE, dtype=np.uint8)
        got = gf.vec_mul(c, v, out=out)
        assert got is out
        assert np.array_equal(out, gf.vec_mul(c, v))

    @pytest.mark.parametrize("c", [0, 1, 2, 29, 142, 255])
    def test_out_aliases_input(self, gf, c):
        v = np.arange(200, dtype=np.uint8)
        expect = gf.vec_mul(c, v)
        got = gf.vec_mul(c, v, out=v)
        assert got is v
        assert np.array_equal(v, expect)

    def test_input_untouched_when_out_is_separate(self, gf):
        v = np.arange(64, dtype=np.uint8)
        snapshot = v.copy()
        out = np.empty_like(v)
        for c in (0, 1, 37):
            gf.vec_mul(c, v, out=out)
            assert np.array_equal(v, snapshot)
