"""Tests for the flat state layout (A1 arrays + A2 dict serialization)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckpt import StateLayout


@pytest.fixture
def layout():
    lay = StateLayout(a2_capacity=256)
    lay.add("m", (4, 4), np.float64)
    lay.add("v", 8, np.int32)
    lay.freeze()
    return lay


class TestRegistration:
    def test_raw_size(self, layout):
        assert layout.raw_size == 16 * 8 + 8 * 4 + 8 + 256

    def test_duplicate_name_rejected(self):
        lay = StateLayout()
        lay.add("x", 4, np.float64)
        with pytest.raises(ValueError):
            lay.add("x", 4, np.float64)

    def test_add_after_freeze_rejected(self, layout):
        with pytest.raises(RuntimeError):
            layout.add("late", 4, np.float64)

    def test_pack_before_freeze_rejected(self):
        lay = StateLayout()
        lay.add("x", 4, np.float64)
        with pytest.raises(RuntimeError):
            lay.pack({"x": np.zeros(4)}, {})

    def test_tiny_a2_capacity_rejected(self):
        with pytest.raises(ValueError):
            StateLayout(a2_capacity=8)

    def test_spec_of(self, layout):
        assert layout.spec_of("m") == ((4, 4), np.dtype(np.float64))
        with pytest.raises(KeyError):
            layout.spec_of("ghost")


class TestRoundtrip:
    def test_pack_unpack(self, layout):
        arrays = {
            "m": np.arange(16, dtype=np.float64).reshape(4, 4),
            "v": np.arange(8, dtype=np.int32),
        }
        local = {"it": 7, "pivots": [1, 2, 3]}
        flat = layout.pack(arrays, local)
        dst = {"m": np.zeros((4, 4)), "v": np.zeros(8, np.int32)}
        out_local = layout.unpack_into(flat, dst)
        np.testing.assert_array_equal(dst["m"], arrays["m"])
        np.testing.assert_array_equal(dst["v"], arrays["v"])
        assert out_local == local

    def test_pack_with_padding(self, layout):
        arrays = {"m": np.ones((4, 4)), "v": np.ones(8, np.int32)}
        flat = layout.pack(arrays, {}, total_size=layout.raw_size + 40)
        assert len(flat) == layout.raw_size + 40
        assert np.all(flat[layout.raw_size :] == 0)

    def test_pack_into_existing_buffer(self, layout):
        arrays = {"m": np.ones((4, 4)), "v": np.ones(8, np.int32)}
        buf = np.full(layout.raw_size, 0xEE, dtype=np.uint8)
        out = layout.pack(arrays, {}, out=buf)
        assert out is buf

    def test_pack_undersized_total_rejected(self, layout):
        arrays = {"m": np.ones((4, 4)), "v": np.ones(8, np.int32)}
        with pytest.raises(ValueError):
            layout.pack(arrays, {}, total_size=8)

    def test_shape_mismatch_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.pack({"m": np.zeros((2, 2)), "v": np.zeros(8, np.int32)}, {})

    def test_unpack_wrong_shape_rejected(self, layout):
        flat = layout.pack(
            {"m": np.zeros((4, 4)), "v": np.zeros(8, np.int32)}, {}
        )
        with pytest.raises(ValueError):
            layout.unpack_into(flat, {"m": np.zeros((4, 4)), "v": np.zeros(4, np.int32)})

    def test_unpack_noncontiguous_rejected(self, layout):
        flat = layout.pack(
            {"m": np.zeros((4, 4)), "v": np.zeros(8, np.int32)}, {}
        )
        big = np.zeros((4, 8))
        view = big[:, ::2]  # non-contiguous 4x4
        with pytest.raises(ValueError, match="contiguous"):
            layout.unpack_into(flat, {"m": view, "v": np.zeros(8, np.int32)})

    def test_a2_overflow_rejected(self, layout):
        arrays = {"m": np.zeros((4, 4)), "v": np.zeros(8, np.int32)}
        with pytest.raises(ValueError, match="a2_capacity"):
            layout.pack(arrays, {"blob": b"x" * 1000})

    def test_a2_roundtrip_alone(self, layout):
        blob = layout.pack_a2({"k": (1, 2.5, "s")})
        assert layout.unpack_a2(blob) == {"k": (1, 2.5, "s")}

    def test_corrupt_a2_header_rejected(self, layout):
        blob = layout.pack_a2({})
        blob[:8] = 0xFF
        with pytest.raises(ValueError, match="corrupt"):
            layout.unpack_a2(blob)

    def test_a2_header_golden_bytes(self, layout):
        """The length header is pinned to explicit little-endian bytes:
        checkpoint images (and every fingerprint derived from them) must
        be byte-stable across platforms regardless of native endianness."""
        import pickle

        local = {"it": 7}
        blob = layout.pack_a2(local)
        n = len(pickle.dumps(local, protocol=pickle.HIGHEST_PROTOCOL))
        assert 0 < n < 256  # the golden header below assumes one byte
        expected_header = [n, 0, 0, 0, 0, 0, 0, 0]  # little-endian u64
        assert blob[:8].tolist() == expected_header
        assert int.from_bytes(blob[:8].tobytes(), "little") == n

    def test_a2_header_rejects_big_endian_spelling(self, layout):
        """A byte-swapped (big-endian) header is treated as corrupt, not
        silently decoded — the regression the endianness pin guards."""
        blob = layout.pack_a2({"k": 1})
        swapped = blob.copy()
        swapped[:8] = blob[:8][::-1]
        with pytest.raises(ValueError, match="corrupt"):
            layout.unpack_a2(swapped)

    @given(
        it=st.integers(min_value=-(2**40), max_value=2**40),
        vals=st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, it, vals, seed):
        lay = StateLayout(a2_capacity=512)
        lay.add("a", 12, np.float64)
        lay.freeze()
        rng = np.random.default_rng(seed)
        arrays = {"a": rng.standard_normal(12)}
        local = {"it": it, "vals": vals}
        flat = lay.pack(arrays, local)
        dst = {"a": np.zeros(12)}
        out = lay.unpack_into(flat, dst)
        np.testing.assert_array_equal(dst["a"], arrays["a"])
        assert out == local
