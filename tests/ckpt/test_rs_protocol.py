"""Tests for the double-parity (RAID-6) extension: stripe layout, encoder
collective, and the two-failure-tolerant SelfCheckpointRS protocol."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckpt import (
    GroupEncoderRS,
    available_fraction_self,
    available_fraction_self_rs,
)
from repro.ckpt.stripes_rs import (
    build_parity,
    checksum_size_rs,
    data_row_of,
    padded_size_rs,
    reconstruct_rs,
    row_roles,
    verify_group_rs,
)
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger, UnrecoverableError
from tests.ckpt.conftest import assert_final_state, make_app


class TestLayout:
    def test_row_roles_cover_everyone(self):
        n = 6
        for row in range(n):
            p, q, data = row_roles(row, n)
            assert p != q
            assert sorted([p, q] + data) == list(range(n))

    def test_every_member_hosts_one_p_one_q(self):
        n = 6
        p_holders = [row_roles(r, n)[0] for r in range(n)]
        q_holders = [row_roles(r, n)[1] for r in range(n)]
        assert sorted(p_holders) == list(range(n))
        assert sorted(q_holders) == list(range(n))

    def test_data_row_bijection(self):
        n = 6
        for member in range(n):
            rows = [data_row_of(member, s, n) for s in range(n - 2)]
            assert len(set(rows)) == n - 2
            for row in rows:
                p, q, data = row_roles(row, n)
                assert member in data

    def test_sizes(self):
        assert padded_size_rs(1, 4) == 16
        assert checksum_size_rs(16, 4) == 16  # 2 stripes of 8
        with pytest.raises(ValueError):
            padded_size_rs(10, 3)

    @given(
        n=st.integers(min_value=4, max_value=9),
        words=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_double_loss_roundtrip_property(self, n, words, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=n - 1))
        y = data.draw(st.integers(min_value=0, max_value=n - 1))
        missing = sorted({x, y})
        rng = np.random.default_rng(seed)
        size = 8 * words * (n - 2)
        bufs = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(n)]
        parity = build_parity(bufs, n)
        assert verify_group_rs(bufs, parity, n)
        surv = {j: bufs[j] for j in range(n) if j not in missing}
        sp = {j: parity[j] for j in range(n) if j not in missing}
        out = reconstruct_rs(surv, sp, missing, n)
        for m in missing:
            np.testing.assert_array_equal(out[m][0], bufs[m])
            np.testing.assert_array_equal(out[m][1][0], parity[m][0])
            np.testing.assert_array_equal(out[m][1][1], parity[m][1])

    def test_three_losses_rejected(self):
        n = 5
        bufs = [np.zeros(8 * (n - 2), np.uint8) for _ in range(n)]
        parity = build_parity(bufs, n)
        with pytest.raises(ValueError):
            reconstruct_rs(
                {0: bufs[0], 1: bufs[1]},
                {0: parity[0], 1: parity[1]},
                [2, 3, 4],
                n,
            )


class TestEncoderCollective:
    def test_encode_recover_two_members(self):
        def main(ctx):
            comm = ctx.world
            enc = GroupEncoderRS(comm)
            rng = np.random.default_rng(comm.rank)
            flat = rng.integers(0, 256, 8 * (comm.size - 2) * 4, dtype=np.uint8)
            res = enc.encode(flat)
            missing = [1, 4]
            if comm.rank in missing:
                got = enc.recover(None, None, missing)
                ref = np.random.default_rng(comm.rank).integers(
                    0, 256, len(flat), dtype=np.uint8
                )
                np.testing.assert_array_equal(got[0], ref)
                np.testing.assert_array_equal(got[1][0], res.parity[0])
                np.testing.assert_array_equal(got[1][1], res.parity[1])
            else:
                assert enc.recover(flat, res.parity, missing) is None
            return True

        cl = Cluster(6)
        res = Job(cl, main, 6, procs_per_node=1).run()
        assert res.completed, res.rank_errors

    def test_group_too_small(self):
        def main(ctx):
            sub = ctx.world.split(color=ctx.world.rank // 3)
            with pytest.raises(ValueError):
                GroupEncoderRS(sub)
            return True

        cl = Cluster(6)
        assert Job(cl, main, 6, procs_per_node=1).run().completed

    def test_rs_encode_costs_more_than_xor(self):
        from repro.ckpt import GroupEncoder

        def main(ctx):
            flat = np.zeros(8 * 12 * 100, dtype=np.uint8)  # /4 and /2 aligned
            t_xor = GroupEncoder(ctx.world).encode(flat).seconds
            t_rs = GroupEncoderRS(ctx.world).encode(flat).seconds
            assert t_rs > t_xor
            return True

        cl = Cluster(4)
        assert Job(cl, main, 4, procs_per_node=1).run().completed


class TestSelfCheckpointRS:
    def test_memory_model(self):
        assert available_fraction_self_rs(8) == pytest.approx(6 / 16)
        # same fraction as single-parity at half the group size
        assert available_fraction_self_rs(8) == available_fraction_self(4)
        with pytest.raises(ValueError):
            available_fraction_self_rs(3)

    def test_simultaneous_double_loss_recovers(self, cycle):
        """TWO nodes of one group die at the same instant mid-flush; the
        XOR scheme would be helpless, the RS scheme recovers."""
        app = make_app("self-rs", group_size=8)
        cluster = Cluster(8, n_spares=4)
        plan = FailurePlan(
            [
                PhaseTrigger(
                    node_id=2, phase="ckpt.flush", occurrence=2, extra_nodes=(5,)
                )
            ]
        )
        job = Job(cluster, app, 8, procs_per_node=1, failure_plan=plan)
        first = job.run()
        assert first.aborted and set(first.failed_nodes) == {2, 5}
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        second = Job(cluster, app, 8, ranklist=ranklist).run()
        assert_final_state(second, 8)
        report = second.rank_results[0]["restore"]
        assert report.source == "workspace"
        assert set(report.reconstructed) == {2, 5}

    def test_xor_scheme_dies_on_the_same_double_loss(self):
        app = make_app("self", group_size=8)
        cluster = Cluster(8, n_spares=4)
        plan = FailurePlan(
            [
                PhaseTrigger(
                    node_id=2, phase="ckpt.flush", occurrence=2, extra_nodes=(5,)
                )
            ]
        )
        job = Job(cluster, app, 8, procs_per_node=1, failure_plan=plan)
        assert job.run().aborted
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        second = Job(cluster, app, 8, ranklist=ranklist).run()
        assert not second.completed
        assert any(
            isinstance(e, UnrecoverableError)
            for e in second.rank_errors.values()
        )

    def test_single_loss_still_fine(self, cycle):
        app = make_app("self-rs", group_size=8)
        _, second = cycle(app, n_ranks=8, phase="ckpt.done", occurrence=2)
        assert_final_state(second, 8)

    def test_three_losses_unrecoverable(self):
        app = make_app("self-rs", group_size=8)
        cluster = Cluster(8, n_spares=4)
        job = Job(cluster, app, 8, procs_per_node=1)
        assert job.run().completed
        for nid in (0, 3, 6):
            cluster.fail_node(nid)
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, app, 8, ranklist=ranklist).run()
        assert not res.completed
        assert any(
            isinstance(e, UnrecoverableError) for e in res.rank_errors.values()
        )

    def test_overhead_accounting(self):
        app = make_app("self-rs", group_size=8, array_len=4096)
        cluster = Cluster(8)
        res = Job(cluster, app, 8, procs_per_node=1).run()
        from repro.ckpt.stripes_rs import checksum_size_rs, padded_size_rs

        raw = 4096 * 8 + 8 + 4096
        padded = padded_size_rs(raw, 8)
        cs = checksum_size_rs(padded, 8)
        b2 = 8 + 4096
        ctrl = 8 * 4
        assert res.rank_results[0]["overhead"] == padded + 2 * cs + b2 + ctrl
