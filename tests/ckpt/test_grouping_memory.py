"""Tests for group partitioning (§3.3) and the memory model (Table 1, Eqs 2-4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ckpt import (
    available_fraction_double,
    available_fraction_self,
    available_fraction_single,
    group_reliability,
    memory_breakdown_self,
    partition_groups,
)
from repro.ckpt.memory_model import workspace_for_budget
from repro.util import GiB


class TestPartitioning:
    def test_stride_groups(self):
        layout = partition_groups(8, 4, strategy="stride")
        assert layout.groups == [[0, 2, 4, 6], [1, 3, 5, 7]]
        assert layout.n_groups == 2 and layout.group_size == 4

    def test_block_groups(self):
        layout = partition_groups(8, 4, strategy="block")
        assert layout.groups == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_lookups(self):
        layout = partition_groups(8, 4, strategy="stride")
        assert layout.group_of(3) == 1
        assert layout.group_rank_of(3) == 1
        assert layout.group_rank_of(6) == 3
        with pytest.raises(KeyError):
            layout.group_of(99)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            partition_groups(10, 4)

    def test_group_size_floor(self):
        with pytest.raises(ValueError):
            partition_groups(8, 1)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            partition_groups(8, 4, strategy="chaotic")

    def test_stride_is_node_distinct_for_block_placement(self):
        # 8 ranks, 2 per node -> nodes [0,0,1,1,2,2,3,3]
        ranklist = [r // 2 for r in range(8)]
        layout = partition_groups(8, 4, strategy="stride", ranklist=ranklist)
        layout.validate_node_distinct(ranklist)

    def test_block_violates_node_distinctness(self):
        ranklist = [r // 2 for r in range(8)]
        layout = partition_groups(8, 4, strategy="block")
        with pytest.raises(ValueError, match="co-located"):
            layout.validate_node_distinct(ranklist)

    def test_topology_strategy_always_node_distinct(self):
        # awkward placement: 3 ranks on node0, 3 on node1, 2 on node2
        ranklist = [0, 0, 0, 1, 1, 1, 2, 2]
        layout = partition_groups(8, 2, strategy="topology", ranklist=ranklist)
        layout.validate_node_distinct(ranklist)
        assert sorted(r for g in layout.groups for r in g) == list(range(8))

    def test_topology_needs_ranklist(self):
        with pytest.raises(ValueError):
            partition_groups(8, 4, strategy="topology")

    @given(
        n_groups=st.integers(min_value=1, max_value=8),
        group_size=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_is_exact_cover(self, n_groups, group_size):
        n = n_groups * group_size
        for strategy in ("stride", "block"):
            layout = partition_groups(n, group_size, strategy=strategy)
            all_ranks = sorted(r for g in layout.groups for r in g)
            assert all_ranks == list(range(n))
            assert all(len(g) == group_size for g in layout.groups)


class TestReliability:
    def test_perfect_nodes(self):
        r = group_reliability(4, 8, 0.0)
        assert r["p_group_ok"] == 1.0 and r["p_system_ok"] == 1.0

    def test_smaller_groups_more_tolerable_fraction(self):
        r2 = group_reliability(2, 16, 0.01)
        r16 = group_reliability(16, 2, 0.01)
        assert r2["fraction_tolerable"] == 0.5  # paper: half the processes
        assert r16["fraction_tolerable"] < r2["fraction_tolerable"]

    def test_bigger_group_less_reliable(self):
        p4 = group_reliability(4, 1, 0.05)["p_group_ok"]
        p16 = group_reliability(16, 1, 0.05)["p_group_ok"]
        assert p16 < p4

    def test_validation(self):
        with pytest.raises(ValueError):
            group_reliability(4, 1, 1.5)
        with pytest.raises(ValueError):
            group_reliability(1, 1, 0.1)


class TestMemoryModel:
    @pytest.mark.parametrize(
        "n,single,self_,double",
        [
            (2, 1 / 3, 1 / 4, 1 / 5),
            (16, 15 / 31, 15 / 32, 15 / 47),
        ],
    )
    def test_paper_equations(self, n, single, self_, double):
        assert available_fraction_single(n) == pytest.approx(single)
        assert available_fraction_self(n) == pytest.approx(self_)
        assert available_fraction_double(n) == pytest.approx(double)

    def test_group16_headline_numbers(self):
        """Paper §3.3: group 16 gives 47%, close to the 50% bound; double
        gives ~30.5% (the SCR row of Table 3)."""
        assert available_fraction_self(16) == pytest.approx(0.47, abs=0.005)
        assert available_fraction_double(16) == pytest.approx(0.305, abs=0.015)

    @given(n=st.integers(min_value=2, max_value=1024))
    @settings(max_examples=60, deadline=None)
    def test_ordering_property(self, n):
        """single > self > double for every group size; self < 1/2."""
        s, f, d = (
            available_fraction_single(n),
            available_fraction_self(n),
            available_fraction_double(n),
        )
        assert s > f > d
        assert f < 0.5
        assert d < 1 / 3

    @given(n=st.integers(min_value=2, max_value=512))
    @settings(max_examples=40, deadline=None)
    def test_self_vs_double_improvement_near_50pct(self, n):
        """The headline: self-checkpoint adds almost 50% more available
        memory over double-checkpoint; exactly (N-1)/2N more."""
        gain = available_fraction_self(n) / available_fraction_double(n) - 1
        assert gain == pytest.approx((n - 1) / (2 * n))
        if n >= 8:
            assert gain >= 0.43

    def test_breakdown_matches_table1(self):
        bd = memory_breakdown_self(16 * GiB, 16)
        assert bd.workspace == bd.checkpoint == 16 * GiB
        assert bd.checksum_old == bd.checksum_new == 16 * GiB // 15
        assert bd.total == 2 * 16 * GiB * 16 // 15
        assert bd.available_fraction == pytest.approx(15 / 32)

    def test_workspace_for_budget(self):
        budget = 4 * GiB
        w_self = workspace_for_budget(budget, 8, "self")
        w_double = workspace_for_budget(budget, 8, "double")
        w_none = workspace_for_budget(budget, 8, "none")
        assert w_none == budget
        assert w_self == int(budget * 7 / 16)
        assert w_double < w_self < w_none

    def test_workspace_for_budget_unknown_method(self):
        with pytest.raises(ValueError):
            workspace_for_budget(GiB, 8, "quantum")

    def test_validation(self):
        with pytest.raises(ValueError):
            available_fraction_self(1)
        with pytest.raises(ValueError):
            memory_breakdown_self(0, 8)
