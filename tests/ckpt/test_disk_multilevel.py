"""Tests for the BLCR-like disk checkpoint and the SCR-like multi-level tier."""

import pytest

from repro.ckpt import (
    HDD,
    SSD,
    BlockDevice,
)
from repro.sim import Cluster, Job
from tests.ckpt.conftest import assert_final_state, make_app

N = 8


class TestBlockDevice:
    def test_write_time_scales_with_sharing(self):
        dev = BlockDevice("d", write_Bps=100e6, read_Bps=100e6, latency_s=0)
        assert dev.write_time(100e6) == pytest.approx(1.0)
        assert dev.write_time(100e6, ranks_sharing=4) == pytest.approx(4.0)

    def test_ssd_faster_than_hdd(self):
        nbytes = 10**9
        assert SSD.write_time(nbytes) < HDD.write_time(nbytes)


class TestDiskCheckpoint:
    @pytest.mark.parametrize("method", ["disk-hdd", "disk-ssd"])
    def test_survives_any_failure_phase(self, cycle, method):
        """Table 3: BLCR rows recover after power-off."""
        app = make_app(method)
        _, second = cycle(app, n_ranks=N, phase="ckpt.flush", occurrence=2)
        assert_final_state(second, N)

    def test_survives_multiple_node_losses(self):
        """Unlike XOR groups, the device tolerates any number of losses."""
        app = make_app("disk-hdd")
        cluster = Cluster(N, n_spares=4)
        job = Job(cluster, app, N, procs_per_node=1)
        assert job.run().completed
        for nid in (0, 2, 5):
            cluster.fail_node(nid)
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, app, N, ranklist=ranklist).run()
        assert_final_state(res, N)

    def test_checkpoint_time_far_exceeds_in_memory(self):
        """The core trade-off of Table 3: disk checkpoints stall for much
        longer than the in-memory encode."""
        results = {}
        for method in ("disk-hdd", "self"):
            cluster = Cluster(N)
            app = make_app(method, array_len=200_000)  # 1.6 MB/rank
            res = Job(cluster, app, N, procs_per_node=1).run()
            assert res.completed
            results[method] = res.rank_results[0]["ckpt_seconds"]
        assert results["disk-hdd"] > 5 * results["self"]

    def test_zero_ram_overhead(self):
        cluster = Cluster(N)
        app = make_app("disk-hdd")
        res = Job(cluster, app, N, procs_per_node=1).run()
        assert res.rank_results[0]["overhead"] == 0


class TestMultiLevel:
    def test_memory_level_restores_fast_path(self, cycle):
        app = make_app("multilevel", flush_every=100)  # no level-2 writes
        _, second = cycle(app, n_ranks=N, phase="ckpt.done")
        assert_final_state(second, N)
        assert second.rank_results[0]["restore"].source == "checkpoint"

    def test_level2_covers_double_group_loss(self):
        """Two losses in one group defeat the in-memory level; the level-2
        image still recovers — the whole point of multi-level CR."""
        app = make_app("multilevel", flush_every=1)  # flush every checkpoint
        cluster = Cluster(N, n_spares=4)
        job = Job(cluster, app, N, procs_per_node=1)
        assert job.run().completed
        cluster.fail_node(0)
        cluster.fail_node(2)  # both in stride-group 0
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, app, N, ranklist=ranklist).run()
        assert_final_state(res, N)
        # ranks of the destroyed group came back via the disk image
        assert res.rank_results[0]["restore"].source == "disk"

    def test_flush_every_validation(self):
        from repro.ckpt import MultiLevelCheckpoint

        with pytest.raises(ValueError):
            MultiLevelCheckpoint(None, None, flush_every=0)
