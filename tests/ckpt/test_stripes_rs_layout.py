"""Tests for the cached GroupLayout and codec reuse in stripes_rs."""

import numpy as np
import pytest

from repro.ckpt.raid6 import RSCodec
from repro.ckpt.stripes_rs import (
    build_parity,
    codec_for,
    data_row_of,
    layout_for,
    padded_size_rs,
    row_roles,
    verify_group_rs,
)
from repro.util.rng import seeded_rng


def _group(n, words_per_stripe=4, seed=0):
    rng = seeded_rng(seed)
    size = 8 * (n - 2) * words_per_stripe
    return [
        rng.integers(0, 256, size=size).astype(np.uint8) for _ in range(n)
    ]


class TestGroupLayout:
    def test_cached_identity(self):
        assert layout_for(6) is layout_for(6)
        assert codec_for(4) is codec_for(4)
        assert isinstance(codec_for(4), RSCodec)

    def test_rows_partition_roles(self):
        for n in (4, 5, 6, 8):
            layout = layout_for(n)
            for row, (p, q, data) in enumerate(layout.rows):
                assert q == (row + 1) % n and p == row % n
                assert set(data) == set(range(n)) - {p, q}

    def test_every_member_hosts_n_minus_2_data_stripes(self):
        n = 6
        layout = layout_for(n)
        for member in range(n):
            stripes = [
                s for (m, s) in layout.row_of if m == member
            ]
            assert sorted(stripes) == list(range(n - 2))

    def test_maps_are_mutually_inverse(self):
        n = 7
        layout = layout_for(n)
        for (member, row), stripe in layout.stripe_of.items():
            assert layout.row_of[(member, stripe)] == row
            assert data_row_of(member, stripe, n) == row

    def test_row_roles_wrapper_matches_layout(self):
        n = 5
        for row in range(n):
            p, q, data = row_roles(row, n)
            assert (p, q, tuple(data)) == layout_for(n).rows[row]

    def test_small_group_rejected(self):
        with pytest.raises(ValueError):
            layout_for(3)


class TestVerifyShortCircuit:
    def test_clean_group_verifies(self):
        n = 6
        bufs = _group(n)
        parity = build_parity(bufs, n)
        assert verify_group_rs(bufs, parity, n)

    def test_corrupt_buffer_detected(self):
        n = 6
        bufs = _group(n)
        parity = build_parity(bufs, n)
        bufs[2][0] ^= 0xFF
        assert not verify_group_rs(bufs, parity, n)

    def test_returns_at_first_mismatching_row(self, monkeypatch):
        """A corrupted row-0 parity must be caught after one row's
        encode, not after materializing all N fresh parity pairs."""
        n = 6
        bufs = _group(n)
        parity = build_parity(bufs, n)
        p0, q0 = parity[0]
        parity[0] = (p0 ^ np.uint8(1), q0)  # corrupt P of row 0

        calls = {"n": 0}
        real_encode = RSCodec.encode

        def counting_encode(self, buffers):
            calls["n"] += 1
            return real_encode(self, buffers)

        monkeypatch.setattr(RSCodec, "encode", counting_encode)
        assert not verify_group_rs(bufs, parity, n)
        assert calls["n"] == 1
