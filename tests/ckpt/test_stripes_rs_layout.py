"""Tests for the cached GroupLayout and codec reuse in stripes_rs."""

import numpy as np
import pytest

from repro.ckpt.raid6 import RSCodec
from repro.ckpt.stripes_rs import (
    build_parity,
    codec_for,
    data_row_of,
    layout_for,
    padded_size_rs,
    row_roles,
    verify_group_rs,
)
from repro.util.rng import seeded_rng


def _group(n, words_per_stripe=4, seed=0):
    rng = seeded_rng(seed)
    size = 8 * (n - 2) * words_per_stripe
    return [
        rng.integers(0, 256, size=size).astype(np.uint8) for _ in range(n)
    ]


class TestGroupLayout:
    def test_cached_identity(self):
        assert layout_for(6) is layout_for(6)
        assert codec_for(4) is codec_for(4)
        assert isinstance(codec_for(4), RSCodec)

    def test_rows_partition_roles(self):
        for n in (4, 5, 6, 8):
            layout = layout_for(n)
            for row, (p, q, data) in enumerate(layout.rows):
                assert q == (row + 1) % n and p == row % n
                assert set(data) == set(range(n)) - {p, q}

    def test_every_member_hosts_n_minus_2_data_stripes(self):
        n = 6
        layout = layout_for(n)
        for member in range(n):
            stripes = [
                s for (m, s) in layout.row_of if m == member
            ]
            assert sorted(stripes) == list(range(n - 2))

    def test_maps_are_mutually_inverse(self):
        n = 7
        layout = layout_for(n)
        for (member, row), stripe in layout.stripe_of.items():
            assert layout.row_of[(member, stripe)] == row
            assert data_row_of(member, stripe, n) == row

    def test_row_roles_wrapper_matches_layout(self):
        n = 5
        for row in range(n):
            p, q, data = row_roles(row, n)
            assert (p, q, tuple(data)) == layout_for(n).rows[row]

    def test_small_group_rejected(self):
        with pytest.raises(ValueError):
            layout_for(3)


class TestVerifyShortCircuit:
    def test_clean_group_verifies(self):
        n = 6
        bufs = _group(n)
        parity = build_parity(bufs, n)
        assert verify_group_rs(bufs, parity, n)

    def test_corrupt_buffer_detected(self):
        n = 6
        bufs = _group(n)
        parity = build_parity(bufs, n)
        bufs[2][0] ^= 0xFF
        assert not verify_group_rs(bufs, parity, n)

    def test_returns_at_first_mismatching_row(self, monkeypatch):
        """A corrupted row-0 parity must be caught after one row's
        encode, not after materializing all N fresh parity pairs."""
        n = 6
        bufs = _group(n)
        parity = build_parity(bufs, n)
        p0, q0 = parity[0]
        parity[0] = (p0 ^ np.uint8(1), q0)  # corrupt P of row 0

        calls = {"n": 0}
        real_encode = RSCodec.encode

        def counting_encode(self, buffers, **kwargs):
            calls["n"] += 1
            return real_encode(self, buffers, **kwargs)

        monkeypatch.setattr(RSCodec, "encode", counting_encode)
        assert not verify_group_rs(bufs, parity, n)
        assert calls["n"] == 1


class TestZeroCopyStripes:
    """The zero-copy contract of the (P, Q) kernels: stripe access and
    parity unpacking are views, and the kernels never mutate inputs."""

    def test_stripe_is_a_view(self):
        from repro.ckpt.stripes_rs import _stripe

        buf = np.arange(64, dtype=np.uint8)
        s = _stripe(buf, 1, 4)
        assert s.base is buf
        s[0] = 0xAA  # writes through to the buffer
        assert buf[16] == 0xAA

    def test_unpack_parity_returns_views(self):
        from repro.ckpt.self_rs import SelfCheckpointRS

        inst = object.__new__(SelfCheckpointRS)
        blob = np.arange(32, dtype=np.uint8)
        p, q = inst._unpack_parity(blob)
        assert p.base is blob and q.base is blob
        np.testing.assert_array_equal(p, blob[:16])
        np.testing.assert_array_equal(q, blob[16:])

    def test_pack_unpack_parity_roundtrip(self):
        from repro.ckpt.self_rs import SelfCheckpointRS

        inst = object.__new__(SelfCheckpointRS)
        n = 5
        bufs = _group(n)
        parity = build_parity(bufs, n)
        blob = inst._pack_parity(parity[2])
        p, q = inst._unpack_parity(blob)
        np.testing.assert_array_equal(p, parity[2][0])
        np.testing.assert_array_equal(q, parity[2][1])

    def test_build_parity_does_not_mutate_buffers(self):
        n = 6
        bufs = _group(n)
        before = [b.copy() for b in bufs]
        build_parity(bufs, n)
        for b, orig in zip(bufs, before):
            np.testing.assert_array_equal(b, orig)

    def test_reconstruct_with_view_parity_matches_copies(self):
        """Recovery fed parity *views* (the post-fix `_unpack_parity`
        output) rebuilds byte-identically to recovery fed copies, and
        never writes through the views into survivor state."""
        from repro.ckpt.stripes_rs import reconstruct_rs

        n = 6
        bufs = _group(n)
        parity = build_parity(bufs, n)
        missing = [1, 4]

        def run(as_views):
            survivors, sp = {}, {}
            blobs = {}
            for m in range(n):
                if m in missing:
                    continue
                p, q = parity[m]
                blob = np.empty(p.nbytes + q.nbytes, dtype=np.uint8)
                blob[: p.nbytes] = p
                blob[p.nbytes :] = q
                blobs[m] = blob
                if as_views:
                    sp[m] = (blob[: p.nbytes], blob[p.nbytes :])
                else:
                    sp[m] = (blob[: p.nbytes].copy(), blob[p.nbytes :].copy())
                survivors[m] = bufs[m]
            out = reconstruct_rs(survivors, sp, missing, n)
            return out, blobs

        out_views, blobs = run(as_views=True)
        out_copies, _ = run(as_views=False)
        for m in missing:
            np.testing.assert_array_equal(out_views[m][0], bufs[m])
            np.testing.assert_array_equal(out_views[m][0], out_copies[m][0])
            np.testing.assert_array_equal(out_views[m][1][0], out_copies[m][1][0])
            np.testing.assert_array_equal(out_views[m][1][1], out_copies[m][1][1])
        # survivor parity blobs were read, never written
        for m, blob in blobs.items():
            p, q = parity[m]
            np.testing.assert_array_equal(blob[: p.nbytes], p)
            np.testing.assert_array_equal(blob[p.nbytes :], q)


class TestParityRebuild:
    """Regression tests for the lost-parity rebuild path: a failed
    member's (P, Q) pair must be re-encoded exactly — the old code
    silently returned zero-filled parity when the re-encode row loop
    missed a holder, which is now an assertion instead of a fallback."""

    @pytest.mark.parametrize("lost", range(6))
    def test_single_loss_rebuilds_exact_parity(self, lost):
        from repro.ckpt.stripes_rs import reconstruct_rs

        n = 6
        bufs = _group(n, seed=21)
        golden = build_parity(bufs, n)
        survivors = {m: bufs[m] for m in range(n) if m != lost}
        sp = {m: golden[m] for m in range(n) if m != lost}
        out = reconstruct_rs(survivors, sp, [lost], n)
        buf, (p, q) = out[lost]
        np.testing.assert_array_equal(buf, bufs[lost])
        np.testing.assert_array_equal(p, golden[lost][0])
        np.testing.assert_array_equal(q, golden[lost][1])
        assert p.any() or q.any()  # zero-filled fallback would be caught

    @pytest.mark.parametrize(
        "missing", [(0, 1), (2, 3), (4, 5), (0, 5), (1, 4)]
    )
    def test_double_loss_rebuilds_exact_parity(self, missing):
        """Includes adjacent pairs, where both parity rows a single
        stripe row needs (P on m, Q on m+1) are lost together."""
        from repro.ckpt.stripes_rs import reconstruct_rs

        n = 6
        bufs = _group(n, seed=22)
        golden = build_parity(bufs, n)
        survivors = {m: bufs[m] for m in range(n) if m not in missing}
        sp = {m: golden[m] for m in range(n) if m not in missing}
        out = reconstruct_rs(survivors, sp, list(missing), n)
        for m in missing:
            buf, (p, q) = out[m]
            np.testing.assert_array_equal(buf, bufs[m])
            np.testing.assert_array_equal(p, golden[m][0])
            np.testing.assert_array_equal(q, golden[m][1])
