"""Equivalence and zero-copy tests for the batched GF(256) kernels.

Every backend registered in :mod:`repro.ckpt.kernels` must produce
byte-identical parity and reconstructions — the seeded randomized sweeps
here pin batched (numpy, both the table and the forced-bitsliced paths),
reference, and the compiled backend (exercised through a stub ``numba``
whose ``njit`` is the identity, so the jitted bodies run as plain
Python) against each other across group sizes 4–12, stripe sizes down
to one byte, and every RAID-6 erasure combination.
"""

import itertools
import sys
import tracemalloc
import types

import numpy as np
import pytest

from repro.ckpt import kernels as K
from repro.ckpt.raid6 import GF256, RSCodec
from repro.ckpt.stripes_rs import (
    _stripe_matrix,
    build_parity,
    padded_size_rs,
    reconstruct_rs,
    verify_group_rs,
)
from repro.util.rng import seeded_rng

#: stripe sizes: one byte, ragged (non-multiple-of-8), word-aligned,
#: non-power-of-two, and past the bitslice crossover
STRIPE_SIZES = (1, 7, 8, 24, 250, 1024)


def _data(rng, k, size):
    return [rng.integers(0, 256, size=size).astype(np.uint8) for _ in range(k)]


def _fake_numba_module():
    """A ``numba`` stand-in whose ``njit`` is the identity decorator, so
    the compiled backend's kernel bodies run as interpreted Python."""
    mod = types.ModuleType("numba")

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco

    mod.njit = njit
    return mod


@pytest.fixture
def restore_backend():
    """Snapshot/restore the installed backend override around a test."""
    saved = K._override
    yield
    K._override = saved


@pytest.fixture
def stub_numba(monkeypatch):
    """Force the numba backend to exist via the identity-njit stub."""
    monkeypatch.setitem(sys.modules, "numba", _fake_numba_module())
    yield


def _all_backends():
    """One instance of every backend variant under equivalence test."""
    return [
        K.ReferenceKernels(),
        K.NumpyKernels(),
        K.NumpyKernels(bitslice_min_bytes=0),  # force the uint64 lanes
    ]


class TestBackendSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(K.BACKEND_ENV, raising=False)
        assert K.resolve_backend_name() == "numpy"

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(K.BACKEND_ENV, "reference")
        assert K.resolve_backend_name() == "reference"

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(K.BACKEND_ENV, "reference")
        assert K.resolve_backend_name("numpy") == "numpy"

    def test_unknown_name_is_an_error_naming_the_env_var(self, monkeypatch):
        monkeypatch.setenv(K.BACKEND_ENV, "turbo")
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            K.resolve_backend_name()

    def test_auto_falls_back_to_numpy_without_numba(self, monkeypatch):
        if K.numba_available():
            pytest.skip("real numba installed; fallback branch untestable")
        assert K.resolve_backend_name("auto") == "numpy"

    def test_numba_unavailable_is_a_clear_error(self):
        if K.numba_available():
            pytest.skip("real numba installed")
        with pytest.raises(RuntimeError, match="numba"):
            K.make_backend("numba")

    def test_available_backends_listing(self):
        names = K.available_backends()
        assert names[0] == "numpy"
        assert "reference" in names

    def test_use_backend_installs(self, restore_backend):
        installed = K.use_backend("reference")
        assert K.get_kernels() is installed
        assert installed.name == "reference"

    def test_auto_selects_numba_under_stub(self, stub_numba, restore_backend):
        assert K.resolve_backend_name("auto") == "numba"
        assert K.use_backend("auto").name == "numba"


class TestEncodeEquivalence:
    def test_rscodec_encode_matches_reference_everywhere(self):
        rng = seeded_rng(101)
        ref = K.ReferenceKernels()
        others = [K.NumpyKernels(), K.NumpyKernels(bitslice_min_bytes=0)]
        for k in range(2, 11):  # group sizes 4..12 -> 2..10 data stripes
            for size in STRIPE_SIZES:
                bufs = _data(rng, k, size)
                out_p = np.empty(size, dtype=np.uint8)
                out_q = np.empty(size, dtype=np.uint8)
                ref.encode_pq(bufs, out_p, out_q)
                for backend in others:
                    p = np.empty(size, dtype=np.uint8)
                    q = np.empty(size, dtype=np.uint8)
                    backend.encode_pq(bufs, p, q)
                    assert np.array_equal(p, out_p), (backend.name, k, size)
                    assert np.array_equal(q, out_q), (backend.name, k, size)

    def test_gpow_fold_arbitrary_exponents(self):
        rng = seeded_rng(102)
        gf = GF256()
        for exps in ([0], [3], [0, 5], [2, 3, 9], [1, 4, 6, 11]):
            for size in (1, 13, 64, 4096):
                rows = _data(rng, len(exps), size)
                want = np.zeros(size, dtype=np.uint8)
                for r, e in zip(rows, exps):
                    gf.vec_mul_xor(gf.pow_g(e), r, want)
                for backend in _all_backends():
                    out = np.empty(size, dtype=np.uint8)
                    backend.gpow_fold(rows, exps, out)
                    assert np.array_equal(out, want), (backend.name, exps, size)

    def test_scale_every_constant(self):
        rng = seeded_rng(103)
        gf = GF256()
        v = rng.integers(0, 256, size=4101).astype(np.uint8)
        for c in list(range(0, 16)) + [37, 128, 200, 255]:
            want = gf.vec_mul(c, v)
            for backend in _all_backends():
                out = np.empty_like(v)
                backend.scale(c, v, out)
                assert np.array_equal(out, want), (backend.name, c)
                # aliased out is explicitly supported
                aliased = v.copy()
                backend.scale(c, aliased, aliased)
                assert np.array_equal(aliased, want), (backend.name, c)

    def test_unaligned_views_and_ragged_tails(self):
        """The uint64 head / uint8 tail split must be byte-exact at any
        slice offset and any non-multiple-of-8 length."""
        rng = seeded_rng(104)
        ref = K.ReferenceKernels()
        forced = K.NumpyKernels(bitslice_min_bytes=0)
        base = rng.integers(0, 256, size=8192 + 3).astype(np.uint8)
        for offset, length in ((1, 8190), (3, 21), (5, 8), (2, 8189)):
            rows = [
                base[offset : offset + length],
                np.flip(base[: length]).copy(),
            ]
            want = np.empty(length, dtype=np.uint8)
            got = np.empty(length, dtype=np.uint8)
            ref.gpow_fold(rows, [2, 7], want)
            forced.gpow_fold(rows, [2, 7], got)
            assert np.array_equal(got, want), (offset, length)


class TestDecodeEquivalence:
    def test_every_erasure_combination_across_backends(self, restore_backend):
        rng = seeded_rng(105)
        for k in range(2, 11):
            sizes = (1, 24) if k != 6 else (1, 24, 4101)
            for size in sizes:
                bufs = _data(rng, k, size)
                codec = RSCodec(k)
                p, q = codec.encode(bufs)
                for backend in _all_backends():
                    K._override = backend
                    # single data loss: via both parities, P only, Q only
                    for x in range(k):
                        surv = {j: bufs[j] for j in range(k) if j != x}
                        for pp, qq in ((p, q), (p, None), (None, q)):
                            got = codec.decode(surv, pp, qq)
                            assert np.array_equal(got[x], bufs[x]), (
                                backend.name, k, size, x, pp is None,
                            )
                    # double data loss
                    for x, y in itertools.combinations(range(k), 2):
                        surv = {
                            j: bufs[j] for j in range(k) if j not in (x, y)
                        }
                        got = codec.decode(surv, p, q)
                        assert np.array_equal(got[x], bufs[x])
                        assert np.array_equal(got[y], bufs[y])

    def test_decode_writes_through_out_views(self, restore_backend):
        rng = seeded_rng(106)
        k, size = 5, 40
        bufs = _data(rng, k, size)
        codec = RSCodec(k)
        p, q = codec.encode(bufs)
        for backend in _all_backends():
            K._override = backend
            target = np.zeros((2, size), dtype=np.uint8)
            outs = {1: target[0], 3: target[1]}
            surv = {j: bufs[j] for j in range(k) if j not in (1, 3)}
            got = codec.decode(surv, p, q, out=outs)
            assert got[1] is outs[1] and got[3] is outs[3]
            assert np.array_equal(target[0], bufs[1])
            assert np.array_equal(target[1], bufs[3])


class TestStripePathEquivalence:
    def test_build_parity_and_verify_across_group_sizes(self, restore_backend):
        rng = seeded_rng(107)
        for n in range(4, 13):
            size = padded_size_rs(257, n)
            bufs = _data(rng, n, size)
            K._override = K.ReferenceKernels()
            want = [(p.copy(), q.copy()) for p, q in build_parity(bufs, n)]
            for backend in _all_backends():
                K._override = backend
                got = build_parity(bufs, n)
                for m in range(n):
                    assert np.array_equal(got[m][0], want[m][0]), (backend.name, n, m)
                    assert np.array_equal(got[m][1], want[m][1]), (backend.name, n, m)
                assert verify_group_rs(bufs, want, n)
                corrupt = [(p.copy(), q.copy()) for p, q in want]
                corrupt[0] = (corrupt[0][0] ^ np.uint8(1), corrupt[0][1])
                assert not verify_group_rs(bufs, corrupt, n)

    def test_reconstruct_all_loss_patterns_across_backends(self, restore_backend):
        rng = seeded_rng(108)
        for n in (4, 7, 12):
            size = padded_size_rs(500, n)
            bufs = _data(rng, n, size)
            parity = build_parity(bufs, n)
            golden = [(p.copy(), q.copy()) for p, q in parity]
            subsets = list(itertools.combinations(range(n), 1)) + list(
                itertools.combinations(range(n), 2)
            )
            for backend in _all_backends():
                K._override = backend
                for miss in subsets:
                    surv = {j: bufs[j] for j in range(n) if j not in miss}
                    survp = {
                        j: golden[j] for j in range(n) if j not in miss
                    }
                    out = reconstruct_rs(surv, survp, list(miss), n)
                    for m in miss:
                        buf, (pp, qq) = out[m]
                        assert np.array_equal(buf, bufs[m]), (backend.name, n, miss)
                        assert np.array_equal(pp, golden[m][0])
                        assert np.array_equal(qq, golden[m][1])


class TestCompiledBackendStub:
    """The numba backend's algorithm (nibble split tables, fused P+Q row
    loops) runs under the identity-``njit`` stub — the same code numba
    would compile, exercised byte-for-byte in pure Python."""

    def test_split_table_encode_decode_equivalence(self, stub_numba, restore_backend):
        rng = seeded_rng(109)
        compiled = K.make_backend("numba")
        assert compiled.name == "numba"
        ref = K.ReferenceKernels()
        for k in (2, 4, 6):
            for size in (1, 24, 64):
                bufs = _data(rng, k, size)
                want_p = np.empty(size, dtype=np.uint8)
                want_q = np.empty(size, dtype=np.uint8)
                ref.encode_pq(bufs, want_p, want_q)
                got_p = np.empty(size, dtype=np.uint8)
                got_q = np.empty(size, dtype=np.uint8)
                compiled.encode_pq(bufs, got_p, got_q)
                assert np.array_equal(got_p, want_p), (k, size)
                assert np.array_equal(got_q, want_q), (k, size)

        K._override = compiled
        k, size = 4, 48
        bufs = _data(rng, k, size)
        codec = RSCodec(k)
        p, q = codec.encode(bufs)
        for x in range(k):
            surv = {j: bufs[j] for j in range(k) if j != x}
            for pp, qq in ((p, q), (p, None), (None, q)):
                got = codec.decode(surv, pp, qq)
                assert np.array_equal(got[x], bufs[x])
        for x, y in itertools.combinations(range(k), 2):
            surv = {j: bufs[j] for j in range(k) if j not in (x, y)}
            got = codec.decode(surv, p, q)
            assert np.array_equal(got[x], bufs[x])
            assert np.array_equal(got[y], bufs[y])

    def test_stub_backend_through_stripe_paths(self, stub_numba, restore_backend):
        rng = seeded_rng(110)
        n = 5
        size = padded_size_rs(100, n)
        bufs = _data(rng, n, size)
        K._override = K.NumpyKernels()
        want = [(p.copy(), q.copy()) for p, q in build_parity(bufs, n)]
        K._override = K.make_backend("numba")
        got = build_parity(bufs, n)
        for m in range(n):
            assert np.array_equal(got[m][0], want[m][0])
            assert np.array_equal(got[m][1], want[m][1])
        assert verify_group_rs(bufs, want, n)

    def test_nibble_tables_are_exact(self, stub_numba):
        gf = GF256()
        compiled = K.make_backend("numba")
        for c in (2, 29, 142, 255):
            lo, hi = compiled._tables_for(c)
            for v in range(256):
                assert lo[v & 0xF] ^ hi[v >> 4] == gf.mul(c, v), (c, v)


class TestZeroCopy:
    def test_stripe_matrix_is_a_view(self):
        buf = np.arange(48, dtype=np.uint8)
        mat = _stripe_matrix(buf, 4)
        assert mat.base is buf
        mat[2, 0] ^= 0xFF
        assert buf[24] == (24 ^ 0xFF)

    def test_build_parity_allocates_only_parity_matrices(self):
        """tracemalloc bound: the reshape-view encode path must not copy
        member buffers — peak allocation stays at the two (N, stripe)
        parity matrices plus per-call kernel scratch, far below one
        member copy."""
        n = 6
        size = padded_size_rs(96 * 1024, n)
        rng = seeded_rng(111)
        bufs = _data(rng, n, size)
        build_parity(bufs, n)  # warm caches (layout, codec, tables)
        stripe_size = size // (n - 2)
        parity_bytes = 2 * n * stripe_size
        tracemalloc.start()
        build_parity(bufs, n)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # one member buffer is `size` bytes; copying even one would blow
        # this bound (parity + lane scratch + slack)
        assert peak <= parity_bytes + 4 * stripe_size + 64 * 1024, (
            peak, parity_bytes, size,
        )

    def test_reconstruct_writes_through_contiguous_rebuilt_buffers(self):
        rng = seeded_rng(112)
        n = 6
        size = padded_size_rs(4096, n)
        bufs = _data(rng, n, size)
        parity = build_parity(bufs, n)
        surv = {j: bufs[j] for j in range(n) if j != 2}
        survp = {j: parity[j] for j in range(n) if j != 2}
        out = reconstruct_rs(surv, survp, [2], n)
        buf, _ = out[2]
        assert buf.flags["C_CONTIGUOUS"]
        assert buf.dtype == np.uint8 and buf.shape == (size,)
        assert np.array_equal(buf, bufs[2])
