"""Property and unit tests for the stripe checksum arithmetic (paper §2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckpt.stripes import (
    build_checksums,
    checksum_size,
    padded_size,
    reconstruct,
    slot_of_stripe,
    stripe_in_slot,
    verify_group,
)


class TestLayout:
    def test_padded_size_alignment(self):
        assert padded_size(1, 4) == 24  # 3 stripes * 8 bytes
        assert padded_size(24, 4) == 24
        assert padded_size(25, 4) == 48

    def test_padded_size_rejects_tiny_group(self):
        with pytest.raises(ValueError):
            padded_size(100, 1)

    def test_checksum_size(self):
        assert checksum_size(24, 4) == 8
        with pytest.raises(ValueError):
            checksum_size(25, 4)

    def test_slot_mapping_bijective(self):
        for proc in range(8):
            slots = [slot_of_stripe(proc, s) for s in range(7)]
            assert proc not in slots  # own checksum slot skipped
            assert sorted(slots) == sorted(set(slots))
            for s in range(7):
                assert stripe_in_slot(proc, slot_of_stripe(proc, s)) == s

    def test_stripe_in_own_slot_rejected(self):
        with pytest.raises(ValueError):
            stripe_in_slot(3, 3)


def _group(rng, n, words_per_stripe=4):
    size = 8 * words_per_stripe * (n - 1)
    return [
        rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(n)
    ]


class TestBuildAndReconstruct:
    @pytest.mark.parametrize("n", [2, 3, 4, 8, 16])
    @pytest.mark.parametrize("op", ["xor", "sum"])
    def test_reconstruct_every_missing_position(self, n, op):
        rng = np.random.default_rng(n)
        bufs = _group(rng, n)
        if op == "sum":
            # make the float view finite so sum/subtract is exact-ish
            bufs = [
                np.random.default_rng(i).standard_normal(
                    len(bufs[0]) // 8
                ).view(np.uint8).copy()
                for i in range(n)
            ]
        cs = build_checksums(bufs, op)
        for missing in range(n):
            survivors = {j: bufs[j] for j in range(n) if j != missing}
            surv_cs = {j: cs[j] for j in range(n) if j != missing}
            got, got_cs = reconstruct(survivors, surv_cs, missing, n, op)
            if op == "xor":
                np.testing.assert_array_equal(got, bufs[missing])
                np.testing.assert_array_equal(got_cs, cs[missing])
            else:
                np.testing.assert_allclose(
                    got.view(np.float64), bufs[missing].view(np.float64), rtol=1e-9
                )

    def test_verify_group(self):
        rng = np.random.default_rng(0)
        bufs = _group(rng, 4)
        cs = build_checksums(bufs, "xor")
        assert verify_group(bufs, cs, "xor")
        bufs[1][0] ^= 0xFF
        assert not verify_group(bufs, cs, "xor")

    def test_size_mismatch_rejected(self):
        bufs = [np.zeros(24, np.uint8), np.zeros(48, np.uint8)]
        with pytest.raises(ValueError):
            build_checksums(bufs + [np.zeros(24, np.uint8)], "xor")

    def test_tiny_group_rejected(self):
        with pytest.raises(ValueError):
            build_checksums([np.zeros(8, np.uint8)], "xor")

    def test_unknown_op_rejected(self):
        bufs = [np.zeros(24, np.uint8)] * 4
        with pytest.raises(ValueError):
            build_checksums(bufs, "nand")

    def test_wrong_dtype_rejected(self):
        bufs = [np.zeros(24, np.float32)] * 4
        with pytest.raises(TypeError):
            build_checksums(bufs, "xor")

    def test_reconstruct_needs_exact_survivor_set(self):
        rng = np.random.default_rng(1)
        bufs = _group(rng, 4)
        cs = build_checksums(bufs)
        with pytest.raises(ValueError):
            reconstruct({0: bufs[0]}, {0: cs[0]}, missing=3, group_size=4)


class TestProperties:
    @given(
        n=st.integers(min_value=2, max_value=9),
        words=st.integers(min_value=1, max_value=16),
        missing=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_xor_roundtrip_property(self, n, words, missing, seed):
        """For any group size, buffer size and missing member: XOR
        reconstruction is bit-exact."""
        missing %= n
        rng = np.random.default_rng(seed)
        bufs = [
            rng.integers(0, 256, size=8 * words * (n - 1), dtype=np.uint8)
            for _ in range(n)
        ]
        cs = build_checksums(bufs, "xor")
        got, got_cs = reconstruct(
            {j: bufs[j] for j in range(n) if j != missing},
            {j: cs[j] for j in range(n) if j != missing},
            missing,
            n,
            "xor",
        )
        np.testing.assert_array_equal(got, bufs[missing])
        np.testing.assert_array_equal(got_cs, cs[missing])

    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_checksum_total_size_property(self, n, seed):
        """Total checksum bytes = data bytes / (N-1): the paper's space
        claim for one checksum (section 3.1)."""
        rng = np.random.default_rng(seed)
        bufs = _group(rng, n)
        cs = build_checksums(bufs)
        assert all(len(c) == len(bufs[0]) // (n - 1) for c in cs)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_xor_checksums_are_order_insensitive(self, seed):
        rng = np.random.default_rng(seed)
        bufs = _group(rng, 4)
        cs1 = build_checksums(bufs, "xor")
        cs2 = build_checksums([b.copy() for b in bufs], "xor")
        for a, b in zip(cs1, cs2):
            np.testing.assert_array_equal(a, b)
