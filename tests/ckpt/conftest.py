"""Shared fixtures for checkpoint protocol tests: a deterministic iterative
application whose state evolution is verifiable after any fail/restart cycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import CheckpointManager
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger


def make_app(
    method: str,
    group_size: int = 4,
    iters: int = 6,
    ckpt_every: int = 2,
    array_len: int = 16,
    **mgr_kwargs,
):
    """An SPMD loop: each rank repeatedly adds (rank+1) to its array.

    After ``it`` iterations rank r's array is uniformly ``it * (r+1)`` —
    so any restored state is verifiable at a glance.  Checkpoints fire every
    ``ckpt_every`` iterations; the iteration counter rides in A2.
    """

    def app(ctx):
        mgr = CheckpointManager(
            ctx, ctx.world, group_size=group_size, method=method, **mgr_kwargs
        )
        a = mgr.alloc("data", array_len)
        mgr.commit()
        report = mgr.try_restore()
        start = report.local["it"] if report else 0
        if start == 0:
            a[:] = 0.0  # plain-memory protocols need explicit init
        for it in range(start, iters):
            a += ctx.world.rank + 1
            ctx.compute(1e8)
            if (it + 1) % ckpt_every == 0:
                mgr.local["it"] = it + 1
                mgr.checkpoint()
        impl = mgr.impl
        ckpt_seconds = getattr(impl, "total_write_seconds", 0.0) + getattr(
            impl, "total_encode_seconds", 0.0
        ) + getattr(impl, "total_flush_seconds", 0.0)
        return {
            "data": a.copy(),
            "restore": report,
            "overhead": mgr.overhead_bytes,
            "ckpt_seconds": ckpt_seconds,
        }

    return app


@pytest.fixture
def cycle():
    """Run app -> inject failure -> daemon-style restart -> rerun.

    Returns (first JobResult, second JobResult or raised error info).
    """

    def _cycle(
        app,
        n_ranks: int = 8,
        phase: str = "ckpt.done",
        occurrence: int = 1,
        fail_node: int = 2,
        n_spares: int = 2,
    ):
        cluster = Cluster(n_ranks, n_spares=n_spares)
        plan = FailurePlan(
            [PhaseTrigger(node_id=fail_node, phase=phase, occurrence=occurrence)]
        )
        job = Job(cluster, app, n_ranks, procs_per_node=1, failure_plan=plan)
        first = job.run()
        assert first.aborted, f"failure at {phase!r} never fired"
        replacements = cluster.replace_dead()
        ranklist = [replacements.get(n, n) for n in job.ranklist]
        second = Job(cluster, app, n_ranks, ranklist=ranklist).run()
        return first, second

    return _cycle


def assert_final_state(result, n_ranks: int, iters: int = 6):
    """Every rank must end with data == iters * (rank + 1)."""
    assert result.completed, {
        r: repr(e) for r, e in result.rank_errors.items()
    }
    for r in range(n_ranks):
        data = result.rank_results[r]["data"]
        expected = iters * (r + 1)
        assert np.all(data == expected), (r, data[:4], expected)
