"""Failures during RESTORE itself: recovery must be idempotent.

The protocols write only their restore *target* (never the source) until
the final flag commit, so a second failure striking mid-restore leaves a
re-restartable state.  These tests chain failures: one during a checkpoint,
another during the resulting recovery, and require the third incarnation to
still land on the exact state.
"""

import pytest

from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger
from tests.ckpt.conftest import assert_final_state, make_app

N = 8


def _chain(method, first_phase, restore_phase, group_size=4, iters=6):
    app = make_app(method, group_size=group_size, iters=iters)
    cluster = Cluster(N, n_spares=4)
    plan = FailurePlan(
        [
            PhaseTrigger(node_id=2, phase=first_phase, occurrence=2),
            # second failure strikes a DIFFERENT node during the recovery
            PhaseTrigger(node_id=5, phase=restore_phase, occurrence=1),
        ]
    )
    # incarnation 1: dies at the checkpoint phase
    job = Job(cluster, app, N, procs_per_node=1, failure_plan=plan)
    first = job.run()
    assert first.aborted and 2 in first.failed_nodes
    repl = cluster.replace_dead()
    ranklist = [repl.get(n, n) for n in job.ranklist]
    # incarnation 2: dies during restore (the same plan is still armed)
    job2 = Job(cluster, app, N, ranklist=ranklist, failure_plan=plan)
    second = job2.run()
    assert second.aborted, "restore-phase failure never fired"
    assert 5 in second.failed_nodes
    repl = cluster.replace_dead()
    ranklist = [repl.get(n, n) for n in job2.ranklist]
    # incarnation 3: must recover cleanly
    third = Job(cluster, app, N, ranklist=ranklist).run()
    return third


class TestRestoreRobustness:
    @pytest.mark.parametrize(
        "first_phase,restore_phase",
        [
            ("ckpt.done", "restore.begin"),
            ("ckpt.done", "restore.reconstruct"),
            ("ckpt.flush", "restore.begin"),
            ("ckpt.flush", "restore.reconstruct"),
        ],
    )
    def test_self_survives_failure_during_restore(
        self, first_phase, restore_phase
    ):
        third = _chain("self", first_phase, restore_phase)
        assert_final_state(third, N)

    def test_double_survives_failure_during_restore(self):
        third = _chain("double", "ckpt.done", "restore.begin")
        assert_final_state(third, N)

    def test_self_rs_survives_failure_during_restore(self):
        third = _chain(
            "self-rs", "ckpt.flush", "restore.reconstruct", group_size=8
        )
        assert_final_state(third, N)
