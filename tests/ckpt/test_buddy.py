"""Tests for the buddy (pairwise replication) baseline of refs [37, 38]."""

import pytest

from repro.ckpt import CheckpointManager
from repro.sim import Cluster, Job, UnrecoverableError
from tests.ckpt.conftest import assert_final_state, make_app

N = 8


class TestBuddy:
    def test_requires_pairs(self):
        def app(ctx):
            with pytest.raises(ValueError, match="group size must be 2"):
                CheckpointManager(ctx, ctx.world, group_size=4, method="buddy")
            return True

        cluster = Cluster(N)
        assert Job(cluster, app, N, procs_per_node=1).run().completed

    @pytest.mark.parametrize(
        "phase,occurrence",
        [
            ("ckpt.update", 1),
            ("ckpt.update.mid", 2),
            ("ckpt.flush", 1),
            ("ckpt.done", 2),
        ],
    )
    def test_recovers_at_every_phase(self, cycle, phase, occurrence):
        app = make_app("buddy", group_size=2)
        _, second = cycle(app, n_ranks=N, phase=phase, occurrence=occurrence)
        assert_final_state(second, N)

    def test_buddy_pair_loss_unrecoverable(self):
        app = make_app("buddy", group_size=2)
        cluster = Cluster(N, n_spares=4)
        job = Job(cluster, app, N, procs_per_node=1)
        assert job.run().completed
        # stride pairs over 8 ranks: groups [0,4],[1,5],[2,6],[3,7]
        cluster.fail_node(0)
        cluster.fail_node(4)
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, app, N, ranklist=ranklist).run()
        assert not res.completed
        assert any(
            isinstance(e, UnrecoverableError) for e in res.rank_errors.values()
        )

    def test_losses_in_different_pairs_recoverable(self):
        app = make_app("buddy", group_size=2)
        cluster = Cluster(N, n_spares=4)
        job = Job(cluster, app, N, procs_per_node=1)
        assert job.run().completed
        cluster.fail_node(0)  # pair (0, 4)
        cluster.fail_node(1)  # pair (1, 5)
        repl = cluster.replace_dead()
        ranklist = [repl.get(n, n) for n in job.ranklist]
        res = Job(cluster, app, N, ranklist=ranklist).run()
        assert_final_state(res, N)

    def test_memory_is_two_full_copies(self):
        """The paper's complaint about [38]: ~1/3 of memory left."""
        app = make_app("buddy", group_size=2, array_len=4096)
        cluster = Cluster(N)
        res = Job(cluster, app, N, procs_per_node=1).run()
        overhead = res.rank_results[0]["overhead"]
        workspace = 4096 * 8
        # 2 slots x (local + mirror) = 4 padded buffers
        assert overhead > 4 * workspace
        # available fraction = M / (M + overhead) ~ 1/5 with two slots
        assert workspace / (workspace + overhead) < 0.25

    def test_restored_data_identical_to_fault_free(self, cycle):
        app = make_app("buddy", group_size=2)
        _, second = cycle(app, n_ranks=N, phase="ckpt.update.mid", occurrence=2)
        assert_final_state(second, N)
        report = second.rank_results[2]["restore"]
        assert report.epoch == 1  # mid-update of epoch 2 -> slot 1 survives
