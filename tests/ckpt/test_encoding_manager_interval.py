"""Tests for the group encoder collective, the manager facade, and the
checkpoint-interval helpers."""

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointManager,
    GroupEncoder,
    expected_runtime,
    optimal_interval_daly,
    optimal_interval_young,
)
from repro.sim import Cluster, Job


def run(main, n_ranks=4, **kw):
    cl = Cluster(n_ranks)
    res = Job(cl, main, n_ranks, procs_per_node=1, **kw).run()
    assert res.completed, res.rank_errors
    return res


class TestGroupEncoder:
    def test_encode_matches_pure_math(self):
        from repro.ckpt.stripes import build_checksums

        def main(ctx):
            comm = ctx.world
            enc = GroupEncoder(comm)
            rng = np.random.default_rng(comm.rank)
            flat = rng.integers(0, 256, 8 * 3 * 4, dtype=np.uint8)
            res = enc.encode(flat)
            return (flat, res.checksum, res.seconds)

        out = run(main)
        bufs = [out.rank_results[r][0] for r in range(4)]
        expected = build_checksums(bufs, "xor")
        for r in range(4):
            np.testing.assert_array_equal(out.rank_results[r][1], expected[r])
            assert out.rank_results[r][2] > 0

    def test_recover_collective(self):
        def main(ctx):
            comm = ctx.world
            enc = GroupEncoder(comm)
            rng = np.random.default_rng(comm.rank)
            flat = rng.integers(0, 256, 8 * 3 * 2, dtype=np.uint8)
            cs = enc.encode(flat).checksum
            # pretend rank 2 lost everything
            if comm.rank == 2:
                got = enc.recover(None, None, missing=2)
                expect = np.random.default_rng(2).integers(
                    0, 256, 8 * 3 * 2, dtype=np.uint8
                )
                np.testing.assert_array_equal(got[0], expect)
                np.testing.assert_array_equal(got[1], cs)
                return True
            assert enc.recover(flat, cs, missing=2) is None
            return True

        run(main)

    def test_mismatched_sizes_rejected(self):
        def main(ctx):
            comm = ctx.world
            enc = GroupEncoder(comm)
            n = 8 * 3 * (2 if comm.rank == 0 else 4)
            flat = np.zeros(n, dtype=np.uint8)
            try:
                enc.encode(flat)
            except Exception:
                return "raised"
            return "ok"

        cl = Cluster(4)
        res = Job(cl, main, 4, procs_per_node=1).run()
        # the compute callback raises inside the collective; at least the
        # computing rank observes it
        assert not res.completed or "raised" in res.rank_results.values()

    def test_unaligned_buffer_rejected(self):
        def main(ctx):
            enc = GroupEncoder(ctx.world)
            with pytest.raises(ValueError):
                enc.encode(np.zeros(10, dtype=np.uint8))
            ctx.world.barrier()
            return True

        run(main)

    def test_single_root_ablation_slower(self):
        def main(ctx):
            enc = GroupEncoder(ctx.world)
            flat = np.zeros(8 * 3 * 1000, dtype=np.uint8)
            t_stripe = enc.encode(flat).seconds
            t_single = enc.encode_single_root(flat).seconds
            assert t_single > t_stripe
            return True

        run(main)

    def test_group_too_small(self):
        def main(ctx):
            sub = ctx.world.split(color=ctx.world.rank)  # singleton comms
            with pytest.raises(ValueError):
                GroupEncoder(sub)
            return True

        run(main, n_ranks=2)


class TestManager:
    def test_unknown_method_rejected(self):
        def main(ctx):
            with pytest.raises(ValueError):
                CheckpointManager(ctx, ctx.world, method="quantum")
            return True

        run(main, n_ranks=2)

    def test_group_layout_respects_strategy(self):
        def main(ctx):
            mgr = CheckpointManager(
                ctx, ctx.world, group_size=2, method="self", strategy="stride"
            )
            assert mgr.group_layout.groups == [[0, 2], [1, 3]]
            assert mgr.group.size == 2
            mgr.alloc("x", 4)
            mgr.commit()
            return True

        run(main)

    def test_disk_method_has_no_group(self):
        def main(ctx):
            mgr = CheckpointManager(ctx, ctx.world, method="disk-ssd")
            assert mgr.group is None and mgr.group_layout is None
            return True

        run(main, n_ranks=2)


class TestInterval:
    def test_young_formula(self):
        assert optimal_interval_young(10.0, 3600.0) == pytest.approx(
            (2 * 10 * 3600) ** 0.5
        )

    def test_daly_close_to_young_for_small_delta(self):
        y = optimal_interval_young(1.0, 1e6)
        d = optimal_interval_daly(1.0, 1e6)
        assert abs(d - y) / y < 0.01

    def test_daly_fallback(self):
        assert optimal_interval_daly(100.0, 10.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_interval_young(0, 100)
        with pytest.raises(ValueError):
            optimal_interval_daly(1, -5)
        with pytest.raises(ValueError):
            expected_runtime(0, 1, 1, 1, 1)

    def test_restart_zero_allowed(self):
        # in-memory restart can be effectively free; only negative is invalid
        assert expected_runtime(100.0, 1.0, 10.0, 1000.0, 0.0) > 100.0
        with pytest.raises(ValueError, match="restart_s"):
            expected_runtime(100.0, 1.0, 10.0, 1000.0, -1.0)

    def test_lost_work_clamped_to_total_work(self):
        """An interval longer than the job cannot lose more than the job:
        the per-failure lost-work term saturates at work/2, so stretching
        the interval further must not keep inflating the estimate."""
        work, delta, mtbf, restart = 100.0, 1.0, 200.0, 5.0
        r_long = expected_runtime(work, delta, work * 10, mtbf, restart)
        r_longer = expected_runtime(work, delta, work * 1000, mtbf, restart)
        assert r_long == pytest.approx(r_longer)
        base = work + delta  # one checkpoint at interval >= work
        lost = base / mtbf * (work / 2.0 + delta + restart)
        assert r_long == pytest.approx(base + lost)

    def test_expected_runtime_minimized_near_optimum(self):
        """The Young interval should beat much shorter and longer ones."""
        work, delta, mtbf, restart = 36000.0, 10.0, 3600.0, 60.0
        t_opt = optimal_interval_young(delta, mtbf)
        r_opt = expected_runtime(work, delta, t_opt, mtbf, restart)
        r_short = expected_runtime(work, delta, t_opt / 20, mtbf, restart)
        r_long = expected_runtime(work, delta, t_opt * 20, mtbf, restart)
        assert r_opt < r_short and r_opt < r_long
