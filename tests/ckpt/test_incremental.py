"""Tests for the incremental (dirty-page) checkpoint baseline."""

import pytest

from repro.ckpt import CheckpointManager
from repro.sim import Cluster, Job, UnrecoverableError
from tests.ckpt.conftest import assert_final_state, make_app

N = 8


def make_sparse_app(dirty_stride: int, iters: int = 6, pages: int = 8):
    """Mutates one float per ``dirty_stride`` pages between checkpoints, so
    the dirty footprint is 1/dirty_stride of the workspace."""
    page_floats = 512  # 4096-byte pages of float64

    def app(ctx):
        mgr = CheckpointManager(
            ctx, ctx.world, group_size=4, method="incremental"
        )
        a = mgr.alloc("data", pages * page_floats)
        mgr.commit()
        rep = mgr.try_restore()
        start = rep.local["it"] if rep else 0
        if start == 0:
            a[:] = 0.0
        for it in range(start, iters):
            for p in range(0, pages, dirty_stride):
                a[p * page_floats] += ctx.world.rank + 1
            ctx.compute(1e8)
            if (it + 1) % 2 == 0:
                mgr.local["it"] = it + 1
                mgr.checkpoint()
        return {
            "data": a.copy(),
            "restore": rep,
            "dirty_history": list(mgr.impl.dirty_bytes_history),
            "encode_s": mgr.impl.total_encode_seconds,
        }

    return app


class TestDirtyTracking:
    def test_only_dirty_pages_counted(self):
        app = make_sparse_app(dirty_stride=4, pages=8)  # 2 of 8 pages dirty
        cluster = Cluster(N)
        res = Job(cluster, app, N, procs_per_node=1).run()
        assert res.completed, res.rank_errors
        history = res.rank_results[0]["dirty_history"]
        # first checkpoint: 2 data pages + the A2 page(s); later ones similar
        assert all(0 < d <= 4 * 4096 for d in history)

    def test_sparse_encode_cheaper_than_dense(self):
        results = {}
        for stride in (1, 8):  # all pages dirty vs 1/8 dirty
            app = make_sparse_app(dirty_stride=stride, pages=8)
            cluster = Cluster(N)
            res = Job(cluster, app, N, procs_per_node=1).run()
            assert res.completed
            results[stride] = res.rank_results[0]["encode_s"]
        assert results[8] < results[1]

    def test_undo_capacity_overflow_raises(self):
        def app(ctx):
            mgr = CheckpointManager(
                ctx,
                ctx.world,
                group_size=4,
                method="incremental",
                undo_fraction=0.05,
            )
            a = mgr.alloc("data", 8 * 512)
            mgr.commit()
            mgr.try_restore()
            a[:] = 1.0  # dirty everything
            with pytest.raises(UnrecoverableError, match="undo capacity"):
                mgr.checkpoint()
            ctx.world.barrier()
            return True

        cluster = Cluster(N)
        res = Job(cluster, app, N, procs_per_node=1).run()
        assert res.completed, res.rank_errors

    def test_sum_op_rejected(self):
        def app(ctx):
            with pytest.raises(ValueError, match="linearity"):
                CheckpointManager(
                    ctx, ctx.world, group_size=4, method="incremental", op="sum"
                )
            return True

        cluster = Cluster(N)
        # the rejected constructor already split a group communicator, so
        # every rank must attempt it (collective) — which app() does
        assert Job(cluster, app, N, procs_per_node=1).run().completed


class TestRecovery:
    @pytest.mark.parametrize(
        "phase", ["ckpt.undo_ready", "ckpt.flush", "ckpt.done"]
    )
    def test_recovers_at_every_phase(self, cycle, phase):
        app = make_app("incremental")
        _, second = cycle(app, n_ranks=N, phase=phase, occurrence=2)
        assert_final_state(second, N)

    def test_midupdate_failure_rolls_back_one_epoch(self, cycle):
        """The undo log's whole purpose: a failure inside the in-place
        update recovers the previous checkpoint, not garbage."""
        app = make_app("incremental")
        _, second = cycle(app, n_ranks=N, phase="ckpt.flush", occurrence=2)
        report = second.rank_results[0]["restore"]
        assert report.epoch == 1  # epoch 2's update was rolled back
        assert report.local["it"] == 2

    def test_clean_restart_resumes(self):
        app = make_app("incremental")
        cluster = Cluster(N)
        assert Job(cluster, app, N, procs_per_node=1).run().completed
        res = Job(cluster, app, N, procs_per_node=1).run()
        assert_final_state(res, N)
        assert res.rank_results[0]["restore"].local["it"] == 6

    def test_full_footprint_memory_worse_than_self(self):
        """The paper's §1 argument: with HPL-like full-footprint mutation,
        incremental needs checkpoint + full undo, beating no one."""
        overheads = {}
        for method in ("incremental", "self"):
            app = make_app(method, array_len=8192)
            cluster = Cluster(N)
            res = Job(cluster, app, N, procs_per_node=1).run()
            assert res.completed
            overheads[method] = res.rank_results[0]["overhead"]
        assert overheads["incremental"] > overheads["self"]


class TestDirtyPageViews:
    """The zero-copy dirty scan: aligned prefix via views, ragged tail
    compared separately — and identical dirty sets either way."""

    @staticmethod
    def _reference_dirty(flat, ref, pb):
        """The old padded-copy implementation, kept as the oracle."""
        import numpy as np

        n_pages = -(-len(flat) // pb)
        pad = n_pages * pb - len(flat)
        if pad:
            flat = np.concatenate([flat, np.zeros(pad, np.uint8)])
            ref = np.concatenate([ref, np.zeros(pad, np.uint8)])
        diff = (flat.reshape(n_pages, pb) != ref.reshape(n_pages, pb)).any(axis=1)
        return np.nonzero(diff)[0]

    def _probe(self, pb, ref):
        from repro.ckpt.incremental import IncrementalCheckpoint

        inst = object.__new__(IncrementalCheckpoint)
        inst.page_bytes = pb
        inst._b = ref
        return inst

    @pytest.mark.parametrize("nbytes", [96, 100, 128, 257, 4096, 5000])
    @pytest.mark.parametrize("pb", [32, 128, 4096])
    def test_matches_padded_reference(self, nbytes, pb):
        import numpy as np

        from repro.util.rng import seeded_rng

        rng = seeded_rng(nbytes * 31 + pb)
        ref = rng.integers(0, 256, size=nbytes).astype(np.uint8)
        flat = ref.copy()
        # dirty a scattering of bytes, including the very last (tail page)
        for idx in (0, nbytes // 2, nbytes - 1):
            flat[idx] ^= 0xFF
        inst = self._probe(pb, ref)
        got = inst._dirty_pages(flat)
        want = self._reference_dirty(flat, ref, pb)
        assert got.tolist() == want.tolist()

    def test_clean_buffer_has_no_dirty_pages(self):
        import numpy as np

        ref = np.arange(100, dtype=np.uint8)
        inst = self._probe(32, ref)
        assert inst._dirty_pages(ref.copy()).tolist() == []

    def test_tail_only_dirt_is_detected(self):
        import numpy as np

        ref = np.zeros(100, dtype=np.uint8)  # 3 full 32B pages + 4B tail
        flat = ref.copy()
        flat[99] = 1
        inst = self._probe(32, ref)
        assert inst._dirty_pages(flat).tolist() == [3]

    def test_no_copies_of_aligned_prefix(self):
        """The scan must not allocate padded copies of flat or B: the
        aligned prefix comparison happens through zero-copy views."""
        import numpy as np

        ref = np.zeros(4096 * 64 + 5, dtype=np.uint8)
        flat = ref.copy()
        flat[0] = 1
        inst = self._probe(4096, ref)
        import tracemalloc

        tracemalloc.start()
        inst._dirty_pages(flat)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        tracemalloc.start()
        self._reference_dirty(flat, ref, 4096)
        _, peak_ref = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # the padded-copy oracle allocates two full-buffer copies on top
        # of the boolean diff; the view scan allocates the diff alone
        assert peak < peak_ref - len(flat)

    def test_nonaligned_job_roundtrip(self):
        """End-to-end: a workspace whose padded size is not a multiple of
        the page size checkpoints and recovers with exact dirty behavior."""

        def app(ctx):
            mgr = CheckpointManager(
                ctx,
                ctx.world,
                group_size=4,
                method="incremental",
                page_bytes=4096,
            )
            a = mgr.alloc("data", 50)  # 400 B << one page, ragged tail only
            mgr.commit()
            rep = mgr.try_restore()
            start = rep.local["it"] if rep else 0
            for it in range(start, 4):
                a += ctx.world.rank + 1
                ctx.compute(1e7)
                if (it + 1) % 2 == 0:
                    mgr.local["it"] = it + 1
                    mgr.checkpoint()
            return {"data": a.copy(), "dirty": list(mgr.impl.dirty_bytes_history)}

        cluster = Cluster(N)
        res = Job(cluster, app, N, procs_per_node=1).run()
        assert res.completed, res.rank_errors
        for r in range(N):
            out = res.rank_results[r]
            assert (out["data"] == 4 * (r + 1)).all()
            assert all(d > 0 for d in out["dirty"])
