"""Campaign observability: payloads, store ingest, and the off-mode contract.

The campaign-level determinism contract extends to telemetry: a kill
matrix run with ``--obs summary`` must ingest to a byte-identical trace
store whether replays run serially or over a worker pool, and turning
observability on must never perturb ``BENCH_chaos.json``.
"""

import pytest

from repro.chaos import (
    RandomCampaignConfig,
    probe_baseline,
    random_campaign,
    run_kill_matrix,
    selfckpt_scenario,
)
from repro.chaos import bench as chaos_bench
from repro.obs.rollup import OBS_FULL, OBS_OFF, OBS_SUMMARY
from repro.obs.store import (
    TraceStore,
    campaign_id_for,
    ingest_kill_matrix,
    ingest_schedules,
)
from repro.par import MemoCache


def small_scenario(**kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("group_size", 2)
    kw.setdefault("iters", 4)
    kw.setdefault("ckpt_every", 2)
    kw.setdefault("method", "self")
    return selfckpt_scenario(**kw)


def _bench_bytes(matrices, schedules=None):
    return chaos_bench.bench_json(
        chaos_bench.bench_record(matrices, schedules, None, seed=0)
    )


def _store_digest(scenario, report, obs_mode):
    with TraceStore(":memory:") as store:
        cid = campaign_id_for(0, scenario.name, [report.method])
        ingest_kill_matrix(
            store, cid, scenario, report, seed=0, obs_mode=obs_mode
        )
        return store.digest()


class TestAttemptPayload:
    def test_summary_mode_carries_rollup_only(self):
        sc = small_scenario()
        report = run_kill_matrix(sc, probe=probe_baseline(sc), obs=OBS_SUMMARY)
        assert report.results
        for r in report.results:
            assert r.obs is not None
            assert r.obs["mode"] == "summary"
            assert "summary" in r.obs
            assert "spans" not in r.obs
            assert "metrics" not in r.obs

    def test_full_mode_carries_streams(self):
        sc = small_scenario()
        report = run_kill_matrix(sc, probe=probe_baseline(sc), obs=OBS_FULL)
        for r in report.results:
            assert r.obs["mode"] == "full"
            assert isinstance(r.obs["spans"], list) and r.obs["spans"]
            assert isinstance(r.obs["metrics"], list)

    def test_off_mode_carries_nothing(self):
        sc = small_scenario()
        report = run_kill_matrix(sc, probe=probe_baseline(sc), obs=OBS_OFF)
        assert all(r.obs is None for r in report.results)


class TestBenchCompat:
    def test_bench_bytes_never_see_obs_payload(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        off = run_kill_matrix(sc, probe=probe, obs=OBS_OFF)
        summary = run_kill_matrix(sc, probe=probe, obs=OBS_SUMMARY)
        full = run_kill_matrix(sc, probe=probe, obs=OBS_FULL)
        assert (
            _bench_bytes([off])
            == _bench_bytes([summary])
            == _bench_bytes([full])
        )

    def test_random_campaign_bench_obs_invariant(self):
        sc = small_scenario()
        cfg = RandomCampaignConfig(n_schedules=2, seed=5)
        off = random_campaign(sc, cfg, obs=OBS_OFF)
        summary = random_campaign(sc, cfg, obs=OBS_SUMMARY)
        assert _bench_bytes([], off) == _bench_bytes([], summary)


class TestStoreEquivalence:
    def test_serial_and_pooled_ingest_identically(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        serial = run_kill_matrix(sc, probe=probe, obs=OBS_SUMMARY)
        pooled = run_kill_matrix(
            sc, probe=probe, obs=OBS_SUMMARY, workers=2
        )
        assert _store_digest(sc, serial, OBS_SUMMARY) == _store_digest(
            sc, pooled, OBS_SUMMARY
        )

    def test_schedules_ingest_deterministically(self):
        sc = small_scenario()
        cfg = RandomCampaignConfig(n_schedules=2, seed=5)
        digests = []
        for workers in (1, 2):
            results = random_campaign(sc, cfg, obs=OBS_SUMMARY, workers=workers)
            with TraceStore(":memory:") as store:
                ingest_schedules(
                    store,
                    "camp",
                    sc,
                    results,
                    seed=5,
                    obs_mode=OBS_SUMMARY,
                )
                digests.append(store.digest())
        assert digests[0] == digests[1]

    def test_run_identity_differs_across_obs_modes(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        summary = run_kill_matrix(sc, probe=probe, obs=OBS_SUMMARY)
        full = run_kill_matrix(sc, probe=probe, obs=OBS_FULL)
        a = _store_digest(sc, summary, OBS_SUMMARY)
        b = _store_digest(sc, full, OBS_FULL)
        assert a != b  # modes are part of the run identity


class TestCacheIsolation:
    def test_cache_never_crosses_obs_modes(self, tmp_path):
        sc = small_scenario()
        probe = probe_baseline(sc)
        cache = MemoCache(str(tmp_path / "memo"))
        run_kill_matrix(sc, probe=probe, cache=cache, obs=OBS_OFF)
        misses_after_off = cache.misses
        assert misses_after_off > 0 and cache.hits == 0
        # same sweep with obs=summary: every fingerprint differs, so the
        # cache must miss again rather than serve payload-less outcomes
        run_kill_matrix(sc, probe=probe, cache=cache, obs=OBS_SUMMARY)
        assert cache.hits == 0
        assert cache.misses == 2 * misses_after_off

    def test_cache_hit_replays_obs_payload(self, tmp_path):
        sc = small_scenario()
        probe = probe_baseline(sc)
        cache = MemoCache(str(tmp_path / "memo"))
        first = run_kill_matrix(sc, probe=probe, cache=cache, obs=OBS_SUMMARY)
        assert cache.hits == 0
        again = run_kill_matrix(sc, probe=probe, cache=cache, obs=OBS_SUMMARY)
        assert cache.hits > 0
        for a, b in zip(first.results, again.results):
            assert a.obs == b.obs
        assert _store_digest(sc, first, OBS_SUMMARY) == _store_digest(
            sc, again, OBS_SUMMARY
        )
