"""Serial-vs-parallel equivalence for the campaign engines (repro.par).

The contract under test: ``workers`` changes wall-clock time and nothing
else.  The kill matrix and the randomized campaign must produce the same
verdicts in the same order — down to the bytes of ``BENCH_chaos.json`` —
whether replays run inline, on one worker, or fanned out over a pool; a
replay that crashes inside a worker must surface as its own verdict in
its own slot, never abort or reorder the sweep.
"""

import pytest

from repro.chaos import (
    ChaosError,
    ChaosScenario,
    RandomCampaignConfig,
    enumerate_kill_points,
    probe_baseline,
    random_campaign,
    replay_kill_points,
    run_kill_matrix,
    run_schedule,
    selfckpt_scenario,
)
from repro.chaos import bench as chaos_bench
from repro.obs.metrics import MetricsRegistry
from repro.par import MemoCache, ScenarioSpec, register_scenario


def small_scenario(**kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("group_size", 2)
    kw.setdefault("iters", 4)
    kw.setdefault("ckpt_every", 2)
    kw.setdefault("method", "self")
    return selfckpt_scenario(**kw)


def _bench_bytes(matrices, schedules=None):
    return chaos_bench.bench_json(
        chaos_bench.bench_record(matrices, schedules, None, seed=0)
    )


def _broken_builder(**kwargs):
    raise RuntimeError("scenario cannot be rebuilt")


class TestGoldenEquivalence:
    def test_kill_matrix_is_worker_count_invariant(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        legacy = run_kill_matrix(sc, probe=probe)
        one = run_kill_matrix(sc, probe=probe, workers=1)
        pooled = run_kill_matrix(sc, probe=probe, workers=2)
        assert (
            _bench_bytes([legacy]) == _bench_bytes([one]) == _bench_bytes([pooled])
        )

    def test_random_campaign_is_worker_count_invariant(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        cfg = RandomCampaignConfig(n_schedules=4, seed=7)
        serial = random_campaign(sc, cfg, probe=probe)
        pooled = random_campaign(sc, cfg, probe=probe, workers=2)
        assert _bench_bytes([], serial) == _bench_bytes([], pooled)

    def test_pooled_matrix_with_cache_still_identical(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        cache = MemoCache()
        cold = run_kill_matrix(sc, probe=probe, workers=2, cache=cache)
        warm = run_kill_matrix(sc, probe=probe, workers=2, cache=cache)
        plain = run_kill_matrix(sc, probe=probe)
        assert (
            _bench_bytes([cold]) == _bench_bytes([warm]) == _bench_bytes([plain])
        )


class TestWorkerCrash:
    def _crashing_scenario(self):
        """A scenario whose spec rebuilds into an exception: the pool
        worker crashes, the parent must fold it into a verdict."""
        register_scenario("boom", _broken_builder)
        sc = small_scenario()
        return ChaosScenario(
            name=sc.name,
            params=sc.params,
            factory=sc.factory,
            spec=ScenarioSpec.create("boom"),
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_crashed_replay_is_a_verdict_not_a_loss(self, workers):
        sc = self._crashing_scenario()
        probe = probe_baseline(sc)  # probe uses the in-process factory
        points = enumerate_kill_points(probe, max_occurrences=1)
        results = replay_kill_points(sc, points, workers=workers)
        assert [r.point for r in results] == points  # nothing lost
        assert all(r.verdict == "gave-up" for r in results)
        assert all(
            r.gave_up_reason.startswith("replay crashed: RuntimeError")
            for r in results
        )


class TestSerialOnlyFallback:
    def _speclass_scenario(self):
        # protocol_factory closures cannot cross a process boundary
        from repro.ckpt.self_ckpt import SelfCheckpoint

        return small_scenario(protocol_factory=SelfCheckpoint)

    def test_unpicklable_scenario_runs_serially(self):
        sc = self._speclass_scenario()
        assert sc.spec is None
        report = run_kill_matrix(sc, phases=["ckpt.done"], max_occurrences=1)
        assert report.survived_all

    def test_unpicklable_scenario_with_workers_raises(self):
        sc = self._speclass_scenario()
        with pytest.raises(ChaosError, match="workers=1"):
            run_kill_matrix(
                sc, phases=["ckpt.done"], max_occurrences=1, workers=2
            )
        probe = probe_baseline(sc)
        with pytest.raises(ChaosError, match="workers=1"):
            random_campaign(
                sc,
                RandomCampaignConfig(n_schedules=2),
                probe=probe,
                workers=2,
            )


class TestCacheSemantics:
    def test_second_sweep_is_all_hits(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        cache = MemoCache()
        run_kill_matrix(sc, probe=probe, cache=cache)
        registry = MetricsRegistry()
        warm = run_kill_matrix(sc, probe=probe, cache=cache, registry=registry)
        n = len(warm.results)
        assert registry.total("par.cache_hits") == n
        assert registry.total("par.cache_misses") == 0
        # chaos.runs counts resolved replays whether replayed or cached,
        # so campaign accounting is cache-independent
        assert registry.total("chaos.runs") == n + 1  # + baseline

    def test_run_schedule_deduplicates_through_cache(self):
        from repro.sim.failures import TimeTrigger

        sc = small_scenario()
        cache = MemoCache()
        triggers = [TimeTrigger(node_id=0, at_time=2.5)]
        first = run_schedule(sc, triggers, cache=cache)
        assert len(cache) == 1
        second = run_schedule(sc, triggers, cache=cache)
        assert (first.verdict, first.n_restarts, first.fired) == (
            second.verdict,
            second.n_restarts,
            second.fired,
        )

    def test_disk_cache_round_trips_a_campaign(self, tmp_path):
        sc = small_scenario()
        probe = probe_baseline(sc)
        cold = run_kill_matrix(
            sc, probe=probe, cache=MemoCache(str(tmp_path))
        )
        registry = MetricsRegistry()
        warm = run_kill_matrix(
            sc,
            probe=probe,
            cache=MemoCache(str(tmp_path)),
            registry=registry,
        )
        assert _bench_bytes([cold]) == _bench_bytes([warm])
        assert registry.total("par.cache_hits") == len(warm.results)
