"""Pinned kill points and once-per-node trigger delivery.

A node with several ranks used to deliver injected failures in
host-scheduler order: which rank tripped a node-wide phase count, and how
far its siblings got before observing the power-off, varied run to run.
:func:`point_trigger` now pins each matrix point to the concrete
fault-free announcement it resolves to (``via_rank``/``via_occurrence``),
carries the probe clock, and dooms every sibling rank at its own first
announcement after the kill; :class:`FailurePlan` additionally refuses to
fire a trigger whose primary target node already died.  The payoff
asserted here: repeating a ranks-per-node > 1 kill matrix yields
byte-identical telemetry.
"""

from repro.chaos import (
    KillPoint,
    probe_baseline,
    run_kill_matrix,
    selfckpt_scenario,
)
from repro.chaos.campaign import point_trigger
from repro.obs.store import TraceStore, ingest_kill_matrix
from repro.sim.failures import FailurePlan, PhaseTrigger, TimeTrigger


def ppn2_scenario(**kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("procs_per_node", 2)
    kw.setdefault("group_size", 2)
    kw.setdefault("iters", 2)
    kw.setdefault("ckpt_every", 1)
    kw.setdefault("method", "self")
    return selfckpt_scenario(**kw)


class TestPointTriggerPinning:
    def test_unpinned_without_probe(self):
        t = point_trigger(KillPoint(phase="ckpt.begin", occurrence=1, node_id=0))
        assert t.via_rank is None
        assert t.via_occurrence is None
        assert t.fire_clock is None
        assert t.doom_points == ()

    def test_pin_resolves_probe_announcement(self):
        probe = probe_baseline(ppn2_scenario())
        point = KillPoint(phase="ckpt.begin", occurrence=2, node_id=0)
        t = point_trigger(point, probe)
        # pinned to the 2nd announcement of the phase on node 0, in the
        # probe's virtual-clock order
        clock, rank, local = probe.announcements[(0, "ckpt.begin")][1]
        assert (t.via_rank, t.via_occurrence, t.fire_clock) == (rank, local, clock)
        # the advertised matrix coordinates are unchanged: provenance
        # (and thus BENCH artifacts) reports the node-wide occurrence
        assert (t.node_id, t.phase, t.occurrence) == (0, "ckpt.begin", 2)
        assert t.rank is None

    def test_doom_points_cover_every_sibling_rank(self):
        probe = probe_baseline(ppn2_scenario())
        point = KillPoint(phase="ckpt.begin", occurrence=1, node_id=0)
        t = point_trigger(point, probe)
        node_ranks = {r for r, nid in enumerate(probe.ranklist) if nid == 0}
        doomed = {rank for rank, _, _ in t.doom_points}
        # every rank of the node except the announcing one has a doom
        # point (possibly the phase="" wait-only sentinel)
        assert doomed == node_ranks - {t.via_rank}
        for rank, phase, local in t.doom_points:
            if phase:
                assert local >= 1
            else:
                assert local == 0  # wait-only sentinel

    def test_occurrence_past_probe_falls_back_unpinned(self):
        probe = probe_baseline(ppn2_scenario())
        point = KillPoint(phase="ckpt.begin", occurrence=999, node_id=0)
        t = point_trigger(point, probe)
        assert t.via_rank is None and t.doom_points == ()


class TestKilledNodeSuppression:
    def test_second_time_trigger_for_dead_node_is_suppressed(self):
        plan = FailurePlan(
            [TimeTrigger(node_id=1, at_time=0.5), TimeTrigger(node_id=1, at_time=0.7)]
        )
        assert plan.check_time(1, 1.0) is not None
        # both triggers are past due, but node 1 already died — a second
        # firing could only come from a doomed rank's pre-death ghost
        assert plan.check_time(1, 2.0) is None
        assert len(plan.fired) == 1

    def test_dead_extra_does_not_suppress_live_primary(self):
        plan = FailurePlan(
            [
                TimeTrigger(node_id=1, at_time=0.5),
                TimeTrigger(node_id=2, at_time=0.8, extra_nodes=(1,)),
            ]
        )
        assert plan.check_time(1, 1.0) is not None
        # node 2 is alive; its trigger fires even though the extra node
        # it drags down is already dead (killing it again is a no-op)
        fired = plan.check_time(2, 1.0)
        assert fired is not None and fired.node_id == 2

    def test_phase_trigger_for_dead_node_is_suppressed(self):
        plan = FailurePlan(
            [
                TimeTrigger(node_id=0, at_time=0.5),
                PhaseTrigger(node_id=0, phase="ckpt.begin", occurrence=1),
            ]
        )
        assert plan.check_time(0, 1.0) is not None
        assert plan.check_phase(0, 0, "ckpt.begin", clock=1.5) is None
        assert len(plan.fired) == 1


class TestRepeatedMatrixTelemetry:
    def test_ppn2_matrix_is_byte_stable_across_runs(self):
        # two independent sweeps of the same several-ranks-per-node
        # matrix: verdicts AND per-attempt telemetry must agree exactly
        sc = ppn2_scenario()
        probe = probe_baseline(sc)
        reps = [
            run_kill_matrix(
                sc, probe=probe, phases=("ckpt.begin", "ckpt.encode"), obs="summary"
            )
            for _ in range(2)
        ]
        a, b = reps
        assert [r.verdict for r in a.results] == [r.verdict for r in b.results]
        assert [r.makespan_s for r in a.results] == [r.makespan_s for r in b.results]
        assert [r.obs for r in a.results] == [r.obs for r in b.results]
        digests = []
        for rep in reps:
            with TraceStore() as store:
                ingest_kill_matrix(
                    store, "cid", sc, rep, seed=0, obs_mode="summary", probe=probe
                )
                digests.append(store.digest())
        assert digests[0] == digests[1]
