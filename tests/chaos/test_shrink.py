"""Tests for randomized campaigns and the schedule shrinker."""

import pytest

from repro.chaos import (
    RandomCampaignConfig,
    VERDICT_SURVIVED,
    VERDICT_UNRECOVERABLE,
    ChaosError,
    generate_schedule,
    probe_baseline,
    random_campaign,
    run_kill_matrix,
    run_schedule,
    selfckpt_scenario,
    shrink_failures,
    shrink_schedule,
)

# module import: the repo's pytest config collects bench_* names as
# benchmark functions, so bench_json/bench_record must not be module-level
from repro.chaos import bench as chaos_bench
from repro.sim.failures import PhaseTrigger, TimeTrigger


def scenario(**kw):
    kw.setdefault("n_nodes", 3)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("group_size", 3)
    kw.setdefault("iters", 4)
    kw.setdefault("ckpt_every", 2)
    kw.setdefault("method", "self")
    return selfckpt_scenario(**kw)


def lethal_schedule():
    """One double loss (2 of a 3-wide group, third member keeps state)
    buried between two survivable decoys."""
    return [
        PhaseTrigger(node_id=2, phase="ckpt.begin", occurrence=1),
        TimeTrigger(node_id=0, at_time=2.5, extra_nodes=(1,)),
        PhaseTrigger(node_id=2, phase="ckpt.done", occurrence=2),
    ]


class TestRandomCampaign:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomCampaignConfig(n_schedules=0)
        with pytest.raises(ValueError):
            RandomCampaignConfig(mtbf_scale=0)
        with pytest.raises(ValueError):
            RandomCampaignConfig(p_extra=1.5)

    def test_generate_is_seed_deterministic(self):
        probe = probe_baseline(scenario())
        cfg = RandomCampaignConfig(seed=11)
        assert generate_schedule(probe, cfg, 42) == generate_schedule(
            probe, cfg, 42
        )
        # different seeds explore different schedules (across a few tries)
        alts = [generate_schedule(probe, cfg, s) for s in range(5)]
        assert any(a != alts[0] for a in alts)

    def test_campaign_same_seed_byte_identical_verdicts(self):
        """Same (scenario params, seed) => byte-identical artifact."""
        sc = scenario()
        probe = probe_baseline(sc)
        cfg = RandomCampaignConfig(n_schedules=4, seed=7, mtbf_scale=0.5)
        a = random_campaign(sc, cfg, probe=probe)
        b = random_campaign(sc, cfg, probe=probe)
        assert [(r.verdict, r.makespan_s, r.fired) for r in a] == [
            (r.verdict, r.makespan_s, r.fired) for r in b
        ]
        matrix = run_kill_matrix(
            sc, probe=probe, phases=["ckpt.done"], max_occurrences=1
        )
        assert chaos_bench.bench_json(
            chaos_bench.bench_record([matrix], a, seed=7)
        ) == chaos_bench.bench_json(chaos_bench.bench_record([matrix], b, seed=7))

    def test_multi_failure_schedules_occur(self):
        # a short MTBF relative to the makespan must yield schedules with
        # several failures (the repeated-draw fix in MTBF scheduling)
        probe = probe_baseline(scenario())
        cfg = RandomCampaignConfig(
            n_schedules=6, seed=1, mtbf_scale=0.2, max_failures_per_node=3
        )
        schedules = [
            generate_schedule(probe, cfg, cfg.seed + i)
            for i in range(cfg.n_schedules)
        ]
        assert any(len(s) >= 3 for s in schedules)


class TestShrink:
    def test_shrinks_to_lethal_trigger(self):
        sc = scenario()
        shrink = shrink_schedule(sc, lethal_schedule())
        assert shrink.verdict == VERDICT_UNRECOVERABLE
        assert shrink.minimal == [
            TimeTrigger(node_id=0, at_time=2.5, extra_nodes=(1,))
        ]
        assert len(shrink.steps) >= 2  # both decoys dropped

    def test_minimality(self):
        """Dropping any trigger of the minimal schedule loses the failure."""
        sc = scenario()
        shrink = shrink_schedule(sc, lethal_schedule())
        for i in range(len(shrink.minimal)):
            rest = shrink.minimal[:i] + shrink.minimal[i + 1 :]
            assert run_schedule(sc, rest).verdict != shrink.verdict

    def test_deterministic(self):
        sc = scenario()
        a = shrink_schedule(sc, lethal_schedule())
        b = shrink_schedule(sc, lethal_schedule())
        assert a.minimal == b.minimal
        assert a.steps == b.steps
        assert a.n_runs == b.n_runs

    def test_surviving_schedule_refuses_to_shrink(self):
        sc = scenario()
        survivable = [PhaseTrigger(node_id=0, phase="ckpt.begin", occurrence=1)]
        assert run_schedule(sc, survivable).verdict == VERDICT_SURVIVED
        with pytest.raises(ChaosError, match="does not fail"):
            shrink_schedule(sc, survivable)

    def test_empty_schedule_is_vacuous_not_failing(self):
        # not-fired must not count as a failure, else shrinking always
        # collapses to the empty schedule
        sc = scenario()
        with pytest.raises(ChaosError, match="does not fail"):
            shrink_schedule(sc, [])

    def test_budget_bounds_replays(self):
        sc = scenario()
        shrink = shrink_schedule(sc, lethal_schedule(), max_runs=2)
        assert shrink.n_runs <= 2
        # sound even when the budget stops early: still a failing schedule
        assert shrink.verdict == VERDICT_UNRECOVERABLE

    def test_shrink_failures_maps_campaign(self):
        sc = scenario()
        results = [
            run_schedule(sc, [PhaseTrigger(node_id=0, phase="ckpt.begin")], 0),
            run_schedule(sc, lethal_schedule(), 1),
        ]
        shrinks = shrink_failures(sc, results)
        assert shrinks[0] is None
        assert shrinks[1] is not None
        assert shrinks[1].minimal == [
            TimeTrigger(node_id=0, at_time=2.5, extra_nodes=(1,))
        ]
