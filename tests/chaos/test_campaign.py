"""Tests for the kill-matrix campaign engine (repro.chaos)."""

import numpy as np
import pytest

from repro.chaos import (
    KillPoint,
    RandomCampaignConfig,
    VERDICT_NOT_FIRED,
    VERDICT_SURVIVED,
    VERDICT_UNRECOVERABLE,
    VERDICT_WRONG_ANSWER,
    ChaosError,
    enumerate_kill_points,
    probe_baseline,
    random_campaign,
    render_campaign,
    render_matrix,
    run_kill_matrix,
    run_kill_point,
    run_schedule,
    selfckpt_scenario,
)

# module import: the repo's pytest config collects bench_* names as
# benchmark functions, so bench_json/bench_record must not be module-level
from repro.chaos import bench as chaos_bench
from repro.ckpt.self_ckpt import SelfCheckpoint
from repro.sim.failures import PhaseTrigger, TimeTrigger


def small_scenario(**kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("group_size", 2)
    kw.setdefault("iters", 4)
    kw.setdefault("ckpt_every", 2)
    kw.setdefault("method", "self")
    return selfckpt_scenario(**kw)


class SilentCorruptRecover(SelfCheckpoint):
    """Deliberately broken variant: the rebuilt member's payload is
    corrupted, so recovery "succeeds" but the restored data is wrong —
    exactly the silent-corruption failure the wrong-answer oracle exists
    to catch."""

    def _do_recover(self, flat, checksum, missing):
        out = super()._do_recover(flat, checksum, missing)
        if out is not None:
            rebuilt, cs = out
            bad = np.array(rebuilt, copy=True)
            bad[:8] ^= 0x01  # flip bytes inside the first data array
            out = (bad, cs)
        return out


class TestProbe:
    def test_counts_every_ckpt_phase_per_node(self):
        probe = probe_baseline(small_scenario())
        assert probe.nodes == [0, 1]
        # iters=4, ckpt_every=2 -> 2 checkpoints; 1 rank per node
        for node in (0, 1):
            for phase in ("ckpt.begin", "ckpt.encode", "ckpt.flush"):
                assert probe.phase_counts[(node, phase)] == 2
        # fault-free run announces no restore phases
        assert not any("restore" in p for p in probe.phases)

    def test_broken_baseline_raises(self):
        # an oracle that can never pass must abort the campaign up front
        sc = small_scenario()
        inner = sc.factory

        def bad_factory():
            inst = inner()
            inst.check = lambda result: False
            return inst

        sc.factory = bad_factory
        with pytest.raises(ChaosError, match="oracle"):
            probe_baseline(sc)

    def test_multirank_counts_are_per_node(self):
        probe = probe_baseline(small_scenario(procs_per_node=2, n_nodes=2))
        # 2 ranks per node each announce every phase: per-node count doubles
        assert probe.phase_counts[(0, "ckpt.begin")] == 4


class TestEnumeration:
    def test_expands_occurrences(self):
        probe = probe_baseline(small_scenario())
        points = enumerate_kill_points(probe)
        assert KillPoint("ckpt.encode", 1, 0) in points
        assert KillPoint("ckpt.encode", 2, 1) in points
        # 6 phases x 2 occurrences x 2 nodes
        assert len(points) == 24

    def test_filters_and_cap(self):
        probe = probe_baseline(small_scenario())
        points = enumerate_kill_points(
            probe, nodes=[0], phases=["ckpt.flush"], max_occurrences=1
        )
        assert points == [KillPoint("ckpt.flush", 1, 0)]

    def test_deterministic_order(self):
        probe = probe_baseline(small_scenario())
        assert enumerate_kill_points(probe) == enumerate_kill_points(probe)


class TestKillMatrix:
    def test_self_survives_every_kill_point(self):
        """Acceptance: the paper's survivability claim, exhaustively — a
        node loss at *every* announced phase occurrence on *every* node of
        a 2-node-group cluster recovers to the right answer."""
        report = run_kill_matrix(small_scenario())
        assert len(report.results) == 24
        assert report.survived_all
        covered = {r.point.phase for r in report.results}
        assert "ckpt.encode" in covered and "ckpt.flush" in covered

    def test_broken_protocol_caught_as_wrong_answer(self):
        """Regression: a protocol that silently corrupts recovered data
        must show up in the matrix as wrong-answer, not survived."""
        report = run_kill_matrix(
            small_scenario(protocol_factory=SilentCorruptRecover)
        )
        assert not report.survived_all
        verdicts = {r.verdict for r in report.failures()}
        assert verdicts == {VERDICT_WRONG_ANSWER}
        # the corruption only bites once a checkpoint exists to recover from
        caught = {r.point.label for r in report.failures()}
        assert "ckpt.flush:2@n0" in caught

    def test_never_announced_phase_is_not_fired(self):
        result = run_kill_point(
            small_scenario(), KillPoint("no.such.phase", 1, 0)
        )
        assert result.verdict == VERDICT_NOT_FIRED

    def test_unrecoverable_double_loss(self):
        # losing 2 members of a 3-wide XOR group while the third still
        # holds state exceeds the code's tolerance
        sc = small_scenario(n_nodes=3, group_size=3)
        triggers = [TimeTrigger(node_id=0, at_time=2.5, extra_nodes=(1,))]
        result = run_schedule(sc, triggers)
        assert result.verdict == VERDICT_UNRECOVERABLE

    def test_whole_group_loss_restarts_fresh_and_survives(self):
        # losing *all* state is not unrecoverable: the job recomputes from
        # scratch and still reaches the right answer
        sc = small_scenario()
        triggers = [TimeTrigger(node_id=0, at_time=2.5, extra_nodes=(1,))]
        result = run_schedule(sc, triggers)
        assert result.verdict == VERDICT_SURVIVED

    def test_metrics_registry_counters(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sc = small_scenario()
        probe = probe_baseline(sc)
        run_kill_matrix(
            sc,
            probe=probe,
            nodes=[0],
            phases=["ckpt.done"],
            registry=registry,
        )
        assert registry.total("chaos.kill_points") == 2
        assert registry.total("chaos.survived") == 2
        assert registry.total("chaos.runs") == 3  # 2 points + baseline


class TestReportAndBench:
    def test_render_matrix_symbols(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        report = run_kill_matrix(
            sc, probe=probe, phases=["ckpt.begin"], max_occurrences=1
        )
        text = render_matrix(report)
        assert "survivability matrix" in text
        assert "ckpt.begin:1" in text
        assert "S=survived" in text

    def test_bench_record_roundtrip(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        report = run_kill_matrix(
            sc, probe=probe, phases=["ckpt.flush"], max_occurrences=1
        )
        cfg = RandomCampaignConfig(n_schedules=2, seed=3)
        schedules = random_campaign(sc, cfg, probe=probe)
        record = chaos_bench.bench_record([report], schedules, seed=3)
        assert record["bench"] == "chaos"
        assert record["survived_all"] is True
        assert len(record["matrices"][0]["matrix"]) == 2
        assert len(record["random"]) == 2
        import json

        parsed = json.loads(chaos_bench.bench_json(record))
        assert parsed == record

    def test_render_campaign_verdict_line(self):
        sc = small_scenario()
        probe = probe_baseline(sc)
        report = run_kill_matrix(
            sc, probe=probe, phases=["ckpt.done"], max_occurrences=1
        )
        text = render_campaign([report])
        assert "campaign verdict: all kill points survived" in text


class TestRankScopedKill:
    def test_rank_scoped_trigger_under_daemon(self):
        """A rank-scoped kill in a 2-ranks-per-node job must fire on the
        target rank's own announcement and still be survivable."""
        sc = small_scenario(procs_per_node=2, group_size=2)
        triggers = [
            PhaseTrigger(node_id=0, phase="ckpt.encode", rank=1, occurrence=1)
        ]
        result = run_schedule(sc, triggers)
        assert result.verdict == VERDICT_SURVIVED
        assert any("rank 1" in f for f in result.fired)
