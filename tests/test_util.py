"""Tests for repro.util: units, rng, tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    GiB,
    KiB,
    MiB,
    block_rng,
    fmt_bytes,
    fmt_seconds,
    parse_bytes,
    render_table,
    seeded_rng,
)


class TestUnits:
    def test_constants(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (KiB, "1.00KiB"),
            (3 * GiB, "3.00GiB"),
            (int(1.5 * MiB), "1.50MiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-KiB) == "-1.00KiB"

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4GiB", 4 * GiB),
            ("512 MB", 512 * 10**6),
            ("100", 100),
            ("1.5KiB", int(1.5 * KiB)),
            ("2kb", 2000),
        ],
    )
    def test_parse_bytes(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("bad", ["", "GiB", "4 parsecs", "-3GiB"])
    def test_parse_bytes_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_bytes(bad)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_fmt_parse_roundtrip_order_of_magnitude(self, n):
        # formatting then parsing must land within 1% (2-decimal mantissa)
        back = parse_bytes(fmt_bytes(n))
        assert abs(back - n) <= max(16, 0.01 * n)

    @pytest.mark.parametrize(
        "t,expected",
        [
            (5e-7, "0.5us"),
            (2e-3, "2.0ms"),
            (1.5, "1.50s"),
            (600, "10.0min"),
            (7200, "2.00h"),
        ],
    )
    def test_fmt_seconds(self, t, expected):
        assert fmt_seconds(t) == expected

    def test_fmt_seconds_negative(self):
        assert fmt_seconds(-1.5) == "-1.50s"


class TestRng:
    def test_seeded_rng_deterministic(self):
        assert seeded_rng(7).random() == seeded_rng(7).random()

    def test_seeded_rng_distinct_seeds(self):
        assert seeded_rng(1).random() != seeded_rng(2).random()

    def test_block_rng_reproducible_across_calls(self):
        a = block_rng(42, 3, 5).standard_normal(16)
        b = block_rng(42, 3, 5).standard_normal(16)
        np.testing.assert_array_equal(a, b)

    def test_block_rng_distinct_coords(self):
        a = block_rng(42, 3, 5).standard_normal(16)
        b = block_rng(42, 5, 3).standard_normal(16)
        assert not np.array_equal(a, b)

    def test_block_rng_distinct_root_seed(self):
        a = block_rng(1, 0, 0).standard_normal(4)
        b = block_rng(2, 0, 0).standard_normal(4)
        assert not np.array_equal(a, b)


class TestTables:
    def test_basic_rendering(self):
        out = render_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "alpha" in lines[2] and "22" in lines[3]

    def test_title(self):
        out = render_table(["a"], [[1]], title="T1")
        assert out.splitlines()[0] == "T1"

    def test_numeric_right_alignment(self):
        out = render_table(["v"], [["1"], ["100"]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("  1") or rows[0].strip() == "1"
        assert rows[0].rstrip().rjust(len(rows[1].rstrip())) == rows[1].rstrip() or True

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])
