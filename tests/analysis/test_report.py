"""Tests for report generation."""

from repro.analysis.report import build_report


class TestReport:
    def test_fast_subset(self):
        md = build_report(include_slow=False)
        for heading in (
            "## Table 1",
            "## Table 2",
            "## Figure 6",
            "## Figure 8",
            "## Figure 11",
            "## Figure 13",
            "## Reliability projection",
        ):
            assert heading in md
        assert "## Table 3" not in md

    def test_full_report_covers_everything(self):
        md = build_report(include_slow=True)
        for heading in (
            "## Table 1",
            "## Table 3",
            "## Figure 7",
            "## Figure 10",
            "## Figure 12",
            "## Ablation: incremental",
        ):
            assert heading in md
        # every section carries a rendered table
        assert md.count("```") >= 2 * 14
