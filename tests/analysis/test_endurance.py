"""Endurance tests: survival of repeated random failures, and agreement
with the first-order expected-runtime model."""

import pytest

from repro.analysis.endurance import endurance_run


class TestEndurance:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_survives_failure_storm(self, seed):
        report = endurance_run(
            iters=40,
            work_per_iter_s=10.0,
            mtbf_node_s=3000.0,  # system MTBF 375 s vs 400 s of work: storms
            seed=seed,
            max_restarts=30,
        )
        assert report.completed
        assert report.final_state_ok
        # with MTBF below total work time, failures essentially certain
        # across seeds; allow the lucky case but check accounting coherence
        assert report.total_virtual_s >= report.work_virtual_s

    def test_no_failures_when_mtbf_huge(self):
        report = endurance_run(mtbf_node_s=1e12, seed=5)
        assert report.completed and report.n_restarts == 0
        assert report.total_virtual_s == pytest.approx(report.work_virtual_s)

    def test_total_time_in_model_ballpark(self):
        """Average over seeds should sit within ~2.5x of the first-order
        expectation (the model is first-order; the storm is random)."""
        totals, models = [], []
        for seed in range(6):
            r = endurance_run(
                iters=40, work_per_iter_s=10.0, mtbf_node_s=6000.0, seed=seed
            )
            assert r.completed and r.final_state_ok
            totals.append(r.total_virtual_s)
            models.append(r.model_expected_s)
        mean_total = sum(totals) / len(totals)
        mean_model = sum(models) / len(models)
        assert mean_total < 2.5 * mean_model
        assert mean_total > 0.4 * mean_model

    def test_restart_accounting(self):
        report = endurance_run(mtbf_node_s=2500.0, seed=3, max_restarts=30)
        assert report.completed
        assert report.n_restarts == len(report.restarts_log)
        assert report.failures_injected >= report.n_restarts
