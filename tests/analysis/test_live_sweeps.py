"""Live-simulator sweeps behind Figs. 7 and 12: the measured efficiency of
the simulated HPL must follow the paper's E(N) = N/(aN+b) law."""

import pytest

from repro.analysis import fig7_model_fit, fig12_memory_vs_efficiency


class TestFig7:
    @pytest.fixture(scope="class")
    def fit(self):
        return fig7_model_fit(sizes=(96, 128, 192, 256))

    def test_fit_quality(self, fit):
        """'This model fits well with real experimental data' (§4)."""
        assert fit.r_squared > 0.9

    def test_efficiency_rises_with_problem_size(self, fit):
        assert fit.measured == sorted(fit.measured)

    def test_model_tracks_measurements(self, fit):
        for n, e in zip(fit.sizes, fit.measured):
            assert fit.model.efficiency(n) == pytest.approx(e, rel=0.2)


class TestFig12:
    @pytest.fixture(scope="class")
    def points(self):
        return fig12_memory_vs_efficiency(fractions=(0.125, 0.3, 0.5))

    def test_more_memory_more_efficiency(self, points):
        effs = [p.measured_norm_eff for p in points]
        assert effs == sorted(effs)

    def test_model_within_a_few_points_of_measurement(self, points):
        for p in points:
            assert abs(p.model_norm_eff - p.measured_norm_eff) < 0.08

    def test_concave_shape(self, points):
        """Gains shrink as memory grows (sqrt(k) scaling): the marginal
        efficiency per memory fraction decreases."""
        slopes = []
        for a, b in zip(points, points[1:]):
            slopes.append(
                (b.measured_norm_eff - a.measured_norm_eff)
                / (b.memory_fraction - a.memory_fraction)
            )
        assert slopes == sorted(slopes, reverse=True)
