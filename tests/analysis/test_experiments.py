"""Shape assertions on every experiment driver — the claims the paper's
tables/figures make must hold in our reproduction."""

import pytest

from repro.analysis import (
    ablation_encoding_op,
    ablation_group_size,
    ablation_interval,
    ablation_stripe_vs_single_root,
    fig6_available_memory,
    fig8_top10_projection,
    fig10_restart_cycle,
    fig11_skt_efficiency,
    fig13_encoding_cost,
    table1_memory_breakdown,
    table3_method_comparison,
)


class TestFig6:
    def test_ordering_at_every_group_size(self):
        for row in fig6_available_memory():
            assert row["single"] > row["self"] > row["double"]

    def test_group16_values(self):
        row = [r for r in fig6_available_memory() if r["group_size"] == 16][0]
        assert row["self"] == pytest.approx(46.9, abs=0.1)
        assert row["double"] == pytest.approx(31.9, abs=0.1)


class TestTable1:
    def test_breakdown_sums(self):
        row = table1_memory_breakdown(workspace_bytes=2**30, group_size=16)
        assert row["total"] == row["A1+A2"] + row["B"] + row["C"] + row["D"]
        assert row["A1+A2"] == row["B"]
        assert row["C"] == row["D"] == row["A1+A2"] // 15


class TestFig8:
    def test_every_system_degrades_monotonically(self):
        for row in fig8_top10_projection():
            assert row["original"] > row["k=1/2"] > row["k=1/3"]

    def test_has_ten_systems(self):
        assert len(fig8_top10_projection()) == 10


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3_method_comparison()

    def test_method_order_and_names(self, rows):
        assert [r.method for r in rows] == [
            "Original HPL",
            "ABFT",
            "BLCR+HDD",
            "BLCR+SSD",
            "SCR+Memory",
            "SKT-HPL",
        ]

    def test_normalized_efficiency_ordering(self, rows):
        """The paper's headline ordering: SKT > SCR > BLCR+SSD > ABFT >
        BLCR+HDD (Table 3)."""
        eff = {r.method: r.normalized_efficiency for r in rows}
        assert (
            eff["SKT-HPL"]
            > eff["SCR+Memory"]
            > eff["BLCR+SSD"]
            > eff["ABFT"]
            > eff["BLCR+HDD"]
        )

    def test_skt_above_94pct(self, rows):
        eff = {r.method: r.normalized_efficiency for r in rows}
        assert eff["SKT-HPL"] > 0.94

    def test_skt_beats_scr_by_a_few_percent(self, rows):
        eff = {r.method: r.normalized_efficiency for r in rows}
        assert 0.005 < eff["SKT-HPL"] - eff["SCR+Memory"] < 0.06

    def test_available_memory_column(self, rows):
        mem = {r.method: r.available_mem_gb for r in rows}
        # paper: SCR 1.22 GB, SKT 1.75 GB of the 4 GB budget
        assert mem["SCR+Memory"] == pytest.approx(1.22, abs=0.03)
        assert mem["SKT-HPL"] == pytest.approx(1.75, abs=0.03)
        # the 43%+ improvement headline
        assert mem["SKT-HPL"] / mem["SCR+Memory"] > 1.4

    def test_survival_column(self, rows):
        survive = {r.method: r.survives_poweroff for r in rows}
        assert not survive["Original HPL"]
        assert not survive["ABFT"]
        assert survive["BLCR+HDD"]
        assert survive["BLCR+SSD"]
        assert survive["SCR+Memory"]
        assert survive["SKT-HPL"]

    def test_checkpoint_times_match_paper_magnitudes(self, rows):
        t = {r.method: r.ckpt_time_s for r in rows}
        # paper: 295.20 s HDD, 111.92 s SSD, 6.21 s SKT, 4.33 s SCR
        assert t["BLCR+HDD"] == pytest.approx(295.0, rel=0.1)
        assert t["BLCR+SSD"] == pytest.approx(112.0, rel=0.1)
        assert 2.0 < t["SCR+Memory"] < 8.0
        assert 3.0 < t["SKT-HPL"] < 10.0
        assert t["SKT-HPL"] > t["SCR+Memory"]  # bigger workspace to encode

    def test_problem_sizes_scale_with_memory(self, rows):
        n = {r.method: r.problem_size for r in rows}
        assert n["Original HPL"] > n["SKT-HPL"] > n["SCR+Memory"]
        assert n["Original HPL"] == pytest.approx(234240, rel=0.01)


class TestFig10:
    def test_cycle_phases(self):
        t = fig10_restart_cycle()
        # Fig. 10 values: ckpt 16 s, detect 63 s, replace 10 s, restart 9 s,
        # recover 20 s; our modeled ckpt/recover must keep the ordering
        assert t.detect_s == 63.0
        assert t.replace_s == 10.0
        assert t.restart_s == 9.0
        assert t.recover_s > t.checkpoint_s  # recovery a little longer
        assert t.recover_s < 3 * t.checkpoint_s


class TestFig11:
    def test_skt_efficiency_above_94pct_of_original(self):
        """§6.4: SKT-HPL achieves 97.8% (TH-1A) / 95.8% (TH-2) of the
        original HPL with near half the memory."""
        for row in fig11_skt_efficiency():
            assert row["skt_vs_original"] > 93.0
            assert row["skt"] < row["original"]

    def test_th1a_less_sensitive_than_th2(self):
        """Fig. 12's observation: memory impact is larger on Tianhe-2."""
        rows = {r["machine"]: r for r in fig11_skt_efficiency()}
        assert (
            rows["Tianhe-1A"]["skt_vs_original"]
            > rows["Tianhe-2"]["skt_vs_original"]
        )


class TestFig13:
    def test_shapes(self):
        rows = fig13_encoding_cost()
        th1a = {r["group_size"]: r for r in rows if r["machine"] == "Tianhe-1A"}
        th2 = {r["group_size"]: r for r in rows if r["machine"] == "Tianhe-2"}
        # encode grows slowly with group size on both machines
        for m in (th1a, th2):
            assert m[4]["encode_s"] < m[8]["encode_s"] < m[16]["encode_s"]
            assert m[16]["encode_s"] / m[4]["encode_s"] < 2.0
        # Tianhe-2 encodes slower despite smaller checkpoints
        for g in (4, 8, 16):
            assert th2[g]["ckpt_bytes"] < th1a[g]["ckpt_bytes"]
            assert th2[g]["encode_s"] > th1a[g]["encode_s"]


class TestAblations:
    def test_group_size_tradeoff(self):
        rows = ablation_group_size()
        mems = [r["available_mem_pct"] for r in rows]
        times = [r["encode_s"] for r in rows]
        rel = [r["p_system_ok"] for r in rows]
        assert mems == sorted(mems)  # bigger group, more memory
        assert times == sorted(times)  # ... slower encode
        assert rel == sorted(rel, reverse=True)  # ... less reliable

    def test_interval_young_is_competitive(self):
        rows = ablation_interval()
        best = min(rows, key=lambda r: r["expected_runtime_s"])
        young = [r for r in rows if r["is_young_optimum"]][0]
        assert young["expected_runtime_s"] <= best["expected_runtime_s"] * 1.02

    def test_encoding_op_exactness(self):
        out = ablation_encoding_op(data_words=3 * 256, group_size=4)
        assert out["xor"]["max_error"] == 0.0
        assert 0.0 <= out["sum"]["max_error"] < 1e-9

    def test_stripe_beats_single_root(self):
        for row in ablation_stripe_vs_single_root():
            assert row["single_root_s"] > 2 * row["stripe_s"]
