"""Smoke tests keeping every example runnable.

Each example's ``main()`` asserts its own success conditions (recovery
exactness, verification passes), so importing and running them is a real
end-to-end test of the public API.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "heat_equation",
        "fault_tolerant_hpl",
        "soft_errors_abft",
        "double_failure_raid6",
        "krylov_solver",
        "rack_failure",
    ],
)
def test_example_runs_clean(name, capsys):
    mod = _load(name)
    mod.main()  # each example asserts its own correctness
    out = capsys.readouterr().out
    assert out.strip()  # produced user-facing output


def test_method_comparison_example(capsys):
    mod = _load("method_comparison")
    mod.main()
    out = capsys.readouterr().out
    assert "SKT-HPL" in out and "recovers?" in out
