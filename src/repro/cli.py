"""Command-line interface: regenerate any paper table/figure from a shell.

Usage::

    python -m repro list
    python -m repro fig6
    python -m repro table3
    python -m repro all          # everything (slow: live power-off checks)
    python -m repro check --all  # sanitizer suite (lint, flow, races, deadlock)
    python -m repro check --deep # static gauntlet: lint + whole-program flow
    python -m repro obs --scenario skt-hpl --fail-at panel:3  # profile run
    python -m repro obs query --store out/obs.sqlite   # cross-run queries
    python -m repro chaos --smoke                # kill-matrix campaign
    python -m repro chaos --smoke --obs summary  # campaign + trace store

Each target prints the same ASCII table the corresponding benchmark emits;
``check`` delegates to the :mod:`repro.sancheck` suite and exits non-zero
on any finding.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _fig6() -> str:
    from repro.analysis import fig6_available_memory
    from repro.analysis.experiments import render_fig6

    return render_fig6(fig6_available_memory())


def _fig7() -> str:
    from repro.analysis import fig7_model_fit
    from repro.analysis.experiments import render_fig7

    return render_fig7(fig7_model_fit())


def _fig8() -> str:
    from repro.analysis import fig8_top10_projection
    from repro.analysis.experiments import render_fig8

    return render_fig8(fig8_top10_projection())


def _fig10() -> str:
    from repro.analysis import fig10_restart_cycle
    from repro.analysis.experiments import render_fig10

    return render_fig10(fig10_restart_cycle())


def _fig11() -> str:
    from repro.analysis import fig11_skt_efficiency
    from repro.analysis.experiments import render_fig11

    return render_fig11(fig11_skt_efficiency())


def _fig12() -> str:
    from repro.analysis import fig12_memory_vs_efficiency
    from repro.analysis.experiments import render_fig12

    return render_fig12(fig12_memory_vs_efficiency())


def _fig13() -> str:
    from repro.analysis import fig13_encoding_cost
    from repro.analysis.experiments import render_fig13

    return render_fig13(fig13_encoding_cost())


def _table1() -> str:
    from repro.analysis import table1_memory_breakdown
    from repro.analysis.experiments import render_table1

    return render_table1(table1_memory_breakdown())


def _table2() -> str:
    from repro.analysis.experiments import render_table2, table2_node_configs

    return render_table2(table2_node_configs())


def _table3() -> str:
    from repro.analysis import table3_method_comparison
    from repro.analysis.experiments import render_table3

    return render_table3(table3_method_comparison())


def _table3_live() -> str:
    from repro.analysis.experiments import (
        render_table3_live,
        table3_live_miniature,
    )

    return render_table3_live(table3_live_miniature())


def _ablations() -> str:
    from repro.analysis import (
        ablation_encoding_op,
        ablation_group_size,
        ablation_incremental,
        ablation_interval,
        ablation_rack_mapping,
        ablation_stripe_vs_single_root,
    )
    from repro.analysis.ablations import (
        render_encoding_op,
        render_group_size,
        render_incremental,
        render_interval,
        render_rack_mapping,
        render_stripe_vs_single,
    )

    parts = [
        render_group_size(ablation_group_size()),
        render_interval(ablation_interval()),
        render_encoding_op(ablation_encoding_op()),
        render_stripe_vs_single(ablation_stripe_vs_single_root()),
        render_incremental(ablation_incremental()),
        render_rack_mapping(ablation_rack_mapping()),
    ]
    return "\n\n".join(parts)


def _endurance() -> str:
    from repro.analysis.endurance import endurance_run
    from repro.util import render_table

    r = endurance_run(mtbf_node_s=3000.0, seed=11)
    return render_table(
        ["metric", "value"],
        [
            ["completed", r.completed],
            ["restarts", r.n_restarts],
            ["total virtual (s)", f"{r.total_virtual_s:.0f}"],
            ["model expected (s)", f"{r.model_expected_s:.0f}"],
        ],
        title="Endurance under an MTBF failure storm",
    )


def _report() -> str:
    from repro.analysis.report import build_report

    return build_report(include_slow=True)


TARGETS: Dict[str, Callable[[], str]] = {
    "report": _report,
    "table1": _table1,
    "table2": _table2,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "table3": _table3,
    "table3-live": _table3_live,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "ablations": _ablations,
    "endurance": _endurance,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "check":
        from repro.sancheck.cli import check_main

        return check_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.chaos.cli import chaos_main

        return chaos_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate tables/figures of 'Self-Checkpoint' (PPoPP'17); "
            "'repro check' runs the sanitizer suite."
        ),
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS) + ["list", "all", "check", "obs", "chaos"],
        help="which experiment to run ('check' = sanitizer suite, "
        "'obs' = instrumented profile run / trace-store queries, "
        "'chaos' = fault-injection campaign)",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        for name in sorted(TARGETS):
            print(name)
        return 0
    if args.target == "all":
        for name in sorted(TARGETS):
            print(f"== {name} ==")
            print(TARGETS[name]())
            print()
        return 0
    print(TARGETS[args.target]())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
