"""Chaos scenarios: small supervised applications with a known right answer.

A :class:`ChaosScenario` is a *recipe*: every :meth:`ChaosScenario.make`
call builds a fresh cluster and rank main, because campaign runs mutate
cluster state (dead nodes, consumed spares) and each kill point must start
from the same initial conditions.  The instance also carries a ``check``
predicate over the final :class:`~repro.sim.runtime.JobResult` — the
wrong-answer oracle: a run that *completes* but fails its check is the
worst possible verdict, silent corruption.

Two built-ins cover the protocol-only and full-application paths:

* :func:`selfckpt_scenario` — the iterative self-checkpointed app (same
  shape as the endurance harness); the oracle is the exact closed-form
  final value of every rank's array.
* :func:`skt_scenario` — SKT-HPL; the oracle is HPL's own scaled residual
  check on every rank (``SKTResult.hpl.passed``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.ckpt.manager import CheckpointManager
from repro.hpl.daemon import RestartPolicy
from repro.par.spec import ScenarioSpec, register_scenario
from repro.sim.cluster import Cluster
from repro.sim.runtime import JobResult

#: restart policy for campaign runs: the real detect/replace/restart costs
#: only stretch virtual time, so campaigns use token values and a restart
#: budget deep enough for multi-failure schedules
FAST_POLICY = RestartPolicy(detect_s=5.0, replace_s=1.0, restart_s=1.0, max_restarts=12)


@dataclass
class ScenarioInstance:
    """One freshly-built, runnable scenario (cluster + main + oracle)."""

    cluster: Cluster
    main: Callable[..., Any]
    n_ranks: int
    args: Tuple[Any, ...]
    procs_per_node: int
    policy: RestartPolicy
    check: Callable[[JobResult], bool]


@dataclass
class ChaosScenario:
    """A named scenario recipe; ``make()`` builds a fresh instance.

    ``spec`` is the pickleable :class:`~repro.par.spec.ScenarioSpec` a
    worker process rebuilds the scenario from; it is ``None`` when the
    recipe closes over something that cannot cross a process boundary
    (a ``protocol_factory`` closure), in which case campaigns stay on
    the serial path.
    """

    name: str
    params: Dict[str, Any]
    factory: Callable[[], ScenarioInstance] = field(repr=False)
    spec: Optional[ScenarioSpec] = None

    def make(self) -> ScenarioInstance:
        return self.factory()


def _policy_fields(policy: RestartPolicy) -> Tuple[float, float, float, int]:
    return (
        policy.detect_s,
        policy.replace_s,
        policy.restart_s,
        policy.max_restarts,
    )


def _policy_from_fields(fields: Any) -> RestartPolicy:
    detect_s, replace_s, restart_s, max_restarts = fields
    return RestartPolicy(
        detect_s=float(detect_s),
        replace_s=float(replace_s),
        restart_s=float(restart_s),
        max_restarts=int(max_restarts),
    )


def selfckpt_scenario(
    *,
    n_nodes: int = 2,
    procs_per_node: int = 1,
    group_size: int = 2,
    iters: int = 6,
    ckpt_every: int = 2,
    method: str = "self",
    op: str = "xor",
    n_spares: Optional[int] = None,
    policy: Optional[RestartPolicy] = None,
    protocol_factory: Optional[Callable[..., Any]] = None,
) -> ChaosScenario:
    """Iterative self-checkpointed app with a closed-form answer oracle.

    Each rank owns a 64-element array, adds ``rank + 1`` per iteration and
    checkpoints every ``ckpt_every`` iterations, so the correct final
    value of rank ``r``'s array is exactly ``iters * (r + 1)`` — any
    recovery that silently loses or corrupts an update is caught by the
    oracle, not just crashes.  ``protocol_factory`` swaps in a custom
    (possibly deliberately broken) protocol through
    :class:`~repro.ckpt.manager.CheckpointManager` — the regression tests
    use it to prove the kill matrix catches protocol bugs.
    """
    n_ranks = n_nodes * procs_per_node
    spares = n_spares if n_spares is not None else 4 * n_nodes + 4

    def app(ctx):
        mgr = CheckpointManager(
            ctx,
            ctx.world,
            group_size=group_size,
            method=method,
            op=op,
            protocol_factory=protocol_factory,
        )
        a = mgr.alloc("data", 64)
        mgr.commit()
        report = mgr.try_restore()
        start = int(report.local["it"]) if report else 0
        for it in range(start, iters):
            a += ctx.world.rank + 1
            ctx.elapse(1.0)
            if (it + 1) % ckpt_every == 0:
                mgr.local["it"] = it + 1
                mgr.checkpoint()
        return a.copy()

    def check(result: JobResult) -> bool:
        for r in range(n_ranks):
            a = result.rank_results.get(r)
            if a is None or not bool(np.all(a == iters * (r + 1))):
                return False
        return True

    def factory() -> ScenarioInstance:
        return ScenarioInstance(
            cluster=Cluster(n_nodes, n_spares=spares),
            main=app,
            n_ranks=n_ranks,
            args=(),
            procs_per_node=procs_per_node,
            policy=policy or FAST_POLICY,
            check=check,
        )

    spec = None
    if protocol_factory is None:
        # everything else round-trips through a pickleable spec; a custom
        # protocol closure cannot, so such scenarios stay serial-only
        spec = ScenarioSpec.create(
            "selfckpt",
            n_nodes=n_nodes,
            procs_per_node=procs_per_node,
            group_size=group_size,
            iters=iters,
            ckpt_every=ckpt_every,
            method=method,
            op=op,
            n_spares=spares,
            policy=_policy_fields(policy or FAST_POLICY),
        )
    return ChaosScenario(
        name="selfckpt",
        params={
            "n_nodes": n_nodes,
            "procs_per_node": procs_per_node,
            "group_size": group_size,
            "iters": iters,
            "ckpt_every": ckpt_every,
            "method": method,
            "op": op,
        },
        factory=factory,
        spec=spec,
    )


def skt_scenario(
    *,
    n: int = 32,
    nb: int = 8,
    p: int = 2,
    q: int = 2,
    group_size: int = 2,
    interval_panels: int = 2,
    method: str = "self",
    seed: int = 42,
    procs_per_node: int = 1,
    n_spares: Optional[int] = None,
    policy: Optional[RestartPolicy] = None,
) -> ChaosScenario:
    """SKT-HPL under campaign fire; the oracle is HPL's residual check.

    A run that completes with a failed residual on any rank is classified
    ``wrong-answer`` — the "recovered into corrupt state" outcome the
    paper's Fig. 4 case analysis is meant to exclude.
    """
    from repro.hpl import HPLConfig, SKTConfig, skt_hpl_main

    cfg = HPLConfig(n=n, nb=nb, p=p, q=q, seed=seed)
    scfg = SKTConfig(
        hpl=cfg,
        method=method,
        group_size=group_size,
        interval_panels=interval_panels,
    )
    n_ranks = cfg.n_ranks
    n_nodes = math.ceil(n_ranks / procs_per_node)
    spares = n_spares if n_spares is not None else 4 * n_nodes + 4

    def check(result: JobResult) -> bool:
        for r in range(n_ranks):
            res = result.rank_results.get(r)
            if res is None or not res.hpl.passed:
                return False
        return True

    def factory() -> ScenarioInstance:
        return ScenarioInstance(
            cluster=Cluster(n_nodes, n_spares=spares),
            main=skt_hpl_main,
            n_ranks=n_ranks,
            args=(scfg,),
            procs_per_node=procs_per_node,
            policy=policy or FAST_POLICY,
            check=check,
        )

    spec = ScenarioSpec.create(
        "skt-hpl",
        n=n,
        nb=nb,
        p=p,
        q=q,
        group_size=group_size,
        interval_panels=interval_panels,
        method=method,
        seed=seed,
        procs_per_node=procs_per_node,
        n_spares=spares,
        policy=_policy_fields(policy or FAST_POLICY),
    )
    return ChaosScenario(
        name="skt-hpl",
        params={
            "n": n,
            "nb": nb,
            "grid": f"{p}x{q}",
            "group_size": group_size,
            "interval_panels": interval_panels,
            "method": method,
            "seed": seed,
            "procs_per_node": procs_per_node,
        },
        factory=factory,
        spec=spec,
    )


# -- spec builders: how worker processes rebuild these scenarios --------------
def _selfckpt_from_spec(**kwargs: Any) -> ChaosScenario:
    kwargs = dict(kwargs)
    kwargs["policy"] = _policy_from_fields(kwargs["policy"])
    return selfckpt_scenario(**kwargs)


def _skt_from_spec(**kwargs: Any) -> ChaosScenario:
    kwargs = dict(kwargs)
    kwargs["policy"] = _policy_from_fields(kwargs["policy"])
    return skt_scenario(**kwargs)


register_scenario("selfckpt", _selfckpt_from_spec)
register_scenario("skt-hpl", _skt_from_spec)
