"""The kill-matrix campaign: exhaustive phase-aimed failure injection.

The paper argues informally that a node loss is survivable *at any moment*
— mid-compute, mid-encode, mid-flush (Fig. 2 / Fig. 4 cases).  This module
turns that claim into a machine-checkable matrix:

1. :func:`probe_baseline` runs the scenario once, fault-free, with a
   :class:`~repro.sim.trace.Trace` attached, and counts every phase
   announcement per node — the complete set of interruption points the
   protocol exposes.
2. :func:`enumerate_kill_points` expands the counts into one
   :class:`KillPoint` per ``(phase, occurrence, node)``.
3. :func:`run_kill_point` replays the scenario under the
   :class:`~repro.hpl.daemon.JobDaemon`, killing the node at exactly that
   announcement, and classifies the outcome into a :class:`KillResult`
   verdict: ``survived`` (completed and the answer oracle passed),
   ``wrong-answer`` (completed but the oracle failed — silent corruption),
   ``unrecoverable``, ``gave-up``, or ``not-fired`` (the trigger never
   tripped — an enumeration mismatch, itself a red flag).
4. :func:`run_kill_matrix` sweeps the whole matrix into a
   :class:`CampaignReport`.

Everything is deterministic: runs are driven by virtual clocks and the
byte-identical failure delivery of the runtime, so the same scenario and
kill point always produce the same verdict — which is what makes the
shrinker (:mod:`repro.chaos.shrink`) sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.scenarios import ChaosScenario, ScenarioInstance
from repro.hpl.daemon import DaemonReport, JobDaemon
from repro.par.cache import replay_fingerprint
from repro.par.engine import ParallelEngine
from repro.par.replay import (
    ReplayOutcome,
    ReplaySpec,
    crash_outcome,
    replay,
    replay_scenario,
)
from repro.sim.errors import SimError
from repro.sim.failures import AnyTrigger, FailurePlan, PhaseTrigger
from repro.sim.runtime import Job
from repro.sim.trace import Trace

VERDICT_SURVIVED = "survived"
VERDICT_WRONG_ANSWER = "wrong-answer"
VERDICT_UNRECOVERABLE = "unrecoverable"
VERDICT_GAVE_UP = "gave-up"
VERDICT_NOT_FIRED = "not-fired"

VERDICTS = (
    VERDICT_SURVIVED,
    VERDICT_WRONG_ANSWER,
    VERDICT_UNRECOVERABLE,
    VERDICT_GAVE_UP,
    VERDICT_NOT_FIRED,
)

#: verdict -> registry counter name (see repro.obs.labels.METRIC_NAMES)
_VERDICT_METRIC = {
    VERDICT_SURVIVED: "chaos.survived",
    VERDICT_WRONG_ANSWER: "chaos.wrong_answer",
    VERDICT_UNRECOVERABLE: "chaos.unrecoverable",
    VERDICT_GAVE_UP: "chaos.gave_up",
    VERDICT_NOT_FIRED: "chaos.not_fired",
}


class ChaosError(RuntimeError):
    """A campaign could not even establish its baseline."""


@dataclass(frozen=True)
class KillPoint:
    """Kill ``node_id`` at the ``occurrence``-th announcement of ``phase``
    (counted per node, matching a rankless
    :class:`~repro.sim.failures.PhaseTrigger`)."""

    phase: str
    occurrence: int
    node_id: int

    @property
    def label(self) -> str:
        return f"{self.phase}:{self.occurrence}@n{self.node_id}"


@dataclass
class KillResult:
    """Outcome of one kill-point replay."""

    point: KillPoint
    verdict: str
    n_restarts: int
    makespan_s: float
    gave_up_reason: Optional[str] = None
    fired: List[str] = field(default_factory=list)


@dataclass
class BaselineProbe:
    """What the fault-free reference run announced, per node."""

    makespan_s: float
    ranklist: List[int]
    #: (node_id, phase) -> announcements over the whole fault-free run
    phase_counts: Dict[Tuple[int, str], int]

    @property
    def nodes(self) -> List[int]:
        return sorted(set(self.ranklist))

    @property
    def phases(self) -> List[str]:
        return sorted({phase for _, phase in self.phase_counts})


@dataclass
class CampaignReport:
    """One full kill-matrix sweep for one scenario configuration."""

    scenario: str
    params: Dict[str, Any]
    baseline_makespan_s: float
    results: List[KillResult] = field(default_factory=list)

    @property
    def method(self) -> str:
        return str(self.params.get("method", "?"))

    @property
    def verdict_counts(self) -> Dict[str, int]:
        counts = {v: 0 for v in VERDICTS}
        for r in self.results:
            counts[r.verdict] += 1
        return counts

    @property
    def survived_all(self) -> bool:
        """Every kill point fired and the job survived it with the right
        answer (``not-fired`` counts as a failure: the matrix missed)."""
        return bool(self.results) and all(
            r.verdict == VERDICT_SURVIVED for r in self.results
        )

    def failures(self) -> List[KillResult]:
        return [r for r in self.results if r.verdict != VERDICT_SURVIVED]


def probe_baseline(scenario: ChaosScenario) -> BaselineProbe:
    """Run the scenario fault-free and collect its phase announcements.

    Raises :class:`ChaosError` if the baseline itself does not complete or
    fails its own answer oracle — a campaign over a broken baseline would
    report noise.
    """
    inst = scenario.make()
    trace = Trace()
    job = Job(
        inst.cluster,
        inst.main,
        inst.n_ranks,
        args=inst.args,
        procs_per_node=inst.procs_per_node,
        trace=trace,
        name="chaos-baseline",
    )
    result = job.run()
    if not result.completed:
        raise ChaosError(
            f"baseline run of scenario {scenario.name!r} did not complete: "
            f"{result.rank_errors}"
        )
    if not inst.check(result):
        raise ChaosError(
            f"baseline run of scenario {scenario.name!r} fails its own "
            "answer oracle; fix the scenario before running campaigns"
        )
    counts: Dict[Tuple[int, str], int] = {}
    ranklist = list(job.ranklist)
    for e in trace.events:
        key = (ranklist[e.rank], e.label)
        counts[key] = counts.get(key, 0) + 1
    return BaselineProbe(
        makespan_s=result.makespan, ranklist=ranklist, phase_counts=counts
    )


def enumerate_kill_points(
    probe: BaselineProbe,
    *,
    nodes: Optional[Sequence[int]] = None,
    phases: Optional[Sequence[str]] = None,
    max_occurrences: Optional[int] = None,
) -> List[KillPoint]:
    """Expand the probe's counts into the exhaustive kill matrix.

    ``nodes``/``phases`` restrict the sweep; ``max_occurrences`` caps the
    occurrence axis per ``(node, phase)`` for long runs.  Points are
    ordered by (phase, node, occurrence) so reports and artifacts are
    stable across runs.
    """
    sel_nodes = set(probe.nodes if nodes is None else nodes)
    sel_phases = None if phases is None else set(phases)
    points: List[KillPoint] = []
    for (node, phase), count in sorted(
        probe.phase_counts.items(), key=lambda kv: (kv[0][1], kv[0][0])
    ):
        if node not in sel_nodes:
            continue
        if sel_phases is not None and phase not in sel_phases:
            continue
        cap = count if max_occurrences is None else min(count, max_occurrences)
        for occ in range(1, cap + 1):
            points.append(KillPoint(phase=phase, occurrence=occ, node_id=node))
    return points


def run_with_triggers(
    scenario: ChaosScenario, triggers: Sequence[AnyTrigger]
) -> Tuple[ScenarioInstance, FailurePlan, DaemonReport]:
    """Replay the scenario under the daemon with the given triggers armed.

    The shared building block of the kill matrix, the randomized campaigns
    and the shrinker: fresh instance, fresh plan, one supervised run.

    A rank raising a non-simulated exception (a protocol bug tripped by
    the injected failure) would normally propagate out of the runtime;
    here it is itself a campaign outcome, so it is folded into a
    ``gave-up`` report carrying the crash as the reason instead of
    aborting the whole matrix.
    """
    inst = scenario.make()
    plan = FailurePlan(list(triggers))
    daemon = JobDaemon(
        inst.cluster,
        inst.main,
        inst.n_ranks,
        args=inst.args,
        procs_per_node=inst.procs_per_node,
        failure_plan=plan,
        policy=inst.policy,
        name="chaos",
    )
    try:
        report = daemon.run()
    except SimError as e:
        report = DaemonReport(
            completed=False,
            result=None,
            n_restarts=0,
            gave_up_reason=f"protocol crash: {e}",
        )
    return inst, plan, report


def classify(
    inst: ScenarioInstance, plan: FailurePlan, report: DaemonReport
) -> str:
    """Map one supervised run onto a campaign verdict."""
    if not plan.fired:
        return VERDICT_NOT_FIRED
    if report.completed:
        assert report.result is not None
        return (
            VERDICT_SURVIVED if inst.check(report.result) else VERDICT_WRONG_ANSWER
        )
    reason = report.gave_up_reason or ""
    if "unrecoverable" in reason:
        return VERDICT_UNRECOVERABLE
    return VERDICT_GAVE_UP


def point_trigger(point: KillPoint) -> PhaseTrigger:
    """The phase trigger that kills exactly at this matrix point."""
    return PhaseTrigger(
        node_id=point.node_id, phase=point.phase, occurrence=point.occurrence
    )


def _kill_result(point: KillPoint, outcome: ReplayOutcome) -> KillResult:
    return KillResult(
        point=point,
        verdict=outcome.verdict,
        n_restarts=outcome.n_restarts,
        makespan_s=outcome.makespan_s,
        gave_up_reason=outcome.gave_up_reason,
        fired=list(outcome.fired),
    )


def run_kill_point(scenario: ChaosScenario, point: KillPoint) -> KillResult:
    """Replay the scenario, killing the node at exactly this announcement."""
    outcome = replay_scenario(scenario, (point_trigger(point),))
    return _kill_result(point, outcome)


def replay_kill_points(
    scenario: ChaosScenario,
    points: Sequence[KillPoint],
    *,
    workers: int = 1,
    cache: Any = None,
    registry: Any = None,
    progress: Any = None,
) -> List[KillResult]:
    """Replay every kill point, optionally fanned out over worker processes.

    With ``workers > 1`` the replays run in a :class:`ParallelEngine`
    pool and are merged back in canonical point order, so the result list
    — and every artifact derived from it — is byte-identical to the
    serial sweep.  ``cache`` (a :class:`~repro.par.cache.MemoCache`)
    skips points whose fingerprint was already classified.  A replay that
    raises is folded into its own ``gave-up`` result rather than aborting
    the matrix.
    """
    engine = ParallelEngine(workers, registry=registry, progress=progress)
    if scenario.spec is None:
        if engine.workers > 1:
            raise ChaosError(
                f"scenario {scenario.name!r} has no pickleable spec "
                "(custom factory/protocol closure); run it with workers=1"
            )
        outcomes = engine.map(
            lambda pt: replay_scenario(scenario, (point_trigger(pt),)),
            points,
            on_error=crash_outcome,
        )
        return [_kill_result(pt, out) for pt, out in zip(points, outcomes)]
    specs = [ReplaySpec(scenario.spec, (point_trigger(pt),)) for pt in points]
    outcomes = engine.map(
        replay,
        specs,
        cache=cache,
        key=replay_fingerprint,
        on_error=crash_outcome,
    )
    return [_kill_result(pt, out) for pt, out in zip(points, outcomes)]


def run_kill_matrix(
    scenario: ChaosScenario,
    *,
    nodes: Optional[Sequence[int]] = None,
    phases: Optional[Sequence[str]] = None,
    max_occurrences: Optional[int] = None,
    probe: Optional[BaselineProbe] = None,
    registry: Any = None,
    workers: int = 1,
    cache: Any = None,
    progress: Any = None,
) -> CampaignReport:
    """Sweep the exhaustive kill matrix and report per-point verdicts.

    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`) gets the
    campaign counters (``chaos.kill_points``, ``chaos.runs``, one counter
    per verdict) so campaigns export through the same metrics pipeline as
    instrumented runs.  ``chaos.runs`` counts *resolved* replays — cache
    hits included — so campaign reports stay independent of cache state;
    the engine's ``par.cache_hits``/``par.cache_misses`` counters say how
    many actually executed.

    ``workers``/``cache``/``progress`` fan the sweep out over the
    :mod:`repro.par` engine; verdicts, ordering and artifacts are
    byte-identical to the serial run regardless of worker count.
    """
    probe = probe or probe_baseline(scenario)
    points = enumerate_kill_points(
        probe, nodes=nodes, phases=phases, max_occurrences=max_occurrences
    )
    results = replay_kill_points(
        scenario,
        points,
        workers=workers,
        cache=cache,
        registry=registry,
        progress=progress,
    )
    if registry is not None:
        registry.counter("chaos.kill_points").inc(len(points))
        registry.counter("chaos.runs").inc(len(points) + 1)  # + baseline
        for r in results:
            registry.counter(_VERDICT_METRIC[r.verdict]).inc()
    return CampaignReport(
        scenario=scenario.name,
        params=dict(scenario.params),
        baseline_makespan_s=probe.makespan_s,
        results=results,
    )
