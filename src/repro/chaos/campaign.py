"""The kill-matrix campaign: exhaustive phase-aimed failure injection.

The paper argues informally that a node loss is survivable *at any moment*
— mid-compute, mid-encode, mid-flush (Fig. 2 / Fig. 4 cases).  This module
turns that claim into a machine-checkable matrix:

1. :func:`probe_baseline` runs the scenario once, fault-free, with a
   :class:`~repro.sim.trace.Trace` attached, and counts every phase
   announcement per node — the complete set of interruption points the
   protocol exposes.
2. :func:`enumerate_kill_points` expands the counts into one
   :class:`KillPoint` per ``(phase, occurrence, node)``.
3. :func:`run_kill_point` replays the scenario under the
   :class:`~repro.hpl.daemon.JobDaemon`, killing the node at exactly that
   announcement, and classifies the outcome into a :class:`KillResult`
   verdict: ``survived`` (completed and the answer oracle passed),
   ``wrong-answer`` (completed but the oracle failed — silent corruption),
   ``unrecoverable``, ``gave-up``, or ``not-fired`` (the trigger never
   tripped — an enumeration mismatch, itself a red flag).
4. :func:`run_kill_matrix` sweeps the whole matrix into a
   :class:`CampaignReport`.

Everything is deterministic: runs are driven by virtual clocks and the
byte-identical failure delivery of the runtime, so the same scenario and
kill point always produce the same verdict — which is what makes the
shrinker (:mod:`repro.chaos.shrink`) sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.scenarios import ChaosScenario, ScenarioInstance
from repro.hpl.daemon import DaemonReport, JobDaemon
from repro.par.cache import replay_fingerprint
from repro.par.engine import ParallelEngine
from repro.par.replay import (
    ReplayOutcome,
    ReplaySpec,
    crash_outcome,
    replay,
    replay_scenario,
)
from repro.sim.errors import SimError
from repro.sim.failures import AnyTrigger, FailurePlan, PhaseTrigger
from repro.sim.runtime import Job
from repro.sim.trace import Trace

VERDICT_SURVIVED = "survived"
VERDICT_WRONG_ANSWER = "wrong-answer"
VERDICT_UNRECOVERABLE = "unrecoverable"
VERDICT_GAVE_UP = "gave-up"
VERDICT_NOT_FIRED = "not-fired"

VERDICTS = (
    VERDICT_SURVIVED,
    VERDICT_WRONG_ANSWER,
    VERDICT_UNRECOVERABLE,
    VERDICT_GAVE_UP,
    VERDICT_NOT_FIRED,
)

#: verdict -> registry counter name (see repro.obs.labels.METRIC_NAMES)
_VERDICT_METRIC = {
    VERDICT_SURVIVED: "chaos.survived",
    VERDICT_WRONG_ANSWER: "chaos.wrong_answer",
    VERDICT_UNRECOVERABLE: "chaos.unrecoverable",
    VERDICT_GAVE_UP: "chaos.gave_up",
    VERDICT_NOT_FIRED: "chaos.not_fired",
}


class ChaosError(RuntimeError):
    """A campaign could not even establish its baseline."""


@dataclass(frozen=True)
class KillPoint:
    """Kill ``node_id`` at the ``occurrence``-th announcement of ``phase``
    (counted per node, matching a rankless
    :class:`~repro.sim.failures.PhaseTrigger`)."""

    phase: str
    occurrence: int
    node_id: int

    @property
    def label(self) -> str:
        return f"{self.phase}:{self.occurrence}@n{self.node_id}"


@dataclass
class KillResult:
    """Outcome of one kill-point replay."""

    point: KillPoint
    verdict: str
    n_restarts: int
    makespan_s: float
    gave_up_reason: Optional[str] = None
    fired: List[str] = field(default_factory=list)
    #: per-attempt observability payload (``--obs summary/full``); never
    #: serialized into ``BENCH_chaos.json`` — it flows to the trace store
    obs: Optional[Dict[str, Any]] = None


@dataclass
class BaselineProbe:
    """What the fault-free reference run announced, per node."""

    makespan_s: float
    ranklist: List[int]
    #: (node_id, phase) -> announcements over the whole fault-free run
    phase_counts: Dict[Tuple[int, str], int]
    #: (node_id, phase) -> every announcement as ``(clock, rank,
    #: rank_local_occurrence)`` in virtual-clock order (rank id breaks
    #: same-instant ties).  This is the node-wide announcement schedule a
    #: kill point indexes into: with several ranks per node the *runtime's*
    #: node-wide count is incremented in host-scheduler order, so the probe
    #: records the deterministic virtual order and :func:`point_trigger`
    #: pins each trigger to the concrete announcement it resolves to.
    announcements: Dict[Tuple[int, str], List[Tuple[float, int, int]]] = field(
        default_factory=dict
    )

    @property
    def nodes(self) -> List[int]:
        return sorted(set(self.ranklist))

    @property
    def phases(self) -> List[str]:
        return sorted({phase for _, phase in self.phase_counts})


@dataclass
class CampaignReport:
    """One full kill-matrix sweep for one scenario configuration."""

    scenario: str
    params: Dict[str, Any]
    baseline_makespan_s: float
    results: List[KillResult] = field(default_factory=list)

    @property
    def method(self) -> str:
        return str(self.params.get("method", "?"))

    @property
    def verdict_counts(self) -> Dict[str, int]:
        counts = {v: 0 for v in VERDICTS}
        for r in self.results:
            counts[r.verdict] += 1
        return counts

    @property
    def survived_all(self) -> bool:
        """Every kill point fired and the job survived it with the right
        answer (``not-fired`` counts as a failure: the matrix missed)."""
        return bool(self.results) and all(
            r.verdict == VERDICT_SURVIVED for r in self.results
        )

    def failures(self) -> List[KillResult]:
        return [r for r in self.results if r.verdict != VERDICT_SURVIVED]


def probe_baseline(scenario: ChaosScenario) -> BaselineProbe:
    """Run the scenario fault-free and collect its phase announcements.

    Raises :class:`ChaosError` if the baseline itself does not complete or
    fails its own answer oracle — a campaign over a broken baseline would
    report noise.
    """
    inst = scenario.make()
    trace = Trace()
    job = Job(
        inst.cluster,
        inst.main,
        inst.n_ranks,
        args=inst.args,
        procs_per_node=inst.procs_per_node,
        trace=trace,
        name="chaos-baseline",
    )
    result = job.run()
    if not result.completed:
        raise ChaosError(
            f"baseline run of scenario {scenario.name!r} did not complete: "
            f"{result.rank_errors}"
        )
    if not inst.check(result):
        raise ChaosError(
            f"baseline run of scenario {scenario.name!r} fails its own "
            "answer oracle; fix the scenario before running campaigns"
        )
    counts: Dict[Tuple[int, str], int] = {}
    ranklist = list(job.ranklist)
    announcements: Dict[Tuple[int, str], List[Tuple[float, int, int]]] = {}
    rank_local: Dict[Tuple[int, str], int] = {}
    for e in trace.events:  # per-rank subsequences are in program order
        key = (ranklist[e.rank], e.label)
        counts[key] = counts.get(key, 0) + 1
        lkey = (e.rank, e.label)
        rank_local[lkey] = rank_local.get(lkey, 0) + 1
        announcements.setdefault(key, []).append(
            (e.clock, e.rank, rank_local[lkey])
        )
    for ann in announcements.values():
        ann.sort()
    return BaselineProbe(
        makespan_s=result.makespan,
        ranklist=ranklist,
        phase_counts=counts,
        announcements=announcements,
    )


def enumerate_kill_points(
    probe: BaselineProbe,
    *,
    nodes: Optional[Sequence[int]] = None,
    phases: Optional[Sequence[str]] = None,
    max_occurrences: Optional[int] = None,
) -> List[KillPoint]:
    """Expand the probe's counts into the exhaustive kill matrix.

    ``nodes``/``phases`` restrict the sweep; ``max_occurrences`` caps the
    occurrence axis per ``(node, phase)`` for long runs.  Points are
    ordered by (phase, node, occurrence) so reports and artifacts are
    stable across runs.
    """
    sel_nodes = set(probe.nodes if nodes is None else nodes)
    sel_phases = None if phases is None else set(phases)
    points: List[KillPoint] = []
    for (node, phase), count in sorted(
        probe.phase_counts.items(), key=lambda kv: (kv[0][1], kv[0][0])
    ):
        if node not in sel_nodes:
            continue
        if sel_phases is not None and phase not in sel_phases:
            continue
        cap = count if max_occurrences is None else min(count, max_occurrences)
        for occ in range(1, cap + 1):
            points.append(KillPoint(phase=phase, occurrence=occ, node_id=node))
    return points


def run_with_triggers(
    scenario: ChaosScenario,
    triggers: Sequence[AnyTrigger],
    *,
    tracer: Any = None,
    observer: Any = None,
) -> Tuple[ScenarioInstance, FailurePlan, DaemonReport]:
    """Replay the scenario under the daemon with the given triggers armed.

    The shared building block of the kill matrix, the randomized campaigns
    and the shrinker: fresh instance, fresh plan, one supervised run.
    ``tracer``/``observer`` (a :class:`~repro.obs.spans.SpanTracer` and a
    :class:`~repro.obs.metrics.MetricsObserver`) instrument the attempt —
    both ride virtual clocks only, so an instrumented replay produces the
    same verdict, restart count and makespan as a bare one.

    A rank raising a non-simulated exception (a protocol bug tripped by
    the injected failure) would normally propagate out of the runtime;
    here it is itself a campaign outcome, so it is folded into a
    ``gave-up`` report carrying the crash as the reason instead of
    aborting the whole matrix.
    """
    inst = scenario.make()
    if observer is not None and hasattr(observer, "watch_cluster"):
        observer.watch_cluster(inst.cluster)
    plan = FailurePlan(list(triggers))
    daemon = JobDaemon(
        inst.cluster,
        inst.main,
        inst.n_ranks,
        args=inst.args,
        procs_per_node=inst.procs_per_node,
        failure_plan=plan,
        policy=inst.policy,
        observer=observer,
        tracer=tracer,
        name="chaos",
    )
    try:
        report = daemon.run()
    except SimError as e:
        report = DaemonReport(
            completed=False,
            result=None,
            n_restarts=0,
            gave_up_reason=f"protocol crash: {e}",
        )
    return inst, plan, report


def classify(
    inst: ScenarioInstance, plan: FailurePlan, report: DaemonReport
) -> str:
    """Map one supervised run onto a campaign verdict."""
    if not plan.fired:
        return VERDICT_NOT_FIRED
    if report.completed:
        assert report.result is not None
        return (
            VERDICT_SURVIVED if inst.check(report.result) else VERDICT_WRONG_ANSWER
        )
    reason = report.gave_up_reason or ""
    if "unrecoverable" in reason:
        return VERDICT_UNRECOVERABLE
    return VERDICT_GAVE_UP


def point_trigger(
    point: KillPoint, probe: Optional[BaselineProbe] = None
) -> PhaseTrigger:
    """The phase trigger that kills exactly at this matrix point.

    With a ``probe``, the node-wide occurrence is resolved against the
    fault-free announcement schedule and the trigger is *pinned*
    (``via_rank``/``via_occurrence``) to the concrete announcement it
    indexes in virtual-clock order.  The killed run's fault-free prefix is
    identical to the probe, so the pin lands on the same announcement —
    but now deterministically, where an unpinned trigger on a
    several-ranks-per-node node counts announcements in host-scheduler
    order and its fire clock jitters by the inter-rank skew.  Artifacts
    are unaffected either way (the provenance reports the node-wide
    count); the pin is what makes the doomed attempt's *telemetry* — span
    tails, encoded bytes, makespan epsilons — byte-stable.
    """
    if probe is not None:
        ann = probe.announcements.get((point.node_id, point.phase))
        if ann and len(ann) >= point.occurrence:
            clock, rank, local = ann[point.occurrence - 1]
            return PhaseTrigger(
                node_id=point.node_id,
                phase=point.phase,
                occurrence=point.occurrence,
                via_rank=rank,
                via_occurrence=local,
                fire_clock=clock,
                doom_points=_doom_points(probe, point.node_id, clock, rank),
            )
    return PhaseTrigger(
        node_id=point.node_id, phase=point.phase, occurrence=point.occurrence
    )


def _doom_points(
    probe: BaselineProbe, node_id: int, fire_clock: float, via_rank: int
) -> Tuple[Tuple[int, str, int], ...]:
    """Each sibling rank's first announcement at-or-after the kill.

    Merges the node's announcement streams across phases into one
    virtual-clock order (rank id breaks same-instant ties) and, for every
    rank of the node other than ``via_rank``, picks its first announcement
    strictly after the pinned one — the deterministic point where that
    rank observes the power-off.  A rank with no later announcement (or
    none at all) gets a ``phase=""`` wait-only entry: it can only die
    inside a communicator wait, but stays exempt from the clock fallback.
    """
    merged: List[Tuple[float, int, int, str]] = []
    for (nid, phase), anns in probe.announcements.items():
        if nid != node_id:
            continue
        for clock, rank, local in anns:
            merged.append((clock, rank, local, phase))
    merged.sort()
    dooms: Dict[int, Tuple[int, str, int]] = {}
    for clock, rank, local, phase in merged:
        if rank == via_rank or rank in dooms:
            continue
        if (clock, rank) > (fire_clock, via_rank):
            dooms[rank] = (rank, phase, local)
    for rank, nid in enumerate(probe.ranklist):
        if nid == node_id and rank != via_rank and rank not in dooms:
            dooms[rank] = (rank, "", 0)
    return tuple(dooms[r] for r in sorted(dooms))


def _kill_result(point: KillPoint, outcome: ReplayOutcome) -> KillResult:
    return KillResult(
        point=point,
        verdict=outcome.verdict,
        n_restarts=outcome.n_restarts,
        makespan_s=outcome.makespan_s,
        gave_up_reason=outcome.gave_up_reason,
        fired=list(outcome.fired),
        obs=outcome.obs,
    )


def run_kill_point(
    scenario: ChaosScenario,
    point: KillPoint,
    *,
    obs: str = "off",
    probe: Optional[BaselineProbe] = None,
) -> KillResult:
    """Replay the scenario, killing the node at exactly this announcement."""
    outcome = replay_scenario(scenario, (point_trigger(point, probe),), obs=obs)
    return _kill_result(point, outcome)


def replay_kill_points(
    scenario: ChaosScenario,
    points: Sequence[KillPoint],
    *,
    workers: int = 1,
    cache: Any = None,
    registry: Any = None,
    progress: Any = None,
    obs: str = "off",
    probe: Optional[BaselineProbe] = None,
) -> List[KillResult]:
    """Replay every kill point, optionally fanned out over worker processes.

    With ``workers > 1`` the replays run in a :class:`ParallelEngine`
    pool and are merged back in canonical point order, so the result list
    — and every artifact derived from it — is byte-identical to the
    serial sweep.  ``cache`` (a :class:`~repro.par.cache.MemoCache`)
    skips points whose fingerprint was already classified.  A replay that
    raises is folded into its own ``gave-up`` result rather than aborting
    the matrix.  ``obs`` ("off" | "summary" | "full") arms per-attempt
    instrumentation whose payload rides back in :attr:`KillResult.obs`
    (part of the cache fingerprint, so modes never share entries).
    ``probe`` pins each trigger to its probe-resolved announcement (see
    :func:`point_trigger`).
    """
    engine = ParallelEngine(workers, registry=registry, progress=progress)
    if scenario.spec is None:
        if engine.workers > 1:
            raise ChaosError(
                f"scenario {scenario.name!r} has no pickleable spec "
                "(custom factory/protocol closure); run it with workers=1"
            )
        outcomes = engine.map(
            lambda pt: replay_scenario(
                scenario, (point_trigger(pt, probe),), obs=obs
            ),
            points,
            on_error=crash_outcome,
        )
        return [_kill_result(pt, out) for pt, out in zip(points, outcomes)]
    specs = [
        ReplaySpec(scenario.spec, (point_trigger(pt, probe),), obs=obs)
        for pt in points
    ]
    outcomes = engine.map(
        replay,
        specs,
        cache=cache,
        key=replay_fingerprint,
        on_error=crash_outcome,
    )
    return [_kill_result(pt, out) for pt, out in zip(points, outcomes)]


def run_kill_matrix(
    scenario: ChaosScenario,
    *,
    nodes: Optional[Sequence[int]] = None,
    phases: Optional[Sequence[str]] = None,
    max_occurrences: Optional[int] = None,
    probe: Optional[BaselineProbe] = None,
    registry: Any = None,
    workers: int = 1,
    cache: Any = None,
    progress: Any = None,
    obs: str = "off",
) -> CampaignReport:
    """Sweep the exhaustive kill matrix and report per-point verdicts.

    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`) gets the
    campaign counters (``chaos.kill_points``, ``chaos.runs``, one counter
    per verdict) so campaigns export through the same metrics pipeline as
    instrumented runs.  ``chaos.runs`` counts *resolved* replays — cache
    hits included — so campaign reports stay independent of cache state;
    the engine's ``par.cache_hits``/``par.cache_misses`` counters say how
    many actually executed.

    ``workers``/``cache``/``progress`` fan the sweep out over the
    :mod:`repro.par` engine; verdicts, ordering and artifacts are
    byte-identical to the serial run regardless of worker count.
    """
    probe = probe or probe_baseline(scenario)
    points = enumerate_kill_points(
        probe, nodes=nodes, phases=phases, max_occurrences=max_occurrences
    )
    results = replay_kill_points(
        scenario,
        points,
        workers=workers,
        cache=cache,
        registry=registry,
        progress=progress,
        obs=obs,
        probe=probe,
    )
    if registry is not None:
        registry.counter("chaos.kill_points").inc(len(points))
        registry.counter("chaos.runs").inc(len(points) + 1)  # + baseline
        for r in results:
            registry.counter(_VERDICT_METRIC[r.verdict]).inc()
    return CampaignReport(
        scenario=scenario.name,
        params=dict(scenario.params),
        baseline_makespan_s=probe.makespan_s,
        results=results,
    )
