"""Survivability-matrix and campaign report rendering (ASCII).

The matrix view puts phases × occurrences on the rows and nodes on the
columns, one verdict symbol per cell — the at-a-glance answer to "is the
protocol survivable at *every* interruption point?"::

    survivability matrix: selfckpt method=self
    phase:occ          n0  n1
    -----------------  --  --
    ckpt.begin:1       S   S
    ckpt.encode:1      S   S
    ...
    S=survived  W=wrong-answer  U=unrecoverable  G=gave-up  .=not-fired
"""

from __future__ import annotations

from typing import List, Optional

from repro.chaos.campaign import (
    CampaignReport,
    VERDICT_GAVE_UP,
    VERDICT_NOT_FIRED,
    VERDICT_SURVIVED,
    VERDICT_UNRECOVERABLE,
    VERDICT_WRONG_ANSWER,
)
from repro.chaos.schedules import ScheduleResult
from repro.chaos.shrink import ShrinkResult
from repro.util.tables import render_table

_SYMBOL = {
    VERDICT_SURVIVED: "S",
    VERDICT_WRONG_ANSWER: "W",
    VERDICT_UNRECOVERABLE: "U",
    VERDICT_GAVE_UP: "G",
    VERDICT_NOT_FIRED: ".",
}

_LEGEND = "S=survived  W=wrong-answer  U=unrecoverable  G=gave-up  .=not-fired"


def render_matrix(report: CampaignReport) -> str:
    """One campaign's kill matrix as an ASCII grid."""
    nodes = sorted({r.point.node_id for r in report.results})
    cells = {
        (r.point.phase, r.point.occurrence, r.point.node_id): _SYMBOL[r.verdict]
        for r in report.results
    }
    row_keys = sorted({(r.point.phase, r.point.occurrence) for r in report.results})
    headers = ["phase:occ"] + [f"n{n}" for n in nodes]
    rows = [
        [f"{phase}:{occ}"] + [cells.get((phase, occ, n), "-") for n in nodes]
        for phase, occ in row_keys
    ]
    counts = report.verdict_counts
    summary = (
        f"{len(report.results)} kill points: "
        + "  ".join(f"{v}={counts[v]}" for v in _SYMBOL if counts[v])
    )
    table = render_table(
        headers,
        rows,
        title=f"survivability matrix: {report.scenario} method={report.method}",
    )
    return "\n".join([table, _LEGEND, summary])


def render_failures(report: CampaignReport) -> str:
    """Detail lines for every non-survived kill point (empty string if
    the matrix is clean)."""
    bad = report.failures()
    if not bad:
        return ""
    lines = [f"non-survived kill points ({report.scenario} method={report.method}):"]
    for r in bad:
        lines.append(
            f"  {r.point.label}: {r.verdict}"
            + (f" ({r.gave_up_reason})" if r.gave_up_reason else "")
        )
        for f in r.fired:
            lines.append(f"    fired: {f}")
    return "\n".join(lines)


def render_schedules(results: List[ScheduleResult], title: str = "") -> str:
    """Randomized-campaign outcomes, one row per schedule."""
    headers = ["schedule", "triggers", "verdict", "restarts", "makespan_s"]
    rows = [
        [r.index, len(r.triggers), r.verdict, r.n_restarts, f"{r.makespan_s:.1f}"]
        for r in results
    ]
    return render_table(headers, rows, title=title or "randomized campaign")


def render_shrink(shrink: ShrinkResult) -> str:
    """One shrink outcome: the minimal reproducer and how it was reached."""
    lines = [
        f"shrunk {len(shrink.original)} trigger(s) -> {len(shrink.minimal)} "
        f"(verdict {shrink.verdict}, {shrink.n_runs} replays)"
    ]
    for t in shrink.minimal:
        lines.append(f"  keep: {t!r}")
    for s in shrink.steps:
        lines.append(f"  step: {s}")
    return "\n".join(lines)


def render_campaign(
    matrices: List[CampaignReport],
    schedules: Optional[List[ScheduleResult]] = None,
    shrinks: Optional[List[Optional[ShrinkResult]]] = None,
) -> str:
    """The full ``repro chaos`` report: matrices, failures, random runs,
    shrunk reproducers."""
    parts = []
    for rep in matrices:
        parts.append(render_matrix(rep))
        detail = render_failures(rep)
        if detail:
            parts.append(detail)
    if schedules:
        parts.append(render_schedules(schedules))
    for s in shrinks or []:
        if s is not None:
            parts.append(render_shrink(s))
    verdict = all(rep.survived_all for rep in matrices)
    parts.append(
        "campaign verdict: "
        + ("all kill points survived" if verdict else "NOT all kill points survived")
    )
    return "\n\n".join(parts)
