"""``repro chaos`` — adversarial fault-injection campaigns from a shell.

Usage::

    repro chaos --smoke                         # CI-sized matrix, self+double
    repro chaos --smoke --workers 4             # same artifact, 4 processes
    repro chaos --methods self --nodes 2 --group-size 2
    repro chaos --scenario skt-hpl --methods self
    repro chaos --methods self --random 8 --shrink
    repro chaos --smoke --workers auto --cache .chaos-cache

Runs the exhaustive kill matrix for each requested method (and optionally
a seeded randomized campaign with shrinking of any failing schedule),
prints the survivability report, and writes ``report.txt`` +
``BENCH_chaos.json`` into ``--out``.  Exit status 0 means every kill
point survived and no randomized schedule produced a wrong answer.

``--workers N`` fans the independent replays out over the
:mod:`repro.par` engine (``auto`` = one per CPU, capped); the artifacts
are byte-identical to the serial run.  ``--cache DIR`` persists
classified outcomes across invocations, keyed by a content fingerprint
that includes the repo's source code — edit any protocol and every entry
invalidates itself.

``--shards N`` runs the campaign on the crash-tolerant
:mod:`repro.shard` engine instead: the campaign is frozen into N
content-addressed shards journaled to ``<out>/shards.sqlite``, so a
killed executor's shard is re-issued and a killed driver resumes with
``--resume DIR`` (same campaign flags) — in both cases finishing with
artifacts byte-identical to an uninterrupted serial run.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

from repro.chaos.bench import bench_record, write_bench
from repro.chaos.campaign import (
    VERDICT_WRONG_ANSWER,
    probe_baseline,
    run_kill_matrix,
)
from repro.chaos.report import render_campaign
from repro.chaos.scenarios import selfckpt_scenario, skt_scenario
from repro.chaos.schedules import RandomCampaignConfig, random_campaign
from repro.chaos.shrink import shrink_failures

SCENARIOS = ("selfckpt", "skt-hpl")


def _finish_campaign(
    args,
    methods,
    matrices,
    schedules,
    shrinks,
    scenarios_by_matrix,
    probes_by_matrix,
    registry,
    engine_desc: str,
) -> int:
    """Everything downstream of the replays: report, artifacts, store,
    exit status.  Shared verbatim by the serial/pooled path and the
    sharded path so their outputs cannot drift apart."""
    text = render_campaign(matrices, schedules, shrinks)
    print(text)
    print()
    print(
        "campaign runs: "
        f"{int(registry.total('chaos.runs'))} supervised jobs, "
        f"{int(registry.total('chaos.kill_points'))} kill points "
        f"({engine_desc})"
    )

    if not args.report_only:
        os.makedirs(args.out, exist_ok=True)
        report_path = os.path.join(args.out, "report.txt")
        with open(report_path, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        bench_path = os.path.join(args.out, "BENCH_chaos.json")
        write_bench(
            bench_path,
            bench_record(matrices, schedules, shrinks, seed=args.seed),
        )
        print(f"wrote report: {report_path}")
        print(f"wrote bench: {bench_path}")

    store_path = args.store
    if store_path is None and args.obs != "off" and not args.report_only:
        store_path = os.path.join(args.out, "obs.sqlite")
    if store_path is not None:
        from repro.obs.store import (
            TraceStore,
            campaign_id_for,
            ingest_kill_matrix,
            ingest_schedules,
        )

        cid = campaign_id_for(args.seed, args.scenario, methods)
        with TraceStore(store_path) as store:
            ord_ = 0
            for scenario, probe, rep in zip(
                scenarios_by_matrix, probes_by_matrix, matrices
            ):
                ord_ = ingest_kill_matrix(
                    store, cid, scenario, rep,
                    seed=args.seed, obs_mode=args.obs, ord_base=ord_,
                    probe=probe,
                )
            if schedules is not None and scenarios_by_matrix:
                ord_ = ingest_schedules(
                    store, cid, scenarios_by_matrix[0], schedules,
                    seed=args.seed, obs_mode=args.obs, ord_base=ord_,
                )
            n_runs, digest = store.counts()["runs"], store.digest()
        print(
            f"stored campaign {cid} in {store_path} "
            f"({n_runs} runs, digest {digest[:12]})"
        )

    ok = all(rep.survived_all for rep in matrices) and not any(
        r.verdict == VERDICT_WRONG_ANSWER for r in schedules or []
    )
    return 0 if ok else 1


def _count_campaign(registry, matrices, schedules) -> None:
    """Reproduce the serial engine's campaign counters from merged
    results, so the sharded path's summary line and metrics exports
    match a serial run of the same campaign."""
    from repro.chaos.campaign import _VERDICT_METRIC

    for rep in matrices:
        registry.counter("chaos.kill_points").inc(len(rep.results))
        registry.counter("chaos.runs").inc(len(rep.results) + 1)  # + baseline
        for r in rep.results:
            registry.counter(_VERDICT_METRIC[r.verdict]).inc()
    if schedules is not None:
        registry.counter("chaos.runs").inc(len(schedules) + 1)  # + baseline
        for r in schedules:
            registry.counter(_VERDICT_METRIC[r.verdict]).inc()


def _build_scenario(args: argparse.Namespace, method: str):
    if args.scenario == "selfckpt":
        return selfckpt_scenario(
            n_nodes=args.nodes,
            procs_per_node=args.ppn,
            group_size=args.group_size,
            iters=args.iters,
            ckpt_every=args.ckpt_every,
            method=method,
        )
    p, q = args.grid
    return skt_scenario(
        n=args.n,
        nb=args.nb,
        p=p,
        q=q,
        group_size=args.group_size,
        interval_panels=args.ckpt_every,
        method=method,
        seed=args.seed,
        procs_per_node=args.ppn,
    )


def chaos_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Exhaustive kill-matrix and randomized failure campaigns over "
            "the checkpoint protocols (report.txt + BENCH_chaos.json)."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: small kill matrix over methods self and double "
        "on a 2-ranks-per-node x 4-node cluster",
    )
    parser.add_argument(
        "--scenario", choices=SCENARIOS, default="selfckpt",
        help="application under fire (default: selfckpt)",
    )
    parser.add_argument(
        "--methods", default="self",
        help="comma-separated checkpoint methods to sweep (default: self)",
    )
    parser.add_argument("--nodes", type=int, default=4, help="compute nodes")
    parser.add_argument(
        "--ppn", type=int, default=2, help="ranks per node (default: 2)"
    )
    parser.add_argument(
        "--group-size", type=int, default=4, help="checkpoint group size"
    )
    parser.add_argument(
        "--iters", type=int, default=4, help="selfckpt iterations"
    )
    parser.add_argument(
        "--ckpt-every", type=int, default=2,
        help="checkpoint every K iterations / panels",
    )
    parser.add_argument("--n", type=int, default=32, help="HPL problem size")
    parser.add_argument("--nb", type=int, default=8, help="HPL block size")
    parser.add_argument(
        "--grid", default="2x2", help="HPL process grid PxQ (skt-hpl)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (random schedules)"
    )
    parser.add_argument(
        "--random", type=int, default=0, metavar="N",
        help="additionally run N seeded randomized schedules",
    )
    parser.add_argument(
        "--mtbf-scale", type=float, default=0.6,
        help="random campaign per-node MTBF / baseline makespan (default 0.6)",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="shrink every failing randomized schedule to a minimal reproducer",
    )
    parser.add_argument(
        "--max-occurrences", type=int, default=None,
        help="cap the occurrence axis of the kill matrix",
    )
    parser.add_argument(
        "--workers", default="1", metavar="N",
        help="replay worker processes (an integer or 'auto'; default 1 = "
        "serial — artifacts are byte-identical either way)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run on the crash-tolerant sharded engine with N shards "
        "(one executor process per shard; journal in <out>/shards.sqlite)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume an interrupted sharded campaign from DIR (pass the "
        "same campaign flags plus the same --shards N)",
    )
    parser.add_argument(
        "--lease", type=float, default=60.0, metavar="SECONDS",
        help="shard lease duration; a crashed executor's shard is "
        "re-issued after this long (default: 60; executors heartbeat "
        "the lease, so long units are safe)",
    )
    parser.add_argument(
        "--respawn", type=int, default=0, metavar="N",
        help="total budget of crashed executors the driver supervisor "
        "may respawn (exponential backoff; default 0 = never — a dead "
        "executor's shards are only re-issued to survivors)",
    )
    parser.add_argument(
        "--attempts-cap", type=int, default=3, metavar="K",
        help="quarantine a unit after its shard is re-issued K "
        "consecutive times with no journal progress (a poison unit "
        "that kills every executor; default: 3)",
    )
    parser.add_argument(
        "--salvage", action="store_true",
        help="with --resume: rebuild a corrupt queue from every "
        "parseable journal row instead of refusing to merge it",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persist classified replay outcomes under DIR (content-"
        "addressed; invalidates automatically when the source changes)",
    )
    parser.add_argument(
        "--obs", choices=("off", "summary", "full"), default="off",
        help="per-attempt observability sampling: 'summary' ships a flat "
        "rollup per replay, 'full' the complete span/metric streams "
        "(default: off — artifacts are byte-identical to pre-obs runs)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DB",
        help="SQLite trace store for the campaign's attempts (default: "
        "<out>/obs.sqlite when --obs is on; query with 'repro obs query')",
    )
    parser.add_argument(
        "--no-progress", action="store_true",
        help="suppress the stderr progress/throughput line",
    )
    parser.add_argument(
        "--out", default="chaos-out", help="artifact directory (default: chaos-out)"
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="print the report without writing artifacts",
    )
    args = parser.parse_args(argv)

    from repro.par import MemoCache, ProgressReporter, resolve_workers

    try:
        workers = resolve_workers(args.workers)
    except ValueError:
        parser.error(f"--workers must be a positive integer or 'auto', got {args.workers!r}")

    try:
        p, q = (int(v) for v in args.grid.lower().split("x"))
        args.grid = (p, q)
    except ValueError:
        parser.error(f"--grid must look like PxQ, got {args.grid!r}")

    if args.smoke:
        args.scenario = "selfckpt"
        args.methods = "self,double"
        args.nodes, args.ppn, args.group_size = 4, 2, 4
        args.iters, args.ckpt_every = 4, 2

    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    from repro.ckpt.manager import METHODS

    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    if not methods:
        parser.error("--methods must name at least one checkpoint method")
    for m in methods:
        if m not in METHODS:
            parser.error(
                f"unknown checkpoint method {m!r}; choose from "
                f"{', '.join(METHODS)}"
            )

    cache = MemoCache(args.cache) if args.cache else MemoCache()
    progress = None if args.no_progress else ProgressReporter(label="chaos")

    if args.resume is not None and not args.shards:
        parser.error("--resume requires --shards N (the original shard count)")
    if args.salvage and args.resume is None:
        parser.error("--salvage requires --resume DIR (the corrupt queue)")
    if args.shards:
        if args.shards < 1:
            parser.error(f"--shards must be >= 1, got {args.shards}")
        if args.respawn < 0:
            parser.error(f"--respawn must be >= 0, got {args.respawn}")
        if args.attempts_cap < 1:
            parser.error(f"--attempts-cap must be >= 1, got {args.attempts_cap}")
        if workers != 1:
            parser.error(
                "--shards and --workers are mutually exclusive: the "
                "sharded engine already runs one process per shard"
            )
        if args.resume is not None:
            args.out = args.resume
        import sys

        from repro.shard import (
            FaultSpecError,
            ShardCampaignError,
            quarantined_ords,
            run_sharded_campaign,
        )
        from repro.shard.queue import QueueCorruptError, QueueMismatchError

        scenarios = [_build_scenario(args, m) for m in methods]
        random_cfg = None
        if args.random:
            random_cfg = RandomCampaignConfig(
                n_schedules=args.random,
                seed=args.seed,
                mtbf_scale=args.mtbf_scale,
            )
        try:
            plan, matrices, schedules, stats = run_sharded_campaign(
                scenarios,
                n_shards=args.shards,
                out_dir=args.out,
                seed=args.seed,
                obs=args.obs,
                max_occurrences=args.max_occurrences,
                random_cfg=random_cfg,
                lease_s=args.lease,
                cache_dir=args.cache,
                progress=progress,
                respawn=args.respawn,
                attempts_cap=args.attempts_cap,
                salvage=args.salvage,
                registry=registry,
            )
        except ShardCampaignError as err:
            print(f"repro chaos: {err}", file=sys.stderr)
            return 3
        except (QueueMismatchError, QueueCorruptError) as err:
            print(f"repro chaos: {err}", file=sys.stderr)
            return 2
        except FaultSpecError as err:
            print(f"repro chaos: {err}", file=sys.stderr)
            return 2
        shrinks = None
        if args.shrink and schedules is not None:
            shrinks = shrink_failures(
                scenarios[0], schedules, registry=registry, cache=cache
            )
        _count_campaign(registry, matrices, schedules)
        status = _finish_campaign(
            args, methods, matrices, schedules, shrinks,
            scenarios, [m.probe for m in plan.matrices], registry,
            f"{args.shards} shard{'s' if args.shards != 1 else ''}",
        )
        if stats.get("respawns"):
            print(
                f"supervisor respawned {stats['respawns']} crashed "
                f"executor{'s' if stats['respawns'] != 1 else ''}"
            )
        if stats.get("fence_rejections"):
            print(
                f"fencing rejected {stats['fence_rejections']} stale "
                "write(s) from superseded executors"
            )
        if stats.get("quarantined"):
            # engine degradation, not a protocol verdict: name the units
            # so the operator can replay them in isolation
            from repro.shard.queue import ShardQueue, queue_path_for

            with ShardQueue(queue_path_for(args.out)) as queue:
                ords = quarantined_ords(queue.outcomes())
            print(
                f"WARNING: {stats['quarantined']} unit(s) quarantined after "
                "repeatedly crashing their executor "
                f"(plan ordinals: {', '.join(map(str, ords))}); they appear "
                "as 'gave-up' verdicts with a 'quarantined:' reason"
            )
        return status

    matrices = []
    schedules = None
    shrinks = None
    scenarios_by_matrix = []
    probes_by_matrix = []
    for method in methods:
        scenario = _build_scenario(args, method)
        probe = probe_baseline(scenario)
        scenarios_by_matrix.append(scenario)
        probes_by_matrix.append(probe)
        matrices.append(
            run_kill_matrix(
                scenario,
                probe=probe,
                max_occurrences=args.max_occurrences,
                registry=registry,
                workers=workers,
                cache=cache,
                progress=progress,
                obs=args.obs,
            )
        )
        if args.random and method == methods[0]:
            cfg = RandomCampaignConfig(
                n_schedules=args.random,
                seed=args.seed,
                mtbf_scale=args.mtbf_scale,
            )
            schedules = random_campaign(
                scenario,
                cfg,
                probe=probe,
                registry=registry,
                workers=workers,
                cache=cache,
                progress=progress,
                obs=args.obs,
            )
            if args.shrink:
                shrinks = shrink_failures(
                    scenario, schedules, registry=registry, cache=cache
                )

    hits = int(registry.total("par.cache_hits"))
    cached = f", {hits} cached" if hits else ""
    return _finish_campaign(
        args, methods, matrices, schedules, shrinks,
        scenarios_by_matrix, probes_by_matrix, registry,
        f"{workers} worker{'s' if workers != 1 else ''}{cached}",
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(chaos_main())
