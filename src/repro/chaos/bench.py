"""Machine-readable campaign artifact: the ``BENCH_chaos.json`` writer.

One JSON record per ``repro chaos`` invocation, carrying every kill-point
verdict, the randomized-campaign outcomes and any shrunk reproducers.
Like ``BENCH_obs.json`` it is wall-clock-free: all times are virtual, so
two runs with the same parameters produce byte-identical artifacts and a
CI diff on the record reflects protocol changes, not host noise.  Virtual
makespans are recorded at millisecond precision: with several ranks per
node, *which* rank a node-wide kill interrupts at the same virtual
instant is scheduler order, and the surviving ranks' sub-microsecond
per-op epsilons differ with it — verdicts and restart counts are exact
either way, and the rounding keeps that noise out of the artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.chaos.campaign import CampaignReport
from repro.chaos.schedules import ScheduleResult
from repro.chaos.shrink import ShrinkResult
from repro.sim.failures import AnyTrigger, PhaseTrigger, TimeTrigger

#: bump when the record layout changes incompatibly
BENCH_SCHEMA_VERSION = 1


def _trigger_record(t: AnyTrigger) -> Dict[str, Any]:
    if isinstance(t, PhaseTrigger):
        return {
            "kind": "phase",
            "node": t.node_id,
            "phase": t.phase,
            "occurrence": t.occurrence,
            "rank": t.rank,
            "extra_nodes": list(t.extra_nodes),
        }
    assert isinstance(t, TimeTrigger)
    return {
        "kind": "time",
        "node": t.node_id,
        "at_time_s": t.at_time,
        "extra_nodes": list(t.extra_nodes),
    }


def _matrix_record(rep: CampaignReport) -> Dict[str, Any]:
    return {
        "scenario": rep.scenario,
        "method": rep.method,
        "params": dict(rep.params),
        "baseline_makespan_s": round(rep.baseline_makespan_s, 3),
        "n_kill_points": len(rep.results),
        "survived_all": rep.survived_all,
        "verdicts": rep.verdict_counts,
        "matrix": [
            {
                "phase": r.point.phase,
                "occurrence": r.point.occurrence,
                "node": r.point.node_id,
                "verdict": r.verdict,
                "n_restarts": r.n_restarts,
                "makespan_s": round(r.makespan_s, 3),
                "gave_up_reason": r.gave_up_reason,
                "fired": list(r.fired),
            }
            for r in rep.results
        ],
    }


def _schedule_record(r: ScheduleResult) -> Dict[str, Any]:
    return {
        "index": r.index,
        "triggers": [_trigger_record(t) for t in r.triggers],
        "verdict": r.verdict,
        "n_restarts": r.n_restarts,
        "makespan_s": round(r.makespan_s, 3),
        "gave_up_reason": r.gave_up_reason,
        "fired": list(r.fired),
    }


def _shrink_record(s: ShrinkResult) -> Dict[str, Any]:
    return {
        "original": [_trigger_record(t) for t in s.original],
        "minimal": [_trigger_record(t) for t in s.minimal],
        "verdict": s.verdict,
        "n_runs": s.n_runs,
        "steps": list(s.steps),
    }


def bench_record(
    matrices: List[CampaignReport],
    schedules: Optional[List[ScheduleResult]] = None,
    shrinks: Optional[List[Optional[ShrinkResult]]] = None,
    *,
    seed: int = 0,
) -> Dict[str, Any]:
    """Flatten one campaign into the ``BENCH_chaos.json`` record."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": "chaos",
        "seed": seed,
        "survived_all": all(rep.survived_all for rep in matrices),
        "matrices": [_matrix_record(rep) for rep in matrices],
        "random": [_schedule_record(r) for r in schedules or []],
        "shrinks": [_shrink_record(s) for s in shrinks or [] if s is not None],
    }


def bench_json(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, indent=2) + "\n"


def write_bench(path: str, record: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(bench_json(record))
