"""Schedule shrinking: reduce a failing schedule to a minimal reproducer.

A randomized campaign hands back schedules of many triggers; most of them
are irrelevant to the actual failure.  Because campaign runs are
deterministic (virtual clocks, byte-identical failure delivery), a
schedule's verdict is a pure function of its triggers — so classic
delta-debugging applies directly:

* **drop**: greedily remove triggers one at a time, keeping a removal
  whenever the failure still reproduces without it;
* **advance**: simplify the survivors in place — lower a phase trigger's
  occurrence toward 1 and halve a time trigger's deadline, keeping each
  step that still fails — so the reproducer points at the *earliest,
  simplest* interruption that breaks the protocol.

The result is 1-minimal with respect to single-trigger removal: dropping
any remaining trigger makes the failure disappear.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.chaos.campaign import (
    ChaosScenario,
    ChaosError,
    VERDICT_NOT_FIRED,
    VERDICT_SURVIVED,
    _VERDICT_METRIC,
)
from repro.chaos.schedules import ScheduleResult, run_schedule
from repro.sim.failures import AnyTrigger, PhaseTrigger, TimeTrigger


def default_failure(result: ScheduleResult) -> bool:
    """A schedule "fails" when its run did not survive with the right
    answer: wrong-answer, unrecoverable or gave-up.

    ``not-fired`` deliberately does NOT count as failing — an empty
    schedule never fires, so treating it as a failure would let the drop
    pass shrink every schedule to nothing.  Shrinking a schedule whose
    baseline verdict is ``not-fired`` raises instead (it is vacuous)."""
    return result.verdict not in (VERDICT_SURVIVED, VERDICT_NOT_FIRED)


@dataclass
class ShrinkResult:
    """A minimal reproducer and how it was reached."""

    original: List[AnyTrigger]
    minimal: List[AnyTrigger]
    verdict: str
    n_runs: int
    steps: List[str] = field(default_factory=list)


def shrink_schedule(
    scenario: ChaosScenario,
    triggers: List[AnyTrigger],
    *,
    failing: Callable[[ScheduleResult], bool] = default_failure,
    max_runs: int = 64,
    registry: Any = None,
    cache: Any = None,
) -> ShrinkResult:
    """Shrink ``triggers`` to a minimal schedule that still fails.

    Raises :class:`~repro.chaos.campaign.ChaosError` if the schedule does
    not fail in the first place.  ``max_runs`` bounds the total number of
    replays; shrinking stops (still sound, possibly non-minimal) when the
    budget runs out.  ``cache`` (a :class:`~repro.par.cache.MemoCache`)
    memoizes attempts: delta-debug probes overlap heavily across the drop
    and advance passes (and across the schedules of one campaign), and a
    cached attempt still counts against ``max_runs`` and ``chaos.runs``
    so shrink traces stay identical with or without it.
    """
    runs = 0
    steps: List[str] = []

    def attempt(trigs: List[AnyTrigger]) -> ScheduleResult:
        nonlocal runs
        runs += 1
        result = run_schedule(scenario, trigs, cache=cache)
        if registry is not None:
            registry.counter("chaos.runs").inc()
            registry.counter(_VERDICT_METRIC[result.verdict]).inc()
        return result

    current = list(triggers)
    base = attempt(current)
    if not failing(base):
        raise ChaosError(
            f"schedule does not fail (verdict {base.verdict!r}); "
            "nothing to shrink"
        )
    verdict = base.verdict

    # drop pass: remove triggers while the failure reproduces without them
    changed = True
    while changed and runs < max_runs:
        changed = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1 :]
            result = attempt(candidate)
            if failing(result):
                steps.append(f"dropped {current[i]!r}")
                current = candidate
                verdict = result.verdict
                changed = True
                break
            if runs >= max_runs:
                break

    # advance pass: simplify each survivor in place
    for i, trig in enumerate(list(current)):
        if isinstance(trig, PhaseTrigger):
            while trig.occurrence > 1 and runs < max_runs:
                # a probe-pinned trigger's via pair indexes the *original*
                # occurrence; drop it rather than pin the wrong announcement
                lowered = dataclasses.replace(
                    trig,
                    occurrence=trig.occurrence - 1,
                    via_rank=None,
                    via_occurrence=None,
                    fire_clock=None,
                    doom_points=(),
                )
                result = attempt(current[:i] + [lowered] + current[i + 1 :])
                if not failing(result):
                    break
                steps.append(
                    f"advanced {trig.phase}:{trig.occurrence} -> "
                    f"{lowered.occurrence} on node {trig.node_id}"
                )
                trig = lowered
                current[i] = trig
                verdict = result.verdict
        elif isinstance(trig, TimeTrigger):
            while trig.at_time > 1.0 and runs < max_runs:
                earlier = dataclasses.replace(trig, at_time=trig.at_time / 2.0)
                result = attempt(current[:i] + [earlier] + current[i + 1 :])
                if not failing(result):
                    break
                steps.append(
                    f"advanced t={trig.at_time:.3f} -> {earlier.at_time:.3f} "
                    f"on node {trig.node_id}"
                )
                trig = earlier
                current[i] = trig
                verdict = result.verdict

    return ShrinkResult(
        original=list(triggers),
        minimal=current,
        verdict=verdict,
        n_runs=runs,
        steps=steps,
    )


def shrink_failures(
    scenario: ChaosScenario,
    results: List[ScheduleResult],
    *,
    failing: Callable[[ScheduleResult], bool] = default_failure,
    max_runs: int = 64,
    registry: Any = None,
    cache: Any = None,
) -> List[Optional[ShrinkResult]]:
    """Shrink every failing schedule of a campaign (None for the passing
    ones), preserving the campaign's ordering."""
    out: List[Optional[ShrinkResult]] = []
    for r in results:
        if failing(r):
            out.append(
                shrink_schedule(
                    scenario,
                    r.triggers,
                    failing=failing,
                    max_runs=max_runs,
                    registry=registry,
                    cache=cache,
                )
            )
        else:
            out.append(None)
    return out
