"""Seeded randomized campaigns: MTBF storms, correlated and back-to-back.

The kill matrix covers every *single* interruption point; this module
covers the failure *combinations* the matrix cannot enumerate — schedules
drawn from the per-node MTBF (repeated failures per node, see
:meth:`~repro.sim.failures.MTBFFailureGenerator.schedule`), correlated
``extra_nodes`` losses (rack/switch events, the RAID-6 double-fault case),
and back-to-back failures landing inside the recovery window (a
``restore.begin`` phase trigger that stays armed across the restart, so
the second failure hits the recovery protocol itself).

Everything derives from one campaign seed: schedule ``i`` uses seed
``seed + i`` for both the MTBF draws and the correlation coin flips, so a
campaign is reproducible from ``(scenario params, seed)`` alone and a
failing schedule can be handed to the shrinker as-is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.chaos.campaign import (
    ChaosError,
    ChaosScenario,
    BaselineProbe,
    _VERDICT_METRIC,
    probe_baseline,
)
from repro.par.cache import replay_fingerprint
from repro.par.engine import ParallelEngine
from repro.par.replay import (
    ReplayOutcome,
    ReplaySpec,
    crash_outcome,
    replay,
    replay_scenario,
)
from repro.sim.failures import (
    AnyTrigger,
    MTBFFailureGenerator,
    PhaseTrigger,
    TimeTrigger,
)
from repro.util.rng import seeded_rng


@dataclass(frozen=True)
class RandomCampaignConfig:
    """Knobs of one randomized campaign."""

    n_schedules: int = 8
    seed: int = 0
    #: per-node MTBF as a fraction of the fault-free makespan; below 1.0
    #: multiple failures per run are likely
    mtbf_scale: float = 0.6
    #: probability a drawn failure takes a correlated second node with it
    p_extra: float = 0.25
    #: probability the schedule adds a back-to-back kill inside the
    #: recovery window (fires at the first ``restore.begin`` announcement)
    p_recovery_kill: float = 0.25
    max_failures_per_node: int = 2

    def __post_init__(self) -> None:
        if self.n_schedules < 1:
            raise ValueError("n_schedules must be >= 1")
        if self.mtbf_scale <= 0:
            raise ValueError("mtbf_scale must be > 0")
        for p in (self.p_extra, self.p_recovery_kill):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")


@dataclass
class ScheduleResult:
    """Outcome of one randomized schedule replay."""

    index: int
    triggers: List[AnyTrigger]
    verdict: str
    n_restarts: int
    makespan_s: float
    gave_up_reason: Optional[str] = None
    fired: List[str] = field(default_factory=list)
    #: per-attempt observability payload (``--obs summary/full``); never
    #: serialized into ``BENCH_chaos.json`` — it flows to the trace store
    obs: Optional[dict] = None


def generate_schedule(
    probe: BaselineProbe, cfg: RandomCampaignConfig, schedule_seed: int
) -> List[AnyTrigger]:
    """One seeded failure schedule against the probed baseline."""
    rng = seeded_rng(schedule_seed)
    nodes = probe.nodes
    mtbf = max(probe.makespan_s * cfg.mtbf_scale, 1e-9)
    gen = MTBFFailureGenerator(mtbf, seed=schedule_seed)
    drawn = gen.schedule(
        nodes,
        horizon_s=probe.makespan_s,
        max_failures_per_node=cfg.max_failures_per_node,
    )
    triggers: List[AnyTrigger] = []
    for t in drawn:
        if len(nodes) > 1 and rng.random() < cfg.p_extra:
            others = [n for n in nodes if n != t.node_id]
            extra = int(others[int(rng.integers(len(others)))])
            t = TimeTrigger(
                node_id=t.node_id, at_time=t.at_time, extra_nodes=(extra,)
            )
        triggers.append(t)
    if triggers and rng.random() < cfg.p_recovery_kill:
        victim = int(nodes[int(rng.integers(len(nodes)))])
        triggers.append(
            PhaseTrigger(node_id=victim, phase="restore.begin", occurrence=1)
        )
    return triggers


def _schedule_result(
    index: int, triggers: List[AnyTrigger], outcome: ReplayOutcome
) -> ScheduleResult:
    return ScheduleResult(
        index=index,
        triggers=list(triggers),
        verdict=outcome.verdict,
        n_restarts=outcome.n_restarts,
        makespan_s=outcome.makespan_s,
        gave_up_reason=outcome.gave_up_reason,
        fired=list(outcome.fired),
        obs=outcome.obs,
    )


def run_schedule(
    scenario: ChaosScenario,
    triggers: List[AnyTrigger],
    index: int = 0,
    *,
    cache: Any = None,
    obs: str = "off",
) -> ScheduleResult:
    """Replay one schedule under the daemon and classify the outcome.

    A schedule with zero triggers (the MTBF drew nothing inside the
    horizon) is classified like any other run — typically ``not-fired``
    with a completed job, which the campaign summary reports as vacuous
    rather than as survival.

    ``cache`` (a :class:`~repro.par.cache.MemoCache`) short-circuits
    schedules whose fingerprint was already classified — the shrinker's
    delta-debug loop re-probes heavily overlapping trigger sets, and a
    deterministic replay is a pure function of its fingerprint.
    """
    key = None
    if cache is not None and scenario.spec is not None:
        key = replay_fingerprint(
            ReplaySpec(scenario.spec, tuple(triggers), obs=obs)
        )
        hit = cache.get(key)
        if hit is not None:
            return _schedule_result(index, triggers, hit)
    outcome = replay_scenario(scenario, tuple(triggers), obs=obs)
    if key is not None:
        cache.put(key, outcome)
    return _schedule_result(index, triggers, outcome)


def random_campaign(
    scenario: ChaosScenario,
    cfg: RandomCampaignConfig,
    *,
    probe: Optional[BaselineProbe] = None,
    registry: Any = None,
    workers: int = 1,
    cache: Any = None,
    progress: Any = None,
    obs: str = "off",
) -> List[ScheduleResult]:
    """Run ``cfg.n_schedules`` seeded schedules; same seed, same verdicts.

    All schedules derive from the probe and the campaign seed before any
    replay starts, so they are independent jobs: ``workers > 1`` fans
    them out over the :mod:`repro.par` engine and merges the results in
    schedule order — verdicts and artifacts are identical to the serial
    sweep.
    """
    probe = probe or probe_baseline(scenario)
    schedules = [
        generate_schedule(probe, cfg, cfg.seed + i) for i in range(cfg.n_schedules)
    ]
    engine = ParallelEngine(workers, registry=registry, progress=progress)
    if scenario.spec is None:
        if engine.workers > 1:
            raise ChaosError(
                f"scenario {scenario.name!r} has no pickleable spec "
                "(custom factory/protocol closure); run it with workers=1"
            )
        outcomes = engine.map(
            lambda trigs: replay_scenario(scenario, tuple(trigs), obs=obs),
            schedules,
            on_error=crash_outcome,
        )
    else:
        specs = [
            ReplaySpec(scenario.spec, tuple(trigs), obs=obs)
            for trigs in schedules
        ]
        outcomes = engine.map(
            replay,
            specs,
            cache=cache,
            key=replay_fingerprint,
            on_error=crash_outcome,
        )
    results = [
        _schedule_result(i, trigs, out)
        for i, (trigs, out) in enumerate(zip(schedules, outcomes))
    ]
    if registry is not None:
        registry.counter("chaos.runs").inc(len(results) + 1)  # + baseline
        for r in results:
            registry.counter(_VERDICT_METRIC[r.verdict]).inc()
    return results
