"""repro.chaos — adversarial fault-injection campaigns for the protocols.

The paper's survivability claim ("a node loss at *any* moment is
recoverable") becomes machine-checkable here:

* :mod:`repro.chaos.scenarios` — supervised applications with an exact
  answer oracle (closed-form selfckpt app, SKT-HPL residual check);
* :mod:`repro.chaos.campaign` — the exhaustive kill matrix: probe the
  fault-free run for every phase announcement, then replay once per
  ``(phase, occurrence, node)`` with a kill armed exactly there;
* :mod:`repro.chaos.schedules` — seeded randomized campaigns: MTBF
  storms, correlated ``extra_nodes`` losses, back-to-back failures in
  the recovery window;
* :mod:`repro.chaos.shrink` — delta-debugging of failing schedules to
  1-minimal reproducers (deterministic runs make this sound);
* :mod:`repro.chaos.report` / :mod:`repro.chaos.bench` — the ASCII
  survivability matrix and the ``BENCH_chaos.json`` artifact;
* :mod:`repro.chaos.cli` — the ``repro chaos`` subcommand.
"""

from repro.chaos.bench import (
    BENCH_SCHEMA_VERSION,
    bench_json,
    bench_record,
    write_bench,
)
from repro.chaos.campaign import (
    BaselineProbe,
    CampaignReport,
    ChaosError,
    KillPoint,
    KillResult,
    VERDICT_GAVE_UP,
    VERDICT_NOT_FIRED,
    VERDICT_SURVIVED,
    VERDICT_UNRECOVERABLE,
    VERDICT_WRONG_ANSWER,
    VERDICTS,
    classify,
    enumerate_kill_points,
    point_trigger,
    probe_baseline,
    replay_kill_points,
    run_kill_matrix,
    run_kill_point,
    run_with_triggers,
)
from repro.chaos.cli import chaos_main
from repro.chaos.report import (
    render_campaign,
    render_failures,
    render_matrix,
    render_schedules,
    render_shrink,
)
from repro.chaos.scenarios import (
    ChaosScenario,
    FAST_POLICY,
    ScenarioInstance,
    selfckpt_scenario,
    skt_scenario,
)
from repro.chaos.schedules import (
    RandomCampaignConfig,
    ScheduleResult,
    generate_schedule,
    random_campaign,
    run_schedule,
)
from repro.chaos.shrink import ShrinkResult, shrink_failures, shrink_schedule

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BaselineProbe",
    "CampaignReport",
    "ChaosError",
    "ChaosScenario",
    "FAST_POLICY",
    "KillPoint",
    "KillResult",
    "RandomCampaignConfig",
    "ScenarioInstance",
    "ScheduleResult",
    "ShrinkResult",
    "VERDICTS",
    "VERDICT_GAVE_UP",
    "VERDICT_NOT_FIRED",
    "VERDICT_SURVIVED",
    "VERDICT_UNRECOVERABLE",
    "VERDICT_WRONG_ANSWER",
    "bench_json",
    "bench_record",
    "chaos_main",
    "classify",
    "enumerate_kill_points",
    "generate_schedule",
    "point_trigger",
    "probe_baseline",
    "random_campaign",
    "replay_kill_points",
    "render_campaign",
    "render_failures",
    "render_matrix",
    "render_schedules",
    "render_shrink",
    "run_kill_matrix",
    "run_kill_point",
    "run_schedule",
    "run_with_triggers",
    "selfckpt_scenario",
    "shrink_failures",
    "shrink_schedule",
    "skt_scenario",
    "write_bench",
]
