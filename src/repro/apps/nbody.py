"""Fault-tolerant direct N-body integration (leapfrog / all-pairs gravity).

A third communication shape for the kernel library: each step allgathers
every rank's particle positions (O(N) data, all-to-all-ish traffic — unlike
the stencil's halos or CG's scalar allreduces), computes all-pairs forces
against the global set, and advances its own particles with the leapfrog
(kick-drift-kick) integrator.

Softened gravity keeps the dynamics bounded; the integrator is symplectic,
so total energy stays near-constant — which doubles as the physics check in
the tests.  Positions/velocities live in SHM via the checkpoint manager;
recovery resumes the exact trajectory (bit-identical under XOR encoding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckpt.manager import CheckpointManager
from repro.sim.runtime import RankContext
from repro.util.rng import block_rng


@dataclass(frozen=True)
class NBodyConfig:
    bodies_per_rank: int = 16
    steps: int = 40
    dt: float = 1e-3
    softening: float = 0.1
    seed: int = 99
    method: str = "self"
    group_size: int = 4
    ckpt_every: int = 10

    def __post_init__(self) -> None:
        if self.bodies_per_rank < 1:
            raise ValueError("need at least one body per rank")
        if self.dt <= 0 or self.softening <= 0:
            raise ValueError("dt and softening must be positive")
        if self.ckpt_every < 1:
            raise ValueError("ckpt_every must be >= 1")


@dataclass
class NBodyResult:
    positions: np.ndarray  # (bodies_per_rank, 3)
    velocities: np.ndarray
    energy: float  # total system energy (identical on every rank)
    restored_step: int


def _initial_state(cfg: NBodyConfig, rank: int):
    rng = block_rng(cfg.seed, rank)
    pos = rng.uniform(-1.0, 1.0, size=(cfg.bodies_per_rank, 3))
    vel = rng.uniform(-0.1, 0.1, size=(cfg.bodies_per_rank, 3))
    return pos, vel


def _accelerations(
    ctx: RankContext, cfg: NBodyConfig, mine: np.ndarray, all_pos: np.ndarray
) -> np.ndarray:
    """Softened all-pairs gravity on my bodies from every body."""
    diff = all_pos[None, :, :] - mine[:, None, :]
    dist2 = (diff**2).sum(axis=2) + cfg.softening**2
    inv_d3 = dist2 ** (-1.5)
    acc = (diff * inv_d3[:, :, None]).sum(axis=1)
    ctx.compute(20.0 * mine.shape[0] * all_pos.shape[0])
    return acc


def _total_energy(
    ctx: RankContext, cfg: NBodyConfig, pos: np.ndarray, vel: np.ndarray
) -> float:
    """Global kinetic + potential energy (summed across ranks)."""
    from repro.sim.mpi import ReduceOp

    comm = ctx.world
    all_pos = np.concatenate(comm.allgather(pos))
    kinetic = 0.5 * float((vel**2).sum())
    diff = all_pos[None, :, :] - pos[:, None, :]
    dist = np.sqrt((diff**2).sum(axis=2) + cfg.softening**2)
    # each pair counted twice over the world sum; self-pairs contribute the
    # constant 1/softening, subtracted here
    pot_rows = -(1.0 / dist).sum() + pos.shape[0] / cfg.softening
    local = np.array([kinetic + 0.5 * float(pot_rows)])
    ctx.compute(10.0 * pos.shape[0] * all_pos.shape[0])
    return float(comm.allreduce(local, ReduceOp.SUM)[0])


def nbody_main(ctx: RankContext, cfg: NBodyConfig) -> NBodyResult:
    comm = ctx.world
    mgr = CheckpointManager(
        ctx, comm, group_size=cfg.group_size, method=cfg.method, prefix="nbody"
    )
    pos = mgr.alloc("pos", (cfg.bodies_per_rank, 3))
    vel = mgr.alloc("vel", (cfg.bodies_per_rank, 3))
    mgr.commit()

    report = mgr.try_restore()
    start = int(report.local["step"]) if report else 0
    if start == 0:
        p0, v0 = _initial_state(cfg, comm.rank)
        pos[:] = p0
        vel[:] = v0

    for step in range(start, cfg.steps):
        all_pos = np.concatenate(comm.allgather(np.array(pos, copy=True)))
        acc = _accelerations(ctx, cfg, pos, all_pos)
        # kick-drift-kick leapfrog
        vel[:] = vel + 0.5 * cfg.dt * acc
        pos[:] = pos + cfg.dt * vel
        all_pos = np.concatenate(comm.allgather(np.array(pos, copy=True)))
        acc = _accelerations(ctx, cfg, pos, all_pos)
        vel[:] = vel + 0.5 * cfg.dt * acc

        if (step + 1) % cfg.ckpt_every == 0 and step + 1 < cfg.steps:
            mgr.local["step"] = step + 1
            mgr.checkpoint()

    energy = _total_energy(ctx, cfg, np.array(pos), np.array(vel))
    return NBodyResult(
        positions=np.array(pos, copy=True),
        velocities=np.array(vel, copy=True),
        energy=energy,
        restored_step=start,
    )
