"""Reusable fault-tolerant application kernels.

The paper positions self-checkpoint as "a general method and not tied to
any specified application" (§6.1); HPL is just the demanding showcase.
This package provides additional realistic SPMD kernels wired to the
checkpoint manager:

* :mod:`repro.apps.stencil` — 2-D Jacobi heat diffusion with halo exchange;
* :mod:`repro.apps.cg` — distributed conjugate gradients on a sparse SPD
  operator (allreduce-heavy, the iterative-solver shape ABFT papers target);
* :mod:`repro.apps.nbody` — all-pairs gravity with leapfrog integration
  (allgather-heavy, energy-conserving).

Each kernel's ``*_main`` runs under :class:`repro.sim.Job` / the daemon and
resumes from checkpoints exactly like SKT-HPL.
"""

from repro.apps.cg import CGConfig, CGResult, cg_main
from repro.apps.nbody import NBodyConfig, NBodyResult, nbody_main
from repro.apps.stencil import StencilConfig, StencilResult, stencil_main

__all__ = [
    "CGConfig",
    "CGResult",
    "cg_main",
    "NBodyConfig",
    "NBodyResult",
    "nbody_main",
    "StencilConfig",
    "StencilResult",
    "stencil_main",
]
