"""Fault-tolerant distributed conjugate gradients.

Solves ``A x = b`` for a sparse symmetric positive-definite operator — a
2-D 5-point Laplacian plus a diagonal shift — distributed by row strips.
Each iteration needs one halo-style operator application and two global
dot products (allreduce), the communication shape of the Krylov solvers
the ABFT literature targets (paper refs [7, 8]).

Checkpointed state: ``x``, ``r``, ``p`` and the scalars ``rs_old`` /
iteration counter in A2.  Recovery resumes mid-Krylov-iteration exactly:
CG's three-term recurrence is fully determined by that state, so the
recovered trajectory is bit-identical under XOR encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.ckpt.manager import CheckpointManager
from repro.sim.mpi import ReduceOp
from repro.sim.runtime import RankContext
from repro.util.rng import block_rng


@dataclass(frozen=True)
class CGConfig:
    nx: int = 32  # grid columns
    ny_per_rank: int = 8  # grid rows per rank
    shift: float = 0.5  # diagonal shift (keeps A well-conditioned SPD)
    max_iters: int = 200
    tol: float = 1e-10
    seed: int = 13
    method: str = "self"
    group_size: int = 4
    ckpt_every: int = 25

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny_per_rank < 1:
            raise ValueError("grid too small")
        if self.shift < 0:
            raise ValueError("shift must be >= 0")
        if self.ckpt_every < 1:
            raise ValueError("ckpt_every must be >= 1")


@dataclass
class CGResult:
    x: np.ndarray  # this rank's solution strip (flattened)
    iterations: int
    residual: float
    converged: bool
    restored_iteration: int


def _apply_operator(
    ctx: RankContext, cfg: CGConfig, v: np.ndarray
) -> np.ndarray:
    """y = (shift*I + Laplacian) v with halo exchange between strips."""
    comm = ctx.world
    rank, size = comm.rank, comm.size
    grid = v.reshape(cfg.ny_per_rank, cfg.nx)
    zero_row = np.zeros(cfg.nx)
    up, down = rank - 1, rank + 1
    top = (
        comm.sendrecv(grid[0].copy(), dest=up, source=up, sendtag=3, recvtag=4)
        if up >= 0
        else zero_row
    )
    bottom = (
        comm.sendrecv(
            grid[-1].copy(), dest=down, source=down, sendtag=4, recvtag=3
        )
        if down < size
        else zero_row
    )
    padded = np.vstack([top, grid, bottom])
    lap = (
        4.0 * grid
        - padded[:-2, :]
        - padded[2:, :]
        - np.pad(grid[:, :-1], ((0, 0), (1, 0)))
        - np.pad(grid[:, 1:], ((0, 0), (0, 1)))
    )
    ctx.compute(6.0 * grid.size)
    return ((cfg.shift * grid) + lap).reshape(-1)


def _dot(ctx: RankContext, a: np.ndarray, b: np.ndarray) -> float:
    local = np.array([float(np.dot(a, b))])
    ctx.compute(2.0 * len(a))
    return float(ctx.world.allreduce(local, ReduceOp.SUM)[0])


def cg_main(ctx: RankContext, cfg: CGConfig) -> CGResult:
    comm = ctx.world
    n_local = cfg.ny_per_rank * cfg.nx
    mgr = CheckpointManager(
        ctx, comm, group_size=cfg.group_size, method=cfg.method, prefix="cg"
    )
    x = mgr.alloc("x", n_local)
    r = mgr.alloc("r", n_local)
    p = mgr.alloc("p", n_local)
    mgr.commit()

    report = mgr.try_restore()
    if report is not None and report.local.get("it", 0) > 0:
        start = int(report.local["it"])
        rs_old = float(report.local["rs_old"])
    else:
        start = 0
        b = block_rng(cfg.seed, comm.rank).uniform(-1.0, 1.0, n_local)
        x[:] = 0.0
        r[:] = b  # r = b - A*0
        p[:] = r
        rs_old = _dot(ctx, r, r)

    it = start
    converged = rs_old**0.5 < cfg.tol
    while it < cfg.max_iters and not converged:
        ap = _apply_operator(ctx, cfg, p)
        alpha = rs_old / _dot(ctx, p, ap)
        x[:] = x + alpha * p
        r[:] = r - alpha * ap
        rs_new = _dot(ctx, r, r)
        it += 1
        if rs_new**0.5 < cfg.tol:
            converged = True
            break
        p[:] = r + (rs_new / rs_old) * p
        rs_old = rs_new
        if it % cfg.ckpt_every == 0:
            mgr.local["it"] = it
            mgr.local["rs_old"] = rs_old
            mgr.checkpoint()

    # final residual from first principles (not the recurrence)
    ax = _apply_operator(ctx, cfg, np.array(x, copy=True))
    b = block_rng(cfg.seed, comm.rank).uniform(-1.0, 1.0, n_local)
    res = (_dot(ctx, ax - b, ax - b)) ** 0.5
    return CGResult(
        x=np.array(x, copy=True),
        iterations=it,
        residual=res,
        converged=converged,
        restored_iteration=start,
    )
