"""Fault-tolerant 2-D Jacobi heat diffusion.

The domain is an ``ny x nx`` grid partitioned into horizontal strips, one
per rank; each step exchanges one-row halos with the neighbours and applies
the 5-point update with fixed zero boundaries.  The strip lives in SHM via
the checkpoint manager, the step counter in A2.

Determinism: the update is pure arithmetic on the protected state, so a
recovered run is bit-identical to a fault-free one under XOR encoding —
which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.ckpt.manager import CheckpointManager
from repro.sim.runtime import RankContext
from repro.util.rng import block_rng


@dataclass(frozen=True)
class StencilConfig:
    nx: int = 128
    ny_per_rank: int = 32
    steps: int = 50
    alpha: float = 0.2  # diffusion number; stable for <= 0.25 in 2-D
    seed: int = 7
    method: str = "self"
    group_size: int = 4
    ckpt_every: int = 10

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny_per_rank < 1:
            raise ValueError("grid too small")
        if not 0 < self.alpha <= 0.25:
            raise ValueError("alpha must be in (0, 0.25] for stability")
        if self.ckpt_every < 1:
            raise ValueError("ckpt_every must be >= 1")


@dataclass
class StencilResult:
    field: np.ndarray  # this rank's final strip
    restored_step: int
    total_heat_local: float


def _initial_strip(cfg: StencilConfig, rank: int) -> np.ndarray:
    """Deterministic random initial condition per strip."""
    rng = block_rng(cfg.seed, rank)
    return rng.uniform(0.0, 100.0, size=(cfg.ny_per_rank, cfg.nx))


def stencil_main(ctx: RankContext, cfg: StencilConfig) -> StencilResult:
    comm = ctx.world
    rank, size = comm.rank, comm.size
    mgr = CheckpointManager(
        ctx,
        comm,
        group_size=cfg.group_size,
        method=cfg.method,
        prefix="stencil",
    )
    u = mgr.alloc("u", (cfg.ny_per_rank, cfg.nx))
    mgr.commit()

    report = mgr.try_restore()
    start = int(report.local["step"]) if report else 0
    if start == 0:
        u[:] = _initial_strip(cfg, rank)

    zero_row = np.zeros(cfg.nx)
    for step in range(start, cfg.steps):
        # halo exchange: send my boundary rows up/down, receive neighbours'
        up = rank - 1
        down = rank + 1
        top = (
            comm.sendrecv(u[0].copy(), dest=up, source=up, sendtag=1, recvtag=2)
            if up >= 0
            else zero_row
        )
        bottom = (
            comm.sendrecv(
                u[-1].copy(), dest=down, source=down, sendtag=2, recvtag=1
            )
            if down < size
            else zero_row
        )

        padded = np.vstack([top, u, bottom])
        lap = (
            padded[:-2, :]
            + padded[2:, :]
            + np.pad(u[:, :-1], ((0, 0), (1, 0)))
            + np.pad(u[:, 1:], ((0, 0), (0, 1)))
            - 4.0 * u
        )
        u[:] = u + cfg.alpha * lap
        ctx.compute(6.0 * u.size)

        if (step + 1) % cfg.ckpt_every == 0 and step + 1 < cfg.steps:
            mgr.local["step"] = step + 1
            mgr.checkpoint()

    return StencilResult(
        field=u.copy(),
        restored_step=start,
        total_heat_local=float(u.sum()),
    )
