"""The replay work unit: one scenario + one trigger set -> one outcome.

:class:`ReplaySpec` is the pickleable job description the parallel engine
ships to a worker; :func:`replay` is the worker entry point — it rebuilds
the scenario from its :class:`~repro.par.spec.ScenarioSpec`, runs it under
the :class:`~repro.hpl.daemon.JobDaemon` with the triggers armed, and
classifies the result into a :class:`ReplayOutcome`.

:class:`ReplayOutcome` deliberately carries only the scalar verdict
fields — never the :class:`~repro.sim.runtime.JobResult` with its per-rank
numpy payloads — so crossing the process boundary (and the memo cache's
JSON encoding) stays cheap and exact.  Campaign result types
(:class:`~repro.chaos.campaign.KillResult`,
:class:`~repro.chaos.schedules.ScheduleResult`) are built from outcomes,
which is what makes the serial and parallel paths byte-identical: both
flow through the same outcome fields.

One optional extra rides along: with an obs sampling mode armed
(``spec.obs != "off"``), the worker attaches a fresh
:class:`~repro.obs.spans.SpanTracer` + metrics observer to the attempt
and ships a JSON-canonical payload back in :attr:`ReplayOutcome.obs` —
a flat summary rollup (``summary``) or the full span/metric streams
(``full``), built by :mod:`repro.obs.rollup`.  The payload is a pure
function of the virtual-clock-driven run, so outcomes stay deterministic
and cacheable; the obs mode is part of the cache fingerprint so modes
never collide.

All imports of :mod:`repro.chaos` happen inside function bodies:
``repro.chaos.campaign`` imports this module, not the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: verdict used when a replay raises instead of classifying — the crash is
#: itself a campaign outcome (matches repro.chaos.campaign.VERDICT_GAVE_UP)
CRASH_VERDICT = "gave-up"

#: no-observability sampling mode (see repro.obs.rollup.OBS_MODES)
OBS_OFF = "off"


@dataclass(frozen=True)
class ReplayOutcome:
    """Scalar outcome of one supervised replay."""

    verdict: str
    n_restarts: int
    makespan_s: float
    gave_up_reason: Optional[str] = None
    fired: Tuple[str, ...] = ()
    #: per-attempt observability payload (None unless an obs mode was
    #: armed); see :func:`repro.obs.rollup.attempt_payload`
    obs: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "verdict": self.verdict,
            "n_restarts": self.n_restarts,
            "makespan_s": self.makespan_s,
            "gave_up_reason": self.gave_up_reason,
            "fired": list(self.fired),
        }
        if self.obs is not None:
            doc["obs"] = self.obs
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "ReplayOutcome":
        return cls(
            verdict=str(doc["verdict"]),
            n_restarts=int(doc["n_restarts"]),
            makespan_s=float(doc["makespan_s"]),
            gave_up_reason=doc.get("gave_up_reason"),
            fired=tuple(doc.get("fired", ())),
            obs=doc.get("obs"),
        )


@dataclass(frozen=True)
class ReplaySpec:
    """One pickleable replay job: scenario recipe + armed triggers."""

    scenario: Any  # ScenarioSpec
    triggers: Tuple[Any, ...]  # AnyTrigger instances (plain dataclasses)
    #: obs sampling mode the worker arms ("off" | "summary" | "full")
    obs: str = OBS_OFF


def replay_scenario(
    scenario: Any, triggers: Tuple[Any, ...], obs: str = OBS_OFF
) -> ReplayOutcome:
    """Replay an already-built :class:`ChaosScenario` in this process."""
    from repro.chaos.campaign import classify, run_with_triggers

    tracer = observer = None
    if obs != OBS_OFF:
        from repro.obs.metrics import MetricsObserver
        from repro.obs.rollup import OBS_MODES
        from repro.obs.spans import SpanTracer

        if obs not in OBS_MODES:
            raise ValueError(f"unknown obs mode {obs!r}; choose from {OBS_MODES}")
        tracer = SpanTracer()
        observer = MetricsObserver()
    inst, plan, report = run_with_triggers(
        scenario, list(triggers), tracer=tracer, observer=observer
    )
    payload = None
    if tracer is not None and observer is not None:
        from repro.obs.rollup import attempt_payload, fill_job_metrics

        fill_job_metrics(
            observer.registry,
            tracer.spans(),
            n_restarts=report.n_restarts,
            n_failures=len(plan.fired),
            completed=report.completed,
            makespan_s=report.total_virtual_s,
        )
        payload = attempt_payload(tracer, observer.registry, obs)
    return ReplayOutcome(
        verdict=classify(inst, plan, report),
        n_restarts=report.n_restarts,
        makespan_s=report.total_virtual_s,
        gave_up_reason=report.gave_up_reason,
        fired=tuple(rec.describe() for rec in report.triggers_fired),
        obs=payload,
    )


def replay(spec: ReplaySpec) -> ReplayOutcome:
    """Worker entry point: rebuild the scenario and replay it."""
    return replay_scenario(spec.scenario.build(), spec.triggers, obs=spec.obs)


def crash_outcome(spec: Any, exc: BaseException) -> ReplayOutcome:
    """Fold a replay that raised (in-pool or inline) into its own verdict
    instead of losing the whole campaign to one crash."""
    return ReplayOutcome(
        verdict=CRASH_VERDICT,
        n_restarts=0,
        makespan_s=0.0,
        gave_up_reason=f"replay crashed: {type(exc).__name__}: {exc}",
        fired=(),
    )
