"""Pickleable scenario specifications for cross-process replay.

A :class:`~repro.chaos.scenarios.ChaosScenario` carries a *closure*
factory — cheap and flexible in-process, but unpicklable, so it cannot
cross a worker-pool boundary.  :class:`ScenarioSpec` is the wire form: a
``(kind, kwargs)`` pair that a worker process rebuilds into a fresh
scenario through a registry of named builders.

Builders register themselves with :func:`register_scenario`;
:mod:`repro.chaos.scenarios` registers ``selfckpt`` and ``skt-hpl`` at
import time (``build()`` imports it lazily so worker processes that only
imported :mod:`repro.par` still resolve them).  A scenario constructed
with unpicklable extras (a ``protocol_factory`` closure, say) simply has
no spec (``scenario.spec is None``) and stays on the serial path.

Spec kwargs must be JSON-canonicalizable (scalars, strings, tuples):
they feed both the builder call and the content-addressed fingerprint of
:mod:`repro.par.cache`, so anything that cannot round-trip through
canonical JSON has no business in a spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

#: kind -> builder(**kwargs) -> ChaosScenario
_BUILDERS: Dict[str, Callable[..., Any]] = {}


def register_scenario(kind: str, builder: Callable[..., Any]) -> None:
    """Register (or replace) the builder a worker uses for ``kind``."""
    _BUILDERS[kind] = builder


def registered_kinds() -> Tuple[str, ...]:
    return tuple(sorted(_BUILDERS))


@dataclass(frozen=True)
class ScenarioSpec:
    """The pickleable ``(kind, kwargs)`` recipe of one scenario."""

    kind: str
    #: sorted ``(key, value)`` pairs — hashable and order-canonical
    kwargs: Tuple[Tuple[str, Any], ...]

    @classmethod
    def create(cls, kind: str, **kwargs: Any) -> "ScenarioSpec":
        return cls(kind=kind, kwargs=tuple(sorted(kwargs.items())))

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)

    def build(self) -> Any:
        """Rebuild a fresh :class:`ChaosScenario` from this spec."""
        if self.kind not in _BUILDERS:
            # the built-in builders live with the scenarios themselves;
            # imported lazily so repro.par never depends on repro.chaos
            # at module level (repro.chaos imports repro.par)
            import repro.chaos.scenarios  # noqa: F401
        builder = _BUILDERS.get(self.kind)
        if builder is None:
            raise KeyError(
                f"no scenario builder registered for kind {self.kind!r}; "
                f"known kinds: {registered_kinds()}"
            )
        return builder(**self.as_dict())
