"""The parallel execution engine: deterministic fan-out of pure replays.

Campaign replays are independent jobs — each builds a fresh cluster, runs
under its own daemon, and touches nothing shared — so a kill matrix, a
randomized campaign or a benchmark sweep is an embarrassingly parallel
map.  :class:`ParallelEngine` fans pickleable tasks out over a
``multiprocessing`` pool and reassembles the results **in submission
order**, so every consumer (reports, ``BENCH_chaos.json``) sees exactly
the sequence the serial engine would have produced: parallelism changes
wall-clock time and nothing else, which the golden equivalence test
pins byte-for-byte.

Three behaviors ride on the map:

* **memoization** — pass a :class:`~repro.par.cache.MemoCache` and a
  ``key`` function; cache hits resolve without running, misses are stored
  after running.  Error-folded results are never cached.
* **error folding** — ``on_error(task, exc)`` turns a task that raised
  (inside a worker or inline) into a result in its slot instead of
  aborting the sweep; without it, the exception propagates.
* **accounting** — a :class:`~repro.obs.metrics.MetricsRegistry` gets the
  deterministic counters (``par.tasks``, ``par.cache_hits``,
  ``par.cache_misses``, ``par.workers``); wall-clock throughput goes only
  to the progress reporter, never into metrics, so exported artifacts
  stay byte-stable.

``workers <= 1`` runs the same code path inline — no pool, no pickling
requirement — which is also the fallback for tasks that cannot cross a
process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence

from repro.par.progress import NullProgress

#: cap for ``workers="auto"`` — campaign replays are CPU-bound
AUTO_WORKERS_CAP = 8


def default_workers() -> int:
    """``min(cpu_count, cap)`` — the ``--workers auto`` resolution."""
    try:
        n = len(os.sched_getaffinity(0))  # respects container CPU limits
    except AttributeError:  # pragma: no cover - non-Linux
        n = multiprocessing.cpu_count()
    return max(1, min(n, AUTO_WORKERS_CAP))


def resolve_workers(workers: Any) -> int:
    """Normalize a ``--workers`` value: int, ``"auto"`` or None."""
    if workers is None:
        return 1
    if workers == "auto":
        return default_workers()
    n = int(workers)
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    return n


class ParallelEngine:
    """Order-preserving parallel map with memoization and error folding."""

    def __init__(
        self,
        workers: int = 1,
        *,
        registry: Any = None,
        progress: Any = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.registry = registry
        self.progress = progress if progress is not None else NullProgress()
        self._ctx = multiprocessing.get_context(mp_context)

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        cache: Any = None,
        key: Optional[Callable[[Any], str]] = None,
        on_error: Optional[Callable[[Any, BaseException], Any]] = None,
    ) -> List[Any]:
        """Run ``fn`` over ``tasks``; results in task order."""
        tasks = list(tasks)
        total = len(tasks)
        results: List[Any] = [None] * total
        keys: List[Optional[str]] = [None] * total

        pending: List[int] = []
        hits = 0
        corrupt_before = getattr(cache, "corrupt", 0) if cache is not None else 0
        for i, task in enumerate(tasks):
            if cache is not None and key is not None:
                keys[i] = key(task)
                hit = cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    hits += 1
                    continue
            pending.append(i)

        n_procs = min(self.workers, max(len(pending), 1))
        if self.registry is not None:
            self.registry.counter("par.tasks").inc(total)
            self.registry.counter("par.cache_hits").inc(hits)
            self.registry.counter("par.cache_misses").inc(len(pending))
            if cache is not None:
                self.registry.counter("par.cache_corrupt").inc(
                    getattr(cache, "corrupt", 0) - corrupt_before
                )
            self.registry.gauge("par.workers").set(self.workers)
            # peak backlog beyond the pool width — how much of the map was
            # ever queued behind a busy slot (deterministic: a submission-
            # time quantity, independent of host scheduling)
            self.registry.gauge("par.queue_depth").set(
                max(0, len(pending) - n_procs)
            )
            # per-worker dispatch accounting: tasks are attributed to the
            # slot of their submission order (i mod pool width), not the OS
            # process that happened to execute them — the former is
            # deterministic, the latter is wall-clock scheduling
            for slot in range(n_procs):
                share = len(pending[slot::n_procs])
                if share:
                    self.registry.counter(
                        "par.worker_tasks", worker=slot
                    ).inc(share)

        self.progress.start(total, self.workers)
        done = hits
        if done:
            self.progress.update(done, total, hits, self.workers)

        def settle(i: int, run: Callable[[], Any]) -> None:
            nonlocal done
            try:
                results[i] = run()
            except Exception as exc:
                if on_error is None:
                    raise
                results[i] = on_error(tasks[i], exc)
            else:
                if cache is not None and keys[i] is not None:
                    cache.put(keys[i], results[i])
            done += 1
            self.progress.update(done, total, hits, self.workers)

        if self.workers > 1 and len(pending) > 1:
            with self._ctx.Pool(processes=n_procs) as pool:
                handles = [(i, pool.apply_async(fn, (tasks[i],))) for i in pending]
                for i, handle in handles:
                    settle(i, handle.get)
        else:
            for i in pending:
                settle(i, lambda i=i: fn(tasks[i]))

        self.progress.finish(done, total, hits, self.workers)
        return results
