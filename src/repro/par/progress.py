"""Campaign progress/throughput reporting.

The only wall-clock consumer outside ``repro.sim.mpi``: throughput of the
*host* replay engine is a wall-clock quantity by definition, and none of
it ever feeds virtual time or a campaign artifact — progress lines go to
stderr, deterministic counts go to the metrics registry from the engine
itself.  (The simlint ``wallclock`` allowlist names this module for
exactly that reason.)
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class ProgressReporter:
    """Throttled ``done/total`` + runs/s + utilization line, engine-driven.

    The engine calls :meth:`start` once, :meth:`update` after every
    resolved task (cache hits included) and :meth:`finish` at the end.
    ``min_interval_s`` throttles redraws so tiny campaigns don't spam —
    but only *intermediate* redraws: :meth:`finish` always emits one
    final, un-throttled summary line, so a campaign that resolves
    entirely inside a single throttle window still reports its totals
    instead of ending with a stale (or blank) line.
    """

    def __init__(
        self,
        label: str = "chaos",
        stream: Optional[IO[str]] = None,
        min_interval_s: float = 0.5,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._t0 = 0.0
        self._last: Optional[float] = None

    def _now(self) -> float:
        return time.monotonic()

    def start(self, total: int, workers: int) -> None:
        self._t0 = self._now()
        self._last = None
        self._emit(0, total, 0, workers)

    def update(self, done: int, total: int, cache_hits: int, workers: int) -> None:
        now = self._now()
        if (
            done < total
            and self._last is not None
            and (now - self._last) < self.min_interval_s
        ):
            return
        self._last = now
        self._emit(done, total, cache_hits, workers)

    def finish(self, done: int, total: int, cache_hits: int, workers: int) -> None:
        # unconditionally final: never throttled, always newline-terminated
        self._emit(done, total, cache_hits, workers, final=True)
        self.stream.write("\n")
        self.stream.flush()

    def _emit(
        self,
        done: int,
        total: int,
        cache_hits: int,
        workers: int,
        final: bool = False,
    ) -> None:
        elapsed = max(self._now() - self._t0, 1e-9)
        rate = done / elapsed
        hits = f", {cache_hits} cached" if cache_hits else ""
        if final:
            extra = f", {elapsed:.1f}s"
        else:
            # live pool occupancy: every slot is busy until fewer tasks
            # remain than workers (the tail drain), plus the backlog still
            # queued behind the pool
            inflight = max(0, min(workers, total - done))
            queued = max(0, total - done - inflight)
            util = (inflight / workers) if workers else 0.0
            extra = f", {util:.0%} util, {queued} queued"
        self.stream.write(
            f"\r{self.label}: {done}/{total} replays "
            f"({rate:.1f}/s, {workers} worker{'s' if workers != 1 else ''}"
            f"{extra}{hits})"
        )
        self.stream.flush()


class NullProgress:
    """No-op reporter (the engine default)."""

    def start(self, total: int, workers: int) -> None:
        pass

    def update(self, done: int, total: int, cache_hits: int, workers: int) -> None:
        pass

    def finish(self, done: int, total: int, cache_hits: int, workers: int) -> None:
        pass
