"""Campaign progress/throughput reporting.

The only wall-clock consumer outside ``repro.sim.mpi``: throughput of the
*host* replay engine is a wall-clock quantity by definition, and none of
it ever feeds virtual time or a campaign artifact — progress lines go to
stderr, deterministic counts go to the metrics registry from the engine
itself.  (The simlint ``wallclock`` allowlist names this module for
exactly that reason.)
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class ProgressReporter:
    """Throttled ``done/total`` + runs/s line, engine-driven.

    The engine calls :meth:`start` once, :meth:`update` after every
    resolved task (cache hits included) and :meth:`finish` at the end.
    ``min_interval_s`` throttles redraws so tiny campaigns don't spam.
    """

    def __init__(
        self,
        label: str = "chaos",
        stream: Optional[IO[str]] = None,
        min_interval_s: float = 0.5,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._t0 = 0.0
        self._last = 0.0

    def _now(self) -> float:
        return time.monotonic()

    def start(self, total: int, workers: int) -> None:
        self._t0 = self._now()
        self._last = 0.0
        self._emit(0, total, 0, workers, force=total == 0)

    def update(self, done: int, total: int, cache_hits: int, workers: int) -> None:
        now = self._now()
        if done < total and (now - self._last) < self.min_interval_s:
            return
        self._last = now
        self._emit(done, total, cache_hits, workers)

    def finish(self, done: int, total: int, cache_hits: int, workers: int) -> None:
        self._emit(done, total, cache_hits, workers, force=True)
        self.stream.write("\n")
        self.stream.flush()

    def _emit(
        self, done: int, total: int, cache_hits: int, workers: int, force: bool = False
    ) -> None:
        elapsed = max(self._now() - self._t0, 1e-9)
        rate = done / elapsed
        hits = f", {cache_hits} cached" if cache_hits else ""
        self.stream.write(
            f"\r{self.label}: {done}/{total} replays "
            f"({rate:.1f}/s, {workers} worker{'s' if workers != 1 else ''}{hits})"
        )
        self.stream.flush()


class NullProgress:
    """No-op reporter (the engine default)."""

    def start(self, total: int, workers: int) -> None:
        pass

    def update(self, done: int, total: int, cache_hits: int, workers: int) -> None:
        pass

    def finish(self, done: int, total: int, cache_hits: int, workers: int) -> None:
        pass
