"""repro.par — the parallel replay engine and its memoization cache.

Campaign replays (kill matrices, randomized schedules, benchmark sweeps)
are independent deterministic jobs; this package fans them out over a
``multiprocessing`` worker pool and merges results back in canonical
order, so parallel runs produce **byte-identical** artifacts to serial
ones.  Pieces:

* :mod:`repro.par.engine` — :class:`ParallelEngine`, the order-preserving
  parallel map with error folding and metric accounting;
* :mod:`repro.par.spec` — :class:`ScenarioSpec`, the pickleable scenario
  recipe workers rebuild through a builder registry;
* :mod:`repro.par.replay` — :class:`ReplaySpec`/:class:`ReplayOutcome`,
  the work unit and its scalar result;
* :mod:`repro.par.cache` — content-addressed memoization keyed by a
  scenario+triggers+code fingerprint;
* :mod:`repro.par.progress` — wall-clock throughput reporting (stderr
  only; never touches artifacts or metrics).

Direct ``multiprocessing``/``concurrent.futures`` use anywhere else in
the tree is a simlint violation (rule ``parallel``): all parallelism goes
through this engine so determinism has a single chokepoint.
"""

from repro.par.cache import (
    CACHE_SCHEMA_VERSION,
    MemoCache,
    code_fingerprint,
    replay_fingerprint,
)
from repro.par.engine import (
    AUTO_WORKERS_CAP,
    ParallelEngine,
    default_workers,
    resolve_workers,
)
from repro.par.progress import NullProgress, ProgressReporter
from repro.par.replay import (
    CRASH_VERDICT,
    ReplayOutcome,
    ReplaySpec,
    crash_outcome,
    replay,
    replay_scenario,
)
from repro.par.spec import ScenarioSpec, register_scenario, registered_kinds

__all__ = [
    "AUTO_WORKERS_CAP",
    "CACHE_SCHEMA_VERSION",
    "CRASH_VERDICT",
    "MemoCache",
    "NullProgress",
    "ParallelEngine",
    "ProgressReporter",
    "ReplayOutcome",
    "ReplaySpec",
    "ScenarioSpec",
    "code_fingerprint",
    "crash_outcome",
    "default_workers",
    "register_scenario",
    "registered_kinds",
    "replay",
    "replay_fingerprint",
    "replay_scenario",
    "resolve_workers",
]
