"""Content-addressed memoization of replay outcomes.

Campaign runs are deterministic: the same scenario parameters, seed and
trigger set always produce the same verdict (virtual clocks, byte-exact
failure delivery).  That makes a replay a pure function of its
:class:`~repro.par.replay.ReplaySpec` — so repeated sweeps (a shrinker
delta-debug run re-probing overlapping schedules, a benchmark re-running
the smoke matrix) can skip points that were already classified.

The fingerprint covers everything the verdict depends on:

* the scenario spec (kind + canonical kwargs),
* the trigger set, field by field, in order,
* a **code fingerprint** — a digest over every ``*.py`` source file of the
  installed ``repro`` package — plus :data:`CACHE_SCHEMA_VERSION`.

The code fingerprint is the invalidation rule: touch any source file of
the simulator, protocols, drivers or campaign engine and every cached
outcome misses.  Coarse on purpose — a stale hit would silently report
verdicts of code that no longer exists, and hashing ~200 small files
costs milliseconds, once per process.

:class:`MemoCache` layers an in-memory dict over an optional on-disk
directory of ``<fingerprint>.json`` files, so the cache can persist
across invocations (``repro chaos --cache DIR``) or stay process-local
(the default inside one campaign, where it already deduplicates shrinker
re-probes).  Unreadable or corrupt entries count as misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from functools import lru_cache
from typing import Any, Dict, Optional

from repro.par.replay import ReplayOutcome, ReplaySpec

#: bump to invalidate every cached outcome on an incompatible layout change
#: (v2: outcomes may carry an obs payload; fingerprints cover the obs mode)
CACHE_SCHEMA_VERSION = 2


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest over the installed ``repro`` package's source files."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in filenames:
            if name.endswith(".py"):
                paths.append(os.path.join(dirpath, name))
    for path in sorted(paths):
        h.update(os.path.relpath(path, root).encode("utf-8"))
        with open(path, "rb") as f:
            h.update(f.read())
    return h.hexdigest()


def _trigger_doc(trigger: Any) -> Dict[str, Any]:
    doc = dataclasses.asdict(trigger)
    doc["kind"] = type(trigger).__name__
    return doc


def replay_fingerprint(spec: ReplaySpec) -> str:
    """The content address of one replay job.

    Covers the obs sampling mode too: an outcome replayed with spans
    attached carries a payload an ``off`` replay does not, so the two
    must never share a cache entry (or a store run id).
    """
    doc = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": code_fingerprint(),
        "scenario": {"kind": spec.scenario.kind, "kwargs": spec.scenario.as_dict()},
        "triggers": [_trigger_doc(t) for t in spec.triggers],
        "obs": getattr(spec, "obs", "off"),
    }
    blob = json.dumps(doc, sort_keys=True, default=list)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class MemoCache:
    """In-memory (and optionally on-disk) store of classified outcomes.

    Lookup accounting rides on the cache itself (:attr:`hits`,
    :attr:`misses`, :attr:`corrupt`): the parallel engine surfaces the
    counts as ``par.cache_hits`` / ``par.cache_misses`` /
    ``par.cache_corrupt`` metrics, so a disk entry that existed but
    failed to parse is a *visible* event in campaign telemetry rather
    than a silent re-run.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._mem: Dict[str, ReplayOutcome] = {}
        self.hits = 0
        self.misses = 0
        #: disk entries that existed but could not be read/parsed
        #: (counted as misses too; the entry is rewritten on put)
        self.corrupt = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)

    def __len__(self) -> int:
        return len(self._mem)

    def _file_for(self, key: str) -> Optional[str]:
        return None if self.path is None else os.path.join(self.path, f"{key}.json")

    def get(self, key: str) -> Optional[ReplayOutcome]:
        hit = self._mem.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        file = self._file_for(key)
        if file is None or not os.path.exists(file):
            self.misses += 1
            return None
        try:
            with open(file, "r", encoding="utf-8") as f:
                outcome = ReplayOutcome.from_json(json.load(f))
        except (OSError, ValueError, KeyError):
            self.corrupt += 1
            self.misses += 1
            return None  # corrupt entry == miss; it will be rewritten
        self.hits += 1
        self._mem[key] = outcome
        return outcome

    def put(self, key: str, outcome: ReplayOutcome) -> None:
        self._mem[key] = outcome
        file = self._file_for(key)
        if file is not None:
            tmp = f"{file}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(outcome.to_json(), f, sort_keys=True)
            os.replace(tmp, file)
