"""Ablations of the design choices DESIGN.md calls out.

* group size: memory vs encode time vs reliability (paper §3.3's triangle);
* checkpoint interval: Young/Daly optimum vs fixed periods;
* XOR vs SUM encoding: cost and bit-exactness (paper §2.2);
* stripe-rotating vs single-root encode: the contention argument of §2.1.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ckpt import (
    GroupEncoder,
    available_fraction_self,
    expected_runtime,
    group_reliability,
    optimal_interval_young,
)
from repro.models import TIANHE_2, MachineSpec
from repro.models.ckpt_cost import checkpoint_size_per_process, encode_time
from repro.sim import Cluster, Job
from repro.util import render_table


# --------------------------------------------------------------------------
# group size
# --------------------------------------------------------------------------


def ablation_group_size(
    group_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    machine: MachineSpec = TIANHE_2,
    p_node_fail: float = 0.01,
) -> List[Dict[str, float]]:
    """The three-way trade-off that drives the paper's choice of 16."""
    rows = []
    for g in group_sizes:
        mem = available_fraction_self(g)
        t = encode_time(machine, g, checkpoint_size_per_process(machine, g))
        rel = group_reliability(g, max(1, 1024 // g), p_node_fail)
        rows.append(
            {
                "group_size": g,
                "available_mem_pct": 100.0 * mem,
                "encode_s": t,
                "p_system_ok": rel["p_system_ok"],
            }
        )
    return rows


def render_group_size(rows: List[Dict[str, float]]) -> str:
    return render_table(
        ["group size", "avail mem %", "encode (s)", "P[interval survives]"],
        [
            [
                r["group_size"],
                f"{r['available_mem_pct']:.1f}",
                f"{r['encode_s']:.2f}",
                f"{r['p_system_ok']:.4f}",
            ]
            for r in rows
        ],
        title="Ablation — group size: memory vs encode cost vs reliability",
    )


# --------------------------------------------------------------------------
# checkpoint interval
# --------------------------------------------------------------------------


def ablation_interval(
    work_s: float = 8 * 3600.0,
    delta_s: float = 16.0,
    mtbf_s: float = 4 * 3600.0,
    restart_s: float = 102.0,
    candidates: Sequence[float] = (60, 300, 600, 1200, 3600, 7200),
) -> List[Dict[str, float]]:
    """Expected completion time for candidate intervals vs the Young
    optimum (Table 3 uses a fixed 10-minute period)."""
    rows = []
    t_young = optimal_interval_young(delta_s, mtbf_s)
    for t in list(candidates) + [t_young]:
        rows.append(
            {
                "interval_s": t,
                "expected_runtime_s": expected_runtime(
                    work_s, delta_s, t, mtbf_s, restart_s
                ),
                "is_young_optimum": t == t_young,
            }
        )
    return sorted(rows, key=lambda r: r["interval_s"])


def render_interval(rows: List[Dict[str, float]]) -> str:
    return render_table(
        ["interval (s)", "expected runtime (s)", "Young optimum?"],
        [
            [
                f"{r['interval_s']:.0f}",
                f"{r['expected_runtime_s']:.0f}",
                "<-- optimum" if r["is_young_optimum"] else "",
            ]
            for r in rows
        ],
        title="Ablation — checkpoint interval",
    )


# --------------------------------------------------------------------------
# XOR vs SUM
# --------------------------------------------------------------------------


def ablation_encoding_op(
    data_words: int = 3 * 4096, group_size: int = 4
) -> Dict[str, Dict[str, float]]:
    """Live encode/recover with both operators; reports reconstruction
    error (XOR must be bit exact, SUM loses ulps) and encode wall time.
    """

    def main(ctx, op):
        comm = ctx.world
        enc = GroupEncoder(comm, op=op)
        rng = np.random.default_rng(comm.rank)
        flat = (
            rng.standard_normal(data_words)
            .astype(np.float64)
            .view(np.uint8)
            .copy()
        )
        res = enc.encode(flat)
        if comm.rank == 1:
            got = enc.recover(None, None, missing=1)
            ref = (
                np.random.default_rng(1)
                .standard_normal(data_words)
                .astype(np.float64)
                .view(np.uint8)
                .copy()
            )
            err = float(
                np.max(
                    np.abs(got[0].view(np.float64) - ref.view(np.float64))
                )
            )
            return {"seconds": res.seconds, "max_error": err}
        enc.recover(flat, res.checksum, missing=1)
        return {"seconds": res.seconds, "max_error": 0.0}

    out = {}
    for op in ("xor", "sum"):
        cluster = Cluster(group_size)
        res = Job(
            cluster,
            lambda ctx, o=op: main(ctx, o),
            group_size,
            procs_per_node=1,
        ).run()
        if not res.completed:
            raise RuntimeError(res.rank_errors)
        out[op] = res.rank_results[1]
    return out


def render_encoding_op(result: Dict[str, Dict[str, float]]) -> str:
    return render_table(
        ["operator", "encode (modeled s)", "reconstruction max error"],
        [
            [op, f"{v['seconds']:.4f}", f"{v['max_error']:.3e}"]
            for op, v in result.items()
        ],
        title="Ablation — XOR vs SUM encoding",
    )


# --------------------------------------------------------------------------
# group mapping vs rack topology (paper §3.3's future work)
# --------------------------------------------------------------------------


def ablation_rack_mapping(
    n_nodes: int = 32,
    nodes_per_rack: int = 8,
    group_size: int = 4,
    machine: MachineSpec = TIANHE_2,
) -> List[Dict[str, object]]:
    """Performance vs reliability of group-to-rack mappings.

    For each strategy: the group's effective encode bandwidth (intra-rack
    traffic is fast, cross-rack pays the switch penalty), the modeled
    encode time scaled accordingly, and whether a single rack/switch loss
    stays within the code's tolerance (<= 1 member per group).
    """
    from repro.ckpt.grouping import partition_groups
    from repro.sim.topology import Topology

    topo = Topology(nodes_per_rack=nodes_per_rack)
    ranklist = list(range(n_nodes))  # one rank per node
    base_encode = encode_time(
        machine, group_size, checkpoint_size_per_process(machine, group_size)
    )
    rows = []
    for strategy in ("block", "stride", "rack-spread"):
        layout = partition_groups(
            n_nodes,
            group_size,
            strategy=strategy,
            ranklist=ranklist if strategy != "block" else None,
            topology=topo,
        )
        factors = [
            topo.encode_bw_factor(g, ranklist) for g in layout.groups
        ]
        worst_exposure = max(
            topo.max_members_in_one_rack(g, ranklist) for g in layout.groups
        )
        bw = min(factors)
        rows.append(
            {
                "strategy": strategy,
                "encode_bw_factor": bw,
                "encode_s": base_encode / bw,
                "max_group_members_per_rack": worst_exposure,
                "survives_rack_loss": worst_exposure <= 1,
            }
        )
    return rows


def render_rack_mapping(rows: List[Dict[str, object]]) -> str:
    return render_table(
        [
            "strategy",
            "encode bw factor",
            "encode (s)",
            "worst members/rack",
            "survives rack loss?",
        ],
        [
            [
                r["strategy"],
                f"{r['encode_bw_factor']:.2f}",
                f"{r['encode_s']:.2f}",
                r["max_group_members_per_rack"],
                "YES" if r["survives_rack_loss"] else "NO",
            ]
            for r in rows
        ],
        title="Ablation — group mapping vs rack topology (performance/reliability)",
    )


# --------------------------------------------------------------------------
# incremental vs self-checkpoint across dirty fractions
# --------------------------------------------------------------------------


def ablation_incremental(
    dirty_strides: Sequence[int] = (1, 2, 8),
    pages: int = 16,
    iters: int = 4,
) -> List[Dict[str, float]]:
    """Checkpoint cost of the incremental baseline vs self-checkpoint as a
    function of the application's dirty footprint.

    ``dirty_stride = s`` means 1/s of the pages change between checkpoints;
    ``s = 1`` is the HPL-like full-footprint case the paper uses to rule
    incremental checkpointing out (§1).
    """
    from repro.ckpt import CheckpointManager

    page_floats = 512  # 4096-byte pages

    def run(method: str, stride: int) -> Dict[str, float]:
        def app(ctx):
            mgr = CheckpointManager(
                ctx, ctx.world, group_size=4, method=method
            )
            a = mgr.alloc("data", pages * page_floats)
            mgr.commit()
            mgr.try_restore()
            for it in range(iters):
                for p in range(0, pages, stride):
                    a[p * page_floats] += 1.0
                mgr.local["it"] = it + 1
                mgr.checkpoint()
            return {
                "encode_s": mgr.impl.total_encode_seconds,
                "flush_s": mgr.impl.total_flush_seconds,
                "overhead": mgr.overhead_bytes,
            }

        cluster = Cluster(8)
        res = Job(cluster, app, 8, procs_per_node=1).run()
        if not res.completed:
            raise RuntimeError(res.rank_errors)
        return res.rank_results[0]

    rows = []
    for stride in dirty_strides:
        inc = run("incremental", stride)
        full = run("self", stride)
        rows.append(
            {
                "dirty_fraction": 1.0 / stride,
                "incremental_ckpt_s": inc["encode_s"] + inc["flush_s"],
                "self_ckpt_s": full["encode_s"] + full["flush_s"],
                "incremental_overhead_bytes": inc["overhead"],
                "self_overhead_bytes": full["overhead"],
            }
        )
    return rows


def render_incremental(rows: List[Dict[str, float]]) -> str:
    return render_table(
        [
            "dirty fraction",
            "incremental ckpt (s)",
            "self ckpt (s)",
            "incr mem (B)",
            "self mem (B)",
        ],
        [
            [
                f"{100 * r['dirty_fraction']:.0f}%",
                f"{r['incremental_ckpt_s']:.2e}",
                f"{r['self_ckpt_s']:.2e}",
                r["incremental_overhead_bytes"],
                r["self_overhead_bytes"],
            ]
            for r in rows
        ],
        title="Ablation — incremental vs self-checkpoint by dirty footprint",
    )


# --------------------------------------------------------------------------
# stripe-rotating vs single-root encode
# --------------------------------------------------------------------------


def ablation_stripe_vs_single_root(
    group_sizes: Sequence[int] = (4, 8, 16),
    machine: MachineSpec = TIANHE_2,
) -> List[Dict[str, float]]:
    """Modeled encode time of the paper's stripe scheme vs the naive
    rotating sequence of whole-buffer single-root reduces."""
    from repro.sim.netmodel import NetworkModel

    net = NetworkModel(machine.node.net)
    rows = []
    for g in group_sizes:
        size = checkpoint_size_per_process(machine, g)
        rows.append(
            {
                "group_size": g,
                "stripe_s": net.stripe_encode_time(size, g),
                "single_root_s": g * net.single_root_encode_time(size, g),
            }
        )
    return rows


def render_stripe_vs_single(rows: List[Dict[str, float]]) -> str:
    return render_table(
        ["group size", "stripe encode (s)", "single-root encode (s)", "speedup"],
        [
            [
                r["group_size"],
                f"{r['stripe_s']:.2f}",
                f"{r['single_root_s']:.2f}",
                f"{r['single_root_s'] / r['stripe_s']:.1f}x",
            ]
            for r in rows
        ],
        title="Ablation — stripe-rotating vs single-root group encode",
    )
