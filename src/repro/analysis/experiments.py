"""Drivers reproducing every table and figure of the paper's evaluation.

Scale strategy (see DESIGN.md): protocol behaviour — who recovers from
which failure — is measured on *live* simulator runs at laptop scale;
paper-scale performance numbers come from the paper's own efficiency model
(section 4) calibrated to the machines of Table 2.  The drivers label each
output value accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.ckpt import (
    HDD,
    SSD,
    available_fraction_double,
    available_fraction_self,
    available_fraction_single,
    memory_breakdown_self,
)
from repro.hpl import (
    HPLConfig,
    JobDaemon,
    RestartPolicy,
    SKTConfig,
    hpl_main,
    skt_hpl_main,
)
from repro.models import (
    LOCAL_CLUSTER,
    SCALED_TESTBED,
    TIANHE_1A,
    TIANHE_2,
    TOP10_NOV2016,
    EfficiencyModel,
    MachineSpec,
    fit_efficiency_model,
    problem_size_for_memory,
)
from repro.models.ckpt_cost import encode_time, flush_time, recovery_time
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger
from repro.util import GiB, fmt_bytes, render_table

# --------------------------------------------------------------------------
# Figure 6 — available memory vs group size
# --------------------------------------------------------------------------


def fig6_available_memory(
    group_sizes: Sequence[int] = (2, 3, 4, 8, 16, 32),
) -> List[Dict[str, float]]:
    """Available-memory percentage of the three schemes (paper Fig. 6)."""
    return [
        {
            "group_size": n,
            "single": 100.0 * available_fraction_single(n),
            "self": 100.0 * available_fraction_self(n),
            "double": 100.0 * available_fraction_double(n),
        }
        for n in group_sizes
    ]


def render_fig6(rows: List[Dict[str, float]]) -> str:
    return render_table(
        ["group size", "single-ckpt %", "self-ckpt %", "double-ckpt %"],
        [
            [r["group_size"], f"{r['single']:.1f}", f"{r['self']:.1f}", f"{r['double']:.1f}"]
            for r in rows
        ],
        title="Fig. 6 — available memory vs group size",
    )


# --------------------------------------------------------------------------
# Figure 7 — efficiency model fit against live simulator runs
# --------------------------------------------------------------------------


@dataclass
class ModelFit:
    sizes: List[int]
    measured: List[float]
    model: EfficiencyModel
    r_squared: float


def _run_hpl_efficiency(
    cfg: HPLConfig, machine: MachineSpec = LOCAL_CLUSTER
) -> float:
    """One live HPL run; returns achieved/peak efficiency in virtual time."""
    cluster = Cluster(
        machine.nodes_for_ranks(cfg.n_ranks), machine.node
    )
    job = Job(
        cluster,
        lambda ctx: hpl_main(ctx, cfg),
        cfg.n_ranks,
        procs_per_node=machine.node.cores,
    )
    res = job.run()
    if not res.completed:
        raise RuntimeError(f"HPL run failed: {res.rank_errors}")
    peak = cfg.n_ranks * machine.node.flops_per_core
    return cfg.flops / res.makespan / peak


def fig7_model_fit(
    sizes: Sequence[int] = (96, 128, 192, 256, 384),
    nb: int = 16,
    grid: Tuple[int, int] = (2, 4),
    machine: MachineSpec = SCALED_TESTBED,
) -> ModelFit:
    """Measure HPL efficiency over problem sizes on the live simulator and
    fit E(N) = N/(aN+b) — reproducing Fig. 7's fit-vs-data comparison
    (memory-per-core on the x axis is N^2 scaled; the model is the same).
    """
    p, q = grid
    measured = []
    for n in sizes:
        cfg = HPLConfig(n=n, nb=nb, p=p, q=q)
        measured.append(_run_hpl_efficiency(cfg, machine))
    model = fit_efficiency_model(list(sizes), measured)
    from repro.models.efficiency import fit_quality

    return ModelFit(
        sizes=list(sizes),
        measured=measured,
        model=model,
        r_squared=fit_quality(model, list(sizes), measured),
    )


def render_fig7(fit: ModelFit) -> str:
    rows = [
        [n, f"{e * 100:.2f}", f"{fit.model.efficiency(n) * 100:.2f}"]
        for n, e in zip(fit.sizes, fit.measured)
    ]
    table = render_table(
        ["N", "measured eff %", "model eff %"],
        rows,
        title=(
            "Fig. 7 — efficiency model fit "
            f"(a={fit.model.a:.3f}, b={fit.model.b:.1f}, R^2={fit.r_squared:.4f})"
        ),
    )
    return table


# --------------------------------------------------------------------------
# Figure 8 — TOP-10 projection at reduced memory
# --------------------------------------------------------------------------


def fig8_top10_projection() -> List[Dict[str, float]]:
    rows = []
    for s in TOP10_NOV2016:
        rows.append(
            {
                "system": s.name,
                "original": 100.0 * s.efficiency,
                "k=1/2": 100.0 * s.projected_efficiency(0.5),
                "k=1/3": 100.0 * s.projected_efficiency(1.0 / 3.0),
            }
        )
    return rows


def render_fig8(rows: List[Dict[str, float]]) -> str:
    return render_table(
        ["system", "original %", "k=1/2 %", "k=1/3 %"],
        [
            [r["system"], f"{r['original']:.1f}", f"{r['k=1/2']:.1f}", f"{r['k=1/3']:.1f}"]
            for r in rows
        ],
        title="Fig. 8 — modeled HPL efficiency of the TOP-10 at reduced memory",
    )


# --------------------------------------------------------------------------
# Table 2 — node configurations of the two machines
# --------------------------------------------------------------------------


def table2_node_configs() -> List[Dict[str, object]]:
    """The machine data of paper Table 2 (plus the port-sharing ratios from
    §6.6 that Fig. 13 depends on)."""
    rows = []
    for m in (TIANHE_1A, TIANHE_2):
        rows.append(
            {
                "machine": m.name,
                "cores": m.node.cores,
                "peak_gflops": m.node.flops / 1e9,
                "mem_bytes": m.node.mem_bytes,
                "p2p_bw_GBps": m.node.net.bandwidth_Bps / 1e9,
                "procs_per_port": m.node.net.procs_per_port,
                "paper_ranks": m.paper_ranks,
            }
        )
    return rows


def render_table2(rows: List[Dict[str, object]]) -> str:
    return render_table(
        [
            "machine",
            "cores",
            "peak (GFLOPS)",
            "memory",
            "P2P BW (GB/s)",
            "procs/port",
            "paper ranks",
        ],
        [
            [
                r["machine"],
                r["cores"],
                f"{r['peak_gflops']:.1f}",
                fmt_bytes(r["mem_bytes"]),
                f"{r['p2p_bw_GBps']:.1f}",
                r["procs_per_port"],
                r["paper_ranks"],
            ]
            for r in rows
        ],
        title="Table 2 — node configuration of Tianhe-1A and Tianhe-2",
    )


# --------------------------------------------------------------------------
# Table 1 — memory breakdown of self-checkpoint
# --------------------------------------------------------------------------


def table1_memory_breakdown(
    workspace_bytes: int = GiB, group_size: int = 16
) -> Dict[str, object]:
    bd = memory_breakdown_self(workspace_bytes, group_size)
    return {
        "A1+A2": bd.workspace,
        "B": bd.checkpoint,
        "C": bd.checksum_old,
        "D": bd.checksum_new,
        "total": bd.total,
        "available_fraction": bd.available_fraction,
    }


def render_table1(row: Dict[str, object]) -> str:
    n_cols = ["A1+A2", "B", "C", "D", "total"]
    return render_table(
        ["item"] + n_cols + ["available"],
        [
            ["size"]
            + [fmt_bytes(row[c]) for c in n_cols]
            + [f"{100 * row['available_fraction']:.1f}%"]
        ],
        title="Table 1 — self-checkpoint memory usage per process",
    )


# --------------------------------------------------------------------------
# Table 3 — method comparison (the paper's main table)
# --------------------------------------------------------------------------


@dataclass
class Table3Row:
    method: str
    problem_size: int
    runtime_s: float  # modeled, no checkpoints
    ckpt_time_s: float  # modeled time per checkpoint
    n_checkpoints: int
    gflops: float  # modeled, with checkpoints
    available_mem_gb: float
    normalized_efficiency: float
    survives_poweroff: bool  # from the live simulator run


#: ABFT overhead calibration: "inversely proportional to the number of
#: processes" (paper section 6.2); 21.4% at 128 processes pins the constant.
_ABFT_OVERHEAD_AT_128 = 0.214


def _abft_overhead(n_ranks: int) -> float:
    return _ABFT_OVERHEAD_AT_128 * 128.0 / n_ranks


def _live_poweroff_check(method: str) -> bool:
    """Small live SKT-HPL run with a node powered off mid-checkpoint:
    does the method recover and pass verification?"""
    cfg = HPLConfig(n=64, nb=8, p=2, q=4)
    group_size = 2 if method == "buddy" else 4
    scfg = SKTConfig(
        hpl=cfg, method=method, group_size=group_size, interval_panels=2
    )
    cluster = Cluster(8, n_spares=2)
    # aim the power-off at each protocol's own checkpoint-update window
    phase = {
        "self": "ckpt.flush",
        "double": "ckpt.update.mid",
        "single": "ckpt.update.mid",
        "multilevel": "ckpt.update.mid",
    }.get(method, "ckpt.flush")
    plan = FailurePlan([PhaseTrigger(node_id=3, phase=phase, occurrence=2)])
    daemon = JobDaemon(
        cluster,
        skt_hpl_main,
        8,
        args=(scfg,),
        procs_per_node=1,
        failure_plan=plan,
        policy=RestartPolicy(max_restarts=2),
    )
    report = daemon.run()
    if not report.completed:
        return False
    r0 = report.result.rank_results[0]
    # surviving means: recovered mid-run state (not a from-scratch rerun)
    # and passed verification
    return bool(r0.hpl.passed and r0.restored)


def table3_method_comparison(
    *,
    n_ranks: int = 128,
    mem_per_rank: int = 4 * GiB,
    group_size: int = 8,
    ckpt_period_s: float = 600.0,
    machine: MachineSpec = LOCAL_CLUSTER,
    model_a: float = 1.15,
    run_live_checks: bool = True,
) -> List[Table3Row]:
    """Reproduce Table 3's comparison.

    Performance columns come from the efficiency model calibrated to the
    local cluster (full-memory efficiency pins ``b`` given ``a``); the
    "survives power-off" column is measured by live fail/restart runs.
    """
    total_mem = n_ranks * mem_per_rank
    n_full = problem_size_for_memory(total_mem, 0.8)
    e1 = machine.full_memory_efficiency
    if model_a * e1 >= 1.0:
        raise ValueError("model_a inconsistent with full-memory efficiency")
    b = (1.0 - model_a * e1) * n_full / e1
    model = EfficiencyModel(a=model_a, b=b)
    peak = n_ranks * machine.node.flops_per_core
    sharing = machine.node.cores

    def runtime(n: int) -> float:
        return model.runtime(n, peak)

    def gflops_with(n: int, ckpt_s: float, overhead_frac: float = 0.0) -> Tuple[float, int]:
        base = runtime(n) * (1.0 + overhead_frac)
        n_ckpt = int(base // ckpt_period_s) if ckpt_s > 0 else 0
        total = base + n_ckpt * ckpt_s
        work = (2.0 / 3.0) * n**3 + 1.5 * n**2
        return work / total / 1e9, n_ckpt

    mem_frac = {
        "Original HPL": 1.0,
        "ABFT": 0.82,  # checksum replicas (paper used N=212224 vs 234240)
        "BLCR+HDD": 1.0,
        "BLCR+SSD": 1.0,
        "SCR+Memory": available_fraction_double(group_size) / 0.8,
        "SKT-HPL": available_fraction_self(group_size) / 0.8,
    }
    # fractions above are relative to the 80%-fill baseline so that
    # problem sizes follow N_method = sqrt(frac) * N_full

    live = {}
    if run_live_checks:
        live = {
            "Original HPL": False,  # no checkpoint: a node loss kills the run
            "ABFT": False,  # state dies with the processes (section 6.2)
            "BLCR+HDD": _live_poweroff_check("disk-hdd"),
            "BLCR+SSD": _live_poweroff_check("disk-ssd"),
            "SCR+Memory": _live_poweroff_check("double"),
            "SKT-HPL": _live_poweroff_check("self"),
        }

    rows: List[Table3Row] = []
    for method, frac in mem_frac.items():
        n = int(math.sqrt(frac) * n_full)
        workspace = int(mem_per_rank * 0.8 * frac)
        if method == "Original HPL":
            ckpt_s, overhead = 0.0, 0.0
        elif method == "ABFT":
            ckpt_s, overhead = 0.0, _abft_overhead(n_ranks)
        elif method == "BLCR+HDD":
            ckpt_s, overhead = HDD.write_time(workspace, sharing), 0.0
        elif method == "BLCR+SSD":
            ckpt_s, overhead = SSD.write_time(workspace, sharing), 0.0
        else:  # in-memory encodes
            ckpt_s = encode_time(machine, group_size, workspace) + flush_time(
                machine, workspace
            )
            overhead = 0.0
        gf, n_ckpt = gflops_with(n, ckpt_s, overhead)
        rows.append(
            Table3Row(
                method=method,
                problem_size=n,
                runtime_s=runtime(n),
                ckpt_time_s=ckpt_s,
                n_checkpoints=n_ckpt,
                gflops=gf,
                available_mem_gb=workspace / GiB,
                normalized_efficiency=0.0,  # filled below
                survives_poweroff=live.get(method, False),
            )
        )
    base_gf = rows[0].gflops
    for r in rows:
        r.normalized_efficiency = r.gflops / base_gf
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    return render_table(
        [
            "method",
            "problem size",
            "runtime (s)",
            "ckpt time (s)",
            "GFLOPS (#ckpt)",
            "avail mem (GB)",
            "norm eff",
            "recovers?",
        ],
        [
            [
                r.method,
                r.problem_size,
                f"{r.runtime_s:.0f}",
                f"{r.ckpt_time_s:.2f}" if r.ckpt_time_s else "-",
                f"{r.gflops:.0f} ({r.n_checkpoints})",
                f"{r.available_mem_gb:.2f}",
                f"{100 * r.normalized_efficiency:.2f}%",
                "YES" if r.survives_poweroff else "NO",
            ]
            for r in rows
        ],
        title="Table 3 — fault-tolerant HPL method comparison",
    )


@dataclass
class LiveMethodRow:
    method: str
    elapsed_virtual_s: float
    ckpt_seconds: float
    normalized_efficiency: float
    overhead_bytes: int
    survives_poweroff: bool


def table3_live_miniature(
    *,
    n: int = 96,
    nb: int = 8,
    grid: Tuple[int, int] = (2, 4),
    group_size: int = 4,
    interval_panels: int = 3,
) -> List[LiveMethodRow]:
    """A fully *live* miniature of Table 3: every method actually runs the
    distributed HPL end-to-end on the simulator (no analytic modeling),
    reporting virtual elapsed time, checkpoint cost, memory overhead, and
    measured power-off survival.

    Complements :func:`table3_method_comparison`, whose performance columns
    are model-scale; here everything — including who wins — is measured.
    """
    p, q = grid
    cfg = HPLConfig(n=n, nb=nb, p=p, q=q)
    methods = [
        ("Original HPL", None),
        ("SKT-HPL (self)", "self"),
        ("double", "double"),
        ("buddy(2)", "buddy"),
        ("BLCR+HDD", "disk-hdd"),
        ("BLCR+SSD", "disk-ssd"),
    ]
    rows: List[LiveMethodRow] = []
    for label, method in methods:
        cluster = Cluster(cfg.n_ranks)
        if method is None:
            res = Job(
                cluster,
                lambda ctx: hpl_main(ctx, cfg),
                cfg.n_ranks,
                procs_per_node=1,
            ).run()
            if not res.completed:
                raise RuntimeError(res.rank_errors)
            rows.append(
                LiveMethodRow(
                    method=label,
                    elapsed_virtual_s=res.makespan,
                    ckpt_seconds=0.0,
                    normalized_efficiency=1.0,
                    overhead_bytes=0,
                    survives_poweroff=False,
                )
            )
            continue
        gsize = 2 if method == "buddy" else group_size
        scfg = SKTConfig(
            hpl=cfg,
            method=method,
            group_size=gsize,
            interval_panels=interval_panels,
        )
        res = Job(
            cluster, skt_hpl_main, cfg.n_ranks, args=(scfg,), procs_per_node=1
        ).run()
        if not res.completed:
            raise RuntimeError(res.rank_errors)
        r0 = res.rank_results[0]
        rows.append(
            LiveMethodRow(
                method=label,
                elapsed_virtual_s=res.makespan,
                ckpt_seconds=r0.ckpt_encode_s + r0.ckpt_flush_s,
                normalized_efficiency=0.0,
                overhead_bytes=r0.overhead_bytes,
                survives_poweroff=_live_poweroff_check(method),
            )
        )
    base = rows[0].elapsed_virtual_s
    for r in rows:
        r.normalized_efficiency = base / r.elapsed_virtual_s
    return rows


def render_table3_live(rows: List[LiveMethodRow]) -> str:
    return render_table(
        [
            "method",
            "elapsed (virtual s)",
            "ckpt time (s)",
            "norm eff",
            "RAM overhead",
            "recovers?",
        ],
        [
            [
                r.method,
                f"{r.elapsed_virtual_s:.4f}",
                f"{r.ckpt_seconds:.4f}" if r.ckpt_seconds else "-",
                f"{100 * r.normalized_efficiency:.2f}%",
                fmt_bytes(r.overhead_bytes),
                "YES" if r.survives_poweroff else "NO",
            ]
            for r in rows
        ],
        title="Table 3 (live miniature) — all methods raced on the simulator",
    )


# --------------------------------------------------------------------------
# Figure 10 — work-fail-detect-restart cycle timing
# --------------------------------------------------------------------------


@dataclass
class CycleTiming:
    checkpoint_s: float
    detect_s: float
    replace_s: float
    restart_s: float
    recover_s: float
    #: live-measured virtual spans from the traced small-scale cycle
    live_checkpoint_s: float = 0.0
    live_recover_s: float = 0.0


def fig10_restart_cycle(
    machine: MachineSpec = TIANHE_2,
    group_size: int = 8,
    policy: RestartPolicy = RestartPolicy(),
    live: bool = True,
) -> CycleTiming:
    """Phase times of one failure cycle (Fig. 10).

    Detect/replace/restart are daemon policy values (the paper measures 63,
    10 and 9 s on Tianhe-2); checkpoint and recovery times come from the
    cost model at paper scale.  With ``live``, a traced small-scale
    fail/restart cycle runs too, and its *measured* virtual checkpoint and
    recovery spans are reported alongside — the same "recovery takes a
    little longer than a checkpoint" relation must hold there.
    """
    from repro.sim.trace import Trace, phase_spans, span_stats

    ckpt = encode_time(machine, group_size)
    rec = recovery_time(machine, group_size)
    live_ckpt = live_rec = 0.0
    if live:
        cfg = HPLConfig(n=64, nb=8, p=2, q=4)
        scfg = SKTConfig(hpl=cfg, method="self", group_size=4, interval_panels=2)
        cluster = Cluster(8, n_spares=1)
        plan = FailurePlan([PhaseTrigger(node_id=2, phase="ckpt.done", occurrence=2)])
        trace = Trace()
        daemon = JobDaemon(
            cluster,
            skt_hpl_main,
            8,
            args=(scfg,),
            procs_per_node=1,
            failure_plan=plan,
            policy=policy,
            trace=trace,
        )
        report = daemon.run()
        if not (report.completed and report.n_restarts == 1):
            raise RuntimeError("live restart cycle failed")
        live_ckpt = span_stats(phase_spans(trace, "ckpt.begin", "ckpt.done"))[
            "mean"
        ]
        live_rec = span_stats(
            phase_spans(trace, "restore.begin", "restore.done")
        )["mean"]
    return CycleTiming(
        checkpoint_s=ckpt,
        detect_s=policy.detect_s,
        replace_s=policy.replace_s,
        restart_s=policy.restart_s,
        recover_s=rec,
        live_checkpoint_s=live_ckpt,
        live_recover_s=live_rec,
    )


def render_fig10(t: CycleTiming) -> str:
    table = render_table(
        ["phase", "seconds"],
        [
            ["checkpoint", f"{t.checkpoint_s:.1f}"],
            ["detect the failure / kill job", f"{t.detect_s:.1f}"],
            ["replace lost nodes by spares", f"{t.replace_s:.1f}"],
            ["restart SKT-HPL", f"{t.restart_s:.1f}"],
            ["recover data", f"{t.recover_s:.1f}"],
        ],
        title="Fig. 10 — work-fail-detect-restart cycle phases (Tianhe-2 scale)",
    )
    if t.live_checkpoint_s:
        table += (
            f"\nlive small-scale cycle (traced, virtual time): checkpoint "
            f"{t.live_checkpoint_s * 1e3:.3f} ms, recovery "
            f"{t.live_recover_s * 1e3:.3f} ms"
        )
    return table


# --------------------------------------------------------------------------
# Figure 11 — original HPL vs SKT-HPL efficiency on both machines
# --------------------------------------------------------------------------


def fig11_skt_efficiency(
    machines: Sequence[MachineSpec] = (TIANHE_1A, TIANHE_2),
    group_sizes: Dict[str, int] | None = None,
    model_a: float = 1.05,
) -> List[Dict[str, float]]:
    """Original-HPL vs SKT-HPL efficiency (Fig. 11).

    SKT-HPL runs at the self-checkpoint memory fraction (47% at group 16 on
    Tianhe-1A, 44% at group 8 on Tianhe-2 — section 6.4); its efficiency
    follows the reduced-memory model from the machine's full-memory point.
    """
    group_sizes = group_sizes or {"Tianhe-1A": 16, "Tianhe-2": 8}
    from repro.models.efficiency import efficiency_lower_bound

    rows = []
    for m in machines:
        g = group_sizes.get(m.name, 16)
        k = available_fraction_self(g)
        e1 = m.full_memory_efficiency
        # exact model value with a calibrated `a`; Eq. 8's bound guarantees
        # at least the lower-bound value
        n1 = problem_size_for_memory(
            m.paper_ranks * m.node.mem_per_core, 0.8
        )
        b = (1.0 - model_a * e1) * n1 / e1
        model = EfficiencyModel(a=model_a, b=b)
        e2 = model.efficiency(math.sqrt(k) * n1)
        rows.append(
            {
                "machine": m.name,
                "original": 100.0 * e1,
                "skt": 100.0 * e2,
                "skt_vs_original": 100.0 * e2 / e1,
                "lower_bound": 100.0 * efficiency_lower_bound(e1, k),
                "memory_fraction": 100.0 * k,
            }
        )
    return rows


def render_fig11(rows: List[Dict[str, float]]) -> str:
    return render_table(
        ["machine", "original eff %", "SKT-HPL eff %", "SKT/original %", "mem %"],
        [
            [
                r["machine"],
                f"{r['original']:.2f}",
                f"{r['skt']:.2f}",
                f"{r['skt_vs_original']:.2f}",
                f"{r['memory_fraction']:.0f}",
            ]
            for r in rows
        ],
        title="Fig. 11 — original HPL vs SKT-HPL efficiency",
    )


# --------------------------------------------------------------------------
# Figure 12 — normalized efficiency vs memory fraction (model + live sim)
# --------------------------------------------------------------------------


@dataclass
class MemorySweepPoint:
    memory_fraction: float
    n: int
    measured_norm_eff: float
    model_norm_eff: float


def fig12_memory_vs_efficiency(
    fractions: Sequence[float] = (0.125, 0.2, 0.3, 0.44, 0.5),
    n_full: int = 384,
    nb: int = 16,
    grid: Tuple[int, int] = (2, 4),
    machine: MachineSpec = SCALED_TESTBED,
) -> List[MemorySweepPoint]:
    """Live-simulator sweep of HPL efficiency vs memory fraction, compared
    to the model's prediction normalized at the full-memory point."""
    p, q = grid
    e_full = _run_hpl_efficiency(HPLConfig(n=n_full, nb=nb, p=p, q=q), machine)
    # calibrate the model from two live points (full and half memory)
    n_half = int(math.sqrt(0.5) * n_full)
    e_half = _run_hpl_efficiency(HPLConfig(n=n_half, nb=nb, p=p, q=q), machine)
    model = fit_efficiency_model([n_full, n_half], [e_full, e_half])

    points = []
    for k in fractions:
        n = max(nb, int(math.sqrt(k) * n_full))
        e = _run_hpl_efficiency(HPLConfig(n=n, nb=nb, p=p, q=q), machine)
        points.append(
            MemorySweepPoint(
                memory_fraction=k,
                n=n,
                measured_norm_eff=e / e_full,
                model_norm_eff=model.efficiency(n) / model.efficiency(n_full),
            )
        )
    return points


def render_fig12(points: List[MemorySweepPoint]) -> str:
    return render_table(
        ["memory %", "N", "measured norm eff %", "model norm eff %"],
        [
            [
                f"{100 * p.memory_fraction:.0f}",
                p.n,
                f"{100 * p.measured_norm_eff:.2f}",
                f"{100 * p.model_norm_eff:.2f}",
            ]
            for p in points
        ],
        title="Fig. 12 — normalized efficiency vs memory used for computation",
    )


# --------------------------------------------------------------------------
# Figure 13 — encoding time and checkpoint size vs group size
# --------------------------------------------------------------------------


def fig13_encoding_cost(
    group_sizes: Sequence[int] = (4, 8, 16),
    machines: Sequence[MachineSpec] = (TIANHE_1A, TIANHE_2),
) -> List[Dict[str, float]]:
    """Checkpoint size and encode time per machine and group size."""
    from repro.models.ckpt_cost import checkpoint_size_per_process

    rows = []
    for m in machines:
        for g in group_sizes:
            size = checkpoint_size_per_process(m, g)
            rows.append(
                {
                    "machine": m.name,
                    "group_size": g,
                    "ckpt_bytes": size,
                    "encode_s": encode_time(m, g, size),
                }
            )
    return rows


def render_fig13(rows: List[Dict[str, float]]) -> str:
    return render_table(
        ["machine", "group size", "ckpt size", "encode time (s)"],
        [
            [
                r["machine"],
                r["group_size"],
                fmt_bytes(r["ckpt_bytes"]),
                f"{r['encode_s']:.2f}",
            ]
            for r in rows
        ],
        title="Fig. 13 — encoding time and checkpoint size vs group size",
    )
