"""Experiment drivers: one function per paper table/figure.

Each driver returns plain data (lists of dataclasses/dicts) and offers a
``render_*`` companion producing the ASCII table the benchmarks print.
Live simulator runs supply correctness and recovery behaviour; the paper's
own analytic models (section 4) supply paper-scale performance numbers, as
documented in DESIGN.md's substitution table.
"""

from repro.analysis.experiments import (
    fig6_available_memory,
    fig7_model_fit,
    fig8_top10_projection,
    fig10_restart_cycle,
    fig11_skt_efficiency,
    fig12_memory_vs_efficiency,
    fig13_encoding_cost,
    table1_memory_breakdown,
    table3_method_comparison,
)
from repro.analysis.ablations import (
    ablation_group_size,
    ablation_incremental,
    ablation_interval,
    ablation_encoding_op,
    ablation_rack_mapping,
    ablation_stripe_vs_single_root,
)

__all__ = [
    "fig6_available_memory",
    "fig7_model_fit",
    "fig8_top10_projection",
    "fig10_restart_cycle",
    "fig11_skt_efficiency",
    "fig12_memory_vs_efficiency",
    "fig13_encoding_cost",
    "table1_memory_breakdown",
    "table3_method_comparison",
    "ablation_group_size",
    "ablation_incremental",
    "ablation_interval",
    "ablation_rack_mapping",
    "ablation_encoding_op",
    "ablation_stripe_vs_single_root",
]
