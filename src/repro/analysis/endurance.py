"""Endurance harness: survive an MTBF-driven failure storm to completion.

The paper validates single injected failures; production fault tolerance
must ride out *repeated* random failures.  This harness runs an iterative
self-checkpointed application under exponential node failures (drawn fresh
each incarnation from the per-node MTBF), restarts daemon-style until the
work completes, and accounts the total virtual time — which the classic
first-order model (:func:`repro.ckpt.interval.expected_runtime`) should
predict to within a small factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ckpt import CheckpointManager, expected_runtime
from repro.hpl.daemon import RestartPolicy
from repro.sim import Cluster, FailurePlan, Job, MTBFFailureGenerator
from repro.sim.errors import SimError


@dataclass
class EnduranceReport:
    completed: bool
    n_restarts: int
    total_virtual_s: float
    work_virtual_s: float  # fault-free duration of the same job
    model_expected_s: float
    failures_injected: int
    final_state_ok: bool
    restarts_log: List[int] = field(default_factory=list)  # failed node ids


def _iterative_app(iters: int, ckpt_every: int, work_per_iter_s: float):
    def app(ctx):
        mgr = CheckpointManager(ctx, ctx.world, group_size=4, method="self")
        a = mgr.alloc("data", 64)
        mgr.commit()
        report = mgr.try_restore()
        start = report.local["it"] if report else 0
        for it in range(start, iters):
            a += ctx.world.rank + 1
            ctx.elapse(work_per_iter_s)
            if (it + 1) % ckpt_every == 0:
                mgr.local["it"] = it + 1
                mgr.checkpoint()
        return a.copy()

    return app


def endurance_run(
    *,
    n_ranks: int = 8,
    iters: int = 40,
    ckpt_every: int = 5,
    work_per_iter_s: float = 10.0,
    mtbf_node_s: float = 4000.0,
    seed: int = 0,
    max_restarts: int = 30,
    policy: Optional[RestartPolicy] = None,
) -> EnduranceReport:
    """Run the iterative app to completion under random node failures."""
    policy = policy or RestartPolicy()
    gen = MTBFFailureGenerator(mtbf_node_s, seed=seed)
    app = _iterative_app(iters, ckpt_every, work_per_iter_s)

    # fault-free reference (both duration and final state)
    ref_cluster = Cluster(n_ranks)
    ref = Job(ref_cluster, app, n_ranks, procs_per_node=1).run()
    if not ref.completed:
        raise RuntimeError(f"reference run failed: {ref.rank_errors}")
    work_s = ref.makespan

    cluster = Cluster(n_ranks, n_spares=max_restarts + 2)
    ranklist = cluster.default_ranklist(n_ranks, procs_per_node=1)
    total = 0.0
    restarts: List[int] = []
    failures = 0
    completed = False
    result = None
    horizon = iters * work_per_iter_s * 2

    for _ in range(max_restarts + 1):
        plan = FailurePlan(
            gen.schedule([nid for nid in set(ranklist)], horizon_s=horizon)
        )
        failures_possible = len(plan.fired)
        job = Job(
            cluster, app, n_ranks, ranklist=ranklist, failure_plan=plan
        )
        result = job.run()
        total += result.makespan
        if result.completed:
            completed = True
            break
        if not result.failed_nodes:
            raise SimError(f"non-failure abort: {result.rank_errors}")
        failures += len(result.failed_nodes)
        restarts.extend(result.failed_nodes)
        replacements = cluster.replace_dead()
        ranklist = [replacements.get(n, n) for n in ranklist]
        total += policy.detect_s + policy.replace_s + policy.restart_s

    # first-order model prediction for the same scenario
    delta = 1e-3  # in-memory checkpoints are cheap at this scale
    interval = ckpt_every * work_per_iter_s
    system_mtbf = gen.system_mtbf(n_ranks)
    model = expected_runtime(
        work_s,
        max(delta, 1e-6),
        interval,
        system_mtbf,
        policy.detect_s + policy.replace_s + policy.restart_s,
    )

    state_ok = False
    if completed and result is not None:
        state_ok = all(
            np.all(result.rank_results[r] == iters * (r + 1))
            for r in range(n_ranks)
        )
    return EnduranceReport(
        completed=completed,
        n_restarts=len(restarts),
        total_virtual_s=total,
        work_virtual_s=work_s,
        model_expected_s=model,
        failures_injected=failures,
        final_state_ok=state_ok,
        restarts_log=restarts,
    )
