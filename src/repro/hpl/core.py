"""Distributed HPL: right-looking LU with partial pivoting + solve + verify.

The algorithm is the one the HPL benchmark implements (paper §5.1):

1. **Panel factorization** — the process column owning block column ``k``
   gathers the panel to the diagonal-block owner, which runs an unblocked
   ``getf2`` with partial pivoting (pivot rows recorded as *global* rows).
2. **Panel broadcast** — the factored panel and pivot list are broadcast;
   every rank needs its rows of L21 for the update.
3. **Row swaps** — pivoting exchanges entire rows of the trailing matrix
   (and of b) between the owning process rows, pairwise within each process
   column.
4. **U12 solve** — the process row owning the diagonal block solves
   ``L11 U12 = A12`` for its trailing columns and broadcasts U12 (plus the
   transformed rhs segment) down each process column.
5. **Trailing update** — every rank performs its local
   ``A22 -= L21 @ U12`` GEMM, the O(n^3) heart of HPL.

Back substitution then walks block rows bottom-up, broadcasting each solved
``x`` segment; verification regenerates the original matrix from the fixed
seed and checks HPL's scaled residual.

Compute is charged to the virtual clock per flop (``GEMM_EFFICIENCY``
models how far a tuned DGEMM runs below peak), communication is priced by
the simulator's collectives — so virtual makespans follow the same cost
structure the paper's model in §4 assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.hpl.config import HPLConfig
from repro.hpl.grid import BlockCyclicMap, ProcessGrid
from repro.hpl import matgen
from repro.sim.runtime import RankContext

#: fraction of peak a tuned DGEMM sustains (drives the efficiency model)
GEMM_EFFICIENCY = 0.90
#: fraction of peak the less regular panel/solve kernels sustain
PANEL_EFFICIENCY = 0.30

#: HPL's acceptance threshold on the scaled residual
RESIDUAL_THRESHOLD = 16.0


@dataclass
class HPLTimers:
    """Virtual seconds spent per phase on this rank."""

    panel: float = 0.0
    swap: float = 0.0
    update: float = 0.0
    backsub: float = 0.0

    def total(self) -> float:
        return self.panel + self.swap + self.update + self.backsub


@dataclass
class HPLResult:
    """Outcome of one HPL run on one rank (rank 0's copy is authoritative)."""

    config: HPLConfig
    x: np.ndarray
    residual: float
    passed: bool
    elapsed_s: float
    gflops: float
    timers: HPLTimers = field(default_factory=HPLTimers)


class SingularMatrixError(RuntimeError):
    """A zero pivot was encountered (never for the generated matrices)."""


def _factor_panel(
    ctx: RankContext, panel: np.ndarray, k0: int
) -> np.ndarray:
    """Unblocked getf2 with partial pivoting, in place.

    Returns the pivot list: entry ``j`` is the *global* row swapped with
    global row ``k0 + j``.
    """
    m, nbk = panel.shape
    piv = np.zeros(nbk, dtype=np.int64)
    for j in range(nbk):
        rel = int(np.argmax(np.abs(panel[j:, j]))) + j
        piv[j] = k0 + rel
        if rel != j:
            panel[[j, rel], :] = panel[[rel, j], :]
        pivot = panel[j, j]
        if pivot == 0.0:
            raise SingularMatrixError(f"zero pivot in column {k0 + j}")
        panel[j + 1 :, j] /= pivot
        if j + 1 < nbk:
            panel[j + 1 :, j + 1 :] -= np.outer(
                panel[j + 1 :, j], panel[j, j + 1 :]
            )
    ctx.compute(2.0 * m * nbk * nbk / 2.0, efficiency=PANEL_EFFICIENCY)
    return piv


def hpl_solve(
    ctx: RankContext,
    cfg: HPLConfig,
    grid: ProcessGrid,
    rowmap: BlockCyclicMap,
    colmap: BlockCyclicMap,
    a_loc: np.ndarray,
    b_loc: np.ndarray,
    *,
    start_panel: int = 0,
    on_panel_end: Optional[Callable[[int], None]] = None,
) -> Tuple[np.ndarray, HPLTimers]:
    """Run the elimination loop from ``start_panel`` and back-substitute.

    ``a_loc``/``b_loc`` are this rank's block-cyclic storage, mutated in
    place (they may live in SHM — that is how SKT-HPL checkpoints them).
    ``on_panel_end(k)`` fires after panel ``k``'s update completes — the
    checkpoint hook (paper Fig. 9: "checkpoints are made at the end of a
    certain iteration during the elimination step").

    Returns the replicated solution vector and this rank's phase timers.
    """
    comm = grid.comm
    n, nb = cfg.n, cfg.nb
    nbl = cfg.n_blocks
    myrow, mycol = grid.myrow, grid.mycol
    my_grows = rowmap.globals_of(myrow)
    timers = HPLTimers()

    for k in range(start_panel, nbl):
        k0 = k * nb
        nbk = min(nb, n - k0)
        pr = k % grid.P
        pc = k % grid.Q
        root_rank = grid.rank_of(pr, pc)
        # announce the panel so failure plans can aim at "the k-th panel"
        # (the ``--fail-at panel:k`` CLI spelling) and timelines show it
        ctx.phase("hpl.panel")
        with ctx.span("hpl.panel", k=k, nb=nbk):
            t0 = ctx.clock

            # ---- 1. panel assembly + factorization on process column pc ----
            panel_piv: Optional[Tuple[np.ndarray, np.ndarray]] = None
            if mycol == pc:
                lr = rowmap.local_start(myrow, k0)
                lc0 = colmap.local_index(k0)
                contrib = (my_grows[lr:], a_loc[lr:, lc0 : lc0 + nbk].copy())
                parts = grid.col_comm.gather(contrib, root=pr)
                if myrow == pr:
                    m_panel = n - k0
                    panel = np.empty((m_panel, nbk))
                    for g_rows, data in parts:
                        panel[g_rows - k0, :] = data
                    piv = _factor_panel(ctx, panel, k0)
                    panel_piv = (panel, piv)

            # ---- 2. broadcast factored panel + pivots to everyone ----
            panel, piv = comm.bcast(panel_piv, root=root_rank)
            timers.panel += ctx.clock - t0
            t0 = ctx.clock

            # ---- 3. apply row swaps to trailing columns and rhs ----
            lc_trail = colmap.local_start(mycol, k0 + nbk)
            _apply_row_swaps(
                ctx, grid, rowmap, a_loc, b_loc, piv, k0, lc_trail, tag_base=k
            )

            # panel-column writeback for the owning process column
            if mycol == pc:
                lr = rowmap.local_start(myrow, k0)
                lc0 = colmap.local_index(k0)
                a_loc[lr:, lc0 : lc0 + nbk] = panel[my_grows[lr:] - k0, :]
            timers.swap += ctx.clock - t0
            t0 = ctx.clock

            # ---- 4. U12 = L11^-1 A12 on process row pr; broadcast down columns ----
            l11 = panel[:nbk, :nbk]
            u12_y: Optional[Tuple[np.ndarray, np.ndarray]] = None
            if myrow == pr:
                lr0 = rowmap.local_index(k0)
                a12 = a_loc[lr0 : lr0 + nbk, lc_trail:]
                u12 = sla.solve_triangular(
                    l11, a12, lower=True, unit_diagonal=True
                )
                yk = sla.solve_triangular(
                    l11, b_loc[lr0 : lr0 + nbk], lower=True, unit_diagonal=True
                )
                a_loc[lr0 : lr0 + nbk, lc_trail:] = u12
                b_loc[lr0 : lr0 + nbk] = yk
                ctx.compute(
                    float(nbk) * nbk * (a12.shape[1] + 1), efficiency=PANEL_EFFICIENCY
                )
                u12_y = (u12, yk)
            u12, yk = grid.col_comm.bcast(u12_y, root=pr)

            # ---- 5. trailing update: A22 -= L21 @ U12, b22 -= L21 @ yk ----
            lr_trail = rowmap.local_start(myrow, k0 + nbk)
            l21 = panel[my_grows[lr_trail:] - k0, :]
            if l21.size and u12.size:
                a_loc[lr_trail:, lc_trail:] -= l21 @ u12
            if l21.size:
                b_loc[lr_trail:] -= l21 @ yk
            ctx.compute(
                2.0 * l21.shape[0] * nbk * (u12.shape[1] + 1),
                efficiency=GEMM_EFFICIENCY,
            )
            timers.update += ctx.clock - t0

            if on_panel_end is not None:
                on_panel_end(k)

    # ---- back substitution ----
    t0 = ctx.clock
    with ctx.span("hpl.backsub"):
        x = _back_substitute(ctx, cfg, grid, rowmap, colmap, a_loc, b_loc)
    timers.backsub += ctx.clock - t0
    return x, timers


def _apply_row_swaps(
    ctx: RankContext,
    grid: ProcessGrid,
    rowmap: BlockCyclicMap,
    a_loc: np.ndarray,
    b_loc: np.ndarray,
    piv: np.ndarray,
    k0: int,
    lc_trail: int,
    tag_base: int,
) -> None:
    """Exchange pivoted rows of the trailing columns (and rhs) between the
    owning process rows, within each process column."""
    myrow = grid.myrow
    for j, r2 in enumerate(piv):
        r1 = k0 + j
        r2 = int(r2)
        if r1 == r2:
            continue
        o1, o2 = rowmap.owner(r1), rowmap.owner(r2)
        tag = tag_base * len(piv) + j + 1000
        if o1 == o2:
            if myrow == o1:
                l1, l2 = rowmap.local_index(r1), rowmap.local_index(r2)
                a_loc[[l1, l2], lc_trail:] = a_loc[[l2, l1], lc_trail:]
                b_loc[[l1, l2]] = b_loc[[l2, l1]]
        elif myrow == o1:
            l1 = rowmap.local_index(r1)
            mine = (a_loc[l1, lc_trail:].copy(), float(b_loc[l1]))
            theirs = grid.col_comm.sendrecv(
                mine, dest=o2, source=o2, sendtag=tag, recvtag=tag
            )
            a_loc[l1, lc_trail:], b_loc[l1] = theirs
        elif myrow == o2:
            l2 = rowmap.local_index(r2)
            mine = (a_loc[l2, lc_trail:].copy(), float(b_loc[l2]))
            theirs = grid.col_comm.sendrecv(
                mine, dest=o1, source=o1, sendtag=tag, recvtag=tag
            )
            a_loc[l2, lc_trail:], b_loc[l2] = theirs


def _back_substitute(
    ctx: RankContext,
    cfg: HPLConfig,
    grid: ProcessGrid,
    rowmap: BlockCyclicMap,
    colmap: BlockCyclicMap,
    a_loc: np.ndarray,
    b_loc: np.ndarray,
) -> np.ndarray:
    """Solve Ux = y bottom-up; returns x replicated on every rank."""
    n, nb = cfg.n, cfg.nb
    x = np.zeros(n)
    for i in range(cfg.n_blocks - 1, -1, -1):
        i0 = i * nb
        nbi = min(nb, n - i0)
        pr = i % grid.P
        pc = i % grid.Q
        owner = grid.rank_of(pr, pc)

        xi = None
        if grid.comm.rank == owner:
            lr0 = rowmap.local_index(i0)
            lc0 = colmap.local_index(i0)
            uii = a_loc[lr0 : lr0 + nbi, lc0 : lc0 + nbi]
            xi = sla.solve_triangular(uii, b_loc[lr0 : lr0 + nbi], lower=False)
            ctx.compute(float(nbi) * nbi, efficiency=PANEL_EFFICIENCY)
        xi = grid.comm.bcast(xi, root=owner)
        x[i0 : i0 + nbi] = xi

        # subtract U[:, block i] @ xi from the remaining rhs rows (< i0);
        # only process column pc holds those columns, then the update is
        # shared along each process row (rhs is replicated across columns)
        lr_stop = rowmap.local_start(grid.myrow, i0)
        contrib = None
        if grid.mycol == pc and lr_stop > 0:
            lc0 = colmap.local_index(i0)
            contrib = a_loc[:lr_stop, lc0 : lc0 + nbi] @ xi
            ctx.compute(2.0 * lr_stop * nbi, efficiency=PANEL_EFFICIENCY)
        contrib = grid.row_comm.bcast(contrib, root=pc)
        if contrib is not None and lr_stop > 0:
            b_loc[:lr_stop] -= contrib
    return x


def verify(
    ctx: RankContext,
    cfg: HPLConfig,
    grid: ProcessGrid,
    rowmap: BlockCyclicMap,
    colmap: BlockCyclicMap,
    x: np.ndarray,
) -> Tuple[float, bool]:
    """HPL's scaled residual check, computed distributed.

    Regenerates the original A and b from the fixed seed (the checkpointed
    run never kept them), forms ``r = b - Ax``, and scales per the HPL
    acceptance test::

        ||r||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * n) < 16
    """
    with ctx.span("hpl.verify", n=cfg.n):
        a0 = matgen.generate_local_matrix(cfg, rowmap, colmap, grid.myrow, grid.mycol)
        b0 = matgen.generate_local_rhs(cfg, rowmap, grid.myrow)
        my_gcols = colmap.globals_of(grid.mycol)

        # r = b - A x, assembled across process rows
        partial = a0 @ x[my_gcols]
        ctx.compute(2.0 * a0.shape[0] * a0.shape[1], efficiency=GEMM_EFFICIENCY)
        row_sum = grid.row_comm.allreduce(partial)
        r_loc = b0 - row_sum
        r_inf = float(grid.comm.allreduce_obj(float(np.max(np.abs(r_loc), initial=0.0)), max))

        # ||A||_inf: max over global rows of the row sums of |A|
        a_rows = grid.row_comm.allreduce(np.abs(a0).sum(axis=1))
        a_inf = float(grid.comm.allreduce_obj(float(np.max(a_rows, initial=0.0)), max))
        b_inf = float(grid.comm.allreduce_obj(float(np.max(np.abs(b0), initial=0.0)), max))
        x_inf = float(np.max(np.abs(x)))

        eps = float(np.finfo(np.float64).eps)
        denom = eps * (a_inf * x_inf + b_inf) * cfg.n
        residual = r_inf / denom if denom > 0 else float("inf")
        return residual, residual < RESIDUAL_THRESHOLD


def hpl_main(ctx: RankContext, cfg: HPLConfig) -> HPLResult:
    """A complete original-HPL run: generate, factor, solve, verify.

    This is the baseline ("Original HPL" in Table 3) — no checkpoints, no
    fault tolerance: any node loss aborts the job irrecoverably.
    """
    grid = ProcessGrid(ctx.world, cfg.p, cfg.q)
    rowmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.p)
    colmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.q)

    with ctx.span("hpl.generate", n=cfg.n):
        a_loc = matgen.generate_local_matrix(cfg, rowmap, colmap, grid.myrow, grid.mycol)
        b_loc = matgen.generate_local_rhs(cfg, rowmap, grid.myrow)
        ctx.malloc(a_loc.nbytes + b_loc.nbytes)

    t_start = ctx.clock
    x, timers = hpl_solve(ctx, cfg, grid, rowmap, colmap, a_loc, b_loc)
    residual, passed = verify(ctx, cfg, grid, rowmap, colmap, x)
    elapsed = ctx.clock - t_start

    return HPLResult(
        config=cfg,
        x=x,
        residual=residual,
        passed=passed,
        elapsed_s=elapsed,
        gflops=cfg.flops / elapsed / 1e9 if elapsed > 0 else 0.0,
        timers=timers,
    )
