"""Master-node job daemon: the work-fail-detect-restart cycle (Fig. 10).

The paper's daemon "runs on a master node that is assumed not to fail",
watches the mpirun return status, probes the ranklist for dead nodes,
swaps in spares, and resubmits with every healthy rank pinned back to its
node (so it re-attaches its SHM checkpoints) and replacement ranks on fresh
nodes (§5.2).

This module reproduces that loop over the simulated cluster.  The phase
timings of Fig. 10 — detect, replace, restart — are policy parameters
(defaults are Tianhe-2's measured values); work/recovery time comes from
the ranks' virtual clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.sim.cluster import Cluster
from repro.sim.errors import SimError, UnrecoverableError
from repro.sim.failures import FailurePlan, FiredTrigger
from repro.sim.runtime import Job, JobResult
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import SpanTracer
    from repro.sim.observer import SimObserver


@dataclass(frozen=True)
class RestartPolicy:
    """Fixed costs of one fail-detect-restart cycle (Fig. 10 defaults,
    measured on Tianhe-2 with 24,576 processes)."""

    detect_s: float = 63.0
    replace_s: float = 10.0
    restart_s: float = 9.0
    max_restarts: int = 8

    def __post_init__(self) -> None:
        # policies round-trip through pickleable scenario specs and the
        # replay memo cache (repro.par), so malformed field values must
        # fail here rather than deep inside a worker's daemon loop
        for name in ("detect_s", "replace_s", "restart_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")

    @classmethod
    def for_machine(cls, machine_name: str, **overrides) -> "RestartPolicy":
        """Per-machine presets from §6.3: detection "is about 30 seconds on
        average [on Tianhe-1A], while the detection time on Tianhe-2 is
        about 63 seconds"."""
        detect = {"Tianhe-1A": 30.0, "Tianhe-2": 63.0}.get(machine_name)
        if detect is None:
            raise ValueError(f"no measured policy for machine {machine_name!r}")
        kwargs = dict(detect_s=detect, replace_s=10.0, restart_s=9.0)
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass
class CycleRecord:
    """One work-fail-detect-restart cycle's accounting."""

    work_s: float
    failed_nodes: List[int]
    replacements: Dict[int, int]
    detect_s: float
    replace_s: float
    restart_s: float
    #: provenance of the triggers that fired during this attempt (which
    #: announcement/clock advance killed which node) — campaign reports
    #: attribute injected failures through these
    fired: List[FiredTrigger] = field(default_factory=list)


@dataclass
class DaemonReport:
    """Outcome of running an application to completion under the daemon."""

    completed: bool
    result: Optional[JobResult]
    n_restarts: int
    cycles: List[CycleRecord] = field(default_factory=list)
    total_virtual_s: float = 0.0
    gave_up_reason: Optional[str] = None
    #: per-attempt trigger provenance, one entry per incarnation (the
    #: final — possibly successful — attempt included)
    attempt_fired: List[List[FiredTrigger]] = field(default_factory=list)

    @property
    def downtime_s(self) -> float:
        return sum(c.detect_s + c.replace_s + c.restart_s for c in self.cycles)

    @property
    def triggers_fired(self) -> List[FiredTrigger]:
        """All fired-trigger provenance records across every attempt."""
        return [rec for attempt in self.attempt_fired for rec in attempt]


class JobDaemon:
    """Runs a rank main under restart-on-failure supervision."""

    def __init__(
        self,
        cluster: Cluster,
        main: Callable[..., Any],
        n_ranks: int,
        *,
        args: Sequence[Any] = (),
        ranklist: Optional[Sequence[int]] = None,
        procs_per_node: Optional[int] = None,
        failure_plan: Optional[FailurePlan] = None,
        policy: RestartPolicy = RestartPolicy(),
        deadlock_timeout_s: float = 60.0,
        trace: Optional["Trace"] = None,
        observer: Optional["SimObserver"] = None,
        tracer: Optional["SpanTracer"] = None,
        attempt_hook: Optional[Callable[[int, JobResult], None]] = None,
        name: str = "daemon",
    ):
        self.cluster = cluster
        self.main = main
        self.n_ranks = n_ranks
        self.args = tuple(args)
        self.policy = policy
        self.name = name
        self.deadlock_timeout_s = deadlock_timeout_s
        #: the plan is shared across incarnations: triggers that have not
        #: fired yet stay armed after a restart
        self.failure_plan = failure_plan or FailurePlan()
        #: optional trace shared across incarnations (phase timelines)
        self.trace = trace
        #: optional observer shared across incarnations — installed on every
        #: job so metrics accumulate over the whole supervised run
        self.observer = observer
        #: optional span tracer shared across incarnations; the daemon bumps
        #: its incarnation index per attempt so restarted spans land on
        #: separate trace tracks
        self.tracer = tracer
        #: optional campaign hook called after every attempt with
        #: ``(attempt_index, JobResult)`` — the chaos engine uses it to
        #: watch a supervised run without wrapping the daemon
        self.attempt_hook = attempt_hook
        if ranklist is None:
            ranklist = cluster.default_ranklist(n_ranks, procs_per_node=procs_per_node)
        self.ranklist: List[int] = list(ranklist)

    def run(self) -> DaemonReport:
        """Run until the application completes, recovery becomes impossible,
        or the restart budget is exhausted.

        The report is a pure function of the constructor arguments: virtual
        clocks and byte-exact failure delivery leave no scheduler or
        wall-clock residue.  The parallel replay engine (:mod:`repro.par`)
        leans on exactly this — a supervised run can be replayed in any
        worker process, or memoized by content fingerprint, and yield the
        same verdict.
        """
        report = DaemonReport(completed=False, result=None, n_restarts=0)
        for attempt in range(self.policy.max_restarts + 1):
            if self.tracer is not None:
                self.tracer.new_incarnation(attempt)
            job = Job(
                self.cluster,
                self.main,
                self.n_ranks,
                args=self.args,
                ranklist=self.ranklist,
                failure_plan=self.failure_plan,
                deadlock_timeout_s=self.deadlock_timeout_s,
                trace=self.trace,
                observer=self.observer,
                tracer=self.tracer,
                name=f"{self.name}#{attempt}",
            )
            fired_before = len(self.failure_plan.fired_records)
            result = job.run()
            # record order: rank threads appending concurrently at the same
            # virtual time would otherwise leak scheduler order into reports
            attempt_fired = sorted(
                self.failure_plan.fired_records[fired_before:],
                key=lambda r: (
                    r.clock,
                    r.node_id,
                    r.phase or "",
                    -1 if r.rank is None else r.rank,
                ),
            )
            report.attempt_fired.append(attempt_fired)
            report.total_virtual_s += result.makespan
            report.result = result
            if self.attempt_hook is not None:
                self.attempt_hook(attempt, result)

            if result.completed:
                report.completed = True
                return report

            if any(
                isinstance(e, UnrecoverableError) for e in result.rank_errors.values()
            ):
                report.gave_up_reason = "application state unrecoverable"
                return report

            if not result.failed_nodes:
                report.gave_up_reason = (
                    "job failed without a node failure (application error)"
                )
                return report

            # fail-detect-replace-restart bookkeeping (Fig. 10)
            try:
                replacements = self.cluster.replace_dead()
            except SimError:
                report.gave_up_reason = "spare pool exhausted"
                return report
            self.ranklist = [replacements.get(n, n) for n in self.ranklist]
            cycle = CycleRecord(
                work_s=result.makespan,
                failed_nodes=list(result.failed_nodes),
                replacements=replacements,
                detect_s=self.policy.detect_s,
                replace_s=self.policy.replace_s,
                restart_s=self.policy.restart_s,
                fired=attempt_fired,
            )
            report.cycles.append(cycle)
            report.total_virtual_s += (
                cycle.detect_s + cycle.replace_s + cycle.restart_s
            )
            report.n_restarts += 1

        report.gave_up_reason = f"exceeded {self.policy.max_restarts} restarts"
        return report
