"""Distributed High-Performance Linpack on the simulated runtime.

A from-scratch right-looking LU factorization with partial pivoting on a
2-D block-cyclic process grid (the algorithm of the HPL benchmark, paper
§5.1), plus:

* :mod:`repro.hpl.skt` — SKT-HPL, the checkpoint-integrated variant that
  survives permanent node loss (the paper's artifact);
* :mod:`repro.hpl.abft` — the ABFT baseline maintaining checksum columns,
  which detects/corrects soft errors but cannot survive a node loss;
* :mod:`repro.hpl.daemon` — the master-node job daemon implementing the
  work-fail-detect-restart cycle of Fig. 10.
"""

from repro.hpl.config import HPLConfig
from repro.hpl.grid import BlockCyclicMap, ProcessGrid
from repro.hpl.matgen import generate_local_matrix, generate_local_rhs
from repro.hpl.core import HPLResult, hpl_solve, hpl_main
from repro.hpl.skt import SKTConfig, SKTResult, skt_hpl_main
from repro.hpl.abft import ABFTResult, abft_hpl_main
from repro.hpl.daemon import DaemonReport, JobDaemon, RestartPolicy

__all__ = [
    "HPLConfig",
    "ProcessGrid",
    "BlockCyclicMap",
    "generate_local_matrix",
    "generate_local_rhs",
    "HPLResult",
    "hpl_solve",
    "hpl_main",
    "SKTConfig",
    "SKTResult",
    "skt_hpl_main",
    "ABFTResult",
    "abft_hpl_main",
    "DaemonReport",
    "JobDaemon",
    "RestartPolicy",
]
