"""ABFT-HPL baseline: algorithm-based fault tolerance via checksum columns.

The Huang-Abraham family of schemes (paper refs [20, 36]) augments the
matrix with checksum data that the elimination itself keeps consistent, so
*soft errors* (bit flips / silent data corruption) can be detected and
corrected with low overhead.  We maintain two checksum vectors that are
transformed exactly like the right-hand side:

    c1 = A @ 1          (plain row sums)
    c2 = A @ w,  w_j = j+1   (index-weighted row sums)

Row operations are linear, so at any panel boundary the transformed matrix
``[0 | trailing]`` (factored rows hold U) must satisfy ``c1 = rowsum`` and
``c2 = weighted rowsum`` row by row.  A single corrupted entry in row ``g``
shows up as ``delta = c1[g] - rowsum(g)``; the weighted mismatch then
pinpoints the column: ``j = c2-mismatch / delta - 1``, and the entry is
repaired in place.

What ABFT **cannot** do — the paper's central criticism (§1, §6.2) — is
survive a permanent node loss: all its state lives in ordinary process
memory, and the MPI job aborts.  ``abft_hpl_main`` therefore allocates
nothing in SHM and performs no checkpointing; under the power-off test the
daemon finds nothing to restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.linalg as sla

from repro.hpl import matgen
from repro.hpl.config import HPLConfig
from repro.hpl.core import (
    GEMM_EFFICIENCY,
    PANEL_EFFICIENCY,
    HPLResult,
    verify,
)
from repro.hpl.grid import BlockCyclicMap, ProcessGrid
from repro.sim.runtime import RankContext

#: mismatch below this (relative to row magnitude) is rounding, not an error
_DETECT_RTOL = 1e-6


@dataclass(frozen=True)
class SoftErrorInjection:
    """Flip one matrix entry after a given panel's update."""

    panel: int
    world_rank: int
    magnitude: float = 1.0


@dataclass
class ABFTResult:
    hpl: HPLResult
    errors_detected: int
    errors_corrected: int
    checks_run: int


class _ChecksumState:
    """The two checksum vectors, updated like extra rhs columns."""

    def __init__(
        self,
        ctx: RankContext,
        cfg: HPLConfig,
        grid: ProcessGrid,
        rowmap: BlockCyclicMap,
        colmap: BlockCyclicMap,
        a_loc: np.ndarray,
    ):
        self.ctx = ctx
        self.cfg = cfg
        self.grid = grid
        self.rowmap = rowmap
        self.colmap = colmap
        my_gcols = colmap.globals_of(grid.mycol)
        w = (my_gcols + 1).astype(np.float64)
        # partial sums over local columns, completed across the process row
        self.c1 = grid.row_comm.allreduce(a_loc @ np.ones(len(my_gcols)))
        self.c2 = grid.row_comm.allreduce(a_loc @ w)
        self.detected = 0
        self.corrected = 0
        self.checks = 0

    def apply_panel_ops(
        self,
        panel: np.ndarray,
        piv: np.ndarray,
        k0: int,
        nbk: int,
        pr: int,
    ) -> None:
        """Mirror the row swaps / L11 solve / L21 update on c1, c2."""
        grid, rowmap, ctx = self.grid, self.rowmap, self.ctx
        # row swaps (checksums are replicated across process columns, like b)
        for j, r2 in enumerate(piv):
            r1 = k0 + j
            r2 = int(r2)
            if r1 == r2:
                continue
            o1, o2 = rowmap.owner(r1), rowmap.owner(r2)
            tag = 5000 + k0 + j
            if o1 == o2:
                if grid.myrow == o1:
                    l1, l2 = rowmap.local_index(r1), rowmap.local_index(r2)
                    for c in (self.c1, self.c2):
                        c[[l1, l2]] = c[[l2, l1]]
            elif grid.myrow == o1:
                l1 = rowmap.local_index(r1)
                mine = (float(self.c1[l1]), float(self.c2[l1]))
                self.c1[l1], self.c2[l1] = grid.col_comm.sendrecv(
                    mine, dest=o2, source=o2, sendtag=tag, recvtag=tag
                )
            elif grid.myrow == o2:
                l2 = rowmap.local_index(r2)
                mine = (float(self.c1[l2]), float(self.c2[l2]))
                self.c1[l2], self.c2[l2] = grid.col_comm.sendrecv(
                    mine, dest=o1, source=o1, sendtag=tag, recvtag=tag
                )
        # L11 solve on the pivot block rows, then the L21 update below
        l11 = panel[:nbk, :nbk]
        y = None
        if grid.myrow == pr:
            lr0 = rowmap.local_index(k0)
            y1 = sla.solve_triangular(
                l11, self.c1[lr0 : lr0 + nbk], lower=True, unit_diagonal=True
            )
            y2 = sla.solve_triangular(
                l11, self.c2[lr0 : lr0 + nbk], lower=True, unit_diagonal=True
            )
            self.c1[lr0 : lr0 + nbk] = y1
            self.c2[lr0 : lr0 + nbk] = y2
            y = (y1, y2)
        y1, y2 = grid.col_comm.bcast(y, root=pr)
        lr_trail = rowmap.local_start(grid.myrow, k0 + nbk)
        my_grows = rowmap.globals_of(grid.myrow)
        l21 = panel[my_grows[lr_trail:] - k0, :]
        if l21.size:
            self.c1[lr_trail:] -= l21 @ y1
            self.c2[lr_trail:] -= l21 @ y2
        ctx.compute(4.0 * l21.shape[0] * nbk, efficiency=GEMM_EFFICIENCY)

    def check_and_correct(self, a_loc: np.ndarray, k_next: int) -> None:
        """Verify the checksum invariant; locate and repair a single
        corrupted entry per row if found.

        For factored rows (global < ``k_next * nb``) the transformed row is
        its U part; trailing rows are their trailing columns.
        """
        grid, rowmap, colmap, ctx = self.grid, self.rowmap, self.colmap, self.ctx
        my_grows = rowmap.globals_of(grid.myrow)
        my_gcols = colmap.globals_of(grid.mycol)
        w = (my_gcols + 1).astype(np.float64)
        boundary = k_next * self.cfg.nb

        # each row's live columns: j >= row's own global index (U part) for
        # factored rows, j >= boundary for trailing rows
        cutoffs = np.where(my_grows < boundary, my_grows, boundary)
        mask = my_gcols[None, :] >= cutoffs[:, None]
        s1 = grid.row_comm.allreduce((a_loc * mask) @ np.ones(len(my_gcols)))
        s2 = grid.row_comm.allreduce((a_loc * mask) @ w)
        ctx.compute(4.0 * a_loc.size, efficiency=GEMM_EFFICIENCY)
        self.checks += 1

        scale = np.maximum(np.abs(s1), 1.0)
        bad = np.nonzero(np.abs(self.c1 - s1) > _DETECT_RTOL * scale)[0]
        for lr in bad:
            delta = float(self.c1[lr] - s1[lr])
            wdelta = float(self.c2[lr] - s2[lr])
            self.detected += 1
            gcol = int(round(wdelta / delta)) - 1
            owner_pc = colmap.owner(gcol) if 0 <= gcol < self.cfg.n else -1
            if owner_pc == grid.mycol:
                a_loc[lr, colmap.local_index(gcol)] += delta
            if 0 <= gcol < self.cfg.n:
                self.corrected += 1


def abft_hpl_main(
    ctx: RankContext,
    cfg: HPLConfig,
    *,
    inject: Optional[SoftErrorInjection] = None,
    check_every: int = 1,
) -> ABFTResult:
    """ABFT-HPL rank main: HPL + checksum maintenance + per-panel checks.

    Soft errors injected via ``inject`` are detected and repaired; node
    losses are fatal (no state survives the process).
    """
    grid = ProcessGrid(ctx.world, cfg.p, cfg.q)
    rowmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.p)
    colmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.q)

    a_loc = matgen.generate_local_matrix(cfg, rowmap, colmap, grid.myrow, grid.mycol)
    b_loc = matgen.generate_local_rhs(cfg, rowmap, grid.myrow)
    ctx.malloc(a_loc.nbytes + b_loc.nbytes)

    checksums = _ChecksumState(ctx, cfg, grid, rowmap, colmap, a_loc)

    def on_panel_end(k: int) -> None:
        # the panel's transforms were applied inside hpl_solve; the
        # checksum state mirrored them through _PanelObserver below
        if (k + 1) % check_every == 0:
            if inject is not None and inject.panel == k and (
                ctx.world.rank == inject.world_rank
            ):
                lr = a_loc.shape[0] - 1
                lc = a_loc.shape[1] - 1
                a_loc[lr, lc] += inject.magnitude  # silent corruption
            checksums.check_and_correct(a_loc, k + 1)

    t_start = ctx.clock
    x, timers = _hpl_solve_with_observer(
        ctx, cfg, grid, rowmap, colmap, a_loc, b_loc, checksums, on_panel_end
    )
    residual, passed = verify(ctx, cfg, grid, rowmap, colmap, x)
    elapsed = ctx.clock - t_start

    return ABFTResult(
        hpl=HPLResult(
            config=cfg,
            x=x,
            residual=residual,
            passed=passed,
            elapsed_s=elapsed,
            gflops=cfg.flops / elapsed / 1e9 if elapsed > 0 else 0.0,
            timers=timers,
        ),
        errors_detected=checksums.detected,
        errors_corrected=checksums.corrected,
        checks_run=checksums.checks,
    )


def _hpl_solve_with_observer(
    ctx, cfg, grid, rowmap, colmap, a_loc, b_loc, checksums, on_panel_end
):
    """The HPL elimination loop with the checksum vectors transformed in
    lock-step.

    The checksum transforms need each panel's factors and pivots *before*
    they are discarded, so the loop is inlined here (sharing the phase
    helpers with :mod:`repro.hpl.core`) rather than driven through
    ``hpl_solve``'s end-of-panel hook."""
    from repro.hpl import core as _core

    n, nb = cfg.n, cfg.nb
    nbl = cfg.n_blocks
    my_grows = rowmap.globals_of(grid.myrow)
    timers = _core.HPLTimers()

    for k in range(nbl):
        k0 = k * nb
        nbk = min(nb, n - k0)
        pr = k % grid.P
        pc = k % grid.Q
        root_rank = grid.rank_of(pr, pc)
        t0 = ctx.clock

        panel_piv = None
        if grid.mycol == pc:
            lr = rowmap.local_start(grid.myrow, k0)
            lc0 = colmap.local_index(k0)
            contrib = (my_grows[lr:], a_loc[lr:, lc0 : lc0 + nbk].copy())
            parts = grid.col_comm.gather(contrib, root=pr)
            if grid.myrow == pr:
                panel = np.empty((n - k0, nbk))
                for g_rows, data in parts:
                    panel[g_rows - k0, :] = data
                piv = _core._factor_panel(ctx, panel, k0)
                panel_piv = (panel, piv)
        panel, piv = grid.comm.bcast(panel_piv, root=root_rank)
        timers.panel += ctx.clock - t0
        t0 = ctx.clock

        lc_trail = colmap.local_start(grid.mycol, k0 + nbk)
        _core._apply_row_swaps(
            ctx, grid, rowmap, a_loc, b_loc, piv, k0, lc_trail, tag_base=k
        )
        if grid.mycol == pc:
            lr = rowmap.local_start(grid.myrow, k0)
            lc0 = colmap.local_index(k0)
            a_loc[lr:, lc0 : lc0 + nbk] = panel[my_grows[lr:] - k0, :]
        timers.swap += ctx.clock - t0
        t0 = ctx.clock

        l11 = panel[:nbk, :nbk]
        u12_y = None
        if grid.myrow == pr:
            lr0 = rowmap.local_index(k0)
            a12 = a_loc[lr0 : lr0 + nbk, lc_trail:]
            u12 = sla.solve_triangular(l11, a12, lower=True, unit_diagonal=True)
            yk = sla.solve_triangular(
                l11, b_loc[lr0 : lr0 + nbk], lower=True, unit_diagonal=True
            )
            a_loc[lr0 : lr0 + nbk, lc_trail:] = u12
            b_loc[lr0 : lr0 + nbk] = yk
            ctx.compute(
                float(nbk) * nbk * (a12.shape[1] + 1),
                efficiency=PANEL_EFFICIENCY,
            )
            u12_y = (u12, yk)
        u12, yk = grid.col_comm.bcast(u12_y, root=pr)

        lr_trail = rowmap.local_start(grid.myrow, k0 + nbk)
        l21 = panel[my_grows[lr_trail:] - k0, :]
        if l21.size and u12.size:
            a_loc[lr_trail:, lc_trail:] -= l21 @ u12
        if l21.size:
            b_loc[lr_trail:] -= l21 @ yk
        ctx.compute(
            2.0 * l21.shape[0] * nbk * (u12.shape[1] + 1),
            efficiency=GEMM_EFFICIENCY,
        )
        timers.update += ctx.clock - t0

        # mirror the panel's row ops onto the checksum vectors (ABFT's
        # extra work, charged above the plain HPL cost)
        checksums.apply_panel_ops(panel, piv, k0, nbk, pr)
        on_panel_end(k)

    t0 = ctx.clock
    x = _core._back_substitute(ctx, cfg, grid, rowmap, colmap, a_loc, b_loc)
    timers.backsub += ctx.clock - t0
    return x, timers
