"""Deterministic distributed matrix generation.

HPL fills A and b with pseudo-random numbers from a fixed seed, which is
what lets a restarted run skip regeneration ("matrix A and b are always the
same since the HPL test uses a fixed random seed", paper §5.2).  We derive
one RNG stream per global ``nb x nb`` block from ``(seed, I, J)``
(:func:`repro.util.rng.block_rng`), so any rank can (re)generate any block
identically — including a replacement rank re-deriving blocks it never
owned, and the verification step rebuilding the original A.

A small diagonal boost keeps the random matrices comfortably conditioned so
residual checks are meaningful at small n.
"""

from __future__ import annotations

import numpy as np

from repro.hpl.config import HPLConfig
from repro.hpl.grid import BlockCyclicMap
from repro.util.rng import block_rng

#: added to diagonal entries, scaled by n, to keep test matrices
#: well-conditioned without changing the algorithm exercised
_DIAG_BOOST = 2.0


def generate_block(cfg: HPLConfig, bi: int, bj: int) -> np.ndarray:
    """The ``nb x nb`` (edge: smaller) block at block coordinates (bi, bj)."""
    nb = cfg.nb
    rows = min(nb, cfg.n - bi * nb)
    cols = min(nb, cfg.n - bj * nb)
    rng = block_rng(cfg.seed, bi, bj)
    block = rng.uniform(-0.5, 0.5, size=(rows, cols))
    if bi == bj:
        np.fill_diagonal(block, block.diagonal() + _DIAG_BOOST)
    return block


def generate_local_matrix(
    cfg: HPLConfig,
    rowmap: BlockCyclicMap,
    colmap: BlockCyclicMap,
    myrow: int,
    mycol: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Fill this rank's local block-cyclic storage with its blocks of A."""
    lrows = rowmap.local_count(myrow)
    lcols = colmap.local_count(mycol)
    if out is None:
        out = np.zeros((lrows, lcols))
    elif out.shape != (lrows, lcols):
        raise ValueError(f"out has shape {out.shape}, expected {(lrows, lcols)}")
    nb = cfg.nb
    my_grows = rowmap.globals_of(myrow)
    my_gcols = colmap.globals_of(mycol)
    row_blocks = np.unique(my_grows // nb)
    col_blocks = np.unique(my_gcols // nb)
    for bi in row_blocks:
        lr0 = rowmap.local_index(bi * nb)
        h = min(nb, cfg.n - bi * nb)
        for bj in col_blocks:
            lc0 = colmap.local_index(bj * nb)
            w = min(nb, cfg.n - bj * nb)
            out[lr0 : lr0 + h, lc0 : lc0 + w] = generate_block(cfg, bi, bj)
    return out


def generate_rhs_segment(cfg: HPLConfig, bi: int) -> np.ndarray:
    """The rows of b in block row ``bi`` (streams disjoint from A's)."""
    rows = min(cfg.nb, cfg.n - bi * cfg.nb)
    rng = block_rng(cfg.seed, bi, cfg.n_blocks + 1)  # column index past A
    return rng.uniform(-0.5, 0.5, size=rows)


def generate_local_rhs(
    cfg: HPLConfig,
    rowmap: BlockCyclicMap,
    myrow: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """This rank's rows of b (replicated across process columns)."""
    lrows = rowmap.local_count(myrow)
    if out is None:
        out = np.zeros(lrows)
    elif out.shape != (lrows,):
        raise ValueError(f"out has shape {out.shape}, expected {(lrows,)}")
    nb = cfg.nb
    my_grows = rowmap.globals_of(myrow)
    for bi in np.unique(my_grows // nb):
        lr0 = rowmap.local_index(bi * nb)
        seg = generate_rhs_segment(cfg, bi)
        out[lr0 : lr0 + len(seg)] = seg
    return out


def dense_matrix(cfg: HPLConfig) -> np.ndarray:
    """The full A, assembled serially — for verification at small n."""
    a = np.zeros((cfg.n, cfg.n))
    nb = cfg.nb
    for bi in range(cfg.n_blocks):
        for bj in range(cfg.n_blocks):
            h = min(nb, cfg.n - bi * nb)
            w = min(nb, cfg.n - bj * nb)
            a[bi * nb : bi * nb + h, bj * nb : bj * nb + w] = generate_block(
                cfg, bi, bj
            )
    return a


def dense_rhs(cfg: HPLConfig) -> np.ndarray:
    b = np.zeros(cfg.n)
    nb = cfg.nb
    for bi in range(cfg.n_blocks):
        seg = generate_rhs_segment(cfg, bi)
        b[bi * nb : bi * nb + len(seg)] = seg
    return b
