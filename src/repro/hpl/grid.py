"""2-D process grid and block-cyclic index arithmetic.

The matrix is partitioned into ``nb x nb`` blocks; block (I, J) lives on
process (I mod P, J mod Q) — the standard ScaLAPACK/HPL layout.  A
:class:`BlockCyclicMap` precomputes, for one grid dimension, the mapping
between global indices and (owner, local index) pairs; a
:class:`ProcessGrid` owns the row/column communicators and two such maps.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sim.mpi import Communicator


class BlockCyclicMap:
    """Block-cyclic distribution of ``n`` indices over ``nprocs`` processes.

    Precomputes dense lookup arrays — fine for the laptop-scale problem
    sizes the simulator runs (n up to a few thousand).
    """

    def __init__(self, n: int, nb: int, nprocs: int):
        if n < 1 or nb < 1 or nprocs < 1:
            raise ValueError("n, nb, nprocs must be >= 1")
        self.n = n
        self.nb = nb
        self.nprocs = nprocs
        g = np.arange(n)
        blocks = g // nb
        self._owner = (blocks % nprocs).astype(np.int32)
        # local index: full local blocks before mine, plus offset in block
        self._local = (blocks // nprocs) * nb + (g % nb)
        self._local = self._local.astype(np.int64)
        # per-process: global indices in local order
        self._globals: List[np.ndarray] = [
            g[self._owner == p] for p in range(nprocs)
        ]

    def owner(self, i: int) -> int:
        """Process owning global index ``i``."""
        return int(self._owner[i])

    def local_index(self, i: int) -> int:
        """Local position of global index ``i`` on its owner."""
        return int(self._local[i])

    def local_count(self, proc: int) -> int:
        return len(self._globals[proc])

    def globals_of(self, proc: int) -> np.ndarray:
        """Global indices owned by ``proc``, in local storage order."""
        return self._globals[proc]

    def local_range_from(self, proc: int, g_start: int) -> np.ndarray:
        """Local indices on ``proc`` whose global index >= ``g_start``
        (the trailing-submatrix slice)."""
        gl = self._globals[proc]
        return np.nonzero(gl >= g_start)[0]

    def local_start(self, proc: int, g_start: int) -> int:
        """First local index on ``proc`` with global index >= ``g_start``.

        Local storage order follows global order, so the trailing
        submatrix is always the suffix ``[local_start:, ...]`` — a view,
        not a gather.
        """
        return int(np.searchsorted(self._globals[proc], g_start))

    def block_owner(self, block: int) -> int:
        return block % self.nprocs

    def n_blocks(self) -> int:
        return -(-self.n // self.nb)


class ProcessGrid:
    """P x Q grid over a communicator, with row/column sub-communicators.

    Rank layout is row-major: rank = p * Q + q, so a *process row* shares
    ``p`` (spans all columns) and a *process column* shares ``q``.
    """

    def __init__(self, comm: Communicator, p: int, q: int):
        if comm.size != p * q:
            raise ValueError(
                f"grid {p}x{q} needs {p * q} ranks, communicator has {comm.size}"
            )
        self.comm = comm
        self.P = p
        self.Q = q
        me = comm.rank
        self.myrow = me // q  # my process-row index   (0..P-1)
        self.mycol = me % q  # my process-column index (0..Q-1)
        #: all ranks with my row index — spans the Q columns
        self.row_comm = comm.split(color=self.myrow, key=self.mycol)
        #: all ranks with my column index — spans the P rows
        self.col_comm = comm.split(color=self.mycol, key=self.myrow)

    def rank_of(self, prow: int, pcol: int) -> int:
        """Communicator rank of grid position (prow, pcol)."""
        return prow * self.Q + pcol

    def coords_of(self, rank: int) -> Tuple[int, int]:
        return rank // self.Q, rank % self.Q

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessGrid({self.P}x{self.Q}, me=({self.myrow},{self.mycol}))"
