"""SKT-HPL: fault-tolerant HPL on the self-checkpoint mechanism (paper §5).

The workflow follows Fig. 9: the local matrix and rhs live in SHM via the
checkpoint manager (they *are* the self-checkpoint workspace A1), the panel
counter rides in A2, and a checkpoint is taken at the end of every
``interval_panels``-th elimination iteration.  After a restart,
``try_restore`` either recovers the workspace (skipping matrix generation —
"SKT-HPL can skip the generation of matrix A and b", §5.2) or reports a
fresh start, in which case the fixed-seed generator refills it.

Back substitution, verification and reporting are not checkpointed — they
take far less time than any realistic MTBF (§5.1).

The same entry point also runs the *other* checkpoint methods of Table 3
(single/double/disk/multilevel) by swapping ``method``, which is how the
comparison benchmark drives all rows through identical code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ckpt.manager import CheckpointManager
from repro.hpl import matgen
from repro.hpl.config import HPLConfig
from repro.hpl.core import HPLResult, hpl_solve, verify
from repro.hpl.grid import BlockCyclicMap, ProcessGrid
from repro.sim.runtime import RankContext


@dataclass(frozen=True)
class SKTConfig:
    """SKT-HPL = an HPL problem + a checkpoint policy.

    With ``auto_interval_mtbf_s`` set, the checkpoint period re-tunes
    itself after every checkpoint from Young's formula,
    ``T_opt = sqrt(2 * delta * MTBF)``, using the *measured* checkpoint
    cost ``delta`` and the observed per-panel time — the paper fixes a
    10-minute period (Table 3); this knob derives it instead.
    """

    hpl: HPLConfig
    method: str = "self"
    group_size: int = 8
    interval_panels: int = 4
    op: str = "xor"
    strategy: str = "stride"
    a2_capacity: int = 4096
    auto_interval_mtbf_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval_panels < 1:
            raise ValueError("interval_panels must be >= 1")
        if self.auto_interval_mtbf_s is not None and self.auto_interval_mtbf_s <= 0:
            raise ValueError("auto_interval_mtbf_s must be positive")


@dataclass
class SKTResult:
    """Per-rank outcome of an SKT-HPL run."""

    hpl: HPLResult
    restored: bool
    restored_panel: int
    restore_source: Optional[str]
    n_checkpoints: int
    ckpt_encode_s: float
    ckpt_flush_s: float
    overhead_bytes: int


def skt_hpl_main(ctx: RankContext, scfg: SKTConfig) -> SKTResult:
    """Rank main for SKT-HPL (run it under a Job / JobDaemon)."""
    cfg = scfg.hpl
    grid = ProcessGrid(ctx.world, cfg.p, cfg.q)
    rowmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.p)
    colmap = BlockCyclicMap(cfg.n, cfg.nb, cfg.q)
    lrows = rowmap.local_count(grid.myrow)
    lcols = colmap.local_count(grid.mycol)

    mgr = CheckpointManager(
        ctx,
        ctx.world,
        group_size=scfg.group_size,
        method=scfg.method,
        strategy=scfg.strategy,
        op=scfg.op,
        prefix="skt",
        a2_capacity=scfg.a2_capacity,
    )
    a_loc = mgr.alloc("A", (lrows, lcols))
    b_loc = mgr.alloc("b", lrows)
    mgr.commit()

    report = mgr.try_restore()
    if report is not None:
        start_panel = int(report.local["panel"])
    else:
        start_panel = 0
        with ctx.span("hpl.generate", n=cfg.n, nbytes=int(a_loc.nbytes + b_loc.nbytes)):
            matgen.generate_local_matrix(
                cfg, rowmap, colmap, grid.myrow, grid.mycol, out=a_loc
            )
            matgen.generate_local_rhs(cfg, rowmap, grid.myrow, out=b_loc)

    nbl = cfg.n_blocks
    pace = {
        "interval": scfg.interval_panels,
        "last_ckpt_panel": start_panel,
        "loop_start_clock": None,
        "panels_done": 0,
    }

    def on_panel_end(k: int) -> None:
        if pace["loop_start_clock"] is None:
            pace["loop_start_clock"] = ctx.clock
        pace["panels_done"] += 1
        # checkpoint at the end of the iteration (Fig. 9); skip the last
        # panel — back substitution follows immediately and is cheap
        if k + 1 - pace["last_ckpt_panel"] >= pace["interval"] and k + 1 < nbl:
            mgr.local["panel"] = k + 1
            info = mgr.checkpoint()
            pace["last_ckpt_panel"] = k + 1
            if scfg.auto_interval_mtbf_s is not None:
                from repro.ckpt.interval import optimal_interval_young

                elapsed = max(1e-12, ctx.clock - pace["loop_start_clock"])
                panel_s = elapsed / pace["panels_done"]
                t_opt = optimal_interval_young(
                    max(info.total_seconds, 1e-9), scfg.auto_interval_mtbf_s
                )
                pace["interval"] = max(1, int(round(t_opt / panel_s)))

    t_start = ctx.clock
    x, timers = hpl_solve(
        ctx,
        cfg,
        grid,
        rowmap,
        colmap,
        a_loc,
        b_loc,
        start_panel=start_panel,
        on_panel_end=on_panel_end,
    )
    residual, passed = verify(ctx, cfg, grid, rowmap, colmap, x)
    elapsed = ctx.clock - t_start

    impl = mgr.impl
    return SKTResult(
        hpl=HPLResult(
            config=cfg,
            x=x,
            residual=residual,
            passed=passed,
            elapsed_s=elapsed,
            gflops=cfg.flops / elapsed / 1e9 if elapsed > 0 else 0.0,
            timers=timers,
        ),
        restored=report is not None,
        restored_panel=start_panel,
        restore_source=report.source if report else None,
        n_checkpoints=getattr(impl, "n_checkpoints", 0),
        ckpt_encode_s=getattr(impl, "total_encode_seconds", 0.0),
        ckpt_flush_s=getattr(impl, "total_flush_seconds", 0.0)
        + getattr(impl, "total_write_seconds", 0.0),
        overhead_bytes=mgr.overhead_bytes,
    )
