"""HPL.dat parsing and generation.

The netlib HPL benchmark is configured by a fixed-format ``HPL.dat`` file:
line-oriented, value-first, with a comment after each value, and sweep
lines listing "# of Ns / Ns / # of NBs / NBs / ..." (one run per
(N, NB, P, Q) combination).  This module reads the subset of that format
needed to drive :class:`repro.hpl.config.HPLConfig` sweeps — so existing
HPL.dat files work unchanged — and writes equivalent files back.

Only the problem-geometry lines are interpreted; algorithmic tuning knobs
(PFACTs, bcast variants, lookahead depths) are accepted and ignored, since
this implementation has a single code path for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hpl.config import HPLConfig


@dataclass(frozen=True)
class HPLDat:
    """The geometry content of one HPL.dat file."""

    ns: List[int]
    nbs: List[int]
    grids: List[tuple]  # (P, Q) pairs
    seed: int = 42

    def configs(self) -> List[HPLConfig]:
        """One config per (N, NB, (P, Q)) combination, in HPL's order."""
        out = []
        for p, q in self.grids:
            for nb in self.nbs:
                for n in self.ns:
                    out.append(HPLConfig(n=n, nb=nb, p=p, q=q, seed=self.seed))
        return out


def _values(line: str) -> List[str]:
    """The whitespace-separated value tokens before the comment text.

    HPL.dat lines look like ``4            # of problems sizes (N)`` —
    values first, then a human label; tokens stop at the first token that
    is not numeric.
    """
    toks = line.split()
    vals = []
    for t in toks:
        try:
            float(t)
        except ValueError:
            break
        vals.append(t)
    return vals


def parse_hpl_dat(text: str) -> HPLDat:
    """Parse the geometry lines of an HPL.dat file.

    Raises :class:`ValueError` on files whose counts and lists disagree.
    """
    lines = [l for l in text.splitlines() if l.strip()]
    if len(lines) < 12:
        raise ValueError(
            f"HPL.dat needs at least 12 lines (got {len(lines)}); "
            "see examples/HPL.dat for the expected layout"
        )
    # lines[0:2] are the header comment lines; [2] output file; [3] device
    n_ns = int(_values(lines[4])[0])
    ns = [int(v) for v in _values(lines[5])][:n_ns]
    if len(ns) != n_ns:
        raise ValueError(f"expected {n_ns} problem sizes, found {len(ns)}")
    n_nbs = int(_values(lines[6])[0])
    nbs = [int(v) for v in _values(lines[7])][:n_nbs]
    if len(nbs) != n_nbs:
        raise ValueError(f"expected {n_nbs} block sizes, found {len(nbs)}")
    # lines[8] PMAP; [9] # of grids; [10] Ps; [11] Qs
    n_grids = int(_values(lines[9])[0])
    ps = [int(v) for v in _values(lines[10])][:n_grids]
    qs = [int(v) for v in _values(lines[11])][:n_grids]
    if len(ps) != n_grids or len(qs) != n_grids:
        raise ValueError(f"expected {n_grids} process grids")
    return HPLDat(ns=ns, nbs=nbs, grids=list(zip(ps, qs)))


def format_hpl_dat(dat: HPLDat) -> str:
    """Write an HPL.dat file equivalent to ``dat`` (netlib layout)."""

    def row(vals: Sequence[object], label: str) -> str:
        return f"{' '.join(str(v) for v in vals):<20} {label}"

    return "\n".join(
        [
            "HPLinpack benchmark input file",
            "repro — Self-Checkpoint reproduction",
            row(["HPL.out"], "output file name (if any)"),
            row([6], "device out (6=stdout,7=stderr,file)"),
            row([len(dat.ns)], "# of problems sizes (N)"),
            row(dat.ns, "Ns"),
            row([len(dat.nbs)], "# of NBs"),
            row(dat.nbs, "NBs"),
            row([0], "PMAP process mapping (0=Row-,1=Column-major)"),
            row([len(dat.grids)], "# of process grids (P x Q)"),
            row([p for p, _ in dat.grids], "Ps"),
            row([q for _, q in dat.grids], "Qs"),
        ]
    )
