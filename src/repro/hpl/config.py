"""HPL problem configuration (the HPL.dat equivalent)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HPLConfig:
    """Parameters of one HPL run.

    Attributes
    ----------
    n:
        Global problem size (the matrix is n x n).
    nb:
        Block size of the block-cyclic distribution and panel width.
    p, q:
        Process grid dimensions; ``p * q`` ranks are required.
    seed:
        Matrix generator seed.  HPL regenerates A and b from this fixed
        seed on restart (paper §5.2), so it is part of the configuration.
    """

    n: int
    nb: int
    p: int
    q: int
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if not 1 <= self.nb <= self.n:
            raise ValueError("nb must be in [1, n]")
        if self.p < 1 or self.q < 1:
            raise ValueError("grid dims must be >= 1")

    @property
    def n_ranks(self) -> int:
        return self.p * self.q

    @property
    def n_blocks(self) -> int:
        """Number of block rows/columns (panels)."""
        return -(-self.n // self.nb)

    @property
    def flops(self) -> float:
        """Nominal LU+solve operation count: 2/3 n^3 + 3/2 n^2 (the value
        HPL divides by runtime to report GFLOPS)."""
        n = float(self.n)
        return (2.0 / 3.0) * n**3 + 1.5 * n**2

    def memory_per_rank(self) -> int:
        """Approximate per-rank workspace bytes (matrix + rhs)."""
        per_rank_elems = (self.n * self.n) / self.n_ranks + self.n / self.p
        return int(per_rank_elems * 8)
