"""The HPL efficiency model of paper section 4.

HPL's work is O(N^3) compute plus O(N^2) communication/memory traffic, so
its efficiency (achieved/peak) as a function of problem size N is

    E(N) = gamma N^3 / (alpha N^3 + beta N^2) = N / (aN + b),   a > 1  (Eq. 5)

``1/E = a + b/N`` is *linear in 1/N*, so the model is fit with ordinary
least squares on transformed data — that is how the curve in Fig. 7 is
obtained from measured (N, efficiency) points.

Shrinking available memory by a factor ``k`` shrinks the problem to
``N2 = sqrt(k) N1`` (the matrix is N^2 doubles), and Eq. 8 bounds the
resulting efficiency from below:

    e2 >= sqrt(k) e1 / (1 - (1 - sqrt(k)) e1)

These two functions generate Figs. 7, 8, 11 and 12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class EfficiencyModel:
    """E(N) = N / (aN + b) with a > 1 (a = alpha/gamma, b = beta/gamma)."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a < 1.0:
            raise ValueError(f"a must be >= 1 (got {self.a}); E cannot exceed 1")
        if self.b < 0:
            raise ValueError("b must be >= 0")

    def efficiency(self, n: float) -> float:
        """E(N) for problem size ``n``."""
        if n <= 0:
            raise ValueError("problem size must be positive")
        return n / (self.a * n + self.b)

    def runtime(self, n: float, peak_flops: float) -> float:
        """Modeled wall time of an HPL run of size ``n`` on ``peak_flops``."""
        work = (2.0 / 3.0) * n**3 + 1.5 * n**2
        return work / (peak_flops * self.efficiency(n))

    @property
    def asymptote(self) -> float:
        """E(inf) = 1/a, the efficiency ceiling of the machine."""
        return 1.0 / self.a


def fit_efficiency_model(
    sizes: Sequence[float], efficiencies: Sequence[float]
) -> EfficiencyModel:
    """Least-squares fit of Eq. 5 via the linearization 1/E = a + b/N."""
    n = np.asarray(sizes, dtype=float)
    e = np.asarray(efficiencies, dtype=float)
    if len(n) != len(e) or len(n) < 2:
        raise ValueError("need >= 2 (size, efficiency) pairs")
    if np.any(n <= 0) or np.any(e <= 0) or np.any(e > 1):
        raise ValueError("sizes must be positive, efficiencies in (0, 1]")
    x = 1.0 / n
    y = 1.0 / e
    b, a = np.polyfit(x, y, 1)
    return EfficiencyModel(a=max(1.0, float(a)), b=max(0.0, float(b)))


def efficiency_lower_bound(e1: float, k: float) -> float:
    """Eq. 8: a lower bound on efficiency when only fraction ``k`` of the
    memory is available, given full-memory efficiency ``e1``."""
    if not 0 < k <= 1:
        raise ValueError("k must be in (0, 1]")
    if not 0 < e1 <= 1:
        raise ValueError("e1 must be in (0, 1]")
    rk = math.sqrt(k)
    return rk * e1 / (1.0 - (1.0 - rk) * e1)


def efficiency_at_memory_fraction(model: EfficiencyModel, n1: float, k: float) -> float:
    """Exact model value at the reduced problem size N2 = sqrt(k) N1."""
    if not 0 < k <= 1:
        raise ValueError("k must be in (0, 1]")
    return model.efficiency(math.sqrt(k) * n1)


def problem_size_for_memory(
    mem_bytes_total: float, fill_fraction: float = 1.0
) -> int:
    """Largest N whose N^2 doubles fit in ``fill_fraction`` of the memory —
    how HPL problem sizes are chosen from a memory budget."""
    if mem_bytes_total <= 0 or not 0 < fill_fraction <= 1:
        raise ValueError("memory and fill fraction must be positive")
    return int(math.sqrt(mem_bytes_total * fill_fraction / 8.0))


def fit_quality(
    model: EfficiencyModel,
    sizes: Sequence[float],
    efficiencies: Sequence[float],
) -> float:
    """R^2 of the model against measured points (for Fig. 7/12 reporting)."""
    e = np.asarray(efficiencies, dtype=float)
    pred = np.array([model.efficiency(n) for n in sizes])
    ss_res = float(np.sum((e - pred) ** 2))
    ss_tot = float(np.sum((e - np.mean(e)) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot
