"""Machine descriptions: paper Table 2 plus the local test cluster.

Peak figures and memory are Table 2 verbatim; the port-sharing ratios come
from section 6.6 ("a network port of Tianhe-2 is shared by 24 processes,
while in Tianhe-1A one port is only shared by 12").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.netmodel import NetworkParams
from repro.sim.node import NodeSpec
from repro.util import GiB


@dataclass(frozen=True)
class MachineSpec:
    """A named machine with its node spec and scale used in the paper."""

    name: str
    node: NodeSpec
    paper_ranks: int  # process count used in the paper's runs
    #: paper-measured full-memory HPL efficiency (section 6.4), used to
    #: calibrate the efficiency model at paper scale
    full_memory_efficiency: float

    @property
    def peak_flops(self) -> float:
        """Peak of one node."""
        return self.node.flops

    def cluster_peak(self, n_nodes: int) -> float:
        return self.node.flops * n_nodes

    def nodes_for_ranks(self, n_ranks: int) -> int:
        return -(-n_ranks // self.node.cores)


TIANHE_1A = MachineSpec(
    name="Tianhe-1A",
    node=NodeSpec(
        cores=12,
        flops=140e9,
        mem_bytes=48 * GiB,
        net=NetworkParams(
            latency_s=2.0e-6, bandwidth_Bps=6.9e9, procs_per_port=12
        ),
    ),
    paper_ranks=1536,
    full_memory_efficiency=0.8638,  # 15.55 TF of 18.0 TF peak (section 6.4)
)

TIANHE_2 = MachineSpec(
    name="Tianhe-2",
    node=NodeSpec(
        cores=24,
        flops=422.4e9,
        mem_bytes=64 * GiB,
        net=NetworkParams(
            latency_s=2.0e-6, bandwidth_Bps=7.1e9, procs_per_port=24
        ),
    ),
    paper_ranks=24576,
    full_memory_efficiency=0.8494,  # 367.04 TF (section 6.4)
)

#: The paper's local cluster (section 6.1): 2-way Xeon E5-2670 v3 (24
#: cores), 64 GB, EDR InfiniBand.  Peak ~0.88 TF/node (2.3 GHz x 16 DP
#: flops/cycle x 24 cores).
LOCAL_CLUSTER = MachineSpec(
    name="local-cluster",
    node=NodeSpec(
        cores=24,
        flops=883.2e9,
        mem_bytes=64 * GiB,
        net=NetworkParams(
            latency_s=1.0e-6, bandwidth_Bps=12.0e9, procs_per_port=24
        ),
    ),
    paper_ranks=128,
    full_memory_efficiency=0.79,  # implied by Table 3's original-HPL row
)

#: Dimensionally scaled testbed for *live* simulator sweeps (Figs. 7/12).
#: The paper's efficiency law E(N) = N/(aN+b) holds when the O(N^2)
#: bandwidth term dominates communication overhead.  Our live runs use N a
#: thousand times smaller than the paper's, so keeping real NIC parameters
#: would put them in the latency-dominated regime instead; scaling
#: bandwidth down by the same factor as N (and zeroing latency) preserves
#: the comm/compute *ratio* and with it the model's regime.  Used only for
#: live model-validation sweeps — the Table-2 machines above price
#: everything else.
SCALED_TESTBED = MachineSpec(
    name="scaled-testbed",
    node=NodeSpec(
        cores=24,
        flops=120e9,  # 5 GF/core: slows compute so the O(N^2) bandwidth
        # term is a visible-but-not-dominant overhead at laptop N, exactly
        # the regime the paper's machines sit in at N ~ 10^5
        mem_bytes=64 * GiB,
        net=NetworkParams(
            latency_s=1e-9, bandwidth_Bps=12.0e9, procs_per_port=1
        ),
    ),
    paper_ranks=128,
    full_memory_efficiency=0.79,
)

ALL_MACHINES = {
    m.name: m for m in (TIANHE_1A, TIANHE_2, LOCAL_CLUSTER, SCALED_TESTBED)
}
