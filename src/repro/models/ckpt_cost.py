"""Checkpoint cost model: sizes and times behind Fig. 13 and Table 3.

Checkpoint size per process is the protected workspace itself — close to
half the per-process memory under self-checkpoint (Eq. 2), so it barely
changes with group size (the right panel of Fig. 13).  Encoding time comes
from the network model's stripe-encode cost with each machine's
port-sharing factor (the left panel): Tianhe-2 encodes *slower* than
Tianhe-1A despite smaller checkpoints because 24 processes share each port.

Recovery is "similar to that used to calculate the checksum ... a little
longer" (section 6.3: 20 s vs 16 s on Tianhe-2); we model it as the encode
plus the delivery of the rebuilt buffer.
"""

from __future__ import annotations

from repro.ckpt.memory_model import available_fraction_self
from repro.models.machines import MachineSpec
from repro.sim.netmodel import NetworkModel


def checkpoint_size_per_process(
    machine: MachineSpec, group_size: int, *, method: str = "self"
) -> int:
    """Bytes each process protects when HPL fills the available memory.

    The application sizes its workspace to the method's available fraction
    of per-core memory; the checkpoint covers the full workspace.
    """
    frac = available_fraction_self(group_size)
    if method != "self":
        raise ValueError("sizes for other methods live in repro.ckpt.memory_model")
    return int(machine.node.mem_per_core * frac)


def encode_time(machine: MachineSpec, group_size: int, data_bytes: int | None = None) -> float:
    """Modeled group-encode seconds on ``machine`` (Fig. 13, left)."""
    if data_bytes is None:
        data_bytes = checkpoint_size_per_process(machine, group_size)
    net = NetworkModel(machine.node.net)
    return net.stripe_encode_time(data_bytes, group_size)


def recovery_time(
    machine: MachineSpec, group_size: int, data_bytes: int | None = None
) -> float:
    """Modeled recovery seconds: one encode plus delivering the rebuilt
    buffer to the replacement rank."""
    if data_bytes is None:
        data_bytes = checkpoint_size_per_process(machine, group_size)
    net = NetworkModel(machine.node.net)
    return net.stripe_encode_time(data_bytes, group_size) + net.p2p_time(
        data_bytes, contended=True
    )


def flush_time(machine: MachineSpec, data_bytes: int) -> float:
    """Local overwrite (B <- workspace): 'normally less than one second'
    (section 6.6)."""
    return data_bytes / machine.node.mem_bw_Bps
