"""The November 2016 TOP500 top-10 — the systems of paper Fig. 8.

``rmax``/``rpeak`` are the official list values (PFlop/s); the officially
reported efficiency ``rmax/rpeak`` is the ``e1`` that Eq. 8 projects down
to reduced memory fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.models.efficiency import efficiency_lower_bound


@dataclass(frozen=True)
class Top500System:
    name: str
    rmax_pflops: float
    rpeak_pflops: float

    @property
    def efficiency(self) -> float:
        return self.rmax_pflops / self.rpeak_pflops

    def projected_efficiency(self, k: float) -> float:
        """Eq. 8 lower bound when only fraction ``k`` of memory is usable."""
        return efficiency_lower_bound(self.efficiency, k)


#: TOP500, November 2016 (the latest list at paper submission).
TOP10_NOV2016: List[Top500System] = [
    Top500System("TaihuLight", 93.015, 125.436),
    Top500System("Tianhe-2", 33.863, 54.902),
    Top500System("Titan", 17.590, 27.113),
    Top500System("Sequoia", 17.173, 20.133),
    Top500System("Cori", 14.015, 27.881),
    Top500System("Oakforest-PACS", 13.555, 24.914),
    Top500System("K", 10.510, 11.280),
    Top500System("Piz Daint", 9.779, 15.988),
    Top500System("Mira", 8.587, 10.066),
    Top500System("Trinity", 8.101, 11.079),
]


def average_gain_half_vs_third() -> float:
    """Fig. 8's headline: average efficiency gain (percentage points) from
    one third of the memory to one half — the paper reports ~12%."""
    gains = [
        s.projected_efficiency(0.5) - s.projected_efficiency(1.0 / 3.0)
        for s in TOP10_NOV2016
    ]
    return 100.0 * sum(gains) / len(gains)


def average_relative_gain_half_vs_third() -> float:
    """The same comparison as a *relative* improvement in percent —
    mean((e_half - e_third) / e_third); closer to how the paper phrases
    "improve 11.96% of the efficiency on average"."""
    gains = [
        (s.projected_efficiency(0.5) - s.projected_efficiency(1.0 / 3.0))
        / s.projected_efficiency(1.0 / 3.0)
        for s in TOP10_NOV2016
    ]
    return 100.0 * sum(gains) / len(gains)
