"""Analytic performance models from the paper's section 4 and evaluation.

* :mod:`repro.models.efficiency` — the HPL efficiency model
  ``E(N) = N / (aN + b)`` (Eq. 5), its least-squares fit (Fig. 7), and the
  reduced-memory lower bound (Eq. 8).
* :mod:`repro.models.machines` — Table 2's node configurations and the
  local-cluster testbed.
* :mod:`repro.models.top500` — the November 2016 TOP-10 list driving Fig. 8.
* :mod:`repro.models.ckpt_cost` — encoding time / checkpoint size model
  behind Fig. 13 and Table 3's checkpoint-time column.
"""

from repro.models.efficiency import (
    EfficiencyModel,
    efficiency_at_memory_fraction,
    efficiency_lower_bound,
    fit_efficiency_model,
    problem_size_for_memory,
)
from repro.models.machines import (
    SCALED_TESTBED,
    LOCAL_CLUSTER,
    MachineSpec,
    TIANHE_1A,
    TIANHE_2,
)
from repro.models.reliability import (
    expected_failures,
    p_fault_free,
    p_interval_survives_grouped,
    scale_sweep,
)
from repro.models.top500 import TOP10_NOV2016, Top500System
from repro.models.ckpt_cost import (
    checkpoint_size_per_process,
    encode_time,
    recovery_time,
)

__all__ = [
    "EfficiencyModel",
    "fit_efficiency_model",
    "efficiency_lower_bound",
    "efficiency_at_memory_fraction",
    "problem_size_for_memory",
    "MachineSpec",
    "TIANHE_1A",
    "TIANHE_2",
    "LOCAL_CLUSTER",
    "Top500System",
    "TOP10_NOV2016",
    "p_fault_free",
    "expected_failures",
    "p_interval_survives_grouped",
    "scale_sweep",
    "checkpoint_size_per_process",
    "encode_time",
    "recovery_time",
]
