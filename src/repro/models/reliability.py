"""Reliability projections: the exascale motivation quantified.

The paper's opening argument: "a large-scale system's mean time between
failures may be too short to afford a complete fault-free run" — Blue
Waters and Titan see failures daily, and the problem worsens toward
exascale.  This module turns that argument into numbers:

* the probability a run of a given duration completes fault-free on a
  system of ``n`` nodes with per-node MTBF ``m`` (exponential model),
* the expected number of failures during a run,
* the grouped-checkpoint survival probability per checkpoint interval
  (building on :func:`repro.ckpt.grouping.group_reliability`),
* a scale sweep showing where fault-free HPL becomes hopeless — the
  regime SKT-HPL is built for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.ckpt.grouping import group_reliability


def p_fault_free(run_s: float, n_nodes: int, mtbf_node_s: float) -> float:
    """P[no node fails during the run] under i.i.d. exponential failures."""
    if run_s < 0 or n_nodes < 1 or mtbf_node_s <= 0:
        raise ValueError("need run_s >= 0, n_nodes >= 1, mtbf > 0")
    return math.exp(-run_s * n_nodes / mtbf_node_s)


def expected_failures(run_s: float, n_nodes: int, mtbf_node_s: float) -> float:
    """Expected node failures during the run."""
    if run_s < 0 or n_nodes < 1 or mtbf_node_s <= 0:
        raise ValueError("need run_s >= 0, n_nodes >= 1, mtbf > 0")
    return run_s * n_nodes / mtbf_node_s


def p_interval_survives_grouped(
    interval_s: float,
    n_nodes: int,
    mtbf_node_s: float,
    group_size: int,
) -> float:
    """P[the grouped checkpoint rides out one interval]: at most one loss
    per group of ``group_size`` (one rank per node)."""
    p_fail = 1.0 - math.exp(-interval_s / mtbf_node_s)
    n_groups = max(1, n_nodes // group_size)
    return group_reliability(group_size, n_groups, p_fail)["p_system_ok"]


@dataclass(frozen=True)
class ScalePoint:
    n_nodes: int
    p_fault_free_run: float
    expected_failures: float
    p_interval_ok_grouped: float


def scale_sweep(
    run_s: float = 24 * 3600.0,
    mtbf_node_s: float = 5 * 365 * 24 * 3600.0,  # a 5-year per-node MTBF
    node_counts: Sequence[int] = (128, 1024, 8192, 65536),
    group_size: int = 16,
    interval_s: float = 600.0,
) -> List[ScalePoint]:
    """How a day-long run fares as the machine grows (the paper's §1)."""
    return [
        ScalePoint(
            n_nodes=n,
            p_fault_free_run=p_fault_free(run_s, n, mtbf_node_s),
            expected_failures=expected_failures(run_s, n, mtbf_node_s),
            p_interval_ok_grouped=p_interval_survives_grouped(
                interval_s, n, mtbf_node_s, group_size
            ),
        )
        for n in node_counts
    ]


def render_scale_sweep(points: List[ScalePoint]) -> str:
    from repro.util import render_table

    return render_table(
        [
            "nodes",
            "P[fault-free 24h run]",
            "E[failures/run]",
            "P[10-min interval OK, grouped]",
        ],
        [
            [
                p.n_nodes,
                f"{100 * p.p_fault_free_run:.2f}%",
                f"{p.expected_failures:.2f}",
                f"{100 * p.p_interval_ok_grouped:.4f}%",
            ]
            for p in points
        ],
        title="Reliability projection — why fault-free HPL stops scaling",
    )
