"""Observability for simulated jobs: spans, metrics, exportable profiles.

``repro.obs`` is the cross-cutting instrumentation layer.  The checkpoint
protocols and the HPL driver open nested :class:`~repro.obs.spans.Span`\\ s
stamped with virtual clocks; a :class:`~repro.obs.metrics.MetricsObserver`
rides the :class:`~repro.sim.observer.SimObserver` hooks to count traffic,
blocked time and SHM pressure; the exporters in :mod:`repro.obs.export`
turn both into Perfetto-loadable Chrome traces, metrics JSON-lines and an
ASCII run report.  Everything is virtual-time-driven and deterministic:
two runs with one seed produce byte-identical artifacts.

Campaign-scale telemetry persists in the SQLite-backed
:class:`~repro.obs.store.TraceStore` (``repro chaos --obs summary``
ingests every attempt; ``repro obs query``/``trend`` aggregate across
runs), with per-attempt payloads built by :mod:`repro.obs.rollup`.

Entry points: ``repro obs --scenario skt-hpl --fail-at panel:3`` (CLI) or
:func:`repro.obs.scenario.run_scenario` (programmatic / benchmarks).
"""

from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    metrics_jsonl,
    parse_chrome_trace,
    read_metrics_jsonl,
    span_tree,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.labels import METRIC_NAMES, SPAN_LABELS, tag_class
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
    MetricSample,
)
from repro.obs.report import (
    aggregate_by_name,
    critical_path,
    rank_busy,
    recovery_path,
    render_report,
)
from repro.obs.rollup import (
    OBS_FULL,
    OBS_MODES,
    OBS_OFF,
    OBS_SUMMARY,
    attempt_payload,
    attempt_summary,
    span_doc,
    span_from_doc,
)
from repro.obs.spans import NULL_SPAN, STATUS_INTERRUPTED, STATUS_OK, Span, SpanTracer
from repro.obs.store import TraceStore, attempt_run_id, obs_run_id

__all__ = [
    "METRIC_NAMES",
    "NULL_SPAN",
    "OBS_FULL",
    "OBS_MODES",
    "OBS_OFF",
    "OBS_SUMMARY",
    "SPAN_LABELS",
    "STATUS_INTERRUPTED",
    "STATUS_OK",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsObserver",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "TraceStore",
    "attempt_payload",
    "attempt_run_id",
    "attempt_summary",
    "obs_run_id",
    "span_doc",
    "span_from_doc",
    "aggregate_by_name",
    "chrome_trace_events",
    "chrome_trace_json",
    "critical_path",
    "metrics_jsonl",
    "parse_chrome_trace",
    "rank_busy",
    "read_metrics_jsonl",
    "recovery_path",
    "render_report",
    "span_tree",
    "tag_class",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
