"""Canonical span labels and metric names for the observability layer.

Every span a protocol opens and every metric the observers feed is named
here, once.  The :mod:`repro.sancheck.simlint` ``obs-label`` rule checks
string literals at ``ctx.span(...)`` / ``registry.counter(...)`` call
sites against these sets, so a typo in an instrumentation label is a lint
failure rather than a silently empty dashboard panel.

Naming scheme: ``<subsystem>.<operation>`` with dots, lowercase.  Span
labels parallel the ``ctx.phase`` announcements where one exists (e.g.
the ``ckpt.encode`` span covers the work announced by the ``ckpt.encode``
phase) but spans carry begin/end clocks and attributes, not just a point
event.  Units are part of the metric contract: ``*_s`` are virtual
seconds, ``*bytes*`` are bytes, everything else is a count.
"""

from __future__ import annotations

#: Span labels the protocols and drivers may open (see docs/OBSERVABILITY.md).
SPAN_LABELS = frozenset(
    {
        # checkpoint protocols (self/self-rs/double/buddy/...)
        "ckpt",  # one whole checkpoint, root of the ckpt.* children
        "ckpt.copy_a2",  # A2 -> B2 shadow copy (self-checkpoint step 1)
        "ckpt.encode",  # group checksum / parity encode collective
        "ckpt.exchange",  # buddy full-copy exchange (replication "encode")
        "ckpt.commit",  # flush + license barriers up to ckpt.done
        # recovery paths
        "restore",  # one whole restore, root of the restore.* children
        "restore.rebuild",  # survivor-assisted reconstruction of lost members
        "restore.commit",  # rewrite of the clean (B, C) pair + barriers
        # HPL driver
        "hpl.panel",  # one elimination iteration (attr k = panel index)
        "hpl.backsub",  # back substitution
        "hpl.verify",  # residual verification
        "hpl.generate",  # fixed-seed matrix/rhs generation
    }
)

#: Metric names the observers and scenario runner register.
METRIC_NAMES = frozenset(
    {
        # MPI traffic: *_posted counts at send time (includes messages lost
        # to a failure mid-flight); bytes_sent/bytes_recv count at delivery
        # time, attributed to the sender/receiver rank — so aggregated over
        # a job, bytes_sent == bytes_recv by construction
        "mpi.bytes_posted",
        "mpi.msgs_posted",
        "mpi.bytes_sent",
        "mpi.bytes_recv",
        "mpi.msgs_recv",
        "mpi.blocked_s",  # histogram: virtual seconds blocked per receive
        "mpi.collective_s",  # virtual seconds inside collectives (sync + cost)
        "mpi.collectives",  # collective operations completed
        # shared memory (instrumented accesses through ShmSegment.read/write
        # and store create/attach/unlink; raw .array references are invisible)
        "shm.ops",
        "shm.bytes_written",
        # job lifecycle (fed by the scenario runner from the daemon report)
        "job.restarts",
        "job.failures_injected",
        "job.completed",
        "job.makespan_s",
        # checkpoint/recovery aggregates (derived from the span stream)
        "ckpt.count",
        "ckpt.bytes_encoded",
        "restore.count",
        # kernel throughput host metrics (wall-clock gauges fed by
        # benchmarks/bench_perf_kernels.py: data bytes encoded/decoded per
        # second through the batched GF(256) kernels at MB-scale stripes;
        # recorded in BENCH_perf.json and tracked by `repro obs trend`)
        "ckpt.encode_bytes_per_s",
        "ckpt.decode_bytes_per_s",
        # chaos campaign engine (src/repro/chaos): per-campaign verdict
        # accounting — kill_points counts matrix cells, runs counts every
        # supervised job the engine launched (matrix + random + shrink)
        "chaos.kill_points",
        "chaos.runs",
        "chaos.survived",
        "chaos.wrong_answer",
        "chaos.unrecoverable",
        "chaos.gave_up",
        "chaos.not_fired",
        # parallel replay engine (src/repro/par): tasks counts every spec
        # the engine resolved (cache hits included); cache_hits/cache_misses
        # partition the memoized-lookup outcomes; cache_corrupt counts disk
        # entries that existed but failed to parse (counted as misses);
        # workers is a gauge of the pool width actually used for the map;
        # worker_tasks is labelled by dispatch slot (submission-order
        # round-robin attribution — which OS process actually ran a task is
        # host scheduling, so accounting is by deterministic dispatch slot);
        # queue_depth is the peak backlog beyond the pool width
        "par.tasks",
        "par.cache_hits",
        "par.cache_misses",
        "par.cache_corrupt",
        "par.workers",
        "par.worker_tasks",
        "par.queue_depth",
        # sharded campaign engine health (src/repro/shard): respawns counts
        # supervisor-replaced crashed executors; quarantined counts poison
        # units journaled as synthesized gave-up outcomes; fence_rejections
        # counts journal/commit/renew writes refused because the claimant's
        # fencing token was superseded (zombie executors)
        "shard.respawns",
        "shard.quarantined",
        "shard.fence_rejections",
    }
)

#: Message tag classes for per-tag-class traffic accounting: HPL row swaps
#: use ``tag_base * nb + j + 1000``, the buddy rescue path uses tag 999,
#: everything else (checkpoint status, app traffic) is plain point-to-point.
TAG_CLASS_SWAP = "swap"
TAG_CLASS_RESCUE = "rescue"
TAG_CLASS_PT2PT = "pt2pt"


def tag_class(tag: int) -> str:
    """Coarse traffic class of a message tag (see module docstring)."""
    if tag >= 1000:
        return TAG_CLASS_SWAP
    if tag == 999:
        return TAG_CLASS_RESCUE
    return TAG_CLASS_PT2PT
