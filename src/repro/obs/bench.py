"""Machine-readable perf records: the ``BENCH_obs.json`` writer.

Every instrumented run can be flattened into one JSON record holding the
headline numbers a perf trajectory tracks — virtual makespan, restart
count, span totals by name, traffic balance, and the recovery critical
path.  The record is deliberately wall-clock-free: it captures *simulated*
cost, so run-to-run diffs reflect algorithmic changes, not host noise.
Benchmarks append host timing separately if they want it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict

from repro.obs.report import aggregate_by_name, critical_path, rank_busy, recovery_path

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.scenario import ObsRun

#: bump when the record layout changes incompatibly
BENCH_SCHEMA_VERSION = 1


def bench_record(run: "ObsRun") -> Dict[str, Any]:
    """Flatten one run into the ``BENCH_obs.json`` record."""
    spans = run.spans
    reg = run.registry
    top = [
        {"name": name, "count": count, "total_s": total}
        for name, count, total, _mean, _mx in aggregate_by_name(spans)[:10]
    ]
    busy = rank_busy(spans)
    def _chain(sp):
        return [
            {"name": s.name, "rank": s.rank, "begin_s": s.begin, "status": s.status}
            for s in sp
        ]

    chain = _chain(critical_path(spans))
    rec_chain = _chain(recovery_path(spans))
    sent = reg.total("mpi.bytes_sent")
    recv = reg.total("mpi.bytes_recv")
    posted = reg.total("mpi.bytes_posted")
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": "obs",
        "scenario": run.scenario,
        "seed": run.seed,
        "params": dict(run.params),
        "completed": run.completed,
        "n_restarts": run.n_restarts,
        "makespan_s": run.makespan_s,
        "n_spans": len(spans),
        "n_interrupted_spans": sum(1 for s in spans if s.status != "ok"),
        "top_spans": top,
        "rank_busy_s": {str(r): busy[r] for r in sorted(busy)},
        "critical_path": chain,
        "recovery_path": rec_chain,
        "traffic": {
            "bytes_sent": sent,
            "bytes_recv": recv,
            "bytes_posted": posted,
            "bytes_stranded": posted - sent,
        },
        "ckpt_count": reg.total("ckpt.count"),
        "ckpt_bytes_encoded": reg.total("ckpt.bytes_encoded"),
        "restore_count": reg.total("restore.count"),
        "failures_injected": reg.total("job.failures_injected"),
    }


def bench_json(run: "ObsRun") -> str:
    return json.dumps(bench_record(run), sort_keys=True, indent=2) + "\n"


def write_bench(path: str, run: "ObsRun") -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(bench_json(run))
