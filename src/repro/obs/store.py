"""Campaign-scale telemetry store: persistent cross-run traces in SQLite.

One ``repro chaos --obs summary`` campaign resolves hundreds of attempts;
a perf trajectory spans many invocations over weeks.  The per-run JSON
artifacts (``BENCH_obs.json``, ``BENCH_chaos.json``, ``trace.json``) are
snapshots of *one* run — this module gives them a durable home that
queries across runs: a :class:`TraceStore` backed by a single SQLite file
(stdlib :mod:`sqlite3`, no services, no daemons) holding runs, spans,
metric samples, flat summary rollups and raw bench records.

Identity is content-addressed, not autoincremented.  An attempt's
``run_id`` is the same :func:`~repro.par.cache.replay_fingerprint` the
memo cache uses — scenario spec + triggers + obs mode + code fingerprint
— so re-ingesting the same campaign is idempotent (``INSERT OR
REPLACE``), a serial and a ``--workers N`` sweep land byte-identically,
and two *different* code versions never collide on one id.  Runs without
a pickleable spec (obs scenario runs, custom factories) hash their
describable surface instead.

Determinism contract: every stored value derives from virtual clocks and
seeds.  :meth:`TraceStore.digest` hashes the *logical* content (canonical
``ORDER BY``-ed dump, not file bytes — SQLite page layout is not stable),
so two same-seed campaigns produce stores with equal digests; the tests
pin this.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: bump when the table layout changes incompatibly
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    campaign_id TEXT NOT NULL,
    ord         INTEGER NOT NULL,
    kind        TEXT NOT NULL,
    scenario    TEXT NOT NULL,
    method      TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    label       TEXT NOT NULL,
    verdict     TEXT NOT NULL,
    n_restarts  INTEGER NOT NULL,
    makespan_s  REAL NOT NULL,
    obs_mode    TEXT NOT NULL,
    params_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS spans (
    run_id      TEXT NOT NULL,
    span_id     TEXT NOT NULL,
    parent_id   TEXT,
    incarnation INTEGER NOT NULL,
    rank        INTEGER NOT NULL,
    seq         INTEGER NOT NULL,
    name        TEXT NOT NULL,
    begin_s     REAL NOT NULL,
    end_s       REAL,
    status      TEXT NOT NULL,
    attrs_json  TEXT NOT NULL,
    PRIMARY KEY (run_id, span_id)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id      TEXT NOT NULL,
    name        TEXT NOT NULL,
    kind        TEXT NOT NULL,
    labels_json TEXT NOT NULL,
    value       REAL NOT NULL,
    extra_json  TEXT,
    PRIMARY KEY (run_id, name, kind, labels_json)
);
CREATE TABLE IF NOT EXISTS summaries (
    run_id TEXT NOT NULL,
    key    TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, key)
);
CREATE TABLE IF NOT EXISTS bench_records (
    record_id   TEXT PRIMARY KEY,
    bench       TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    record_json TEXT NOT NULL
);
"""

#: tables in canonical dump order, with their deterministic row ordering
_DUMP_ORDER: Tuple[Tuple[str, str], ...] = (
    ("store_meta", "key"),
    ("runs", "run_id"),
    ("spans", "run_id, span_id"),
    ("metrics", "run_id, name, kind, labels_json"),
    ("summaries", "run_id, key"),
    ("bench_records", "record_id"),
)


def _canon(doc: Any) -> str:
    """Canonical JSON: the single spelling every key/digest hashes."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _sha(doc: Any) -> str:
    return hashlib.sha256(_canon(doc).encode("utf-8")).hexdigest()


def attempt_run_id(scenario: Any, triggers: Iterable[Any], obs_mode: str) -> str:
    """Content address of one campaign attempt.

    Scenarios with a pickleable spec reuse the memo cache's
    :func:`~repro.par.cache.replay_fingerprint` verbatim — store identity
    and cache identity are the same fact.  Spec-less scenarios (closure
    factories) hash their describable surface plus the trigger fields.
    """
    triggers = tuple(triggers)
    if getattr(scenario, "spec", None) is not None:
        from repro.par.cache import replay_fingerprint
        from repro.par.replay import ReplaySpec

        return replay_fingerprint(
            ReplaySpec(scenario.spec, triggers, obs=obs_mode)
        )
    import dataclasses

    from repro.par.cache import code_fingerprint

    return _sha(
        {
            "code": code_fingerprint(),
            "scenario": getattr(scenario, "name", str(scenario)),
            "params": dict(getattr(scenario, "params", {})),
            "triggers": [
                dict(dataclasses.asdict(t), kind=type(t).__name__)
                for t in triggers
            ],
            "obs": obs_mode,
        }
    )


def obs_run_id(run: Any) -> str:
    """Content address of one ``repro obs`` scenario run."""
    from repro.par.cache import code_fingerprint

    return _sha(
        {
            "code": code_fingerprint(),
            "kind": "obs",
            "scenario": run.scenario,
            "seed": run.seed,
            "params": dict(run.params),
        }
    )


class TraceStore:
    """SQLite-backed store of campaign runs, spans, metrics and summaries.

    ``path`` may be ``":memory:"`` for tests.  All writers are idempotent
    (``INSERT OR REPLACE`` keyed by content addresses), so re-running an
    ingestion is a no-op rather than a duplication.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR REPLACE INTO store_meta (key, value) VALUES (?, ?)",
            ("schema", str(STORE_SCHEMA_VERSION)),
        )
        self._conn.commit()

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- ingestion --------------------------------------------------------------
    def ingest_attempt(
        self,
        *,
        run_id: str,
        campaign_id: str,
        ord: int,
        kind: str,
        scenario: str,
        method: str,
        seed: int,
        label: str,
        verdict: str,
        n_restarts: int,
        makespan_s: float,
        params: Dict[str, Any],
        obs: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Store one campaign attempt and its obs payload (if sampled).

        ``obs`` is the :attr:`~repro.par.replay.ReplayOutcome.obs` payload
        — ``None`` (mode ``off``: the run row alone), a summary rollup, or
        the full span/metric streams (see
        :func:`repro.obs.rollup.attempt_payload`).
        """
        obs_mode = "off" if obs is None else str(obs.get("mode", "summary"))
        self._conn.execute(
            "INSERT OR REPLACE INTO runs (run_id, campaign_id, ord, kind, "
            "scenario, method, seed, label, verdict, n_restarts, makespan_s, "
            "obs_mode, params_json) VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?)",
            (
                run_id,
                campaign_id,
                ord,
                kind,
                scenario,
                method,
                seed,
                label,
                verdict,
                n_restarts,
                makespan_s,
                obs_mode,
                _canon(params),
            ),
        )
        if obs is not None:
            self._put_summary(run_id, obs.get("summary", {}))
            self._put_spans(run_id, obs.get("spans", ()))
            self._put_metrics(run_id, obs.get("metrics", ()))
        self._conn.commit()
        return run_id

    def _put_summary(self, run_id: str, summary: Dict[str, float]) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO summaries (run_id, key, value) "
            "VALUES (?,?,?)",
            [(run_id, k, float(v)) for k, v in sorted(summary.items())],
        )

    def _put_spans(
        self, run_id: str, span_docs: Iterable[Dict[str, Any]]
    ) -> None:
        rows = []
        for seq, doc in enumerate(span_docs):
            rows.append(
                (
                    run_id,
                    doc["span_id"],
                    doc.get("parent_id"),
                    int(doc.get("incarnation", 0)),
                    int(doc["rank"]),
                    seq,
                    doc["name"],
                    float(doc["begin"]),
                    None if doc.get("end") is None else float(doc["end"]),
                    str(doc.get("status", "ok")),
                    _canon(doc.get("attrs", {})),
                )
            )
        self._conn.executemany(
            "INSERT OR REPLACE INTO spans (run_id, span_id, parent_id, "
            "incarnation, rank, seq, name, begin_s, end_s, status, "
            "attrs_json) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
            rows,
        )

    def _put_metrics(
        self, run_id: str, metric_docs: Iterable[Dict[str, Any]]
    ) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO metrics (run_id, name, kind, "
            "labels_json, value, extra_json) VALUES (?,?,?,?,?,?)",
            [
                (
                    run_id,
                    doc["name"],
                    doc["kind"],
                    _canon(doc.get("labels", {})),
                    float(doc["value"]),
                    None
                    if doc.get("extra") is None
                    else _canon(doc["extra"]),
                )
                for doc in metric_docs
            ],
        )

    def ingest_obs_run(
        self, run: Any, *, campaign_id: str = "obs", ord: int = 0
    ) -> str:
        """Store one :class:`~repro.obs.scenario.ObsRun` in full fidelity."""
        from repro.obs.rollup import attempt_summary, metric_docs, span_doc

        run_id = obs_run_id(run)
        spans = run.spans
        self.ingest_attempt(
            run_id=run_id,
            campaign_id=campaign_id,
            ord=ord,
            kind="obs",
            scenario=run.scenario,
            method=str(run.params.get("method", "?")),
            seed=run.seed,
            label=str(run.params.get("fail_at") or "baseline"),
            verdict="completed" if run.completed else "incomplete",
            n_restarts=run.n_restarts,
            makespan_s=run.makespan_s,
            params=dict(run.params),
            obs={
                "mode": "full",
                "summary": attempt_summary(spans, run.registry),
                "spans": [span_doc(s) for s in spans],
                "metrics": metric_docs(run.registry),
            },
        )
        return run_id

    def ingest_bench_record(self, record: Dict[str, Any]) -> str:
        """Store one raw ``BENCH_*.json`` record (obs, chaos or perf)."""
        record_id = _sha(record)
        self._conn.execute(
            "INSERT OR REPLACE INTO bench_records (record_id, bench, seed, "
            "record_json) VALUES (?,?,?,?)",
            (
                record_id,
                str(record.get("bench", "?")),
                int(record.get("seed", 0)),
                _canon(record),
            ),
        )
        self._conn.commit()
        return record_id

    # -- reads ------------------------------------------------------------------
    def query(self, sql: str, params: Tuple[Any, ...] = ()) -> List[Tuple]:
        return list(self._conn.execute(sql, params))

    def counts(self) -> Dict[str, int]:
        """Rows per table — the smoke check's one-line inventory."""
        return {
            table: self.query(f"SELECT COUNT(*) FROM {table}")[0][0]
            for table, _ in _DUMP_ORDER
        }

    def dump_canonical(self) -> str:
        """The store's logical content as deterministic JSON lines."""
        lines = []
        for table, order in _DUMP_ORDER:
            cols = [
                r[1]
                for r in self.query(f"PRAGMA table_info({table})")
            ]
            for row in self.query(
                f"SELECT * FROM {table} ORDER BY {order}"
            ):
                lines.append(_canon({"table": table, **dict(zip(cols, row))}))
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        """sha256 over the canonical dump — equal iff logically equal."""
        return hashlib.sha256(self.dump_canonical().encode("utf-8")).hexdigest()


# -- campaign ingestion helpers -------------------------------------------------

def campaign_id_for(seed: int, scenario: str, methods: Iterable[str]) -> str:
    """Deterministic campaign identity from the invocation's knobs."""
    from repro.par.cache import code_fingerprint

    return _sha(
        {
            "code": code_fingerprint(),
            "scenario": scenario,
            "methods": list(methods),
            "seed": seed,
        }
    )[:16]


def ingest_kill_matrix(
    store: TraceStore,
    campaign_id: str,
    scenario: Any,
    report: Any,
    *,
    seed: int,
    obs_mode: str,
    ord_base: int = 0,
    probe: Any = None,
) -> int:
    """Ingest every kill-point attempt of one campaign matrix; returns the
    next ordinal (attempts are ordered canonically: matrix order, then
    schedule order — identical for serial and pooled sweeps).

    ``probe`` must be the same :class:`~repro.chaos.campaign.BaselineProbe`
    the matrix ran with (or ``None`` for both): the run id is the replay
    fingerprint of the attempt's trigger, and a probe-pinned trigger
    fingerprints differently from an unpinned one."""
    from repro.chaos.campaign import point_trigger

    ord_ = ord_base
    for r in report.results:
        store.ingest_attempt(
            run_id=attempt_run_id(
                scenario, (point_trigger(r.point, probe),), obs_mode
            ),
            campaign_id=campaign_id,
            ord=ord_,
            kind="kill",
            scenario=report.scenario,
            method=report.method,
            seed=seed,
            label=r.point.label,
            verdict=r.verdict,
            n_restarts=r.n_restarts,
            makespan_s=r.makespan_s,
            params=dict(report.params),
            obs=r.obs,
        )
        ord_ += 1
    return ord_


def ingest_schedules(
    store: TraceStore,
    campaign_id: str,
    scenario: Any,
    schedules: Iterable[Any],
    *,
    seed: int,
    obs_mode: str,
    ord_base: int = 0,
) -> int:
    """Ingest the randomized-campaign attempts; returns the next ordinal."""
    ord_ = ord_base
    for r in schedules:
        store.ingest_attempt(
            run_id=attempt_run_id(scenario, r.triggers, obs_mode),
            campaign_id=campaign_id,
            ord=ord_,
            kind="random",
            scenario=getattr(scenario, "name", "?"),
            method=str(getattr(scenario, "params", {}).get("method", "?")),
            seed=seed,
            label=f"random:{r.index}",
            verdict=r.verdict,
            n_restarts=r.n_restarts,
            makespan_s=r.makespan_s,
            params=dict(getattr(scenario, "params", {})),
            obs=r.obs,
        )
        ord_ += 1
    return ord_
