"""``repro obs`` — instrumented runs, and queries over the trace store.

Usage::

    repro obs --scenario skt-hpl --fail-at panel:3 --out obs-out/
    repro obs run --scenario selfckpt --fail-at flush:2 --store obs.sqlite
    repro obs query --store obs.sqlite --verdict survived --name ckpt.flush
    repro obs query --store obs.sqlite --section summary --format jsonl
    repro obs ingest --store obs.sqlite obs-out/BENCH_obs.json
    repro obs trend --store obs.sqlite --baseline benchmarks/perf_baseline.json

The bare form (no subcommand) is the original profile runner and stays
fully compatible: it writes a Perfetto-loadable ``trace.json``, a
``metrics.jsonl`` snapshot, the ASCII ``report.txt`` and a
machine-readable ``BENCH_obs.json`` into ``--out``.  ``run`` is the same
thing spelled explicitly, plus ``--store`` to also persist the run into
a :class:`~repro.obs.store.TraceStore`.

``query`` filters and aggregates the store (byte-stable tables or JSON
lines), ``ingest`` loads ``BENCH_{obs,perf,chaos}.json`` records, and
``trend`` renders the cross-run bench trajectory with the perf
speedup-ratio regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.scenario import (
    SCENARIOS,
    parse_fail_at,
    run_scenario,
    summarize,
    write_artifacts,
)

SUBCOMMANDS = ("run", "query", "ingest", "trend")


def _run_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "Run an instrumented scenario and export spans/metrics "
            "(Chrome trace JSON, metrics JSON-lines, ASCII report, "
            "BENCH_obs.json)."
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=SCENARIOS,
        default="skt-hpl",
        help="which application to run (default: skt-hpl)",
    )
    parser.add_argument(
        "--fail-at",
        default=None,
        metavar="PHASE[:K]",
        help="power off a node on the K-th announcement of PHASE "
        "(aliases: panel, flush, encode; e.g. 'panel:3')",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="matrix / workload seed"
    )
    parser.add_argument("--n", type=int, default=64, help="HPL problem size")
    parser.add_argument("--nb", type=int, default=8, help="HPL block size")
    parser.add_argument("--grid", default="2x2", help="process grid PxQ")
    parser.add_argument(
        "--method", default="self", help="checkpoint method (self, double, ...)"
    )
    parser.add_argument(
        "--group-size", type=int, default=4, help="checkpoint group size"
    )
    parser.add_argument(
        "--interval", type=int, default=2, help="checkpoint every K panels/iters"
    )
    parser.add_argument(
        "--out", default="obs-out", help="artifact directory (default: obs-out)"
    )
    parser.add_argument(
        "--store", default=None, metavar="DB",
        help="also ingest the run into this SQLite trace store",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the ASCII report without writing artifacts",
    )
    args = parser.parse_args(argv)

    try:
        p, q = (int(v) for v in args.grid.lower().split("x"))
    except ValueError:
        parser.error(f"--grid must look like PxQ, got {args.grid!r}")

    try:
        parse_fail_at(args.fail_at)
    except ValueError as exc:
        parser.error(f"--fail-at: {exc}")

    run = run_scenario(
        args.scenario,
        fail_at=args.fail_at,
        seed=args.seed,
        n=args.n,
        nb=args.nb,
        p=p,
        q=q,
        group_size=args.group_size,
        interval_panels=args.interval,
        method=args.method,
        ckpt_every=args.interval,
    )

    from repro.obs.report import render_report

    print(
        render_report(
            run.spans,
            run.registry,
            title=f"obs run report: {run.scenario} (seed {run.seed})",
        )
    )
    print()
    for line in summarize(run):
        print(line)

    if not args.report_only:
        paths = write_artifacts(run, args.out)
        for kind in sorted(paths):
            print(f"wrote {kind}: {paths[kind]}")

    if args.store is not None:
        from repro.obs.store import TraceStore

        with TraceStore(args.store) as store:
            run_id = store.ingest_obs_run(run)
        print(f"stored run {run_id[:12]} in {args.store}")

    return 0 if run.completed else 1


def _parse_filter(args: argparse.Namespace):
    from repro.obs.query import QueryFilter

    def _csv(v: Optional[str]) -> tuple:
        return tuple(s.strip() for s in v.split(",") if s.strip()) if v else ()

    def _icsv(v: Optional[str]) -> tuple:
        return tuple(int(s) for s in _csv(v))

    return QueryFilter(
        kinds=_csv(args.kind),
        scenarios=_csv(args.scenario),
        methods=_csv(args.method),
        verdicts=_csv(args.verdict),
        campaign=args.campaign,
        label_like=args.label,
        names=_csv(args.name),
        ranks=_icsv(args.rank),
        incarnations=_icsv(args.incarnation),
    )


def _require_store(parser: argparse.ArgumentParser, path: str) -> None:
    """Read-only subcommands must not conjure an empty store.

    ``sqlite3.connect`` happily creates the file, so a typo'd ``--store``
    would silently query zero rows (and litter an empty .sqlite) instead
    of failing.
    """
    import os

    if path != ":memory:" and not os.path.exists(path):
        parser.error(f"trace store not found: {path}")


def _query_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs query",
        description=(
            "Filter and aggregate runs/spans/summaries across every "
            "campaign in a trace store (byte-stable output)."
        ),
    )
    parser.add_argument("--store", required=True, metavar="DB",
                        help="SQLite trace store to query")
    parser.add_argument("--kind", default=None,
                        help="run kinds (csv: kill,random,obs)")
    parser.add_argument("--scenario", default=None, help="scenario names (csv)")
    parser.add_argument("--method", default=None,
                        help="checkpoint methods (csv)")
    parser.add_argument("--verdict", default=None, help="verdicts (csv)")
    parser.add_argument("--campaign", default=None, help="exact campaign id")
    parser.add_argument("--label", default=None,
                        help="substring match on the attempt label")
    parser.add_argument("--name", default=None, help="span names (csv)")
    parser.add_argument("--rank", default=None, help="span ranks (csv of ints)")
    parser.add_argument("--incarnation", default=None,
                        help="span incarnations (csv of ints)")
    parser.add_argument(
        "--section", default="runs,spans,summary",
        help="which sections to emit (csv of runs,spans,summary)",
    )
    parser.add_argument(
        "--keys", default=None,
        help="restrict the summary section to these rollup keys (csv)",
    )
    parser.add_argument(
        "--format", choices=("table", "jsonl"), default="table",
        help="output format (default: table)",
    )
    args = parser.parse_args(argv)

    from repro.obs.query import query_jsonl, query_report
    from repro.obs.store import TraceStore

    _require_store(parser, args.store)
    flt = _parse_filter(args)
    sections = tuple(s.strip() for s in args.section.split(",") if s.strip())
    keys = (
        tuple(k.strip() for k in args.keys.split(",") if k.strip())
        if args.keys
        else None
    )
    with TraceStore(args.store) as store:
        if args.format == "jsonl":
            sys.stdout.write(
                query_jsonl(store, flt, sections=sections, keys=keys)
            )
        else:
            print(query_report(store, flt, sections=sections, keys=keys))
    return 0


def _ingest_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs ingest",
        description=(
            "Load BENCH_{obs,perf,chaos}.json records into a trace store "
            "(idempotent: records are content-addressed)."
        ),
    )
    parser.add_argument("--store", required=True, metavar="DB")
    parser.add_argument("files", nargs="+", metavar="BENCH.json")
    args = parser.parse_args(argv)

    from repro.obs.store import TraceStore

    with TraceStore(args.store) as store:
        for path in args.files:
            with open(path, "r", encoding="utf-8") as f:
                record = json.load(f)
            record_id = store.ingest_bench_record(record)
            print(
                f"ingested {record.get('bench', '?')} record "
                f"{record_id[:12]} from {path}"
            )
        counts = store.counts()
    print(
        "store now holds "
        + ", ".join(f"{counts[t]} {t}" for t in sorted(counts))
    )
    return 0


def _trend_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs trend",
        description=(
            "Cross-run bench trajectory from the store's raw records, "
            "with the perf speedup-ratio regression gate."
        ),
    )
    parser.add_argument("--store", required=True, metavar="DB")
    parser.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="perf ratio baseline (e.g. benchmarks/perf_baseline.json)",
    )
    args = parser.parse_args(argv)

    from repro.obs.query import trend_report
    from repro.obs.store import TraceStore

    _require_store(parser, args.store)
    baseline = None
    if args.baseline is not None:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    with TraceStore(args.store) as store:
        text, ok = trend_report(store, baseline)
    print(text)
    return 0 if ok else 1


def obs_main(argv: Optional[List[str]] = None) -> int:
    """Dispatch on the first positional; bare flags mean ``run``.

    The original flag-only invocation (``repro obs --scenario ...``)
    predates the subcommands and must keep working — scripts and tests
    call it — so anything that does not start with a known subcommand
    falls through to the profile runner.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        sub, rest = argv[0], argv[1:]
        if sub == "run":
            return _run_main(rest)
        if sub == "query":
            return _query_main(rest)
        if sub == "ingest":
            return _ingest_main(rest)
        return _trend_main(rest)
    return _run_main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(obs_main())
