"""``repro obs`` — run an instrumented scenario and export its profile.

Usage::

    repro obs --scenario skt-hpl --fail-at panel:3 --out obs-out/
    repro obs --scenario selfckpt --fail-at flush:2
    repro obs --scenario skt-hpl --report-only

Writes four artifacts into ``--out`` (default ``obs-out``): a Perfetto/
``chrome://tracing``-loadable ``trace.json``, a ``metrics.jsonl``
snapshot, the ASCII ``report.txt``, and a machine-readable
``BENCH_obs.json`` perf record.  The report is also printed.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.obs.scenario import (
    SCENARIOS,
    parse_fail_at,
    run_scenario,
    summarize,
    write_artifacts,
)


def obs_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "Run an instrumented scenario and export spans/metrics "
            "(Chrome trace JSON, metrics JSON-lines, ASCII report, "
            "BENCH_obs.json)."
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=SCENARIOS,
        default="skt-hpl",
        help="which application to run (default: skt-hpl)",
    )
    parser.add_argument(
        "--fail-at",
        default=None,
        metavar="PHASE[:K]",
        help="power off a node on the K-th announcement of PHASE "
        "(aliases: panel, flush, encode; e.g. 'panel:3')",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="matrix / workload seed"
    )
    parser.add_argument("--n", type=int, default=64, help="HPL problem size")
    parser.add_argument("--nb", type=int, default=8, help="HPL block size")
    parser.add_argument("--grid", default="2x2", help="process grid PxQ")
    parser.add_argument(
        "--method", default="self", help="checkpoint method (self, double, ...)"
    )
    parser.add_argument(
        "--group-size", type=int, default=4, help="checkpoint group size"
    )
    parser.add_argument(
        "--interval", type=int, default=2, help="checkpoint every K panels/iters"
    )
    parser.add_argument(
        "--out", default="obs-out", help="artifact directory (default: obs-out)"
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the ASCII report without writing artifacts",
    )
    args = parser.parse_args(argv)

    try:
        p, q = (int(v) for v in args.grid.lower().split("x"))
    except ValueError:
        parser.error(f"--grid must look like PxQ, got {args.grid!r}")

    try:
        parse_fail_at(args.fail_at)
    except ValueError as exc:
        parser.error(f"--fail-at: {exc}")

    run = run_scenario(
        args.scenario,
        fail_at=args.fail_at,
        seed=args.seed,
        n=args.n,
        nb=args.nb,
        p=p,
        q=q,
        group_size=args.group_size,
        interval_panels=args.interval,
        method=args.method,
        ckpt_every=args.interval,
    )

    from repro.obs.report import render_report

    print(
        render_report(
            run.spans,
            run.registry,
            title=f"obs run report: {run.scenario} (seed {run.seed})",
        )
    )
    print()
    for line in summarize(run):
        print(line)

    if not args.report_only:
        paths = write_artifacts(run, args.out)
        for kind in sorted(paths):
            print(f"wrote {kind}: {paths[kind]}")

    return 0 if run.completed else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(obs_main())
