"""ASCII run report: top spans, per-rank imbalance, critical path.

The report answers the three questions every perf PR against this repo
must answer with numbers: *where did the time go* (top spans by inclusive
virtual time), *how evenly* (per-rank busy-time imbalance), and *what
bounded the makespan* (the critical-path chain on the slowest rank —
for a run that survived a failure, that chain runs straight through the
recovery spans, which is the paper's recovery-latency measurement).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import math

from repro.obs.metrics import MetricsRegistry, percentile_from_buckets
from repro.obs.spans import STATUS_OK, Span
from repro.util import render_table

#: percentiles the histogram table reports, derived deterministically
#: from the log-spaced buckets (nearest-rank, bucket upper bound)
REPORT_PERCENTILES = (0.50, 0.90, 0.99)


def _fmt_s(v: float) -> str:
    return "inf" if math.isinf(v) else f"{v:.4g}"


def histogram_rows(registry: MetricsRegistry) -> List[List[str]]:
    """``[name, labels, count, mean, p50, p90, p99]`` per histogram
    instrument, in the registry's deterministic sample order."""
    rows: List[List[str]] = []
    for s in registry.samples():
        if s.kind != "histogram" or not s.extra:
            continue
        buckets = tuple(s.extra["buckets"])
        counts = list(s.extra["counts"])
        n = int(s.extra["count"])
        mean = (s.value / n) if n else 0.0
        labels = ",".join(f"{k}={v}" for k, v in sorted(s.labels.items()))
        rows.append(
            [s.name, labels or "-", str(n), _fmt_s(mean)]
            + [
                _fmt_s(percentile_from_buckets(buckets, counts, q))
                for q in REPORT_PERCENTILES
            ]
        )
    return rows


def _dur(span: Span) -> float:
    return 0.0 if span.end is None else span.end - span.begin


def aggregate_by_name(spans: List[Span]) -> List[Tuple[str, int, float, float, float]]:
    """``(name, count, total_s, mean_s, max_s)`` rows sorted by total desc
    (ties broken by name, so the ordering is deterministic)."""
    acc: Dict[str, List[float]] = {}
    for s in spans:
        acc.setdefault(s.name, []).append(_dur(s))
    rows = [
        (name, len(ds), sum(ds), sum(ds) / len(ds), max(ds))
        for name, ds in acc.items()
    ]
    return sorted(rows, key=lambda r: (-r[2], r[0]))


def rank_busy(spans: List[Span]) -> Dict[int, float]:
    """Per-rank inclusive time of *top-level* spans (children overlap their
    parents, so only roots count toward busy time)."""
    busy: Dict[int, float] = {}
    for s in spans:
        if s.parent_id is None:
            busy[s.rank] = busy.get(s.rank, 0.0) + _dur(s)
    return busy


def critical_path(spans: List[Span]) -> List[Span]:
    """The chain that bounds the makespan: start from the span with the
    latest end clock (ties: lowest rank / earliest begin), then descend
    through the longest child at each level.

    After a failure + recovery, the latest-ending spans belong to the
    restarted incarnation, so the chain surfaces the recovery path
    (``restore`` -> ``restore.rebuild`` / ``restore.commit``) ahead of
    steady-state compute — the paper's Fig. 10 decomposition, measured.
    """
    if not spans:
        return []
    children: Dict[Optional[str], List[Span]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    roots = children.get(None, [])
    if not roots:
        return []
    head = max(roots, key=lambda s: (s.end or s.begin, -s.rank, -s.begin))
    chain = [head]
    while True:
        kids = children.get(chain[-1].span_id, [])
        if not kids:
            return chain
        chain.append(max(kids, key=lambda s: (_dur(s), -s.begin)))


def recovery_path(spans: List[Span]) -> List[Span]:
    """The recovery critical path: the latest-ending ``restore`` root and
    its longest-child descent — what actually bounded the time from
    restart to resumed compute (paper Fig. 10's recovery segment)."""
    restores = [s for s in spans if s.name == "restore"]
    if not restores:
        return []
    head = max(restores, key=lambda s: (s.end or s.begin, -s.rank, -s.begin))
    children: Dict[Optional[str], List[Span]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    chain = [head]
    while True:
        kids = children.get(chain[-1].span_id, [])
        if not kids:
            return chain
        chain.append(max(kids, key=lambda s: (_dur(s), -s.begin)))


def render_report(
    spans: List[Span],
    registry: Optional[MetricsRegistry] = None,
    *,
    top: int = 12,
    title: str = "obs run report",
) -> str:
    """The full ASCII report (top spans, imbalance, critical path, traffic)."""
    parts: List[str] = [title, "=" * len(title)]

    if not spans:
        parts.append("(no spans recorded)")
    else:
        rows = [
            [name, count, f"{total:.4g}", f"{mean:.4g}", f"{mx:.4g}"]
            for name, count, total, mean, mx in aggregate_by_name(spans)[:top]
        ]
        parts.append(
            render_table(
                ["span", "count", "total s", "mean s", "max s"],
                rows,
                title="top spans by inclusive virtual time",
            )
        )

        busy = rank_busy(spans)
        if busy:
            lo, hi = min(busy.values()), max(busy.values())
            mean = sum(busy.values()) / len(busy)
            parts.append(
                render_table(
                    ["ranks", "min s", "mean s", "max s", "imbalance"],
                    [[
                        len(busy),
                        f"{lo:.4g}",
                        f"{mean:.4g}",
                        f"{hi:.4g}",
                        f"{hi / mean:.3f}x" if mean > 0 else "-",
                    ]],
                    title="per-rank busy-time imbalance (top-level spans)",
                )
            )

        chain = critical_path(spans)
        crit_rows = []
        for depth, s in enumerate(chain):
            flag = "" if s.status == STATUS_OK else f" [{s.status}]"
            crit_rows.append(
                [
                    "  " * depth + s.name + flag,
                    s.rank,
                    f"{s.begin:.4g}",
                    f"{_dur(s):.4g}",
                ]
            )
        parts.append(
            render_table(
                ["span", "rank", "begin s", "dur s"],
                crit_rows,
                title="critical path (slowest rank, longest-child descent)",
            )
        )

        rec_chain = recovery_path(spans)
        if rec_chain:
            rec_rows = []
            for depth, s in enumerate(rec_chain):
                flag = "" if s.status == STATUS_OK else f" [{s.status}]"
                rec_rows.append(
                    [
                        "  " * depth + s.name + flag,
                        s.rank,
                        f"{s.begin:.4g}",
                        f"{_dur(s):.4g}",
                    ]
                )
            parts.append(
                render_table(
                    ["span", "rank", "begin s", "dur s"],
                    rec_rows,
                    title="recovery critical path (latest restore, longest-child descent)",
                )
            )

        interrupted = [s for s in spans if s.status != STATUS_OK]
        if interrupted:
            parts.append(
                f"interrupted spans: {len(interrupted)} "
                f"({', '.join(sorted({s.name for s in interrupted}))})"
            )

    if registry is not None:
        hist_rows = histogram_rows(registry)
        if hist_rows:
            parts.append(
                render_table(
                    ["histogram", "labels", "count", "mean s", "p50 s", "p90 s", "p99 s"],
                    hist_rows,
                    title="histogram percentiles (nearest-rank, log-bucket upper bounds)",
                )
            )
        sent = registry.total("mpi.bytes_sent")
        recv = registry.total("mpi.bytes_recv")
        posted = registry.total("mpi.bytes_posted")
        parts.append(
            render_table(
                ["delivered B (sent)", "delivered B (recv)", "posted B", "stranded B"],
                [[int(sent), int(recv), int(posted), int(posted - sent)]],
                title="message balance (delivered sent == recv; stranded = lost in flight)",
            )
        )
    return "\n\n".join(parts)
