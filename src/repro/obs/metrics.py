"""Metrics registry and the observer that feeds it from simulator hooks.

:class:`MetricsRegistry` holds counters, gauges and histograms keyed by
``(name, labels)`` — ranks and nodes ride in the labels, so per-rank
traffic and per-node SHM pressure fall out of the same instruments.  All
values are driven by *virtual* quantities (bytes, virtual seconds), never
wall time, so snapshots are bit-deterministic across runs with one seed.

:class:`MetricsObserver` rides the :class:`~repro.sim.observer.SimObserver`
hook layer exactly like the sancheck detectors do, which means it composes
with them through :class:`~repro.sim.observer.MultiObserver` — a job can
run with the race detector, the deadlock detector and the metrics observer
all attached at once.

Accounting contract (also in :mod:`repro.obs.labels`):

* ``mpi.bytes_posted``/``mpi.msgs_posted`` count at **send** time — they
  include messages a failure strands in flight;
* ``mpi.bytes_sent``/``mpi.bytes_recv`` count at **delivery** time, the
  sender's bytes attributed via the observer token that rides the
  envelope.  Aggregated over a job, sent == recv by construction, and a
  send retried after a restore is counted once per actual delivery —
  never double-counted.
* ``mpi.blocked_s`` is the *virtual* wait a receive experienced — how far
  the sender's arrival outran the receiver's own clock (the ``waited_s``
  the communicator reports at delivery; deterministic, unlike whether the
  rank's thread physically parked); ``mpi.collective_s`` is time inside
  collectives, synchronization included.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.labels import METRIC_NAMES, tag_class
from repro.sim.observer import SimObserver, install_observer

#: histogram bucket upper bounds (virtual seconds), log-spaced; the last
#: implicit bucket is +inf
DEFAULT_BUCKETS_S = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)

LabelsKey = Tuple[Tuple[str, Any], ...]


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing value (bytes, events)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that is set, not accumulated (completion flag, makespan)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram (counts per bucket + sum + count)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS_S) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Deterministic nearest-rank percentile from the fixed buckets.

        Returns the *upper bound* of the bucket holding the q-th ranked
        observation — a conservative estimate whose error is bounded by
        the log-spaced bucket width and which never depends on arrival
        order, so two same-seed runs report identical percentiles.
        Observations that landed in the overflow bucket report ``inf``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"percentile q must be in (0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = math.ceil(q * self.count)
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                return self.buckets[i] if i < len(self.buckets) else math.inf
        return math.inf  # pragma: no cover - counts always sum to count


def percentile_from_buckets(
    buckets: Tuple[float, ...], counts: Sequence[int], q: float
) -> float:
    """:meth:`Histogram.percentile` over exported bucket data — lets the
    report and the trace store compute percentiles from flattened samples
    (``MetricSample.extra``) without a live :class:`Histogram`."""
    total = sum(counts)
    if not 0.0 < q <= 1.0:
        raise ValueError(f"percentile q must be in (0, 1], got {q!r}")
    if total == 0:
        return 0.0
    target = math.ceil(q * total)
    cum = 0
    for i, c in enumerate(counts):
        cum += c
        if cum >= target:
            return buckets[i] if i < len(buckets) else math.inf
    return math.inf  # pragma: no cover - counts always sum to total


@dataclass(frozen=True)
class MetricSample:
    """One (name, labels) instrument flattened for export."""

    name: str
    labels: Dict[str, Any]
    kind: str  # "counter" | "gauge" | "histogram"
    value: float
    extra: Optional[Dict[str, Any]] = None  # histogram buckets etc.


class MetricsRegistry:
    """Thread-safe instrument store keyed by (name, labels).

    Metric names must come from :data:`repro.obs.labels.METRIC_NAMES`
    (checked at creation and, statically, by the simlint ``obs-label``
    rule), so every consumer — exporters, reports, dashboards — can rely
    on one closed vocabulary.
    """

    def __init__(self, *, strict_names: bool = True) -> None:
        self._lock = threading.Lock()  # simlint: allow[threading] -- registry-internal state guard
        self._instruments: Dict[Tuple[str, str, LabelsKey], Any] = {}
        self.strict_names = strict_names

    def _get(self, kind: str, factory, name: str, labels: Dict[str, Any]):
        if self.strict_names and name not in METRIC_NAMES:
            raise ValueError(
                f"unregistered metric name {name!r}; add it to "
                "repro.obs.labels.METRIC_NAMES"
            )
        key = (kind, name, _labels_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = factory()
                self._instruments[key] = inst
            return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", Histogram, name, labels)

    # -- queries ----------------------------------------------------------------
    def samples(self) -> List[MetricSample]:
        """Deterministic flat view: sorted by (name, kind, labels)."""
        with self._lock:
            items = sorted(self._instruments.items(), key=lambda kv: (kv[0][1], kv[0][0], kv[0][2]))
        out: List[MetricSample] = []
        for (kind, name, lkey), inst in items:
            labels = dict(lkey)
            if kind == "histogram":
                out.append(
                    MetricSample(
                        name=name,
                        labels=labels,
                        kind=kind,
                        value=inst.total,
                        extra={
                            "count": inst.count,
                            "buckets": list(inst.buckets),
                            "counts": list(inst.counts),
                        },
                    )
                )
            else:
                out.append(MetricSample(name=name, labels=labels, kind=kind, value=inst.value))
        return out

    def total(self, name: str, **labels: Any) -> float:
        """Sum of a counter/gauge over all label sets matching ``labels``."""
        want = set(labels.items())
        out = 0.0
        for s in self.samples():
            if s.name == name and s.kind != "histogram" and want <= set(s.labels.items()):
                out += s.value
        return out


class MetricsObserver(SimObserver):
    """Feeds a :class:`MetricsRegistry` from the simulator's hook layer."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        self._lock = threading.Lock()  # simlint: allow[threading] -- observer-internal state guard
        #: rank -> clock at collective entry
        self._coll_entered_at: Dict[int, float] = {}
        self._clusters: List[Any] = []

    # -- installation (same shape as the sancheck detectors) --------------------
    def install(self, job: Any) -> "MetricsObserver":
        """Attach to a job's communicator events and its cluster's SHM."""
        install_observer(job, self)
        self.watch_cluster(job.cluster)
        return self

    def watch_cluster(self, cluster: Any) -> None:
        """Subscribe to SHM events on every node of ``cluster`` —
        spares included, so replacement nodes report from the moment
        they are swapped in."""
        if cluster in self._clusters:
            return
        self._clusters.append(cluster)
        nodes = cluster.all_nodes() if hasattr(cluster, "all_nodes") else cluster.nodes
        for node in nodes:
            store = node.shm
            if store.observer is None:
                store.observer = self
            elif store.observer is not self:
                install_observer(store, self)

    # -- point to point ----------------------------------------------------------
    def on_send(self, src: int, dst: int, tag: int, nbytes: int, clock: float) -> Any:
        cls = tag_class(tag)
        self.registry.counter("mpi.bytes_posted", rank=src, cls=cls).inc(nbytes)
        self.registry.counter("mpi.msgs_posted", rank=src, cls=cls).inc()
        # the token rides the envelope; delivery-time accounting happens in
        # on_recv so stranded in-flight messages never count as "sent"
        return nbytes

    def on_recv(
        self,
        dst: int,
        src: int,
        tag: int,
        token: Any,
        clock: float,
        waited_s: float = 0.0,
    ) -> None:
        cls = tag_class(tag)
        nbytes = int(token) if token is not None else 0
        self.registry.counter("mpi.bytes_sent", rank=src, cls=cls).inc(nbytes)
        self.registry.counter("mpi.bytes_recv", rank=dst, cls=cls).inc(nbytes)
        self.registry.counter("mpi.msgs_recv", rank=dst, cls=cls).inc()
        self.registry.histogram("mpi.blocked_s", rank=dst).observe(waited_s)

    # -- collectives -------------------------------------------------------------
    def on_collective_enter(self, comm: str, size: int, rank: int, clock: float) -> None:
        with self._lock:
            self._coll_entered_at[rank] = clock

    def on_collective_exit(self, comm: str, size: int, rank: int, clock: float) -> None:
        with self._lock:
            entered = self._coll_entered_at.pop(rank, None)
        self.registry.counter("mpi.collectives", rank=rank).inc()
        if entered is not None:
            self.registry.counter("mpi.collective_s", rank=rank).inc(
                max(0.0, clock - entered)
            )

    # -- shared memory ------------------------------------------------------------
    def on_shm(self, node_id: int, name: str, kind: str, nbytes: int = 0) -> None:
        self.registry.counter("shm.ops", node=node_id, kind=kind).inc()
        if kind in ("write", "create"):
            self.registry.counter("shm.bytes_written", node=node_id).inc(nbytes)

    # -- consistency helpers -------------------------------------------------------
    def message_balance(self) -> Tuple[float, float, float]:
        """(delivered bytes_sent, bytes_recv, posted bytes) over all ranks.

        The first two are equal by construction; the third exceeds them by
        exactly the bytes a failure stranded in flight.
        """
        return (
            self.registry.total("mpi.bytes_sent"),
            self.registry.total("mpi.bytes_recv"),
            self.registry.total("mpi.bytes_posted"),
        )
