"""Instrumented scenarios behind ``repro obs`` and the obs benchmark.

:func:`run_scenario` wires a :class:`~repro.obs.spans.SpanTracer` and a
:class:`~repro.obs.metrics.MetricsObserver` into a supervised run of one
of the built-in applications, optionally aiming a failure at a named
protocol phase, and returns everything the exporters need.
:func:`write_artifacts` turns one run into the artifact set — Chrome
trace, metrics JSON-lines, ASCII report, ``BENCH_obs.json``.

Determinism contract: everything is driven by virtual clocks and the
fixed matrix seed; two calls with identical arguments produce
byte-identical artifacts, and the tests hold this to be true.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.spans import SpanTracer

SCENARIOS = ("skt-hpl", "selfckpt")

#: CLI phase aliases -> the phase names rank code actually announces
PHASE_ALIASES = {
    "panel": "hpl.panel",
    "flush": "ckpt.flush",
    "encode": "ckpt.encode",
}


def parse_fail_at(spec: Optional[str]) -> Optional[Tuple[str, int]]:
    """``"panel:3"`` -> ``("hpl.panel", 3)``; ``None`` stays ``None``."""
    if spec is None:
        return None
    name, _, occ = spec.partition(":")
    phase = PHASE_ALIASES.get(name, name)
    occurrence = int(occ) if occ else 1
    if occurrence < 1:
        raise ValueError(f"occurrence must be >= 1 in --fail-at {spec!r}")
    return phase, occurrence


@dataclass
class ObsRun:
    """One instrumented scenario run, ready for export."""

    scenario: str
    seed: int
    completed: bool
    n_restarts: int
    makespan_s: float
    tracer: SpanTracer
    registry: MetricsRegistry
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def spans(self) -> list:
        return self.tracer.spans()


def _fill_job_metrics(run: ObsRun, report: Any, plan: Any) -> None:
    """Derive the job/ckpt-level counters from the daemon report and the
    recorded spans — the shared :func:`repro.obs.rollup.fill_job_metrics`
    rule, so obs runs and campaign attempts agree on these counters."""
    from repro.obs.rollup import fill_job_metrics

    fill_job_metrics(
        run.registry,
        run.tracer.spans(),
        n_restarts=report.n_restarts,
        n_failures=len(plan.fired),
        completed=report.completed,
        makespan_s=report.total_virtual_s,
    )


def _build_plan(fail_at: Optional[Tuple[str, int]], node_id: int):
    from repro.sim import FailurePlan, PhaseTrigger

    if fail_at is None:
        return FailurePlan()
    phase, occurrence = fail_at
    return FailurePlan(
        [PhaseTrigger(node_id=node_id, phase=phase, occurrence=occurrence)]
    )


def _run_skt_hpl(
    fail_at: Optional[Tuple[str, int]],
    seed: int,
    n: int,
    nb: int,
    p: int,
    q: int,
    group_size: int,
    interval_panels: int,
    method: str,
) -> ObsRun:
    from repro.hpl import (
        HPLConfig,
        JobDaemon,
        RestartPolicy,
        SKTConfig,
        skt_hpl_main,
    )
    from repro.sim import Cluster

    cfg = HPLConfig(n=n, nb=nb, p=p, q=q, seed=seed)
    scfg = SKTConfig(
        hpl=cfg,
        method=method,
        group_size=group_size,
        interval_panels=interval_panels,
    )
    n_ranks = cfg.n_ranks
    cluster = Cluster(n_ranks, n_spares=2)
    # doom the last compute node: far from rank 0, so the report's
    # critical path crosses the rescue traffic
    plan = _build_plan(fail_at, node_id=n_ranks - 1)

    tracer = SpanTracer()
    metrics = MetricsObserver()
    metrics.watch_cluster(cluster)
    daemon = JobDaemon(
        cluster,
        skt_hpl_main,
        n_ranks,
        args=(scfg,),
        procs_per_node=1,
        failure_plan=plan,
        policy=RestartPolicy(detect_s=63.0, replace_s=10.0, restart_s=9.0),
        observer=metrics,
        tracer=tracer,
        name="obs-skt",
    )
    report = daemon.run()

    run = ObsRun(
        scenario="skt-hpl",
        seed=seed,
        completed=report.completed,
        n_restarts=report.n_restarts,
        makespan_s=report.total_virtual_s,
        tracer=tracer,
        registry=metrics.registry,
        params={
            "n": n,
            "nb": nb,
            "grid": f"{p}x{q}",
            "method": method,
            "group_size": group_size,
            "interval_panels": interval_panels,
            "fail_at": None if fail_at is None else f"{fail_at[0]}:{fail_at[1]}",
        },
    )
    _fill_job_metrics(run, report, plan)
    return run


def _run_selfckpt(
    fail_at: Optional[Tuple[str, int]],
    seed: int,
    n_ranks: int,
    group_size: int,
    iters: int,
    ckpt_every: int,
    method: str,
) -> ObsRun:
    """A small iterative self-checkpoint app under the daemon — the
    protocol alone, no HPL, for quick protocol-path profiles."""
    from repro.ckpt import CheckpointManager
    from repro.hpl import JobDaemon, RestartPolicy
    from repro.sim import Cluster

    def app(ctx):
        mgr = CheckpointManager(
            ctx, ctx.world, group_size=group_size, method=method
        )
        a = mgr.alloc("data", 256)
        mgr.commit()
        report = mgr.try_restore()
        start = report.local["it"] if report else 0
        for it in range(start, iters):
            a += ctx.world.rank + 1 + seed
            ctx.compute(1e7)
            if (it + 1) % ckpt_every == 0:
                mgr.local["it"] = it + 1
                mgr.checkpoint()
        return True

    cluster = Cluster(n_ranks, n_spares=2)
    plan = _build_plan(fail_at, node_id=n_ranks - 1)
    tracer = SpanTracer()
    metrics = MetricsObserver()
    metrics.watch_cluster(cluster)
    daemon = JobDaemon(
        cluster,
        app,
        n_ranks,
        procs_per_node=1,
        failure_plan=plan,
        policy=RestartPolicy(detect_s=30.0, replace_s=10.0, restart_s=9.0),
        observer=metrics,
        tracer=tracer,
        name="obs-selfckpt",
    )
    report = daemon.run()

    run = ObsRun(
        scenario="selfckpt",
        seed=seed,
        completed=report.completed,
        n_restarts=report.n_restarts,
        makespan_s=report.total_virtual_s,
        tracer=tracer,
        registry=metrics.registry,
        params={
            "n_ranks": n_ranks,
            "group_size": group_size,
            "iters": iters,
            "ckpt_every": ckpt_every,
            "method": method,
            "fail_at": None if fail_at is None else f"{fail_at[0]}:{fail_at[1]}",
        },
    )
    _fill_job_metrics(run, report, plan)
    return run


def run_scenario(
    scenario: str = "skt-hpl",
    *,
    fail_at: Optional[str] = None,
    seed: int = 42,
    n: int = 64,
    nb: int = 8,
    p: int = 2,
    q: int = 2,
    group_size: int = 4,
    interval_panels: int = 2,
    method: str = "self",
    iters: int = 6,
    ckpt_every: int = 2,
) -> ObsRun:
    """Run one instrumented scenario and return its spans + metrics.

    ``fail_at`` is the CLI spelling ``"phase[:occurrence]"`` (with the
    ``panel``/``flush``/``encode`` aliases); the failure is aimed at the
    last compute node, and the job daemon supervises the restart.
    """
    parsed = parse_fail_at(fail_at)
    if scenario == "skt-hpl":
        return _run_skt_hpl(
            parsed, seed, n, nb, p, q, group_size, interval_panels, method
        )
    if scenario == "selfckpt":
        return _run_selfckpt(
            parsed, seed, p * q, group_size, iters, ckpt_every, method
        )
    raise ValueError(f"unknown scenario {scenario!r}; choose from {SCENARIOS}")


def write_artifacts(run: ObsRun, out_dir: str) -> Dict[str, str]:
    """Write the full artifact set; returns ``{kind: path}``."""
    from repro.obs.bench import write_bench
    from repro.obs.export import write_chrome_trace, write_metrics_jsonl
    from repro.obs.report import render_report

    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "trace": os.path.join(out_dir, "trace.json"),
        "metrics": os.path.join(out_dir, "metrics.jsonl"),
        "report": os.path.join(out_dir, "report.txt"),
        "bench": os.path.join(out_dir, "BENCH_obs.json"),
    }
    write_chrome_trace(paths["trace"], run.spans)
    write_metrics_jsonl(paths["metrics"], run.registry)
    with open(paths["report"], "w", encoding="utf-8") as f:
        f.write(
            render_report(
                run.spans,
                run.registry,
                title=f"obs run report: {run.scenario} (seed {run.seed})",
            )
            + "\n"
        )
    write_bench(paths["bench"], run)
    return paths


def summarize(run: ObsRun) -> List[str]:
    """Short human summary lines for the CLI."""
    sent, recv, posted = (
        run.registry.total("mpi.bytes_sent"),
        run.registry.total("mpi.bytes_recv"),
        run.registry.total("mpi.bytes_posted"),
    )
    return [
        f"scenario={run.scenario} seed={run.seed} completed={run.completed} "
        f"restarts={run.n_restarts}",
        f"spans={len(run.tracer)} makespan={run.makespan_s:.1f}s (virtual)",
        f"delivered bytes sent={int(sent)} recv={int(recv)} "
        f"stranded={int(posted - sent)}",
    ]
