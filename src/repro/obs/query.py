"""``repro obs query``/``trend`` — cross-run queries over the trace store.

The :class:`~repro.obs.store.TraceStore` holds attempts from many
campaigns; this module answers the questions a campaign report cannot —
"how long do ``ckpt.flush`` spans run across every survived kill point?",
"what is the p99 recovery path over the whole matrix?", "did the encode
kernel's speedup ratio regress against the checked-in baseline?".

All output is byte-stable: filters, aggregation and rendering are pure
functions of the store's logical content, rows are ordered by explicit
sort keys, floats are formatted through one formatter, and percentiles
use the deterministic nearest-rank rule (``sorted[ceil(q*n)-1]``) over
exact span durations — so two same-seed campaigns produce not just equal
stores but equal query output, which CI compares bytewise.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.store import TraceStore
from repro.util.tables import render_table

#: percentile columns of the aggregation views
QUERY_PERCENTILES = (0.50, 0.90, 0.99)


def _fmt(v: Any) -> str:
    """One float spelling for every rendered cell (byte-stability)."""
    if isinstance(v, float):
        if math.isinf(v):
            return "inf"
        return f"{v:.6g}"
    return str(v)


def nearest_rank(sorted_vals: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile over pre-sorted values."""
    if not 0.0 < q <= 1.0:
        raise ValueError(f"percentile q must be in (0, 1], got {q!r}")
    if not sorted_vals:
        return 0.0
    return sorted_vals[math.ceil(q * len(sorted_vals)) - 1]


@dataclass(frozen=True)
class QueryFilter:
    """Conjunctive filters over runs and spans (empty = match all)."""

    kinds: Tuple[str, ...] = ()
    scenarios: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()
    verdicts: Tuple[str, ...] = ()
    campaign: Optional[str] = None
    label_like: Optional[str] = None
    names: Tuple[str, ...] = ()
    ranks: Tuple[int, ...] = ()
    incarnations: Tuple[int, ...] = ()

    def _run_where(self, alias: str = "runs") -> Tuple[str, List[Any]]:
        clauses, params = [], []

        def _in(col: str, vals: Sequence[Any]) -> None:
            if vals:
                marks = ",".join("?" for _ in vals)
                clauses.append(f"{alias}.{col} IN ({marks})")
                params.extend(vals)

        _in("kind", self.kinds)
        _in("scenario", self.scenarios)
        _in("method", self.methods)
        _in("verdict", self.verdicts)
        if self.campaign is not None:
            clauses.append(f"{alias}.campaign_id = ?")
            params.append(self.campaign)
        if self.label_like is not None:
            clauses.append(f"{alias}.label LIKE ?")
            params.append(f"%{self.label_like}%")
        return (" AND ".join(clauses) or "1=1"), params

    def _span_where(self) -> Tuple[str, List[Any]]:
        clauses, params = [], []

        def _in(col: str, vals: Sequence[Any]) -> None:
            if vals:
                marks = ",".join("?" for _ in vals)
                clauses.append(f"spans.{col} IN ({marks})")
                params.extend(vals)

        _in("name", self.names)
        _in("rank", self.ranks)
        _in("incarnation", self.incarnations)
        return (" AND ".join(clauses) or "1=1"), params


RUN_COLUMNS = (
    "run_id",
    "campaign_id",
    "ord",
    "kind",
    "scenario",
    "method",
    "seed",
    "label",
    "verdict",
    "n_restarts",
    "makespan_s",
    "obs_mode",
)


def run_rows(store: TraceStore, flt: QueryFilter) -> List[Dict[str, Any]]:
    """Matching run rows in canonical (campaign, ord, run_id) order."""
    where, params = flt._run_where()
    rows = store.query(
        f"SELECT {', '.join(RUN_COLUMNS)} FROM runs WHERE {where} "
        "ORDER BY campaign_id, ord, run_id",
        tuple(params),
    )
    return [dict(zip(RUN_COLUMNS, r)) for r in rows]


SPAN_COLUMNS = (
    "run_id",
    "span_id",
    "incarnation",
    "rank",
    "seq",
    "name",
    "begin_s",
    "end_s",
    "status",
    "verdict",
    "label",
)


def span_rows(store: TraceStore, flt: QueryFilter) -> List[Dict[str, Any]]:
    """Matching spans (joined to their runs) in canonical order."""
    run_where, run_params = flt._run_where()
    span_where, span_params = flt._span_where()
    rows = store.query(
        "SELECT spans.run_id, spans.span_id, spans.incarnation, spans.rank, "
        "spans.seq, spans.name, spans.begin_s, spans.end_s, spans.status, "
        "runs.verdict, runs.label "
        "FROM spans JOIN runs ON runs.run_id = spans.run_id "
        f"WHERE {run_where} AND {span_where} "
        "ORDER BY runs.campaign_id, runs.ord, spans.run_id, spans.seq",
        tuple(run_params) + tuple(span_params),
    )
    return [dict(zip(SPAN_COLUMNS, r)) for r in rows]


@dataclass
class SpanAggregate:
    """Aggregated durations of one span name across matching runs."""

    name: str
    count: int = 0
    open: int = 0
    total_s: float = 0.0
    durations: List[float] = field(default_factory=list)

    def row(self) -> List[str]:
        vals = sorted(self.durations)
        mean = self.total_s / len(vals) if vals else 0.0
        pcts = [nearest_rank(vals, q) for q in QUERY_PERCENTILES]
        return [
            self.name,
            str(self.count),
            str(self.open),
            _fmt(self.total_s),
            _fmt(mean),
            *[_fmt(p) for p in pcts],
        ]


def aggregate_spans(spans: List[Dict[str, Any]]) -> List[SpanAggregate]:
    """Per-name rollup: counts, open (interrupted) spans, percentiles.

    Spans whose ``end`` never arrived (the phase a failure cut short)
    count under ``open`` and stay out of the duration aggregates — the
    same rule as :func:`repro.sim.trace.span_stats`.
    """
    by_name: Dict[str, SpanAggregate] = {}
    for s in spans:
        agg = by_name.setdefault(s["name"], SpanAggregate(name=s["name"]))
        agg.count += 1
        if s["end_s"] is None:
            agg.open += 1
        else:
            dur = s["end_s"] - s["begin_s"]
            agg.total_s += dur
            agg.durations.append(dur)
    return [by_name[k] for k in sorted(by_name)]


def verdict_counts(runs: List[Dict[str, Any]]) -> List[Tuple[str, int]]:
    counts: Dict[str, int] = {}
    for r in runs:
        counts[r["verdict"]] = counts.get(r["verdict"], 0) + 1
    return sorted(counts.items())


def summary_stats(
    store: TraceStore,
    flt: QueryFilter,
    keys: Optional[Sequence[str]] = None,
) -> List[List[str]]:
    """Aggregate the flat per-attempt rollups across matching runs.

    Covers every dotted summary key — ``critical_path_s`` /
    ``recovery_path_s`` recovery rollups, ``span.total_s.*``,
    ``traffic.*`` — with count/total/mean/min/max/percentile columns.
    """
    where, params = flt._run_where()
    sql = (
        "SELECT summaries.key, summaries.value "
        "FROM summaries JOIN runs ON runs.run_id = summaries.run_id "
        f"WHERE {where} "
    )
    if keys:
        marks = ",".join("?" for _ in keys)
        sql += f"AND summaries.key IN ({marks}) "
        params = list(params) + list(keys)
    sql += "ORDER BY summaries.key, runs.campaign_id, runs.ord"
    by_key: Dict[str, List[float]] = {}
    for key, value in store.query(sql, tuple(params)):
        by_key.setdefault(key, []).append(value)
    rows = []
    for key in sorted(by_key):
        vals = sorted(by_key[key])
        total = sum(vals)
        rows.append(
            [
                key,
                str(len(vals)),
                _fmt(total),
                _fmt(total / len(vals)),
                _fmt(vals[0]),
                _fmt(vals[-1]),
                *[_fmt(nearest_rank(vals, q)) for q in QUERY_PERCENTILES],
            ]
        )
    return rows


# -- rendering ------------------------------------------------------------------

RUNS_HEADERS = [
    "campaign",
    "ord",
    "kind",
    "scenario",
    "method",
    "seed",
    "label",
    "verdict",
    "restarts",
    "makespan s",
    "obs",
]

AGG_HEADERS = [
    "span",
    "count",
    "open",
    "total s",
    "mean s",
    "p50 s",
    "p90 s",
    "p99 s",
]

SUMMARY_HEADERS = [
    "key",
    "runs",
    "total",
    "mean",
    "min",
    "max",
    "p50",
    "p90",
    "p99",
]


def render_runs(runs: List[Dict[str, Any]]) -> str:
    rows = [
        [
            r["campaign_id"][:12],
            str(r["ord"]),
            r["kind"],
            r["scenario"],
            r["method"],
            str(r["seed"]),
            r["label"],
            r["verdict"],
            str(r["n_restarts"]),
            _fmt(r["makespan_s"]),
            r["obs_mode"],
        ]
        for r in runs
    ]
    parts = [render_table(RUNS_HEADERS, rows, title=f"runs ({len(runs)})")]
    vc = verdict_counts(runs)
    if vc:
        parts.append(
            render_table(
                ["verdict", "runs"],
                [[v, str(n)] for v, n in vc],
                title="verdicts",
            )
        )
    return "\n\n".join(parts)


def render_span_agg(spans: List[Dict[str, Any]]) -> str:
    rows = [a.row() for a in aggregate_spans(spans)]
    return render_table(
        AGG_HEADERS,
        rows,
        title=f"span durations over {len(spans)} spans "
        "(nearest-rank percentiles, virtual s)",
    )


def render_summaries(rows: List[List[str]]) -> str:
    return render_table(
        SUMMARY_HEADERS, rows, title="summary rollups across runs"
    )


def query_report(
    store: TraceStore,
    flt: QueryFilter,
    *,
    sections: Sequence[str] = ("runs", "spans", "summary"),
    keys: Optional[Sequence[str]] = None,
) -> str:
    """The full byte-stable query answer (table form)."""
    parts = []
    if "runs" in sections:
        parts.append(render_runs(run_rows(store, flt)))
    if "spans" in sections:
        spans = span_rows(store, flt)
        if spans:
            parts.append(render_span_agg(spans))
    if "summary" in sections:
        rows = summary_stats(store, flt, keys)
        if rows:
            parts.append(render_summaries(rows))
    return "\n\n".join(parts)


def query_jsonl(
    store: TraceStore,
    flt: QueryFilter,
    *,
    sections: Sequence[str] = ("runs", "spans", "summary"),
    keys: Optional[Sequence[str]] = None,
) -> str:
    """The same answer as machine-readable JSON lines."""
    lines: List[str] = []

    def emit(doc: Dict[str, Any]) -> None:
        lines.append(json.dumps(doc, sort_keys=True, separators=(",", ":")))

    if "runs" in sections:
        for r in run_rows(store, flt):
            emit({"record": "run", **r})
    if "spans" in sections:
        for a in aggregate_spans(span_rows(store, flt)):
            vals = sorted(a.durations)
            emit(
                {
                    "record": "span_agg",
                    "name": a.name,
                    "count": a.count,
                    "open": a.open,
                    "total_s": a.total_s,
                    "mean_s": a.total_s / len(vals) if vals else 0.0,
                    **{
                        f"p{int(q * 100)}_s": nearest_rank(vals, q)
                        for q in QUERY_PERCENTILES
                    },
                }
            )
    if "summary" in sections:
        for row in summary_stats(store, flt, keys):
            emit(
                {
                    "record": "summary",
                    **dict(
                        zip(
                            ("key", "runs", "total", "mean", "min", "max",
                             "p50", "p90", "p99"),
                            row,
                        )
                    ),
                }
            )
    return "\n".join(lines) + ("\n" if lines else "")


# -- bench trajectory -----------------------------------------------------------

#: a tracked speedup ratio may shrink by at most this factor vs baseline
#: (same rule as benchmarks/bench_perf_kernels.py)
TREND_REGRESSION_FACTOR = 3.0


def _bench_records(store: TraceStore, bench: str) -> List[Dict[str, Any]]:
    return [
        json.loads(blob)
        for (blob,) in store.query(
            "SELECT record_json FROM bench_records WHERE bench = ? "
            "ORDER BY record_id",
            (bench,),
        )
    ]


def perf_trend_rows(
    store: TraceStore, baseline: Optional[Dict[str, Any]]
) -> Tuple[List[List[str]], bool]:
    """Speedup-ratio rows for every stored perf record vs the baseline.

    Returns ``(rows, ok)`` — ``ok`` flips false when any tracked ratio
    fell below ``baseline / TREND_REGRESSION_FACTOR`` (the same gate the
    perf benchmark enforces at measurement time).
    """
    rows: List[List[str]] = []
    ok = True
    for rec in _bench_records(store, "perf_kernels"):
        rid = _sha8(rec)
        for group, key in (
            ("gf_vec_mul", "size"),
            ("rs_encode", "stripe_bytes"),
            ("matrix_encode", "stripe_bytes"),
        ):
            base_rows = (baseline or {}).get(group, [])
            base_by_key = {b[key]: b for b in base_rows}
            for cur in rec.get(group, []):
                ref = base_by_key.get(cur[key])
                speedup = float(cur["speedup"])
                if ref is None:
                    floor, verdict = 0.0, "no-baseline"
                else:
                    floor = float(ref["speedup"]) / TREND_REGRESSION_FACTOR
                    verdict = "ok" if speedup >= floor else "REGRESSED"
                    ok = ok and speedup >= floor
                rows.append(
                    [
                        rid,
                        f"{group}[{cur[key]}]",
                        _fmt(speedup),
                        _fmt(floor),
                        verdict,
                    ]
                )
    return rows, ok


def throughput_trend_rows(store: TraceStore) -> List[List[str]]:
    """Kernel-throughput trajectory from the perf records' host metrics.

    Renders every ``host_metrics`` gauge a stored ``BENCH_perf.json``
    carries (``ckpt.encode_bytes_per_s`` / ``ckpt.decode_bytes_per_s``);
    absolute bytes/s are hardware-bound, so these rows track, they do
    not gate — the ratio gate above is the regression check.
    """
    rows: List[List[str]] = []
    for rec in _bench_records(store, "perf_kernels"):
        rid = _sha8(rec)
        metrics = rec.get("host_metrics", {})
        for name in sorted(metrics):
            rows.append([rid, name, _fmt(float(metrics[name]) / 1e9)])
    return rows


def _sha8(doc: Dict[str, Any]) -> str:
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]


def obs_trend_rows(store: TraceStore) -> List[List[str]]:
    """Headline trajectory of every stored ``BENCH_obs.json`` record."""
    return [
        [
            _sha8(rec),
            str(rec.get("scenario", "?")),
            str(rec.get("seed", 0)),
            str(rec.get("completed", "?")),
            str(rec.get("n_restarts", 0)),
            _fmt(float(rec.get("makespan_s", 0.0))),
            _fmt(float(rec.get("ckpt_count", 0.0))),
            _fmt(float(rec.get("traffic", {}).get("bytes_stranded", 0.0))),
        ]
        for rec in _bench_records(store, "obs")
    ]


def chaos_trend_rows(store: TraceStore) -> List[List[str]]:
    """Survivability trajectory of every stored ``BENCH_chaos.json``."""
    rows = []
    for rec in _bench_records(store, "chaos"):
        n_points = sum(m.get("n_kill_points", 0) for m in rec.get("matrices", []))
        verdicts: Dict[str, int] = {}
        for m in rec.get("matrices", []):
            for v, n in m.get("verdicts", {}).items():
                verdicts[v] = verdicts.get(v, 0) + n
        summary = ",".join(f"{v}={n}" for v, n in sorted(verdicts.items()) if n)
        rows.append(
            [
                _sha8(rec),
                str(rec.get("seed", 0)),
                str(len(rec.get("matrices", []))),
                str(n_points),
                str(rec.get("survived_all", "?")),
                summary or "-",
            ]
        )
    return rows


def trend_report(
    store: TraceStore, baseline: Optional[Dict[str, Any]] = None
) -> Tuple[str, bool]:
    """Render the cross-run bench trajectory; returns ``(text, ok)``."""
    parts = []
    perf_rows, ok = perf_trend_rows(store, baseline)
    if perf_rows:
        parts.append(
            render_table(
                ["record", "kernel", "speedup", "floor", "gate"],
                perf_rows,
                title=f"perf speedup ratios (floor = baseline / "
                f"{TREND_REGRESSION_FACTOR})",
            )
        )
    tput_rows = throughput_trend_rows(store)
    if tput_rows:
        parts.append(
            render_table(
                ["record", "metric", "GB/s"],
                tput_rows,
                title="kernel throughput (host wall-clock, informational)",
            )
        )
    obs_rows = obs_trend_rows(store)
    if obs_rows:
        parts.append(
            render_table(
                [
                    "record",
                    "scenario",
                    "seed",
                    "completed",
                    "restarts",
                    "makespan s",
                    "ckpts",
                    "stranded B",
                ],
                obs_rows,
                title="obs run trajectory",
            )
        )
    chaos_rows = chaos_trend_rows(store)
    if chaos_rows:
        parts.append(
            render_table(
                ["record", "seed", "matrices", "kill points", "survived", "verdicts"],
                chaos_rows,
                title="chaos campaign trajectory",
            )
        )
    if not parts:
        parts.append("(no bench records in store)")
    return "\n\n".join(parts), ok
