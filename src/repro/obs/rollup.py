"""Per-attempt observability payloads for campaign-scale ingestion.

A chaos campaign resolves thousands of attempts through the pickleable
replay path of :mod:`repro.par`; this module defines the JSON-canonical
payload one instrumented attempt ships back — either a flat *summary*
rollup (the ``bench_record``-style headline numbers, bounding per-attempt
overhead to a few hundred bytes) or the *full* span/metric streams.  The
payload rides :class:`repro.par.replay.ReplayOutcome` across the process
boundary and through the memo cache's JSON encoding, and lands in the
SQLite :class:`~repro.obs.store.TraceStore`.

Everything here is deterministic and wall-clock-free: payloads are pure
functions of the tracer/registry state, which the simulator's virtual
clocks make byte-identical across same-seed runs — the property the
store digest and ``repro obs query`` byte-stability tests pin.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanTracer

#: sampling modes of the campaign obs flag (``repro chaos --obs ...``)
OBS_OFF = "off"
OBS_SUMMARY = "summary"
OBS_FULL = "full"
OBS_MODES = (OBS_OFF, OBS_SUMMARY, OBS_FULL)


def span_doc(s: Span) -> Dict[str, Any]:
    """One span as a plain JSON-canonical record (store/wire form)."""
    return {
        "span_id": s.span_id,
        "parent_id": s.parent_id,
        "rank": s.rank,
        "incarnation": s.incarnation,
        "name": s.name,
        "begin": s.begin,
        "end": s.end,
        "status": s.status,
        "attrs": dict(s.attrs),
    }


def span_from_doc(doc: Dict[str, Any]) -> Span:
    """Inverse of :func:`span_doc` (exact round-trip)."""
    return Span(
        span_id=str(doc["span_id"]),
        rank=int(doc["rank"]),
        name=str(doc["name"]),
        begin=float(doc["begin"]),
        end=None if doc.get("end") is None else float(doc["end"]),
        attrs=dict(doc.get("attrs", {})),
        parent_id=doc.get("parent_id"),
        status=str(doc.get("status", "ok")),
        incarnation=int(doc.get("incarnation", 0)),
    )


def metric_docs(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Flattened instruments in the registry's deterministic order."""
    out: List[Dict[str, Any]] = []
    for s in registry.samples():
        rec: Dict[str, Any] = {
            "name": s.name,
            "kind": s.kind,
            "labels": dict(s.labels),
            "value": s.value,
        }
        if s.extra:
            rec["extra"] = dict(s.extra)
        out.append(rec)
    return out


def fill_job_metrics(
    registry: MetricsRegistry,
    spans: List[Span],
    *,
    n_restarts: int,
    n_failures: int,
    completed: bool,
    makespan_s: float,
) -> None:
    """Derive the job/ckpt-level counters from the daemon report and the
    recorded spans (the observer only sees communicator/SHM events)."""
    registry.counter("job.restarts").inc(n_restarts)
    registry.counter("job.failures_injected").inc(n_failures)
    registry.gauge("job.completed").set(1.0 if completed else 0.0)
    registry.gauge("job.makespan_s").set(makespan_s)
    for s in spans:
        if s.name == "ckpt" and s.status == "ok":
            registry.counter("ckpt.count", rank=s.rank).inc()
        elif s.name == "ckpt.encode":
            registry.counter("ckpt.bytes_encoded", rank=s.rank).inc(
                int(s.attrs.get("nbytes", 0))
            )
        elif s.name == "restore" and s.status == "ok":
            registry.counter("restore.count", rank=s.rank).inc()


def attempt_summary(
    spans: List[Span], registry: MetricsRegistry
) -> Dict[str, float]:
    """The flat rollup of one attempt: dotted ``{key: float}`` pairs.

    Key families (all values floats so they drop straight into the
    store's ``summaries`` table and aggregate across thousands of
    attempts):

    * ``spans.count`` / ``spans.interrupted`` — span-stream totals;
    * ``span.total_s.<name>`` / ``span.count.<name>`` — per-label
      inclusive virtual time and count;
    * ``critical_path_s`` / ``recovery_path_s`` — the makespan-bounding
      chain and the latest-restore descent (paper Fig. 10's segments);
    * ``traffic.*`` — delivered/posted/stranded byte balance;
    * ``ckpt.count`` / ``ckpt.bytes_encoded`` / ``restore.count`` /
      ``job.restarts`` — lifecycle aggregates.
    """
    from repro.obs.report import critical_path, recovery_path

    out: Dict[str, float] = {
        "spans.count": float(len(spans)),
        "spans.interrupted": float(
            sum(1 for s in spans if s.status != "ok")
        ),
    }
    for s in spans:
        dur = 0.0 if s.end is None else s.end - s.begin
        out[f"span.total_s.{s.name}"] = out.get(f"span.total_s.{s.name}", 0.0) + dur
        out[f"span.count.{s.name}"] = out.get(f"span.count.{s.name}", 0.0) + 1.0

    def _chain_s(chain: List[Span]) -> float:
        return sum(0.0 if s.end is None else s.end - s.begin for s in chain[:1])

    out["critical_path_s"] = _chain_s(critical_path(spans))
    out["recovery_path_s"] = _chain_s(recovery_path(spans))
    sent = registry.total("mpi.bytes_sent")
    posted = registry.total("mpi.bytes_posted")
    out["traffic.bytes_sent"] = sent
    out["traffic.bytes_posted"] = posted
    out["traffic.bytes_stranded"] = posted - sent
    out["ckpt.count"] = registry.total("ckpt.count")
    out["ckpt.bytes_encoded"] = registry.total("ckpt.bytes_encoded")
    out["restore.count"] = registry.total("restore.count")
    out["job.restarts"] = registry.total("job.restarts")
    return out


def attempt_payload(
    tracer: SpanTracer,
    registry: MetricsRegistry,
    mode: str,
) -> Optional[Dict[str, Any]]:
    """The obs payload one replay ships back, or ``None`` for ``off``.

    ``summary`` carries only the flat rollup; ``full`` adds the complete
    span and metric streams (store ingest re-derives the summary from
    either, so queries work uniformly across sampling modes).
    """
    if mode == OBS_OFF:
        return None
    if mode not in OBS_MODES:
        raise ValueError(f"unknown obs mode {mode!r}; choose from {OBS_MODES}")
    spans = tracer.spans()
    payload: Dict[str, Any] = {
        "mode": mode,
        "summary": attempt_summary(spans, registry),
    }
    if mode == OBS_FULL:
        payload["spans"] = [span_doc(s) for s in spans]
        payload["metrics"] = metric_docs(registry)
    return payload
