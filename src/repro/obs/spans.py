"""Nested, attribute-carrying spans stamped with virtual clocks.

A :class:`SpanTracer` attaches to a :class:`~repro.sim.runtime.Job` (the
``tracer=`` parameter); rank code then opens spans through the context
manager ``ctx.span("ckpt.encode", nbytes=...)``.  Begin/end times are the
rank's *virtual* clock, so span durations are simulated seconds — the
quantities the paper measures (checkpoint time, encoding cost, recovery
latency) — not wall time.

Spans nest per rank: the tracer keeps one open-span stack per rank thread,
so a ``ckpt.encode`` opened inside ``ckpt`` records ``ckpt`` as its
parent.  A failure that unwinds a rank mid-span closes every open span
with ``status="interrupted"`` and the rank's final clock, so interrupted
checkpoints are *visible* in the trace instead of vanishing — the same
rule the :func:`repro.sim.trace.phase_spans` sentinel applies to flat
phase pairs.

Determinism: span ids are ``(incarnation, rank, seq)`` triples assigned in
per-rank program order, never from global event interleaving, so two runs
with the same seed export byte-identical traces.

Thread-safety: rank threads call ``begin``/``end`` concurrently; all
shared state is guarded by one internal lock.  The tracer never calls
into the simulator, satisfying the observer-layer contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: ``status`` of a span that was still open when its rank died or exited.
STATUS_OK = "ok"
STATUS_INTERRUPTED = "interrupted"


@dataclass
class Span:
    """One timed, attributed interval on one rank."""

    span_id: str
    rank: int
    name: str
    begin: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    parent_id: Optional[str] = None
    status: str = STATUS_OK
    incarnation: int = 0

    @property
    def duration(self) -> Optional[float]:
        """Virtual seconds, or ``None`` while the span is still open."""
        return None if self.end is None else self.end - self.begin

    @property
    def closed(self) -> bool:
        return self.end is not None


class SpanTracer:
    """Collects spans from every rank of a job (and its restarts)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()  # simlint: allow[threading] -- tracer-internal state guard
        self._spans: Dict[Tuple[int, int], List[Span]] = {}
        self._stacks: Dict[Tuple[int, int], List[Span]] = {}
        self._seq: Dict[Tuple[int, int], int] = {}
        self.incarnation = 0

    # -- lifecycle --------------------------------------------------------------
    def new_incarnation(self, index: Optional[int] = None) -> int:
        """Start a new job incarnation (the daemon calls this per restart).

        Spans opened afterwards carry the new incarnation index; open spans
        of earlier incarnations are untouched (they were already closed by
        :meth:`close_rank` when their rank threads unwound).
        """
        with self._lock:
            self.incarnation = self.incarnation + 1 if index is None else index
            return self.incarnation

    # -- recording --------------------------------------------------------------
    def begin(self, rank: int, name: str, clock: float, attrs: Optional[Dict[str, Any]] = None) -> Span:
        with self._lock:
            key = (self.incarnation, rank)
            seq = self._seq.get(key, 0)
            self._seq[key] = seq + 1
            stack = self._stacks.setdefault(key, [])
            span = Span(
                span_id=f"i{key[0]}.r{rank}.{seq}",
                rank=rank,
                name=name,
                begin=clock,
                attrs=dict(attrs or {}),
                parent_id=stack[-1].span_id if stack else None,
                incarnation=key[0],
            )
            stack.append(span)
            self._spans.setdefault(key, []).append(span)
            return span

    def end(self, rank: int, clock: float, status: str = STATUS_OK) -> Optional[Span]:
        """Close the innermost open span of ``rank``; returns it (or None)."""
        with self._lock:
            stack = self._stacks.get((self.incarnation, rank))
            if not stack:
                return None
            span = stack.pop()
            span.end = clock
            span.status = status
            return span

    def close_rank(self, rank: int, clock: float) -> List[Span]:
        """Close every span ``rank`` still has open (rank death / exit).

        The runtime calls this as the rank thread unwinds; the spans are
        stamped with the rank's final virtual clock and marked
        ``interrupted`` so a checkpoint cut short by a power-off shows up
        with its true partial extent.
        """
        closed: List[Span] = []
        with self._lock:
            stack = self._stacks.get((self.incarnation, rank), [])
            while stack:
                span = stack.pop()
                span.end = clock
                span.status = STATUS_INTERRUPTED
                closed.append(span)
        return closed

    # -- queries ----------------------------------------------------------------
    def spans(self) -> List[Span]:
        """All spans in deterministic order: (incarnation, rank, seq)."""
        with self._lock:
            out: List[Span] = []
            for key in sorted(self._spans):
                out.extend(self._spans[key])
            return out

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans() if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans() if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans() if s.parent_id is None]

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._spans.values())


class _NullSpanContext:
    """No-op stand-in returned by ``ctx.span`` when no tracer is attached.

    Stateless, hence safely reentrant and shareable across rank threads.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpanContext()
