"""Exporters: Chrome trace-event JSON, metrics JSON-lines, bench records.

The Chrome trace format (the ``traceEvents`` JSON that Perfetto and
``chrome://tracing`` load) maps cleanly onto the span model: one complete
("X") event per span, ``pid`` = job incarnation, ``tid`` = rank, ``ts``/
``dur`` in microseconds of *virtual* time.  Nesting needs no explicit
links — the viewers stack events on a thread track by interval
containment, which per-rank span stacks guarantee.

Everything here is deterministic: spans arrive in (incarnation, rank,
seq) order from the tracer, JSON is dumped with sorted keys, and no
wall-clock or RNG is consulted — two runs with one seed produce
byte-identical artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import STATUS_OK, Span

#: virtual seconds -> trace microseconds
_US = 1e6

#: span attr keys injected by the exporter; stripped again on parse
_META_KEYS = ("span_id", "parent_id", "status")


def chrome_trace_events(spans: List[Span]) -> List[Dict[str, Any]]:
    """Flatten spans into Chrome trace events (metadata + one "X" each)."""
    events: List[Dict[str, Any]] = []
    seen_tracks = set()
    for s in spans:
        track = (s.incarnation, s.rank)
        if track not in seen_tracks:
            seen_tracks.add(track)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": s.incarnation,
                    "tid": s.rank,
                    "args": {"name": f"incarnation {s.incarnation}"},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": s.incarnation,
                    "tid": s.rank,
                    "args": {"name": f"rank {s.rank}"},
                }
            )
    for s in spans:
        end = s.end if s.end is not None else s.begin
        args: Dict[str, Any] = dict(s.attrs)
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        if s.status != STATUS_OK:
            args["status"] = s.status
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.name.split(".")[0],
                "pid": s.incarnation,
                "tid": s.rank,
                "ts": s.begin * _US,
                "dur": (end - s.begin) * _US,
                "args": args,
            }
        )
    return events


def chrome_trace_json(spans: List[Span]) -> str:
    """The full Chrome/Perfetto trace document as a JSON string."""
    doc = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(spans),
    }
    return json.dumps(doc, sort_keys=True, indent=None, separators=(",", ":"))


def write_chrome_trace(path: str, spans: List[Span]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(chrome_trace_json(spans))


def parse_chrome_trace(doc: Union[str, Dict[str, Any]]) -> List[Span]:
    """Rebuild spans from an exported trace document (round-trip inverse).

    The span tree (ids, parents, names, clocks, attrs, status) survives a
    full export -> parse cycle exactly; the golden-file test in
    ``tests/obs`` holds the exporter to that.
    """
    if isinstance(doc, str):
        doc = json.loads(doc)
    spans: List[Span] = []
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        span_id = args.pop("span_id")
        parent_id = args.pop("parent_id", None)
        status = args.pop("status", STATUS_OK)
        begin = ev["ts"] / _US
        spans.append(
            Span(
                span_id=span_id,
                rank=ev["tid"],
                name=ev["name"],
                begin=begin,
                end=begin + ev["dur"] / _US,
                attrs=args,
                parent_id=parent_id,
                status=status,
                incarnation=ev["pid"],
            )
        )
    return spans


def span_tree(spans: List[Span]) -> Dict[Optional[str], List[str]]:
    """``{parent_id: [child span_id...]}`` in deterministic order — the
    structural fingerprint the round-trip test compares."""
    tree: Dict[Optional[str], List[str]] = {}
    for s in spans:
        tree.setdefault(s.parent_id, []).append(s.span_id)
    return tree


def metrics_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per line per instrument, deterministically ordered."""
    lines = []
    for s in registry.samples():
        rec: Dict[str, Any] = {
            "name": s.name,
            "kind": s.kind,
            "labels": s.labels,
            "value": s.value,
        }
        if s.extra:
            rec.update(s.extra)
        lines.append(json.dumps(rec, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_jsonl(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(metrics_jsonl(registry))


def read_metrics_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a metrics JSON-lines document back into records."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]
