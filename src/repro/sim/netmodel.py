"""Alpha-beta communication cost model with NIC port sharing.

The simulator charges virtual time for every message and collective using
the classic latency/bandwidth ("alpha-beta") model: a message of ``m`` bytes
costs ``alpha + m / beta``.  Collectives are charged as their standard
binomial-tree / ring costs.

Port sharing is the one machine idiosyncrasy the paper's evaluation leans
on: on Tianhe-2 one network port is shared by 24 processes while Tianhe-1A
shares one port among 12, so per-process effective bandwidth on Tianhe-2 is
*lower* even though the link itself is faster — which is why encoding time
in Fig. 13 is *longer* on Tianhe-2 despite smaller checkpoints.  We model it
by dividing link bandwidth by the number of processes concurrently driving
the port (``procs_per_port``) for operations where all ranks communicate at
once (group encoding, all-to-all phases).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkParams:
    """Static network characteristics of a machine.

    Attributes
    ----------
    latency_s:
        One-way small-message latency (the "alpha" term), seconds.
    bandwidth_Bps:
        Point-to-point link bandwidth, bytes/second (the paper's Table 2
        "P2P Bandwidth" row).
    procs_per_port:
        How many processes share one NIC port.  1 means a dedicated port.
    """

    latency_s: float = 2.0e-6
    bandwidth_Bps: float = 7.1e9
    procs_per_port: int = 1
    #: Fractional bandwidth-term overhead added per tree round during the
    #: stripe encode: synchronization and scheduling slack of the N
    #: concurrent reduces.  Calibrated so that encode time grows slowly with
    #: group size as in the paper's Fig. 13 (~1.2-1.4x from group 4 to 16).
    stripe_round_overhead: float = 0.15

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth must be > 0")
        if self.procs_per_port < 1:
            raise ValueError("procs_per_port must be >= 1")
        if self.stripe_round_overhead < 0:
            raise ValueError("stripe_round_overhead must be >= 0")

    @property
    def per_process_bandwidth_Bps(self) -> float:
        """Effective bandwidth when every process on a node drives the port."""
        return self.bandwidth_Bps / self.procs_per_port


class NetworkModel:
    """Computes virtual-time costs for the runtime's communication ops."""

    def __init__(self, params: NetworkParams):
        self.params = params

    # -- point to point ----------------------------------------------------
    def p2p_time(self, nbytes: int, *, contended: bool = False) -> float:
        """Cost of one point-to-point message of ``nbytes``."""
        bw = (
            self.params.per_process_bandwidth_Bps
            if contended
            else self.params.bandwidth_Bps
        )
        return self.params.latency_s + nbytes / bw

    # -- collectives --------------------------------------------------------
    def _rounds(self, nprocs: int) -> int:
        return max(1, math.ceil(math.log2(max(2, nprocs)))) if nprocs > 1 else 0

    def bcast_time(self, nbytes: int, nprocs: int) -> float:
        """Binomial-tree broadcast."""
        r = self._rounds(nprocs)
        return r * self.p2p_time(nbytes)

    def reduce_time(self, nbytes: int, nprocs: int, *, contended: bool = False) -> float:
        """Binomial-tree reduce of an ``nbytes`` buffer."""
        r = self._rounds(nprocs)
        return r * self.p2p_time(nbytes, contended=contended)

    def allreduce_time(self, nbytes: int, nprocs: int) -> float:
        """Reduce + broadcast (the simple, pessimistic composition)."""
        return self.reduce_time(nbytes, nprocs) + self.bcast_time(nbytes, nprocs)

    def gather_time(self, nbytes_per_rank: int, nprocs: int) -> float:
        """Root receives (p-1) messages serially through its port."""
        if nprocs <= 1:
            return 0.0
        return (nprocs - 1) * self.p2p_time(nbytes_per_rank)

    def scatter_time(self, nbytes_per_rank: int, nprocs: int) -> float:
        return self.gather_time(nbytes_per_rank, nprocs)

    def allgather_time(self, nbytes_per_rank: int, nprocs: int) -> float:
        """Ring allgather: (p-1) rounds of per-rank-size messages."""
        if nprocs <= 1:
            return 0.0
        return (nprocs - 1) * self.p2p_time(nbytes_per_rank)

    def alltoall_time(self, nbytes_per_pair: int, nprocs: int) -> float:
        if nprocs <= 1:
            return 0.0
        return (nprocs - 1) * self.p2p_time(nbytes_per_pair, contended=True)

    def barrier_time(self, nprocs: int) -> float:
        return 2 * self._rounds(nprocs) * self.params.latency_s

    # -- group encoding (paper section 2.1 / figure 13) ---------------------
    def stripe_encode_time(self, data_bytes: int, group_size: int) -> float:
        """Cost of the stripe-based rotating-root group encode.

        With the RAID-5 slot rotation every rank sends its whole
        ``data_bytes`` exactly once across the ``N`` concurrent binomial
        trees, so the dominant term is ``data_bytes`` over the (possibly
        port-shared) per-process bandwidth.  Deeper trees add latency plus a
        small per-round scheduling overhead (``stripe_round_overhead``).
        This reproduces Fig. 13's shape: encode time grows slowly with group
        size, is dominated by data volume, and worsens under heavier port
        sharing (Tianhe-2 vs Tianhe-1A).
        """
        n = group_size
        if n < 2:
            return 0.0
        rounds = self._rounds(n)
        bw = self.params.per_process_bandwidth_Bps
        volume_term = (data_bytes / bw) * (
            1.0 + self.params.stripe_round_overhead * rounds
        )
        return rounds * self.params.latency_s + volume_term

    def single_root_encode_time(self, data_bytes: int, group_size: int) -> float:
        """Cost of the naive alternative: one reduce of the *whole* buffer
        rooted at a single rank per checkpoint (no stripe rotation).

        The root's port must sink the full reduced buffer at every tree
        level, so the data term scales with tree depth — this is the
        single-node contention the stripe layout avoids.
        """
        n = group_size
        if n < 2:
            return 0.0
        rounds = self._rounds(n)
        return rounds * (
            self.params.latency_s + data_bytes / self.params.per_process_bandwidth_Bps
        )
