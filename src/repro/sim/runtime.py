"""Job runtime: thread-per-rank execution with virtual clocks and aborts.

A :class:`Job` launches one Python thread per MPI rank, binds each to a
:class:`RankContext` (virtual clock, node handle, failure checks), and runs
the user-provided ``main(ctx)`` to completion or abort.

Failure semantics reproduce the environment the paper assumes:

* a failure plan powers a node off at a virtual time or protocol phase;
* the first rank to observe its node dead raises
  :class:`~repro.sim.errors.NodeFailedError`, which flips the job into the
  aborting state;
* every other rank raises :class:`~repro.sim.errors.JobAbortedError` when
  it blocks on communication that terminated ranks can no longer satisfy —
  the abort cascades along the communication graph, so each rank dies at a
  point fixed by virtual program order, never by thread scheduling, and
  runs with one seed produce bit-identical traces even through failures;
* :meth:`Job.abort` (MPI_Abort semantics — user bugs, the sancheck
  deadlock detector) is the *hard* variant: it is delivered at every
  rank's next runtime interaction, scheduling-dependent but immediate;
* SHM on healthy nodes survives (see :mod:`repro.sim.shm`), which is what
  the restarted job recovers from.

``Job.run`` returns a :class:`JobResult` carrying per-rank return values,
errors, final virtual clocks and the set of failed nodes — everything the
job daemon needs to decide on a restart.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.sim import _tls
from repro.sim.cluster import Cluster
from repro.sim.errors import JobAbortedError, NodeFailedError, SimError
from repro.sim.failures import FailurePlan
from repro.sim.mpi import Communicator
from repro.sim.node import Node
from repro.sim.observer import SimObserver
from repro.sim.shm import ShmSegment
from repro.sim.topology import Topology
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import SpanTracer


class RankExit(Exception):
    """Raised by rank code to terminate its main early with a value."""

    def __init__(self, value: Any = None):
        super().__init__("rank exited early")
        self.value = value


@dataclass
class JobResult:
    """Outcome of one job incarnation."""

    completed: bool
    aborted: bool
    failed_nodes: List[int]
    rank_results: Dict[int, Any]
    rank_errors: Dict[int, BaseException]
    rank_clocks: Dict[int, float]

    @property
    def makespan(self) -> float:
        """Virtual end-to-end time (slowest rank)."""
        return max(self.rank_clocks.values()) if self.rank_clocks else 0.0

    def result_of(self, rank: int) -> Any:
        return self.rank_results.get(rank)


class _SpanHandle:
    """Context manager behind :meth:`RankContext.span`.

    Reads the rank's virtual clock at enter/exit; a no-op when the job
    carries no tracer, so instrumented protocol code costs nothing in
    untraced runs.  An exception unwinding through the span closes it
    with ``status="interrupted"`` — partial checkpoints stay visible.
    """

    __slots__ = ("_ctx", "_name", "_attrs")

    def __init__(self, ctx: "RankContext", name: str, attrs: Dict[str, Any]):
        self._ctx = ctx
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        tracer = self._ctx.job.tracer
        if tracer is not None:
            tracer.begin(self._ctx.rank, self._name, self._ctx.clock, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._ctx.job.tracer
        if tracer is not None:
            status = "ok" if exc_type is None else "interrupted"
            tracer.end(self._ctx.rank, self._ctx.clock, status)
        return False


class RankContext:
    """Per-rank execution context handed to the user main function."""

    def __init__(self, job: "Job", rank: int, node: Node):
        self.job = job
        self.rank = rank
        self.node = node
        self.clock: float = 0.0
        self.world: Communicator = job.world
        self._phase_log: List[str] = []

    # -- liveness / failure delivery ------------------------------------------
    def check(self) -> None:
        """Raise if this rank's node died or a hard abort was requested.

        Own-node death is delivered by *virtual time*: the rank dies at its
        first check whose clock has reached the node's power-off instant
        (``Node.failed_at``).  A sibling rank that is virtually *behind*
        the failure keeps executing its pre-death program segment instead
        of being cut down wherever host scheduling happened to put it —
        the death point depends on virtual program order, not thread
        interleaving.  (Earlier revisions killed every rank of a failed
        node at its next check regardless of clock, which made the doomed
        incarnation's tail — span counts, encoded bytes, makespan epsilons
        — host-scheduler noise on multi-rank nodes.)

        Ranks whose death point a *pinned* trigger owns (see
        :meth:`~repro.sim.failures.FailurePlan.rank_doomed`) are exempt
        from the clock fallback entirely: they die at their resolved doom
        announcement in :meth:`phase`, or inside a communicator wait a
        dead peer can no longer satisfy — so their death point does not
        even depend on *when* (in host time) the failure flag was set.

        A *failure* abort is still not delivered to healthy ranks here:
        they learn of it only inside communicator waits that terminated
        ranks can no longer satisfy.
        """
        failed_at = self.node.failed_at
        if failed_at is not None and self.clock >= failed_at:
            if not self.job.failure_plan.rank_doomed(self.node.node_id, self.rank):
                raise NodeFailedError(self.node.node_id, self.clock)
        if self.job.abort_requested:
            raise JobAbortedError(f"rank {self.rank}: job aborting")

    def _check_eager(self) -> None:
        """Like :meth:`check`, but a dead node kills even a virtually-behind
        rank immediately.

        Used by the SHM entry points: a failed node's segment store is
        already cleared, so letting a doomed rank touch it would surface
        as a spurious :class:`~repro.sim.errors.ShmError` (a world-aborting
        "user bug") instead of the node failure it really is.
        """
        if not self.node.alive:
            raise NodeFailedError(self.node.node_id, self.clock)
        self.check()

    # -- virtual time -----------------------------------------------------------
    def elapse(self, seconds: float) -> None:
        """Advance this rank's virtual clock by ``seconds`` of local work."""
        if seconds < 0:
            raise ValueError("cannot elapse negative time")
        self.check()
        self.clock += seconds
        trigger = self.job.failure_plan.check_time(
            self.node.node_id, self.clock, rank=self.rank
        )
        if trigger is not None:
            # the node powers off at the scheduled deadline, not at the
            # (scheduler-dependent) clock of whichever rank noticed first:
            # every affected rank then dies at its own crossing of at_time
            for nid in trigger.all_nodes:
                self.job.fail_node(nid, when=trigger.at_time)
        self.check()

    def compute(self, flops: float, efficiency: float = 1.0) -> None:
        """Charge ``flops`` of floating-point work at this rank's core speed."""
        if flops < 0:
            raise ValueError("flops must be >= 0")
        if not 0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        rate = self.node.spec.flops_per_core * efficiency
        self.elapse(flops / rate)

    def phase(self, name: str) -> None:
        """Announce a protocol phase (failure-injection hook)."""
        self.check()
        self._phase_log.append(name)
        if self.job.trace is not None:
            self.job.trace.record(self.rank, self.clock, name)
        plan = self.job.failure_plan
        trigger = plan.check_phase(
            self.node.node_id, self.rank, name, clock=self.clock
        )
        if trigger is not None:
            for nid in trigger.all_nodes:
                self.job.fail_node(nid, when=self.clock)
        doomed = plan.check_doom(self.node.node_id, self.rank, name)
        if doomed is not None:
            # this rank's pinned death point: mark the node failed even if
            # the announcing rank has not tripped the trigger yet (this
            # rank may have outrun it in host time) and die here
            when = (
                doomed.fire_clock if doomed.fire_clock is not None else self.clock
            )
            for nid in doomed.all_nodes:
                self.job.fail_node(nid, when=when)
            raise NodeFailedError(self.node.node_id, self.clock)
        self.check()

    @property
    def phase_log(self) -> List[str]:
        return list(self._phase_log)

    # -- observability -----------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested, attributed span on this rank's virtual clock.

        Usage: ``with ctx.span("ckpt.encode", nbytes=n): ...``.  Spans
        nest per rank (the tracer keeps an open-span stack); with no
        tracer attached to the job this is a no-op.
        """
        return _SpanHandle(self, name, attrs)

    # -- memory ----------------------------------------------------------------------
    def malloc(self, nbytes: int) -> None:
        """Charge a private (non-SHM) allocation against this rank's node."""
        self.node.malloc(nbytes)

    def free(self, nbytes: int) -> None:
        self.node.free(nbytes)

    def shm_create(
        self,
        name: str,
        shape,
        dtype=np.float64,
        *,
        exist_ok: bool = False,
    ) -> ShmSegment:
        """Create (or re-attach, with ``exist_ok``) an SHM segment on this
        rank's node.  Names are global per node; embed the rank if needed."""
        self._check_eager()
        return self.node.shm.create(name, shape, dtype, exist_ok=exist_ok)

    def shm_attach(self, name: str) -> ShmSegment:
        self._check_eager()
        return self.node.shm.attach(name)

    def shm_exists(self, name: str) -> bool:
        return self.node.shm.exists(name)

    def shm_unlink(self, name: str, *, missing_ok: bool = False) -> None:
        if not self.node.alive:
            raise NodeFailedError(self.node.node_id, self.clock)
        self.node.shm.unlink(name, missing_ok=missing_ok)


class Job:
    """One incarnation of an SPMD program on the simulated cluster.

    Parameters
    ----------
    cluster:
        The cluster to run on; persists across incarnations.
    main:
        ``main(ctx, *args) -> Any``, executed once per rank.
    n_ranks:
        World size.
    ranklist:
        Node id per rank.  Defaults to the cluster's block placement.
    failure_plan:
        Triggers consulted on clock advances and phase announcements.
    deadlock_timeout_s:
        Wall-clock bound on any single blocking wait (test safety net).
    observer:
        Optional :class:`~repro.sim.observer.SimObserver` receiving
        communication and blocking events from every rank — the hook the
        :mod:`repro.sancheck` race/deadlock detectors install through.
    tracer:
        Optional :class:`~repro.obs.spans.SpanTracer`; when set,
        ``ctx.span(...)`` records nested virtual-time spans, and spans a
        failure leaves open are closed as interrupted.
    """

    def __init__(
        self,
        cluster: Cluster,
        main: Callable[..., Any],
        n_ranks: int,
        *,
        args: Sequence[Any] = (),
        ranklist: Optional[Sequence[int]] = None,
        failure_plan: Optional[FailurePlan] = None,
        procs_per_node: Optional[int] = None,
        deadlock_timeout_s: float = 60.0,
        trace: Optional["Trace"] = None,
        topology: Optional["Topology"] = None,
        observer: Optional["SimObserver"] = None,
        tracer: Optional["SpanTracer"] = None,
        name: str = "job",
    ):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.cluster = cluster
        self.main = main
        self.args = tuple(args)
        self.name = name
        self.deadlock_timeout_s = deadlock_timeout_s
        self.failure_plan = failure_plan or FailurePlan()
        #: optional event trace shared across this job's ranks
        self.trace = trace
        #: optional instrumentation observer; must be set before the world
        #: communicator is built so every operation is visible to it
        self.observer = observer
        #: optional :class:`~repro.obs.spans.SpanTracer` behind
        #: :meth:`RankContext.span`; spans left open when a rank unwinds
        #: are closed as interrupted in :meth:`_bootstrap`
        self.tracer = tracer
        #: optional rack topology: point-to-point messages crossing racks
        #: pay the inter-rack bandwidth penalty
        self.topology = topology
        if ranklist is None:
            ranklist = cluster.default_ranklist(n_ranks, procs_per_node=procs_per_node)
        if len(ranklist) != n_ranks:
            raise ValueError(f"ranklist length {len(ranklist)} != n_ranks {n_ranks}")
        for nid in ranklist:
            if not cluster.node(nid).alive:
                raise SimError(f"ranklist places a rank on dead node {nid}")
        self.ranklist: List[int] = list(ranklist)
        self.n_ranks = n_ranks

        self._abort_lock = threading.Lock()
        self._aborting = False
        self._abort_hard = False
        self._done_ranks: set = set()
        self._failed_nodes: List[int] = []
        self._conds: List[threading.Condition] = []

        # the world communicator; must exist before contexts are built
        self.world = Communicator(self, list(range(n_ranks)), name=f"{name}.world")

        self._results: Dict[int, Any] = {}
        self._errors: Dict[int, BaseException] = {}
        self._clocks: Dict[int, float] = {}

    # -- abort machinery -------------------------------------------------------------
    @property
    def aborting(self) -> bool:
        return self._aborting

    @property
    def abort_requested(self) -> bool:
        """A hard :meth:`abort` was issued (vs a node-failure abort)."""
        return self._abort_hard

    @property
    def failed_nodes(self) -> List[int]:
        return list(self._failed_nodes)

    def wait_unsatisfiable(self, ranks: Sequence[int]) -> bool:
        """True when the job is aborting and one of ``ranks`` (world ranks
        whose progress could satisfy a blocked communicator wait) has
        terminated.  The communicator consults this from its wait loops —
        it is how a failure reaches healthy ranks: deterministically, via
        the communication graph, instead of via a racy global flag."""
        if not self._aborting:
            return False
        with self._abort_lock:
            return any(r in self._done_ranks for r in ranks)

    def _register_cond(self, cond: threading.Condition) -> None:
        self._conds.append(cond)

    def _wake_all(self) -> None:
        for cond in list(self._conds):
            with cond:
                cond.notify_all()

    def fail_node(self, node_id: int, when: float = 0.0) -> None:
        """Power off a node mid-run and abort the job."""
        with self._abort_lock:
            node = self.cluster.node(node_id)
            if node.alive:
                node.fail(when)
            if node_id not in self._failed_nodes:
                self._failed_nodes.append(node_id)
            self._aborting = True
        self._wake_all()

    def abort(self) -> None:
        """Hard abort without a node failure (MPI_Abort semantics):
        delivered to every rank at its next runtime interaction."""
        with self._abort_lock:
            self._aborting = True
            self._abort_hard = True
        self._wake_all()

    # -- execution ----------------------------------------------------------------------
    def _bootstrap(self, rank: int) -> None:
        node = self.cluster.node(self.ranklist[rank])
        ctx = RankContext(self, rank, node)
        _tls.bind(ctx)
        try:
            result = self.main(ctx, *self.args)
            self._results[rank] = result
        except RankExit as e:
            self._results[rank] = e.value
        except (NodeFailedError, JobAbortedError) as e:
            self._errors[rank] = e
            with self._abort_lock:
                self._aborting = True
            self._wake_all()
        except BaseException as e:  # user bug: abort the world, re-raise later
            self._errors[rank] = e
            self.abort()
        finally:
            self._clocks[rank] = ctx.clock
            if self.tracer is not None:
                self.tracer.close_rank(rank, ctx.clock)
            _tls.unbind()
            # mark this rank terminated and wake blocked peers so waits
            # that can no longer be satisfied re-evaluate and raise
            with self._abort_lock:
                self._done_ranks.add(rank)
            self._wake_all()

    def run(self) -> JobResult:
        """Execute all ranks; block until every rank thread finishes."""
        threads = [
            threading.Thread(
                target=self._bootstrap,
                args=(rank,),
                name=f"{self.name}-r{rank}",
                daemon=True,
            )
            for rank in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        unexpected = {
            r: e
            for r, e in self._errors.items()
            if not isinstance(e, (NodeFailedError, JobAbortedError, SimError))
        }
        if unexpected:
            rank, err = sorted(unexpected.items())[0]
            raise SimError(f"rank {rank} crashed: {err!r}") from err

        aborted = self._aborting
        return JobResult(
            completed=not aborted and not self._errors,
            aborted=aborted,
            failed_nodes=list(self._failed_nodes),
            rank_results=dict(self._results),
            rank_errors=dict(self._errors),
            rank_clocks=dict(self._clocks),
        )
