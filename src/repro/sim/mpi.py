"""MPI-like communicator over rank threads with virtual-time accounting.

Semantics follow the subset of MPI the paper's systems need:

* blocking standard-mode ``send``/``recv`` with (source, tag) matching,
* the collectives HPL and the checkpoint protocols use (``bcast``,
  ``reduce``, ``allreduce``, ``gather``, ``allgather``, ``scatter``,
  ``alltoall``, ``barrier``),
* ``split`` to build group/row/column communicators,
* abort-on-failure: when any node dies, the abort cascades along the
  communication graph — a rank raises when it blocks on a wait that
  terminated ranks can no longer satisfy (messages posted before the
  failure are still delivered first), mirroring "almost all current MPI
  implementations force the whole program to abort after a node failure"
  (paper section 1) while keeping every rank's death point a function of
  virtual program order, so failure runs replay bit-identically.

Every operation advances the participants' virtual clocks by the
alpha-beta cost from :class:`~repro.sim.netmodel.NetworkModel`; collectives
additionally synchronize clocks to the slowest participant, which is how
real blocking collectives behave.

Payloads are defensively copied (arrays via ``np.copy``, other objects via
``copy.deepcopy``) so rank threads never alias each other's buffers —
matching the value semantics of real message passing.
"""

from __future__ import annotations

import copy
import threading
import time as _walltime
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim._tls import current_ctx
from repro.sim.errors import JobAbortedError, SimError
from repro.sim.netmodel import NetworkModel
from repro.sim.observer import BlockDesc

#: Charged size for payloads whose size we cannot see (python scalars etc.).
_SMALL_OBJ_BYTES = 64


def _payload_nbytes(obj: Any) -> int:
    """Best-effort wire size of a payload."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_nbytes(x) for x in obj) or _SMALL_OBJ_BYTES
    if isinstance(obj, dict):
        # keys ride the wire too: metadata-heavy payloads (status dicts,
        # epoch tables) would otherwise undercount their alpha-beta cost
        total = sum(_payload_nbytes(k) + _payload_nbytes(v) for k, v in obj.items())
        return total or _SMALL_OBJ_BYTES
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    return _SMALL_OBJ_BYTES


def _copy_payload(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return np.array(obj, copy=True)
    if isinstance(obj, (int, float, complex, str, bytes, bool, type(None))):
        return obj
    return copy.deepcopy(obj)


class ReduceOp:
    """Element-wise reduction operators over numpy arrays.

    ``BXOR`` matches ``MPI_BXOR`` over integer views and is the paper's
    default encoding operator; ``SUM`` is the numeric alternative
    (section 2.2).
    """

    def __init__(self, name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]):
        self.name = name
        self._fn = fn

    def combine(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        if not arrays:
            raise ValueError("nothing to reduce")
        acc = np.array(arrays[0], copy=True)
        for a in arrays[1:]:
            acc = self._fn(acc, a)
        return acc

    def __repr__(self) -> str:  # pragma: no cover
        return f"ReduceOp({self.name})"


ReduceOp.SUM = ReduceOp("SUM", np.add)  # type: ignore[attr-defined]
ReduceOp.PROD = ReduceOp("PROD", np.multiply)  # type: ignore[attr-defined]
ReduceOp.MAX = ReduceOp("MAX", np.maximum)  # type: ignore[attr-defined]
ReduceOp.MIN = ReduceOp("MIN", np.minimum)  # type: ignore[attr-defined]
ReduceOp.BXOR = ReduceOp("BXOR", np.bitwise_xor)  # type: ignore[attr-defined]


@dataclass
class _Envelope:
    payload: Any
    nbytes: int
    arrival_time: float
    #: opaque observer token (e.g. the sender's vector-clock snapshot);
    #: handed back to the observer when the message is received
    token: Any = None


class Request:
    """Handle for a non-blocking operation; complete with :meth:`wait`."""

    def __init__(
        self,
        comm: "Communicator",
        kind: str,
        key: Optional[Tuple[int, int, int]] = None,
        cost: float = 0.0,
    ):
        self._comm = comm
        self._kind = kind
        self._key = key
        self._cost = cost
        self._done = False
        self._value: Any = None

    def test(self) -> bool:
        """Has the operation completed (non-blocking check)?"""
        if self._done:
            return True
        if self._kind == "send":
            return True  # eager: buffered at isend time
        with self._comm._mail_cond:
            return bool(self._comm._mail.get(self._key))

    def wait(self) -> Any:
        """Complete the operation; returns the payload for receives."""
        ctx = current_ctx()
        if self._done:
            return self._value
        if self._kind == "send":
            ctx.check()
            ctx.clock += self._cost  # the deferred port time
            self._done = True
            return None
        assert self._key is not None
        with self._comm._mail_cond:
            self._comm._wait(
                self._comm._mail_cond,
                lambda: self._comm._mail.get(self._key),
                desc=self._comm._recv_desc(self._key),
                peers=(self._comm._members[self._key[1]],),
            )
            env = self._comm._mail[self._key].pop(0)
            if not self._comm._mail[self._key]:
                del self._comm._mail[self._key]
        before = ctx.clock
        ctx.clock = max(
            ctx.clock + self._comm._net.params.latency_s, env.arrival_time
        )
        waited = max(
            0.0, ctx.clock - before - self._comm._net.params.latency_s
        )
        self._done = True
        self._value = env.payload
        self._comm._notify_recv(self._key, env, waited)
        return self._value


class _CollectiveSlot:
    """Rendezvous state for one communicator's ordered collective stream."""

    def __init__(self, size: int):
        self.size = size
        self.cond = threading.Condition()
        self.phase = "gathering"  # -> "draining" -> "gathering" ...
        self.contrib: Dict[int, Tuple[Any, float]] = {}
        self.results: Optional[Dict[int, Any]] = None
        self.finish_clock = 0.0
        self.taken = 0


class Communicator:
    """A group of ranks that can exchange messages and run collectives.

    Created by :class:`~repro.sim.runtime.Job` (the world communicator) or
    by :meth:`split`.  All methods infer the calling rank from the thread's
    bound :class:`RankContext`, so the API reads like mpi4py.
    """

    def __init__(self, job: "Job", members: List[int], name: str = "world"):  # noqa: F821
        self._job = job
        self._members = list(members)
        self._index: Dict[int, int] = {w: i for i, w in enumerate(members)}
        self.name = name
        self._net = NetworkModel(job.cluster.spec.net)
        self._mail: Dict[Tuple[int, int, int], List[_Envelope]] = {}
        self._mail_cond = threading.Condition()
        self._slot = _CollectiveSlot(len(members))
        self._split_counter = 0
        job._register_cond(self._mail_cond)
        job._register_cond(self._slot.cond)

    # -- identity -------------------------------------------------------------
    @property
    def net(self) -> NetworkModel:
        """The cost model pricing this communicator's operations."""
        return self._net

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def rank(self) -> int:
        """Rank of the calling thread within this communicator."""
        return self._index[current_ctx().rank]

    @property
    def members(self) -> List[int]:
        """World ranks of the members, in communicator rank order."""
        return list(self._members)

    def world_rank(self, rank: int) -> int:
        return self._members[rank]

    # -- observer plumbing -----------------------------------------------------
    @property
    def _observer(self):
        return self._job.observer

    def _recv_desc(self, key: Tuple[int, int, int]) -> Optional[BlockDesc]:
        """Wait descriptor for a receive keyed ``(me, src, tag)``."""
        if self._job.observer is None:
            return None
        _, src, tag = key
        return BlockDesc(
            kind="recv",
            comm=self.name,
            peer=self._members[src],
            tag=tag,
        )

    def _collective_desc(self, kind: str) -> Optional[BlockDesc]:
        """``collective-join`` = waiting for the previous instance to drain
        (always satisfiable); ``collective-drain`` = contributed, waiting
        for the remaining members to arrive."""
        if self._job.observer is None:
            return None
        return BlockDesc(kind=kind, comm=self.name, members=tuple(self._members))

    def _notify_send(self, dest: int, tag: int, nbytes: int) -> Any:
        """Report a send; returns the observer token to ride the envelope."""
        obs = self._job.observer
        if obs is None:
            return None
        ctx = current_ctx()
        return obs.on_send(ctx.rank, self._members[dest], tag, nbytes, ctx.clock)

    def _notify_recv(
        self, key: Tuple[int, int, int], env: _Envelope, waited_s: float = 0.0
    ) -> None:
        obs = self._job.observer
        if obs is None:
            return
        ctx = current_ctx()
        _, src, tag = key
        obs.on_recv(ctx.rank, self._members[src], tag, env.token, ctx.clock, waited_s)

    # -- waiting with failure delivery -----------------------------------------
    def _wait(
        self,
        cond: threading.Condition,
        predicate: Callable[[], bool],
        desc: Optional[BlockDesc] = None,
        peers: Tuple[int, ...] = (),
    ) -> None:
        """Block on ``cond`` until ``predicate``; deliver aborts and watch
        for wall-clock deadlocks.  Caller must hold ``cond``.

        ``peers`` lists the world ranks whose progress could satisfy this
        wait.  When the job is aborting and one of them has terminated the
        wait raises :class:`JobAbortedError` — the deterministic failure
        delivery path: the predicate is always tried first, so messages
        posted before the failure are consumed, and the raise point depends
        only on virtual program order.

        When an observer is installed and ``desc`` describes the wait, the
        observer sees ``on_block`` the first time the predicate fails and a
        matching ``on_unblock`` when the wait resolves (or raises).
        """
        ctx = current_ctx()
        obs = self._job.observer
        deadline = _walltime.monotonic() + self._job.deadlock_timeout_s
        blocked = False
        try:
            while not predicate():
                ctx.check()
                if peers and self._job.wait_unsatisfiable(peers):
                    raise JobAbortedError(
                        f"rank {ctx.rank}: job aborting and a peer rank "
                        f"terminated; {self.name} wait cannot be satisfied"
                    )
                if not blocked and obs is not None and desc is not None:
                    blocked = True
                    obs.on_block(ctx.rank, desc)
                cond.wait(timeout=0.05)
                if _walltime.monotonic() > deadline:
                    raise SimError(
                        f"rank {ctx.rank} stuck >"
                        f"{self._job.deadlock_timeout_s}s in {self.name} "
                        "communicator wait (likely mismatched communication)"
                    )
        finally:
            if blocked:
                obs.on_unblock(ctx.rank)

    def _p2p_scale(self, my_rank: int, peer_rank: int) -> float:
        """Bandwidth derating for a message between two communicator ranks:
        1.0 within a rack, the topology's inter-rack factor across racks."""
        topo = self._job.topology
        if topo is None:
            return 1.0
        ranklist = self._job.ranklist
        a = ranklist[self._members[my_rank]]
        b = ranklist[self._members[peer_rank]]
        if topo.rack_of(a) == topo.rack_of(b):
            return 1.0
        return topo.inter_rack_bw_factor

    def _p2p_time_to(self, my_rank: int, peer_rank: int, nbytes: int) -> float:
        scale = self._p2p_scale(my_rank, peer_rank)
        base = self._net.p2p_time(nbytes)
        if scale >= 1.0:
            return base
        # only the bandwidth term is derated, not the latency
        bw_term = nbytes / self._net.params.bandwidth_Bps
        return base + bw_term * (1.0 / scale - 1.0)

    # -- point to point ----------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send to communicator rank ``dest``."""
        ctx = current_ctx()
        ctx.check()
        if not 0 <= dest < self.size:
            raise ValueError(f"bad dest {dest} for size {self.size}")
        nbytes = _payload_nbytes(obj)
        ctx.clock += self._p2p_time_to(self.rank, dest, nbytes)
        env = _Envelope(
            payload=_copy_payload(obj),
            nbytes=nbytes,
            arrival_time=ctx.clock,
            token=self._notify_send(dest, tag, nbytes),
        )
        key = (dest, self.rank, tag)
        with self._mail_cond:
            self._mail.setdefault(key, []).append(env)
            self._mail_cond.notify_all()

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive from communicator rank ``source``."""
        ctx = current_ctx()
        ctx.check()
        key = (self.rank, source, tag)
        with self._mail_cond:
            self._wait(
                self._mail_cond,
                lambda: self._mail.get(key),
                desc=self._recv_desc(key),
                peers=(self._members[source],),
            )
            env = self._mail[key].pop(0)
            if not self._mail[key]:
                del self._mail[key]
        # virtual time spent waiting on the sender: how far the arrival
        # outran our own clock-plus-latency (deterministic, unlike whether
        # the thread physically parked)
        before = ctx.clock
        ctx.clock = max(ctx.clock + self._net.params.latency_s, env.arrival_time)
        waited = max(0.0, ctx.clock - before - self._net.params.latency_s)
        self._notify_recv(key, env, waited)
        return env.payload

    def sendrecv(
        self, obj: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = 0
    ) -> Any:
        """Simultaneous send+receive (deadlock-free pairwise exchange)."""
        self.send(obj, dest, tag=sendtag)
        return self.recv(source, tag=recvtag)

    # -- non-blocking point to point ----------------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        """Non-blocking send.

        The payload is captured immediately (eager copy), so the buffer may
        be reused right away; the clock charge lands when the request is
        waited on, modeling the overlap window.
        """
        ctx = current_ctx()
        ctx.check()
        if not 0 <= dest < self.size:
            raise ValueError(f"bad dest {dest} for size {self.size}")
        nbytes = _payload_nbytes(obj)
        env = _Envelope(
            payload=_copy_payload(obj),
            nbytes=nbytes,
            arrival_time=ctx.clock + self._net.p2p_time(nbytes),
            token=self._notify_send(dest, tag, nbytes),
        )
        key = (dest, self.rank, tag)
        with self._mail_cond:
            self._mail.setdefault(key, []).append(env)
            self._mail_cond.notify_all()
        return Request(self, kind="send", cost=self._net.p2p_time(nbytes))

    def irecv(self, source: int, tag: int = 0) -> "Request":
        """Non-blocking receive; complete it with :meth:`Request.wait`."""
        ctx = current_ctx()
        ctx.check()
        return Request(self, kind="recv", key=(self.rank, source, tag))

    def probe(self, source: int, tag: int = 0) -> bool:
        """True when a matching message is already waiting."""
        current_ctx().check()
        with self._mail_cond:
            return bool(self._mail.get((self.rank, source, tag)))

    # -- generic custom collective -------------------------------------------------
    def custom_collective(
        self,
        contribution: Any,
        compute: Callable[[Dict[int, Any]], Dict[int, Any]],
        cost: Callable[[Dict[int, Any]], float],
    ) -> Any:
        """Run an arbitrary synchronized collective.

        All members contribute; the last arriver evaluates ``compute`` on
        ``{rank: contribution}`` to produce per-rank results and ``cost`` to
        price the operation.  Every participant leaves with its clock set to
        ``max(entry clocks) + cost``.  This is the extension point the
        checkpoint encoder uses for its fused stripe reduce.
        """
        ctx = current_ctx()
        ctx.check()
        slot = self._slot
        me = self.rank
        obs = self._job.observer
        others = tuple(w for w in self._members if w != ctx.rank)
        with slot.cond:
            self._wait(
                slot.cond,
                lambda: slot.phase == "gathering" and me not in slot.contrib,
                desc=self._collective_desc("collective-join"),
                peers=others,
            )
            slot.contrib[me] = (contribution, ctx.clock)
            if obs is not None:
                obs.on_collective_enter(self.name, self.size, ctx.rank, ctx.clock)
            if len(slot.contrib) == slot.size:
                data = {r: c for r, (c, _) in slot.contrib.items()}
                t_start = max(t for _, t in slot.contrib.values())
                slot.results = compute(data)
                slot.finish_clock = t_start + cost(data)
                slot.phase = "draining"
                slot.cond.notify_all()
            else:
                self._wait(
                    slot.cond,
                    lambda: slot.phase == "draining",
                    desc=self._collective_desc("collective-drain"),
                    peers=others,
                )
            result = slot.results[me]  # type: ignore[index]
            ctx.clock = max(ctx.clock, slot.finish_clock)
            if obs is not None:
                obs.on_collective_exit(self.name, self.size, ctx.rank, ctx.clock)
            slot.taken += 1
            if slot.taken == slot.size:
                slot.contrib = {}
                slot.results = None
                slot.taken = 0
                slot.phase = "gathering"
                slot.cond.notify_all()
        return result

    # -- standard collectives ---------------------------------------------------------
    def barrier(self) -> None:
        self.custom_collective(
            None,
            compute=lambda data: {r: None for r in data},
            cost=lambda data: self._net.barrier_time(self.size),
        )

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns its copy."""

        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            value = data[root]
            return {r: (value if r == root else _copy_payload(value)) for r in data}

        return self.custom_collective(
            obj if self.rank == root else None,
            compute=compute,
            cost=lambda data: self._net.bcast_time(_payload_nbytes(data[root]), self.size),
        )

    def reduce(
        self, array: np.ndarray, op: ReduceOp = ReduceOp.SUM, root: int = 0
    ) -> Optional[np.ndarray]:
        """Element-wise reduce of numpy arrays; result only on ``root``."""
        array = np.asarray(array)

        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            combined = op.combine([data[r] for r in sorted(data)])
            return {r: (combined if r == root else None) for r in data}

        return self.custom_collective(
            array,
            compute=compute,
            cost=lambda data: self._net.reduce_time(int(array.nbytes), self.size),
        )

    def allreduce(self, array: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        array = np.asarray(array)

        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            combined = op.combine([data[r] for r in sorted(data)])
            return {r: np.array(combined, copy=True) for r in data}

        return self.custom_collective(
            array,
            compute=compute,
            cost=lambda data: self._net.allreduce_time(int(array.nbytes), self.size),
        )

    def reduce_obj(
        self, value: Any, func: Callable[[Any, Any], Any], root: int = 0
    ) -> Any:
        """Generic-object reduce (e.g. max-loc pivot search): ``func`` folds
        contributions in rank order; result only meaningful on ``root``."""

        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            acc = data[0] if 0 in data else data[sorted(data)[0]]
            for r in sorted(data)[1:]:
                acc = func(acc, data[r])
            return {r: (acc if r == root else None) for r in data}

        return self.custom_collective(
            value,
            compute=compute,
            cost=lambda data: self._net.reduce_time(_SMALL_OBJ_BYTES, self.size),
        )

    def allreduce_obj(self, value: Any, func: Callable[[Any, Any], Any]) -> Any:
        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            ranks = sorted(data)
            acc = data[ranks[0]]
            for r in ranks[1:]:
                acc = func(acc, data[r])
            return {r: _copy_payload(acc) for r in data}

        return self.custom_collective(
            value,
            compute=compute,
            cost=lambda data: self._net.allreduce_time(_SMALL_OBJ_BYTES, self.size),
        )

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank into a rank-ordered list on ``root``."""

        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            ordered = [data[r] for r in range(self.size)]
            return {r: (ordered if r == root else None) for r in data}

        return self.custom_collective(
            obj,
            compute=compute,
            cost=lambda data: self._net.gather_time(
                max(_payload_nbytes(v) for v in data.values()), self.size
            ),
        )

    def allgather(self, obj: Any) -> List[Any]:
        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            ordered = [data[r] for r in range(self.size)]
            return {r: [_copy_payload(v) for v in ordered] for r in data}

        return self.custom_collective(
            obj,
            compute=compute,
            cost=lambda data: self._net.allgather_time(
                max(_payload_nbytes(v) for v in data.values()), self.size
            ),
        )

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter a length-``size`` sequence from ``root``."""

        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            seq = data[root]
            if seq is None or len(seq) != self.size:
                raise SimError(
                    f"scatter root must supply exactly {self.size} items"
                )
            return {r: _copy_payload(seq[r]) for r in data}

        return self.custom_collective(
            objs if self.rank == root else None,
            compute=compute,
            cost=lambda data: self._net.scatter_time(
                _payload_nbytes(data[root]) // max(1, self.size), self.size
            ),
        )

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Each rank supplies ``size`` items; receives item ``[me]`` of each."""
        if len(objs) != self.size:
            raise SimError(f"alltoall needs exactly {self.size} items per rank")

        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            return {
                r: [_copy_payload(data[src][r]) for src in range(self.size)]
                for r in data
            }

        return self.custom_collective(
            list(objs),
            compute=compute,
            cost=lambda data: self._net.alltoall_time(
                max(_payload_nbytes(v) for v in data.values()) // max(1, self.size),
                self.size,
            ),
        )

    # -- communicator construction ---------------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Communicator":
        """MPI_Comm_split: ranks sharing ``color`` form a new communicator,
        ordered by ``(key, old rank)``."""
        me = self.rank
        sort_key = me if key is None else key
        self._split_counter += 1
        split_id = self._split_counter

        def compute(data: Dict[int, Any]) -> Dict[int, Any]:
            groups: Dict[int, List[Tuple[int, int]]] = {}
            for r, (c, k) in data.items():
                groups.setdefault(c, []).append((k, r))
            comms: Dict[int, Communicator] = {}
            for c, pairs in groups.items():
                pairs.sort()
                members = [self._members[r] for _, r in pairs]
                comms[c] = Communicator(
                    self._job, members, name=f"{self.name}/split{split_id}.{c}"
                )
            return {r: comms[c] for r, (c, _) in data.items()}

        return self.custom_collective(
            (color, sort_key),
            compute=compute,
            cost=lambda data: self._net.barrier_time(self.size),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Communicator({self.name}, size={self.size})"
