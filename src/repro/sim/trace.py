"""Virtual-time event tracing for simulator runs.

A :class:`Trace` attached to a job records every phase announcement with
its rank and virtual clock.  That is enough to *measure* (rather than
model) protocol phase durations in live runs — e.g. how long a checkpoint
or a recovery actually took in virtual time — and to render a compact
per-rank timeline for debugging.

Phases bracket naturally: the protocols announce ``ckpt.begin`` ...
``ckpt.done`` and ``restore.begin`` ... ``restore.done``;
:func:`phase_spans` pairs them up per rank.  A ``begin`` whose ``done``
never arrived (the phase a failure cut short) is reported too, with the
:data:`OPEN_SPAN_DURATION` sentinel — :func:`span_stats` counts those
separately and keeps them out of the duration aggregates.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TraceEvent:
    rank: int
    clock: float
    label: str


class Trace:
    """Thread-safe event log shared by all ranks of a job."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()

    def record(self, rank: int, clock: float, label: str) -> None:
        with self._lock:
            self._events.append(TraceEvent(rank=rank, clock=clock, label=label))

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def by_rank(self, rank: int) -> List[TraceEvent]:
        with self._lock:
            return [e for e in self._events if e.rank == rank]

    def grouped(self) -> Dict[int, List[TraceEvent]]:
        """All events grouped per rank in one pass under the lock —
        renderers iterating every rank use this instead of calling
        :meth:`by_rank` per rank (which would rescan the whole log each
        time)."""
        out: Dict[int, List[TraceEvent]] = {}
        with self._lock:
            for e in self._events:
                out.setdefault(e.rank, []).append(e)
        return out

    def labels(self) -> List[str]:
        with self._lock:
            return sorted({e.label for e in self._events})

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: duration reported for a ``begin`` that never saw its ``done`` — the
#: phase a failure interrupted; aggregate with :func:`span_stats`, which
#: excludes these from min/mean/max and counts them under ``"open"``
OPEN_SPAN_DURATION = float("inf")


def phase_spans(
    trace: Trace, begin: str, end: str, rank: Optional[int] = None
) -> List[Tuple[int, float, float]]:
    """Pair ``begin``/``end`` announcements into (rank, start, duration)
    spans, per rank, in order of occurrence.

    A ``begin`` with no matching ``end`` (the rank died mid-phase) is
    still reported, with :data:`OPEN_SPAN_DURATION` as its duration, so
    interrupted phases stay visible instead of silently vanishing."""
    spans: List[Tuple[int, float, float]] = []
    open_at: Dict[int, float] = {}
    for e in trace.events if rank is None else trace.by_rank(rank):
        if e.label == begin:
            if e.rank in open_at:  # re-begin: the prior one never closed
                spans.append((e.rank, open_at[e.rank], OPEN_SPAN_DURATION))
            open_at[e.rank] = e.clock
        elif e.label == end and e.rank in open_at:
            start = open_at.pop(e.rank)
            spans.append((e.rank, start, e.clock - start))
    spans.extend((r, start, OPEN_SPAN_DURATION) for r, start in open_at.items())
    return sorted(spans, key=lambda s: (s[1], s[0]))


def span_stats(spans: List[Tuple[int, float, float]]) -> Dict[str, float]:
    """min/mean/max duration over the *closed* spans (empty-safe);
    ``"open"`` counts the :data:`OPEN_SPAN_DURATION` sentinels so callers
    averaging live measurements are never poisoned by an interrupted
    phase."""
    durations = [d for _, _, d in spans if math.isfinite(d)]
    n_open = len(spans) - len(durations)
    if not durations:
        return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0, "open": n_open}
    return {
        "count": len(durations),
        "min": min(durations),
        "mean": sum(durations) / len(durations),
        "max": max(durations),
        "open": n_open,
    }


def render_timeline(
    trace: Trace, width: int = 72, focus: Optional[Sequence[int]] = None
) -> str:
    """A compact ASCII timeline: one row per rank, one column per event,
    showing phase initials positioned by virtual time.

    ``focus`` marks the given ranks with ``*`` — the sanitizer tooling uses
    it to point at the ranks involved in a deadlock cycle or data race.
    """
    per_rank = trace.grouped()  # one pass; no per-rank rescans of the log
    if not per_rank:
        return "(empty trace)"
    t_max = max(e.clock for events in per_rank.values() for e in events) or 1.0
    marked = set(focus or ())
    labels: set = set()
    lines = []
    for r in sorted(per_rank):
        row = [" "] * width
        for e in per_rank[r]:
            col = min(width - 1, int(e.clock / t_max * (width - 1)))
            row[col] = e.label[0] if e.label else "?"
            labels.add(e.label)
        star = "*" if r in marked else " "
        lines.append(f"r{r:<3}{star}|{''.join(row)}|")
    legend = ", ".join(f"{lbl[0]}={lbl}" for lbl in sorted(labels)[:8])
    lines.append(f"     0 {'-' * (width - 10)} {t_max:.3g}s")
    lines.append(f"     {legend}")
    return "\n".join(lines)
