"""Virtual-time event tracing for simulator runs.

A :class:`Trace` attached to a job records every phase announcement with
its rank and virtual clock.  That is enough to *measure* (rather than
model) protocol phase durations in live runs — e.g. how long a checkpoint
or a recovery actually took in virtual time — and to render a compact
per-rank timeline for debugging.

Phases bracket naturally: the protocols announce ``ckpt.begin`` ...
``ckpt.done`` and ``restore.begin`` ... ``restore.done``;
:func:`phase_spans` pairs them up per rank.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TraceEvent:
    rank: int
    clock: float
    label: str


class Trace:
    """Thread-safe event log shared by all ranks of a job."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()

    def record(self, rank: int, clock: float, label: str) -> None:
        with self._lock:
            self._events.append(TraceEvent(rank=rank, clock=clock, label=label))

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def by_rank(self, rank: int) -> List[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def labels(self) -> List[str]:
        return sorted({e.label for e in self.events})

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def phase_spans(
    trace: Trace, begin: str, end: str, rank: Optional[int] = None
) -> List[Tuple[int, float, float]]:
    """Pair ``begin``/``end`` announcements into (rank, start, duration)
    spans, per rank, in order of occurrence."""
    spans: List[Tuple[int, float, float]] = []
    open_at: Dict[int, float] = {}
    for e in trace.events if rank is None else trace.by_rank(rank):
        if e.label == begin:
            open_at[e.rank] = e.clock
        elif e.label == end and e.rank in open_at:
            start = open_at.pop(e.rank)
            spans.append((e.rank, start, e.clock - start))
    return sorted(spans, key=lambda s: (s[1], s[0]))


def span_stats(spans: List[Tuple[int, float, float]]) -> Dict[str, float]:
    """min/mean/max duration over spans (empty-safe)."""
    if not spans:
        return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
    durations = [d for _, _, d in spans]
    return {
        "count": len(durations),
        "min": min(durations),
        "mean": sum(durations) / len(durations),
        "max": max(durations),
    }


def render_timeline(
    trace: Trace, width: int = 72, focus: Optional[Sequence[int]] = None
) -> str:
    """A compact ASCII timeline: one row per rank, one column per event,
    showing phase initials positioned by virtual time.

    ``focus`` marks the given ranks with ``*`` — the sanitizer tooling uses
    it to point at the ranks involved in a deadlock cycle or data race.
    """
    events = trace.events
    if not events:
        return "(empty trace)"
    t_max = max(e.clock for e in events) or 1.0
    ranks = sorted({e.rank for e in events})
    marked = set(focus or ())
    lines = []
    for r in ranks:
        row = [" "] * width
        for e in trace.by_rank(r):
            col = min(width - 1, int(e.clock / t_max * (width - 1)))
            row[col] = e.label[0] if e.label else "?"
        star = "*" if r in marked else " "
        lines.append(f"r{r:<3}{star}|{''.join(row)}|")
    legend = ", ".join(f"{lbl[0]}={lbl}" for lbl in trace.labels()[:8])
    lines.append(f"     0 {'-' * (width - 10)} {t_max:.3g}s")
    lines.append(f"     {legend}")
    return "\n".join(lines)
