"""Failure injection: scheduled, phase-triggered, and MTBF-driven.

The paper validates its protocols by powering off nodes at adversarial
moments — mid-computation (Fig. 2 CASE 1), while calculating a new checksum
(Fig. 4 CASE 1), and while flushing the new checkpoint (Fig. 4 CASE 2).
Phase triggers let tests aim a failure at exactly those protocol steps:
rank code announces named phases via ``ctx.phase(name)`` and a trigger fires
on the k-th announcement, counted per node — or, with ``rank=`` set, per
that specific rank (see :class:`PhaseTrigger`).

Time triggers fire when a rank on the node advances its virtual clock past
the deadline.  The MTBF generator draws exponential inter-failure times to
build whole failure schedules — *repeated* failures per node up to the
horizon — for reliability sweeps and the :mod:`repro.chaos` campaigns.

Every fired trigger leaves a :class:`FiredTrigger` provenance record
(which rank tripped it, at what virtual clock, at which count) so campaign
reports can attribute each injected failure to the exact announcement that
caused it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.util.rng import seeded_rng


@dataclass
class TimeTrigger:
    """Power off ``node_id`` once any of its ranks reaches ``at_time``.

    ``extra_nodes`` die at the same instant — correlated failures (rack /
    switch loss, simultaneous double faults for the RAID-6 protocols).
    """

    node_id: int
    at_time: float
    extra_nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")

    @property
    def all_nodes(self) -> Tuple[int, ...]:
        return (self.node_id, *self.extra_nodes)


@dataclass
class PhaseTrigger:
    """Power off ``node_id`` on the ``occurrence``-th announcement of
    ``phase``.

    With ``rank=None`` (the default) announcements are counted per
    ``(node, phase)``: the trigger fires on the ``occurrence``-th
    announcement of ``phase`` by *any* rank running on that node.

    With ``rank`` set, announcements are counted per
    ``(node, phase, rank)``: ``occurrence=k`` means the k-th announcement
    *by that rank*, regardless of how many times other ranks on the same
    node announced the phase first — which is what makes
    multi-rank-per-node tests deterministic.  (Earlier revisions counted
    node-wide even when ``rank`` was set, so a rank-restricted trigger
    could fire on the wrong announcement; see ``FailurePlan.check_phase``.)

    ``extra_nodes`` die at the same instant as ``node_id``.

    ``via_rank``/``via_occurrence`` pin a *node-wide* trigger to one
    concrete announcement — "the node-wide ``occurrence``-th announcement
    is rank ``via_rank``'s ``via_occurrence``-th".  With several ranks per
    node the node-wide count is incremented in host-scheduler order, so
    which same-instant announcement lands on the count is otherwise a
    thread race; campaigns that know the announcement schedule in advance
    (the kill matrix resolves it from the fault-free probe's virtual-clock
    order, see :func:`repro.chaos.campaign.point_trigger`) pin the trigger
    so the fire clock — and hence the doomed node's death time — is a
    pure function of the scenario.  The fired provenance still reports the
    advertised node-wide ``occurrence``, keeping reports and artifacts
    identical to the unpinned trigger's.

    ``doom_points`` extends the pin to the node's *other* ranks: each
    ``(rank, phase, local_occurrence)`` entry names the announcement at
    which that sibling rank dies — its first announcement at-or-after the
    pinned one in virtual-clock order, again resolved from the probe.  A
    sibling that blocks on a dead peer before reaching its doom point dies
    inside the communicator wait instead; ``phase=""`` marks a rank with
    no post-kill announcement (wait-delivery only).  Doom-pinned ranks are
    exempt from the runtime's clock-based death fallback, so every rank of
    the killed node dies at a point that is a pure function of its own
    program — never of where host scheduling happened to put it.
    ``fire_clock`` carries the pinned announcement's probe clock so a
    sibling that reaches its doom point *before* the announcing rank (in
    host time) can still stamp the node's power-off instant correctly.
    """

    node_id: int
    phase: str
    occurrence: int = 1
    rank: Optional[int] = None
    extra_nodes: Tuple[int, ...] = ()
    via_rank: Optional[int] = None
    via_occurrence: Optional[int] = None
    fire_clock: Optional[float] = None
    doom_points: Tuple[Tuple[int, str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.occurrence < 1:
            raise ValueError("occurrence must be >= 1")
        if (self.via_rank is None) != (self.via_occurrence is None):
            raise ValueError("via_rank and via_occurrence come as a pair")
        if self.via_rank is not None and self.rank is not None:
            raise ValueError("via_rank pins a node-wide trigger; rank= is set")
        if self.via_occurrence is not None and self.via_occurrence < 1:
            raise ValueError("via_occurrence must be >= 1")
        if self.doom_points and self.via_rank is None:
            raise ValueError("doom_points require a via_rank pin")

    @property
    def all_nodes(self) -> Tuple[int, ...]:
        return (self.node_id, *self.extra_nodes)


AnyTrigger = Union[TimeTrigger, PhaseTrigger]


@dataclass(frozen=True)
class FiredTrigger:
    """Provenance of one fired trigger.

    ``count`` is the occurrence count that tripped a phase trigger (None
    for time triggers); ``rank`` is the announcing/advancing rank when the
    runtime supplied it.  Campaign reports (:mod:`repro.chaos`) use these
    to attribute each injected failure to the exact announcement that
    caused it.
    """

    trigger: AnyTrigger
    node_id: int
    clock: float
    rank: Optional[int] = None
    phase: Optional[str] = None
    count: Optional[int] = None

    def describe(self) -> str:
        """One-line human summary for reports.

        Deterministic across replays: the announcing rank is named only
        for rank-restricted triggers.  For an unpinned node-wide trigger
        with several ranks per node, *which* rank's same-instant
        announcement trips the count is scheduler order — naming it would
        leak thread interleaving into otherwise byte-stable campaign
        artifacts.  (Pinned triggers — ``via_rank`` set — resolve that
        race, but stay unnamed so their summary is byte-identical to the
        unpinned form's.)
        """
        if isinstance(self.trigger, PhaseTrigger):
            who = (
                f" (announced by rank {self.rank})"
                if self.trigger.rank is not None
                else ""
            )
            return (
                f"node {self.node_id} killed at phase {self.phase!r} "
                f"count {self.count}{who}, t={self.clock:.3f}s"
            )
        return f"node {self.node_id} killed at t={self.clock:.3f}s (time trigger)"


class FailurePlan:
    """A set of pending triggers consulted by the runtime.

    Thread-safe; each trigger fires at most once.  The runtime calls
    :meth:`check_time` on every clock advance and :meth:`check_phase` on
    every phase announcement, and powers off the returned node ids.

    The plan is shared across job incarnations (the daemon re-arms
    nothing): phase counts keep accumulating over restarts, and triggers
    that have not fired stay armed.  :attr:`fired` lists the fired
    triggers in firing order; :attr:`fired_records` carries the matching
    :class:`FiredTrigger` provenance.
    """

    def __init__(
        self,
        triggers: Optional[List[AnyTrigger]] = None,
    ):
        self._lock = threading.Lock()
        self._time_triggers: List[TimeTrigger] = []
        self._phase_triggers: List[PhaseTrigger] = []
        #: announcement counts keyed by ``(node, phase, rank_or_None)``;
        #: the ``None`` slot is the node-wide count, the rank slots are
        #: what rank-restricted triggers consult
        self._phase_counts: Dict[Tuple[int, str, Optional[int]], int] = {}
        #: per-rank doom points of pinned triggers, keyed ``(node, rank)``
        #: -> ``(phase, local_occurrence, trigger)`` — see
        #: :attr:`PhaseTrigger.doom_points`
        self._rank_dooms: Dict[Tuple[int, int], Tuple[str, int, PhaseTrigger]] = {}
        #: nodes some fired trigger already killed.  A node dies once —
        #: replacements get fresh ids — so a later trigger whose *primary*
        #: target is already dead is suppressed (its ranks could only reach
        #: the trigger as doomed ghosts draining their pre-death program
        #: segment, which would make the fired list a thread race).  A dead
        #: node listed only in ``extra_nodes`` does not suppress: the live
        #: primary still dies, the dead extra is a no-op.  The
        #: check-and-mark is atomic under the plan lock.
        self._killed_nodes: set = set()
        self.fired: List[AnyTrigger] = []
        self.fired_records: List[FiredTrigger] = []
        for t in triggers or []:
            self.add(t)

    def add(self, trigger: AnyTrigger) -> None:
        with self._lock:
            if isinstance(trigger, TimeTrigger):
                self._time_triggers.append(trigger)
            elif isinstance(trigger, PhaseTrigger):
                self._phase_triggers.append(trigger)
                for rank, phase, local in trigger.doom_points:
                    self._rank_dooms[(trigger.node_id, rank)] = (
                        phase, local, trigger,
                    )
                if trigger.via_rank is not None:
                    # the announcing rank's own doom is the pinned
                    # announcement itself
                    self._rank_dooms[(trigger.node_id, trigger.via_rank)] = (
                        trigger.phase, trigger.via_occurrence, trigger,
                    )
            else:
                raise TypeError(f"not a trigger: {trigger!r}")

    @property
    def empty(self) -> bool:
        with self._lock:
            return not self._time_triggers and not self._phase_triggers

    def pending(self) -> List[AnyTrigger]:
        """Triggers that have not fired yet (time first, then phase)."""
        with self._lock:
            return [*self._time_triggers, *self._phase_triggers]

    def phase_count(
        self, node_id: int, phase: str, rank: Optional[int] = None
    ) -> int:
        """Announcements of ``phase`` seen so far on ``node_id`` (node-wide
        with ``rank=None``, or by one specific rank)."""
        with self._lock:
            return self._phase_counts.get((node_id, phase, rank), 0)

    def rank_doomed(self, node_id: int, rank: int) -> bool:
        """True when a pinned trigger owns this rank's death point.

        Such a rank is exempt from the runtime's clock-based node-death
        fallback: it dies exactly at its doom announcement (see
        :meth:`check_doom`) or inside a communicator wait a dead peer can
        no longer satisfy — both pure functions of virtual program order.
        """
        with self._lock:
            return (node_id, rank) in self._rank_dooms

    def check_doom(
        self, node_id: int, rank: int, phase: str
    ) -> Optional[PhaseTrigger]:
        """The pinned trigger whose doom point this announcement is, if any.

        Consulted by ``RankContext.phase`` *after* :meth:`check_phase` has
        counted the announcement: a doomed rank matches when its own
        ``(node, phase, rank)`` count has just reached the resolved local
        occurrence.  Returns the owning trigger so the caller can stamp
        the node's power-off instant with :attr:`PhaseTrigger.fire_clock`
        even when this rank outran the announcing one.
        """
        with self._lock:
            spec = self._rank_dooms.get((node_id, rank))
            if spec is None:
                return None
            doom_phase, local, trigger = spec
            if doom_phase != phase:
                return None
            if self._phase_counts.get((node_id, phase, rank), 0) != local:
                return None
            return trigger

    def check_time(
        self, node_id: int, now: float, rank: Optional[int] = None
    ) -> Optional[TimeTrigger]:
        """The fired trigger if one for ``node_id`` has come due at ``now``.

        Triggers targeting a node some earlier trigger already killed are
        skipped: a node dies once, and only a doomed rank draining its
        pre-death program segment could even reach such a trigger.
        """
        with self._lock:
            for t in self._time_triggers:
                if t.node_id == node_id and now >= t.at_time:
                    if t.node_id in self._killed_nodes:
                        continue
                    self._time_triggers.remove(t)
                    self._killed_nodes.update(t.all_nodes)
                    self.fired.append(t)
                    self.fired_records.append(
                        FiredTrigger(
                            trigger=t, node_id=node_id, clock=now, rank=rank
                        )
                    )
                    return t
            return None

    def check_phase(
        self, node_id: int, rank: int, phase: str, clock: float = 0.0
    ) -> Optional[PhaseTrigger]:
        """Record a phase announcement; returns the tripped trigger if any.

        Counting is exact (``count == occurrence``), not a threshold: a
        trigger armed *after* its target count has already passed stays
        silent instead of firing on the next unrelated announcement.
        Node-wide triggers consult the ``(node, phase)`` count;
        rank-restricted triggers consult the announcing rank's own
        ``(node, phase, rank)`` count, so ``occurrence=k`` always means
        the k-th announcement by that rank even when other ranks on the
        node announce the same phase first.
        """
        with self._lock:
            node_key = (node_id, phase, None)
            rank_key = (node_id, phase, rank)
            self._phase_counts[node_key] = self._phase_counts.get(node_key, 0) + 1
            self._phase_counts[rank_key] = self._phase_counts.get(rank_key, 0) + 1
            node_count = self._phase_counts[node_key]
            rank_count = self._phase_counts[rank_key]
            for t in self._phase_triggers:
                if t.node_id != node_id or t.phase != phase:
                    continue
                if t.via_rank is not None:
                    # pinned node-wide trigger: fire on the resolved rank's
                    # own announcement; report the advertised node count
                    if t.via_rank != rank or rank_count != t.via_occurrence:
                        continue
                    count = t.occurrence
                elif t.rank is None:
                    count = node_count
                elif t.rank == rank:
                    count = rank_count
                else:
                    continue
                if count == t.occurrence:
                    if t.node_id in self._killed_nodes:
                        continue
                    self._phase_triggers.remove(t)
                    self._killed_nodes.update(t.all_nodes)
                    self.fired.append(t)
                    self.fired_records.append(
                        FiredTrigger(
                            trigger=t,
                            node_id=node_id,
                            clock=clock,
                            rank=rank,
                            phase=phase,
                            count=count,
                        )
                    )
                    return t
            return None


class MTBFFailureGenerator:
    """Draws node failure times from an exponential distribution.

    ``mtbf_node_s`` is the per-node mean time between failures; system MTBF
    is ``mtbf_node_s / n_nodes``.  Used by the reliability analyses, the
    long-running failure-storm integration tests, and the randomized
    :mod:`repro.chaos` campaigns.
    """

    def __init__(self, mtbf_node_s: float, seed: int = 0):
        if mtbf_node_s <= 0:
            raise ValueError("mtbf must be > 0")
        self.mtbf_node_s = mtbf_node_s
        self._rng = seeded_rng(seed)

    def draw_failure_time(self) -> float:
        """One exponential failure time for a single node."""
        return float(self._rng.exponential(self.mtbf_node_s))

    def schedule(
        self,
        node_ids: List[int],
        horizon_s: float,
        *,
        max_failures_per_node: int = 8,
    ) -> List[TimeTrigger]:
        """Every failure of each node within ``horizon_s``.

        Inter-failure gaps are drawn per node until the accumulated time
        leaves the horizon (a failed-and-replaced node slot can fail
        again), capped at ``max_failures_per_node`` draws so a tiny MTBF
        cannot produce an unbounded schedule.  Earlier revisions kept only
        the first draw per node, which under-counted late-run failures in
        the endurance benchmarks.
        """
        if max_failures_per_node < 1:
            raise ValueError("max_failures_per_node must be >= 1")
        triggers = []
        for nid in node_ids:
            t = 0.0
            for _ in range(max_failures_per_node):
                t += self.draw_failure_time()
                if t > horizon_s:
                    break
                triggers.append(TimeTrigger(node_id=nid, at_time=t))
        return sorted(triggers, key=lambda t: (t.at_time, t.node_id))

    def system_mtbf(self, n_nodes: int) -> float:
        """MTBF of an ``n_nodes`` system (minimum of exponentials)."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.mtbf_node_s / n_nodes
