"""Failure injection: scheduled, phase-triggered, and MTBF-driven.

The paper validates its protocols by powering off nodes at adversarial
moments — mid-computation (Fig. 2 CASE 1), while calculating a new checksum
(Fig. 4 CASE 1), and while flushing the new checkpoint (Fig. 4 CASE 2).
Phase triggers let tests aim a failure at exactly those protocol steps:
rank code announces named phases via ``ctx.phase(name)`` and a trigger fires
on the k-th announcement by any rank on the doomed node.

Time triggers fire when a rank on the node advances its virtual clock past
the deadline.  The MTBF generator draws exponential inter-failure times to
build whole failure schedules for reliability sweeps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.rng import seeded_rng


@dataclass
class TimeTrigger:
    """Power off ``node_id`` once any of its ranks reaches ``at_time``.

    ``extra_nodes`` die at the same instant — correlated failures (rack /
    switch loss, simultaneous double faults for the RAID-6 protocols).
    """

    node_id: int
    at_time: float
    extra_nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")

    @property
    def all_nodes(self) -> Tuple[int, ...]:
        return (self.node_id, *self.extra_nodes)


@dataclass
class PhaseTrigger:
    """Power off ``node_id`` on the ``occurrence``-th announcement of
    ``phase`` by any rank running on that node.

    ``rank`` optionally restricts matching to one specific rank's
    announcements, which makes multi-rank-per-node tests deterministic.
    ``extra_nodes`` die at the same instant as ``node_id``.
    """

    node_id: int
    phase: str
    occurrence: int = 1
    rank: Optional[int] = None
    extra_nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.occurrence < 1:
            raise ValueError("occurrence must be >= 1")

    @property
    def all_nodes(self) -> Tuple[int, ...]:
        return (self.node_id, *self.extra_nodes)


class FailurePlan:
    """A set of pending triggers consulted by the runtime.

    Thread-safe; each trigger fires at most once.  The runtime calls
    :meth:`check_time` on every clock advance and :meth:`check_phase` on
    every phase announcement, and powers off the returned node ids.
    """

    def __init__(
        self,
        triggers: Optional[List[TimeTrigger | PhaseTrigger]] = None,
    ):
        self._lock = threading.Lock()
        self._time_triggers: List[TimeTrigger] = []
        self._phase_triggers: List[PhaseTrigger] = []
        self._phase_counts: Dict[Tuple[int, str], int] = {}
        self.fired: List[TimeTrigger | PhaseTrigger] = []
        for t in triggers or []:
            self.add(t)

    def add(self, trigger: TimeTrigger | PhaseTrigger) -> None:
        with self._lock:
            if isinstance(trigger, TimeTrigger):
                self._time_triggers.append(trigger)
            elif isinstance(trigger, PhaseTrigger):
                self._phase_triggers.append(trigger)
            else:
                raise TypeError(f"not a trigger: {trigger!r}")

    @property
    def empty(self) -> bool:
        with self._lock:
            return not self._time_triggers and not self._phase_triggers

    def check_time(self, node_id: int, now: float) -> Optional[TimeTrigger]:
        """The fired trigger if one for ``node_id`` has come due at ``now``."""
        with self._lock:
            for t in self._time_triggers:
                if t.node_id == node_id and now >= t.at_time:
                    self._time_triggers.remove(t)
                    self.fired.append(t)
                    return t
            return None

    def check_phase(
        self, node_id: int, rank: int, phase: str
    ) -> Optional[PhaseTrigger]:
        """Record a phase announcement; returns the tripped trigger if any."""
        with self._lock:
            key = (node_id, phase)
            self._phase_counts[key] = self._phase_counts.get(key, 0) + 1
            count = self._phase_counts[key]
            for t in self._phase_triggers:
                if (
                    t.node_id == node_id
                    and t.phase == phase
                    and count >= t.occurrence
                    and (t.rank is None or t.rank == rank)
                ):
                    self._phase_triggers.remove(t)
                    self.fired.append(t)
                    return t
            return None


class MTBFFailureGenerator:
    """Draws node failure times from an exponential distribution.

    ``mtbf_node_s`` is the per-node mean time between failures; system MTBF
    is ``mtbf_node_s / n_nodes``.  Used by the reliability analyses and the
    long-running failure-storm integration tests.
    """

    def __init__(self, mtbf_node_s: float, seed: int = 0):
        if mtbf_node_s <= 0:
            raise ValueError("mtbf must be > 0")
        self.mtbf_node_s = mtbf_node_s
        self._rng = seeded_rng(seed)

    def draw_failure_time(self) -> float:
        """One exponential failure time for a single node."""
        return float(self._rng.exponential(self.mtbf_node_s))

    def schedule(self, node_ids: List[int], horizon_s: float) -> List[TimeTrigger]:
        """First failure (if any) of each node within ``horizon_s``."""
        triggers = []
        for nid in node_ids:
            t = self.draw_failure_time()
            if t <= horizon_s:
                triggers.append(TimeTrigger(node_id=nid, at_time=t))
        return sorted(triggers, key=lambda t: t.at_time)

    def system_mtbf(self, n_nodes: int) -> float:
        """MTBF of an ``n_nodes`` system (minimum of exponentials)."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.mtbf_node_s / n_nodes
