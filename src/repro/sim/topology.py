"""Rack/switch topology: correlated failure domains and locality costs.

Paper §3.3 weighs two group-mapping forces: "for better communication
performance, a group tends to select some neighbouring nodes.  But for high
reliability, a group should also spread its nodes as far as possible to
tolerate a single rack or switch failure" — and leaves exploring the
trade-off to future work.  This module supplies the substrate for that
exploration:

* a :class:`Topology` assigning nodes to racks,
* rack-granular failures (losing a switch loses every node behind it),
* an inter-rack bandwidth penalty for the network model, so rack-spread
  groups pay a measurable encode-time cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sim.errors import SimError


@dataclass(frozen=True)
class Topology:
    """Nodes arranged in equal racks.

    ``nodes_per_rack`` nodes share a rack (and its switch); the rack of
    node ``i`` is ``i // nodes_per_rack``.  ``inter_rack_bw_factor`` scales
    effective bandwidth for traffic crossing racks (< 1 = slower).
    """

    nodes_per_rack: int
    inter_rack_bw_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.nodes_per_rack < 1:
            raise ValueError("nodes_per_rack must be >= 1")
        if not 0 < self.inter_rack_bw_factor <= 1.0:
            raise ValueError("inter_rack_bw_factor must be in (0, 1]")

    def rack_of(self, node_id: int) -> int:
        return node_id // self.nodes_per_rack

    def nodes_in_rack(self, rack: int, n_nodes: int) -> List[int]:
        lo = rack * self.nodes_per_rack
        return [i for i in range(lo, lo + self.nodes_per_rack) if i < n_nodes]

    def n_racks(self, n_nodes: int) -> int:
        return -(-n_nodes // self.nodes_per_rack)

    def racks_of_group(
        self, group_world_ranks: Sequence[int], ranklist: Sequence[int]
    ) -> List[int]:
        """Racks touched by a group, given the rank-to-node map."""
        return sorted({self.rack_of(ranklist[r]) for r in group_world_ranks})

    def group_rack_spread(
        self, group_world_ranks: Sequence[int], ranklist: Sequence[int]
    ) -> float:
        """Fraction of distinct racks among the group's members: 1.0 means
        fully spread (each member behind a different switch)."""
        racks = self.racks_of_group(group_world_ranks, ranklist)
        return len(racks) / len(group_world_ranks)

    def max_members_in_one_rack(
        self, group_world_ranks: Sequence[int], ranklist: Sequence[int]
    ) -> int:
        """The group's exposure to a single rack loss: how many stripes die
        together in the worst rack."""
        counts: Dict[int, int] = {}
        for r in group_world_ranks:
            rack = self.rack_of(ranklist[r])
            counts[rack] = counts.get(rack, 0) + 1
        return max(counts.values())

    def encode_bw_factor(
        self, group_world_ranks: Sequence[int], ranklist: Sequence[int]
    ) -> float:
        """Effective-bandwidth factor for this group's encode traffic:
        intra-rack groups run at full port speed, fully spread groups pay
        the inter-rack penalty, partial spreads interpolate by the fraction
        of member pairs that cross racks."""
        members = list(group_world_ranks)
        n = len(members)
        if n < 2:
            return 1.0
        cross = 0
        total = 0
        for i in range(n):
            for j in range(i + 1, n):
                total += 1
                if self.rack_of(ranklist[members[i]]) != self.rack_of(
                    ranklist[members[j]]
                ):
                    cross += 1
        frac_cross = cross / total
        return 1.0 - frac_cross * (1.0 - self.inter_rack_bw_factor)


def fail_rack(cluster, topology: Topology, rack: int, when: float = 0.0) -> List[int]:
    """Power off every active node in ``rack`` (switch loss).

    Returns the failed node ids.  Spares in the rack die too — they are
    behind the same switch.
    """
    n_nodes = max(n.node_id for n in cluster.all_nodes()) + 1
    victims = [
        nid
        for nid in topology.nodes_in_rack(rack, n_nodes)
        if cluster.node(nid).alive
    ]
    if not victims:
        raise SimError(f"rack {rack} has no live nodes")
    for nid in victims:
        cluster.fail_node(nid, when)
    return victims
