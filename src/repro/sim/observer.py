"""Observer hook points for simulator instrumentation.

The runtime, communicator and SHM store expose a small set of callbacks so
that tooling (the :mod:`repro.sancheck` race and deadlock detectors, custom
profilers) can watch a job run without monkeypatching.  A job carries at
most one :class:`SimObserver`; :func:`install_observer` transparently fans
out to several via :class:`MultiObserver`.

Design rules observers must follow (the detectors in ``repro.sancheck``
do):

* callbacks run on **rank threads**, concurrently — observers synchronize
  internally;
* callbacks may be invoked while the caller holds a communicator condition
  variable, so an observer must never block on simulator state from inside
  a callback (never call into a communicator, never wait on a job);
* job-level actions (``job.abort()``) must be issued only *after* the
  observer has released its own internal lock, or lock-order inversions
  with the communicator wakeup path become possible.

All rank arguments are **world** ranks; ``clock`` arguments are virtual
seconds on the calling rank's clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class BlockDesc:
    """What a rank is blocked on while inside a communicator wait.

    ``kind`` is ``"recv"`` (pt2pt receive, ``peer``/``tag`` set) or
    ``"collective"`` (``members`` lists the world ranks that must arrive).
    """

    kind: str
    comm: str
    peer: Optional[int] = None
    tag: Optional[int] = None
    members: Tuple[int, ...] = field(default_factory=tuple)


class SimObserver:
    """No-op base class; subclass and override what you need.

    Returning a value from :meth:`on_send` attaches it to the in-flight
    message; the matching :meth:`on_recv` receives it back as ``token`` —
    which is how the race detector ships vector-clock snapshots along
    happens-before edges without the simulator knowing about clocks.
    """

    # -- point to point -------------------------------------------------------
    def on_send(self, src: int, dst: int, tag: int, nbytes: int, clock: float) -> Any:
        return None

    def on_recv(
        self,
        dst: int,
        src: int,
        tag: int,
        token: Any,
        clock: float,
        waited_s: float = 0.0,
    ) -> None:
        """Message delivery.  ``waited_s`` is the *virtual* time the
        receiver's clock jumped waiting for the sender's arrival (0 when
        the message was already there) — deterministic, unlike whether the
        rank's thread physically parked in :meth:`on_block`."""
        pass

    # -- collectives ----------------------------------------------------------
    def on_collective_enter(
        self, comm: str, size: int, rank: int, clock: float
    ) -> None:
        pass

    def on_collective_exit(
        self, comm: str, size: int, rank: int, clock: float
    ) -> None:
        pass

    # -- blocking -------------------------------------------------------------
    def on_block(self, rank: int, desc: BlockDesc) -> None:
        pass

    def on_unblock(self, rank: int) -> None:
        pass

    # -- shared memory --------------------------------------------------------
    def on_shm(self, node_id: int, name: str, kind: str, nbytes: int = 0) -> None:
        """SHM segment access: ``kind`` is one of ``create``, ``attach``,
        ``read``, ``write``, ``unlink``.  ``nbytes`` is the segment size the
        operation touched (0 when unknown).  The accessing rank (if any) is
        the thread's bound :class:`~repro.sim.runtime.RankContext`."""
        pass


class MultiObserver(SimObserver):
    """Fan a job's single observer slot out to several observers."""

    def __init__(self, observers: List[SimObserver]):
        self.observers = list(observers)

    def on_send(self, src: int, dst: int, tag: int, nbytes: int, clock: float) -> Any:
        return tuple(o.on_send(src, dst, tag, nbytes, clock) for o in self.observers)

    def on_recv(
        self,
        dst: int,
        src: int,
        tag: int,
        token: Any,
        clock: float,
        waited_s: float = 0.0,
    ) -> None:
        tokens = token if isinstance(token, tuple) else (token,) * len(self.observers)
        for o, t in zip(self.observers, tokens):
            o.on_recv(dst, src, tag, t, clock, waited_s)

    def on_collective_enter(self, comm: str, size: int, rank: int, clock: float) -> None:
        for o in self.observers:
            o.on_collective_enter(comm, size, rank, clock)

    def on_collective_exit(self, comm: str, size: int, rank: int, clock: float) -> None:
        for o in self.observers:
            o.on_collective_exit(comm, size, rank, clock)

    def on_block(self, rank: int, desc: BlockDesc) -> None:
        for o in self.observers:
            o.on_block(rank, desc)

    def on_unblock(self, rank: int) -> None:
        for o in self.observers:
            o.on_unblock(rank)

    def on_shm(self, node_id: int, name: str, kind: str, nbytes: int = 0) -> None:
        for o in self.observers:
            o.on_shm(node_id, name, kind, nbytes)


def install_observer(job: Any, observer: SimObserver) -> None:
    """Attach ``observer`` to ``job``, composing with any already installed."""
    current = getattr(job, "observer", None)
    if current is None:
        job.observer = observer
    elif isinstance(current, MultiObserver):
        current.observers.append(observer)
    else:
        job.observer = MultiObserver([current, observer])
