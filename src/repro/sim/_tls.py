"""Thread-local binding of rank threads to their :class:`RankContext`.

Lets :class:`~repro.sim.mpi.Communicator` offer an mpi4py-like interface
(``comm.rank``, ``comm.send(obj, dest)``) without threading the context
through every call: the runtime binds the context when it bootstraps the
rank thread and unbinds it on exit.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runtime import RankContext

_tls = threading.local()


def bind(ctx: "RankContext") -> None:
    _tls.ctx = ctx


def unbind() -> None:
    _tls.ctx = None


def current_ctx() -> "RankContext":
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise RuntimeError(
            "no RankContext bound to this thread; simulator communicators "
            "may only be used from inside a rank main function"
        )
    return ctx
