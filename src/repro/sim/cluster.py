"""Simulated cluster: a pool of nodes plus spares.

The cluster outlives individual jobs — that is the whole point: SHM on
healthy nodes must survive a job abort so the next incarnation of the job
can attach to its checkpoints.  The job daemon draws replacement nodes from
the spare pool exactly as the paper's master-node daemon swaps lost nodes
out of the ranklist (section 5.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.sim.errors import SimError
from repro.sim.node import Node, NodeSpec


class Cluster:
    """A set of compute nodes with a spare pool.

    Parameters
    ----------
    n_nodes:
        Number of nodes initially in the active pool.
    spec:
        Hardware description shared by every node (homogeneous cluster, as
        both Tianhe partitions are).
    n_spares:
        Extra healthy nodes available to replace failures.
    enforce_memory:
        Propagated to each node's memory accounting.
    """

    def __init__(
        self,
        n_nodes: int,
        spec: NodeSpec | None = None,
        *,
        n_spares: int = 0,
        enforce_memory: bool = False,
    ):
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if n_spares < 0:
            raise ValueError("n_spares must be >= 0")
        self.spec = spec or NodeSpec()
        self._nodes: Dict[int, Node] = {}
        for i in range(n_nodes + n_spares):
            self._nodes[i] = Node(i, self.spec, enforce_memory=enforce_memory)
        self._active_ids: List[int] = list(range(n_nodes))
        self._spare_ids: List[int] = list(range(n_nodes, n_nodes + n_spares))
        #: Non-volatile key/value storage (local disks / parallel FS).
        #: Unlike SHM, contents survive node power-off — disk-based
        #: checkpoint baselines (BLCR, SCR's slower levels) write here.
        self.stable_store: Dict[str, object] = {}

    # -- access ---------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimError(f"no node with id {node_id}") from None

    @property
    def nodes(self) -> List[Node]:
        """Active (non-spare) nodes, in id order."""
        return [self._nodes[i] for i in self._active_ids]

    @property
    def active_ids(self) -> List[int]:
        return list(self._active_ids)

    @property
    def spare_ids(self) -> List[int]:
        return list(self._spare_ids)

    def all_nodes(self) -> List[Node]:
        return [self._nodes[i] for i in sorted(self._nodes)]

    # -- failure / replacement --------------------------------------------------
    def fail_node(self, node_id: int, when: float = 0.0) -> None:
        """Power off a node (active or spare)."""
        self.node(node_id).fail(when)

    def dead_nodes(self) -> List[int]:
        return [i for i in self._active_ids if not self._nodes[i].alive]

    def replace_dead(self) -> Dict[int, int]:
        """Swap every dead active node for a spare.

        Returns a mapping ``{dead_node_id: replacement_node_id}``.  Raises
        :class:`SimError` when the spare pool runs dry — the condition under
        which even a fault-tolerant job cannot continue.
        """
        replacements: Dict[int, int] = {}
        for dead in self.dead_nodes():
            spare = self._take_spare()
            idx = self._active_ids.index(dead)
            self._active_ids[idx] = spare
            replacements[dead] = spare
        return replacements

    def _take_spare(self) -> int:
        while self._spare_ids:
            cand = self._spare_ids.pop(0)
            if self._nodes[cand].alive:
                return cand
        raise SimError("spare pool exhausted")

    def add_spares(self, count: int) -> None:
        """Grow the spare pool with fresh nodes."""
        start = max(self._nodes) + 1
        for i in range(start, start + count):
            self._nodes[i] = Node(i, self.spec, enforce_memory=False)
            self._spare_ids.append(i)

    # -- rank placement ---------------------------------------------------------
    def default_ranklist(self, n_ranks: int, *, procs_per_node: int | None = None) -> List[int]:
        """Map ranks onto active nodes block-wise, ``procs_per_node`` ranks
        per node (defaults to the node core count), the layout ``mpirun``
        would produce from a machine file."""
        ppn = procs_per_node or self.spec.cores
        need = -(-n_ranks // ppn)  # ceil
        if need > len(self._active_ids):
            raise SimError(
                f"{n_ranks} ranks at {ppn}/node need {need} nodes, "
                f"cluster has {len(self._active_ids)}"
            )
        return [self._active_ids[r // ppn] for r in range(n_ranks)]

    def nodes_of(self, ranklist: Sequence[int]) -> List[Node]:
        return [self.node(i) for i in ranklist]

    def ranks_on_node(self, ranklist: Sequence[int], node_id: int) -> List[int]:
        return [r for r, nid in enumerate(ranklist) if nid == node_id]

    def healthy(self, node_ids: Iterable[int]) -> bool:
        return all(self._nodes[i].alive for i in node_ids)
