"""Exception hierarchy for the simulated runtime.

The split mirrors what real systems expose:

* :class:`NodeFailedError` is raised *inside* a rank whose node was powered
  off — the first casualty of a failure.
* :class:`JobAbortedError` is raised in every *other* rank at its next
  runtime interaction, reproducing the observation that "almost all current
  MPI implementations force the whole program to abort after a node failure
  is detected" (paper section 1).
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulator errors."""


class NodeFailedError(SimError):
    """The calling rank's node has been powered off."""

    def __init__(self, node_id: int, when: float):
        super().__init__(f"node {node_id} failed at t={when:.6f}s")
        self.node_id = node_id
        self.when = when


class JobAbortedError(SimError):
    """The job is aborting (some other rank's node failed)."""


class OutOfMemoryError(SimError):
    """A node-level memory allocation exceeded capacity."""


class ShmError(SimError):
    """Invalid shared-memory operation (missing segment, name clash, ...)."""


class UnrecoverableError(SimError):
    """A restart found no consistent checkpoint state to recover from."""
