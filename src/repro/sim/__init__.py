"""Simulated HPC substrate: nodes, SHM, network model, MPI-like runtime.

The paper runs on real MPI over Tianhe-1A/Tianhe-2.  This package provides a
deterministic stand-in: every MPI rank is a Python thread with a *virtual
clock*; communication primitives advance the clocks according to an
alpha-beta network model with port sharing; nodes own memory and SHM
segments; node "power-off" destroys a node's SHM and aborts the job, exactly
matching the failure semantics the paper depends on (section 2.3, 5.2).
"""

from repro.sim.errors import (
    JobAbortedError,
    NodeFailedError,
    OutOfMemoryError,
    ShmError,
    SimError,
    UnrecoverableError,
)
from repro.sim.netmodel import NetworkParams, NetworkModel
from repro.sim.node import Node, NodeSpec
from repro.sim.shm import ShmSegment, ShmStore
from repro.sim.cluster import Cluster
from repro.sim.failures import (
    FailurePlan,
    FiredTrigger,
    MTBFFailureGenerator,
    PhaseTrigger,
    TimeTrigger,
)
from repro.sim.mpi import Communicator, ReduceOp
from repro.sim.observer import BlockDesc, MultiObserver, SimObserver, install_observer
from repro.sim.runtime import Job, JobResult, RankContext, RankExit
from repro.sim.topology import Topology, fail_rack
from repro.sim.trace import (
    OPEN_SPAN_DURATION,
    Trace,
    TraceEvent,
    phase_spans,
    render_timeline,
    span_stats,
)

__all__ = [
    "SimError",
    "NodeFailedError",
    "JobAbortedError",
    "OutOfMemoryError",
    "ShmError",
    "UnrecoverableError",
    "NetworkParams",
    "NetworkModel",
    "Node",
    "NodeSpec",
    "ShmSegment",
    "ShmStore",
    "Cluster",
    "FailurePlan",
    "FiredTrigger",
    "TimeTrigger",
    "PhaseTrigger",
    "MTBFFailureGenerator",
    "Communicator",
    "ReduceOp",
    "SimObserver",
    "MultiObserver",
    "BlockDesc",
    "install_observer",
    "Job",
    "JobResult",
    "RankContext",
    "RankExit",
    "Topology",
    "fail_rack",
    "Trace",
    "TraceEvent",
    "OPEN_SPAN_DURATION",
    "phase_spans",
    "span_stats",
    "render_timeline",
]
