"""Simulated compute node: cores, flops rating, memory accounting, SHM.

A :class:`Node` is pure state — threads belonging to ranks mapped onto the
node consult it for compute speed, charge allocations against its memory,
and keep SHM segments in its :class:`~repro.sim.shm.ShmStore`.  Powering a
node off (``fail``) marks it dead and destroys its SHM, which is precisely
the event the checkpoint protocols must survive.

``NodeSpec`` captures the paper's Table 2 rows; the two Tianhe machines are
predefined in :mod:`repro.models.machines`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.sim.errors import OutOfMemoryError
from repro.sim.netmodel import NetworkParams
from repro.sim.shm import ShmStore


@dataclass(frozen=True)
class NodeSpec:
    """Static hardware description of a node (one Table 2 column).

    Attributes
    ----------
    cores:
        Processor cores per node.
    flops:
        Peak node performance, floating point ops / second.
    mem_bytes:
        Physical memory capacity.
    net:
        Network parameters seen by processes on this node.
    """

    cores: int = 24
    flops: float = 422.4e9
    mem_bytes: int = 64 * 1024**3
    net: NetworkParams = field(default_factory=NetworkParams)
    #: Local memory copy bandwidth per process, bytes/s.  Prices the
    #: checkpoint flush ("local overwriting time is normally less than one
    #: second", paper section 6.6).
    mem_bw_Bps: float = 10e9

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.flops <= 0:
            raise ValueError("flops must be > 0")
        if self.mem_bytes <= 0:
            raise ValueError("mem_bytes must be > 0")

    @property
    def flops_per_core(self) -> float:
        return self.flops / self.cores

    @property
    def mem_per_core(self) -> int:
        return self.mem_bytes // self.cores


class Node:
    """One node of the simulated cluster."""

    def __init__(self, node_id: int, spec: NodeSpec, *, enforce_memory: bool = False):
        self.node_id = node_id
        self.spec = spec
        #: When True, allocations beyond ``spec.mem_bytes`` raise
        #: :class:`OutOfMemoryError`.  Off by default because most tests run
        #: shrunken problem sizes against full-size node specs.
        self.enforce_memory = enforce_memory
        self._alive = True
        self._failed_at: float | None = None
        self._mem_used = 0
        self._mem_lock = threading.Lock()
        self.shm = ShmStore(
            charge=self._charge, release=self._release, node_id=node_id
        )

    # -- liveness ------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def failed_at(self) -> float | None:
        """Virtual time of the power-off, if any."""
        return self._failed_at

    def fail(self, when: float = 0.0) -> None:
        """Power the node off: volatile *and* SHM contents are lost.

        ``when`` is the virtual instant of the power-off; the runtime
        delivers the death to each of the node's ranks when *that rank's
        own clock* reaches it (see ``RankContext.check``), so ``when=0.0``
        (the default) means "dead immediately for everyone".  ``_failed_at``
        is published before ``_alive`` so a concurrent reader never
        observes a dead node without a death time.
        """
        if not self._alive:
            return
        self._failed_at = when
        self._alive = False
        self.shm.clear()

    def repair(self) -> None:
        """Bring the node back empty (a repaired/fresh node re-entering the
        pool; its memory content did not survive)."""
        self._alive = True
        self._failed_at = None

    # -- memory accounting ----------------------------------------------------
    def _charge(self, nbytes: int) -> None:
        with self._mem_lock:
            if self.enforce_memory and self._mem_used + nbytes > self.spec.mem_bytes:
                raise OutOfMemoryError(
                    f"node {self.node_id}: allocation of {nbytes}B exceeds "
                    f"capacity ({self._mem_used}/{self.spec.mem_bytes}B used)"
                )
            self._mem_used += nbytes

    def _release(self, nbytes: int) -> None:
        with self._mem_lock:
            self._mem_used = max(0, self._mem_used - nbytes)

    def malloc(self, nbytes: int) -> None:
        """Charge a plain (non-SHM) allocation against this node."""
        self._charge(nbytes)

    def free(self, nbytes: int) -> None:
        self._release(nbytes)

    @property
    def mem_used(self) -> int:
        with self._mem_lock:
            return self._mem_used

    @property
    def mem_free(self) -> int:
        with self._mem_lock:
            return self.spec.mem_bytes - self._mem_used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._alive else "DOWN"
        return f"Node({self.node_id}, {state}, mem_used={self._mem_used})"
