"""Per-node shared-memory segment store.

Mirrors Linux SHM semantics as the paper uses them (section 2.3): a segment
created by a rank persists after the rank (and the whole job) exits, and is
only lost when the node itself is powered off or the segment is explicitly
unlinked.  Checkpoint buffers and the self-checkpoint workspace live here.

Each segment carries a small metadata dict alongside its numpy buffer; the
checkpoint protocols use it for epoch/phase flags that must survive restart.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Tuple

import numpy as np

from repro.sim.errors import ShmError


@dataclass
class ShmSegment:
    """A named, node-resident array that outlives its creating process."""

    name: str
    array: np.ndarray
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)


class ShmStore:
    """All SHM segments of one node.

    Thread-safe: multiple ranks co-resident on a node may create/attach
    concurrently.  Memory charged against the node is delegated through the
    ``charge``/``release`` callables supplied by the owning :class:`Node`.
    """

    def __init__(
        self,
        charge: Callable[[int], None],
        release: Callable[[int], None],
    ):
        self._segments: Dict[str, ShmSegment] = {}
        self._lock = threading.Lock()
        self._charge = charge
        self._release = release

    def create(
        self,
        name: str,
        shape: Tuple[int, ...] | int,
        dtype: np.dtype | str = np.float64,
        *,
        exist_ok: bool = False,
    ) -> ShmSegment:
        """Allocate a zero-filled segment.

        With ``exist_ok`` an existing segment of the same name, shape and
        dtype is returned instead (the attach-or-create idiom a restarted
        rank uses).
        """
        with self._lock:
            existing = self._segments.get(name)
            if existing is not None:
                if not exist_ok:
                    raise ShmError(f"SHM segment {name!r} already exists")
                want_shape = (shape,) if isinstance(shape, int) else tuple(shape)
                if existing.array.shape != want_shape or existing.array.dtype != np.dtype(dtype):
                    raise ShmError(
                        f"SHM segment {name!r} exists with shape "
                        f"{existing.array.shape}/{existing.array.dtype}, "
                        f"requested {want_shape}/{np.dtype(dtype)}"
                    )
                return existing
            arr = np.zeros(shape, dtype=dtype)
            self._charge(arr.nbytes)
            seg = ShmSegment(name=name, array=arr)
            self._segments[name] = seg
            return seg

    def attach(self, name: str) -> ShmSegment:
        """Return an existing segment; raises :class:`ShmError` if absent."""
        with self._lock:
            seg = self._segments.get(name)
            if seg is None:
                raise ShmError(f"no SHM segment named {name!r}")
            return seg

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._segments

    def unlink(self, name: str, *, missing_ok: bool = False) -> None:
        """Free a segment and release its memory accounting."""
        with self._lock:
            seg = self._segments.pop(name, None)
            if seg is None:
                if missing_ok:
                    return
                raise ShmError(f"no SHM segment named {name!r}")
            self._release(seg.nbytes)

    def clear(self) -> None:
        """Destroy everything (node power-off)."""
        with self._lock:
            total = sum(seg.nbytes for seg in self._segments.values())
            self._segments.clear()
            self._release(total)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(seg.nbytes for seg in self._segments.values())

    def __iter__(self) -> Iterator[ShmSegment]:
        with self._lock:
            return iter(list(self._segments.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)
