"""Per-node shared-memory segment store.

Mirrors Linux SHM semantics as the paper uses them (section 2.3): a segment
created by a rank persists after the rank (and the whole job) exits, and is
only lost when the node itself is powered off or the segment is explicitly
unlinked.  Checkpoint buffers and the self-checkpoint workspace live here.

Each segment carries a small metadata dict alongside its numpy buffer; the
checkpoint protocols use it for epoch/phase flags that must survive restart.

Instrumentation: a store may carry an
:class:`~repro.sim.observer.SimObserver`; every ``create``/``attach``/
``unlink`` and every access through :meth:`ShmSegment.read` /
:meth:`ShmSegment.write` is reported to it.  The race detector in
:mod:`repro.sancheck.races` derives its access history from exactly these
events.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.sim.errors import ShmError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.observer import SimObserver


@dataclass
class ShmSegment:
    """A named, node-resident array that outlives its creating process.

    ``array`` may be used directly (the checkpoint protocols keep raw
    references for speed); code that wants its accesses visible to the
    sanitizer tooling goes through :meth:`read` / :meth:`write` instead.
    """

    name: str
    array: np.ndarray
    meta: Dict[str, Any] = field(default_factory=dict)
    _store: Optional["ShmStore"] = field(default=None, repr=False, compare=False)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def _notify(self, kind: str) -> None:
        if self._store is not None:
            self._store._notify(self.name, kind, self.nbytes)

    def read(self) -> np.ndarray:
        """Instrumented read: report the access, return the live array."""
        self._notify("read")
        return self.array

    def write(self, value: Any, where: Union[slice, Tuple[Any, ...]] = slice(None)) -> None:
        """Instrumented write: report the access, then store ``value`` at
        ``where`` (the whole segment by default)."""
        self._notify("write")
        self.array[where] = value


class ShmStore:
    """All SHM segments of one node.

    Thread-safe: multiple ranks co-resident on a node may create/attach
    concurrently.  Memory charged against the node is delegated through the
    ``charge``/``release`` callables supplied by the owning :class:`Node`.
    """

    def __init__(
        self,
        charge: Callable[[int], None],
        release: Callable[[int], None],
        *,
        node_id: int = -1,
    ):
        self._segments: Dict[str, ShmSegment] = {}
        self._lock = threading.Lock()  # simlint: allow[threading] -- node-internal store lock
        self._charge = charge
        self._release = release
        self.node_id = node_id
        #: optional :class:`~repro.sim.observer.SimObserver` receiving
        #: ``on_shm`` events for every segment operation on this node
        self.observer: Optional["SimObserver"] = None

    def _notify(self, name: str, kind: str, nbytes: int = 0) -> None:
        obs = self.observer
        if obs is not None:
            obs.on_shm(self.node_id, name, kind, nbytes)

    def create(
        self,
        name: str,
        shape: Union[Tuple[int, ...], int],
        dtype: Union[np.dtype, str] = np.float64,
        *,
        exist_ok: bool = False,
    ) -> ShmSegment:
        """Allocate a zero-filled segment.

        With ``exist_ok`` an existing segment of the same name, shape and
        dtype is returned instead (the attach-or-create idiom a restarted
        rank uses).
        """
        with self._lock:
            existing = self._segments.get(name)
            if existing is not None:
                if not exist_ok:
                    raise ShmError(f"SHM segment {name!r} already exists")
                want_shape = (shape,) if isinstance(shape, int) else tuple(shape)
                if existing.array.shape != want_shape or existing.array.dtype != np.dtype(dtype):
                    raise ShmError(
                        f"SHM segment {name!r} exists with shape "
                        f"{existing.array.shape}/{existing.array.dtype}, "
                        f"requested {want_shape}/{np.dtype(dtype)}"
                    )
                seg = existing
                kind = "attach"
            else:
                arr = np.zeros(shape, dtype=dtype)
                self._charge(arr.nbytes)
                seg = ShmSegment(name=name, array=arr, _store=self)
                self._segments[name] = seg
                kind = "create"
        self._notify(name, kind, seg.nbytes)
        return seg

    def attach(self, name: str) -> ShmSegment:
        """Return an existing segment; raises :class:`ShmError` if absent."""
        with self._lock:
            seg = self._segments.get(name)
            if seg is None:
                raise ShmError(f"no SHM segment named {name!r}")
        self._notify(name, "attach", seg.nbytes)
        return seg

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._segments

    def unlink(self, name: str, *, missing_ok: bool = False) -> None:
        """Free a segment and release its memory accounting."""
        with self._lock:
            seg = self._segments.pop(name, None)
            if seg is None:
                if missing_ok:
                    return
                raise ShmError(f"no SHM segment named {name!r}")
            self._release(seg.nbytes)
        self._notify(name, "unlink", seg.nbytes)

    def clear(self) -> None:
        """Destroy everything (node power-off)."""
        with self._lock:
            total = sum(seg.nbytes for seg in self._segments.values())
            self._segments.clear()
            self._release(total)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._segments)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(seg.nbytes for seg in self._segments.values())

    def snapshot(self) -> List[ShmSegment]:
        """A point-in-time view of all segments.

        Returns fresh :class:`ShmSegment` objects sharing the live arrays
        but carrying **copies** of the ``meta`` dicts, so callers iterating
        the result see a consistent set of segments and metadata even while
        other ranks keep creating/unlinking/mutating.  (The arrays stay
        live views — copying checkpoint-sized buffers here would be
        wrong for a diagnostics path.)  This is the only sanctioned way to
        enumerate segments concurrently; the race-detector instrumentation
        uses it for its segment inventory.
        """
        with self._lock:
            return [
                ShmSegment(name=s.name, array=s.array, meta=dict(s.meta))
                for s in self._segments.values()
            ]

    def __iter__(self) -> Iterator[ShmSegment]:
        return iter(self.snapshot())

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)
