"""Byte/time unit constants, formatting, and parsing.

All sizes in this codebase are plain ``int`` byte counts and all durations
are ``float`` seconds; these helpers exist only at the presentation and
configuration boundaries.
"""

from __future__ import annotations

import re

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

_SUFFIXES = [
    ("TiB", 1024**4),
    ("GiB", GiB),
    ("MiB", MiB),
    ("KiB", KiB),
    ("TB", 10**12),
    ("GB", 10**9),
    ("MB", 10**6),
    ("KB", 10**3),
    ("B", 1),
]

_PARSE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]*)\s*$")


def fmt_bytes(n: float) -> str:
    """Render a byte count using the largest binary unit that keeps the
    mantissa >= 1, e.g. ``fmt_bytes(3 * GiB) == '3.00GiB'``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for suffix, factor in (("TiB", 1024**4), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if n >= factor:
            return f"{sign}{n / factor:.2f}{suffix}"
    return f"{sign}{n:.0f}B"


def parse_bytes(text: str) -> int:
    """Parse a human size string (``'4GiB'``, ``'512 MB'``, ``'100'``) to bytes.

    Bare numbers are taken as bytes. Raises :class:`ValueError` on garbage.
    """
    m = _PARSE_RE.match(text)
    if m is None:
        raise ValueError(f"unparseable size: {text!r}")
    value, unit = float(m.group(1)), m.group(2)
    if not unit:
        return int(value)
    for suffix, factor in _SUFFIXES:
        if unit.lower() == suffix.lower():
            return int(value * factor)
    raise ValueError(f"unknown size unit {unit!r} in {text!r}")


def fmt_seconds(t: float) -> str:
    """Render a duration compactly: microseconds below 1 ms, up to hours."""
    if t < 0:
        return "-" + fmt_seconds(-t)
    if t < 1e-3:
        return f"{t * 1e6:.1f}us"
    if t < 1.0:
        return f"{t * 1e3:.1f}ms"
    if t < 120.0:
        return f"{t:.2f}s"
    if t < 7200.0:
        return f"{t / 60.0:.1f}min"
    return f"{t / 3600.0:.2f}h"
