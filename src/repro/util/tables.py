"""Minimal fixed-width table renderer for benchmark and example output."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Cells are str()-ified; numeric-looking cells are right-aligned.
    """
    srows = [[str(c) for c in row] for row in rows]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}: {row}"
            )
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def _is_numeric(s: str) -> bool:
        t = s.rstrip("%x").replace(",", "")
        try:
            float(t)
            return True
        except ValueError:
            return False

    def _fmt_row(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            if _is_numeric(cell):
                out.append(cell.rjust(widths[i]))
            else:
                out.append(cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(_fmt_row(headers))
    lines.append(sep)
    lines.extend(_fmt_row(row) for row in srows)
    return "\n".join(lines)
