"""Shared utilities: unit handling, deterministic RNG, table rendering."""

from repro.util.units import (
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_seconds,
    parse_bytes,
)
from repro.util.rng import block_rng, seeded_rng
from repro.util.tables import render_table

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "fmt_bytes",
    "fmt_seconds",
    "parse_bytes",
    "seeded_rng",
    "block_rng",
    "render_table",
]
