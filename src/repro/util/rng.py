"""Deterministic random number generation helpers.

HPL regenerates its input matrix from a fixed seed on restart ("With the
same configure file, matrix A and b are always the same since the HPL test
uses a fixed random seed", paper section 5.2).  To let *any* rank regenerate
*any* block — needed both at initial generation and when a replacement rank
re-derives data it never owned — we derive one independent stream per global
block coordinate from a root seed.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator for ``seed``."""
    return np.random.default_rng(np.random.SeedSequence(seed))


def block_rng(seed: int, *coords: int) -> np.random.Generator:
    """A generator whose stream depends only on ``(seed, *coords)``.

    Two calls with identical arguments yield identical streams regardless of
    which process makes the call or in which order blocks are generated.
    """
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=tuple(coords)))
