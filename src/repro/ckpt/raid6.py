"""GF(2^8) arithmetic and RAID-6-style double-erasure coding.

The paper notes (§2.1) that "more complex encoding methods, such as RAID-6
and Reed-Solomon, [can] tolerate more node failures."  This module provides
that extension: a P+Q parity pair over each group's buffers that recovers
any **two** lost members, at the cost of a second checksum stripe.

Arithmetic is the standard RAID-6 construction over GF(2^8) with the
primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D):

    P = D_0 ^ D_1 ^ ... ^ D_{n-1}
    Q = g^0*D_0 ^ g^1*D_1 ^ ... ^ g^{n-1}*D_{n-1},   g = 0x02

All byte-wise operations are vectorized: scalar helpers and the small-
stripe paths go through numpy lookup tables, while the batched encode and
decode folds run on the selectable kernels in :mod:`repro.ckpt.kernels`
(bitsliced uint64 Horner by default, optional compiled backend via
``REPRO_KERNEL_BACKEND``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.ckpt import kernels as _kernels


class GF256:
    """The field GF(2^8) with log/antilog tables for fast vector ops."""

    POLY = 0x11D
    GENERATOR = 0x02

    def __init__(self) -> None:
        exp = np.zeros(512, dtype=np.uint8)
        log = np.zeros(256, dtype=np.int32)
        x = 1
        for i in range(255):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & 0x100:
                x ^= self.POLY
        exp[255:510] = exp[0:255]  # wraparound so exp[a+b] needs no mod
        self._exp = exp
        self._log = log
        # full 256x256 multiplication table, row c being the lookup table
        # v -> c*v: 64 KiB once per field instance instead of a fresh
        # 256-entry table per vec_mul call
        idx = (log[:, None] + log[None, :]) % 255
        table = exp[idx]
        table[0, :] = 0
        table[:, 0] = 0
        table.setflags(write=False)
        self._mul_table = table

    # -- scalar ops (used in solving the 2x2 erasure system) -------------------
    def mul(self, a: int, b: int) -> int:
        return int(self._mul_table[a, b])

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("GF256 division by zero")
        if a == 0:
            return 0
        return int(self._exp[(self._log[a] - self._log[b]) % 255])

    def inv(self, a: int) -> int:
        return self.div(1, a)

    def pow_g(self, k: int) -> int:
        """g^k for the generator g = 2."""
        return int(self._exp[k % 255])

    # -- vector ops ---------------------------------------------------------------
    def mul_table(self, c: int) -> np.ndarray:
        """Read-only lookup row ``v -> c*v`` (a view into the cached
        256x256 table; no allocation)."""
        return self._mul_table[c]

    def vec_mul(
        self, c: int, v: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Scale a uint8 vector by the field constant ``c``.

        With ``out=`` the product is written in place and ``out`` is
        returned — including for the trivial constants, so ``c == 1``
        into a distinct ``out`` is a copy and into ``out is v`` a no-op
        (no defensive allocation on hot paths).
        """
        if v.dtype != np.uint8:
            raise TypeError("GF256 vectors are uint8")
        if out is None:
            if c == 0:
                return np.zeros_like(v)
            if c == 1:
                return v.copy()
            # ndarray.take is measurably faster than fancy indexing here:
            # it skips the index-array promotion to intp that row[v] pays
            return self._mul_table[c].take(v)
        if c == 0:
            out[:] = 0
        elif c == 1:
            if out is not v:
                np.copyto(out, v)
        elif out is v:
            # take() with an out that aliases its index array is undefined
            np.copyto(out, self._mul_table[c].take(v))
        else:
            self._mul_table[c].take(v, out=out)
        return out

    def vec_mul_xor(self, c: int, v: np.ndarray, acc: np.ndarray) -> None:
        """In-place ``acc ^= c*v`` — the encode inner loop, without the
        intermediate scaled copy for the trivial constants."""
        if c == 0:
            return
        if c == 1:
            acc ^= v
            return
        np.bitwise_xor(acc, self._mul_table[c].take(v), out=acc)


_GF = GF256()


class RSCodec:
    """P+Q encoder/decoder over a group of equal-length uint8 buffers."""

    def __init__(self, group_size: int):
        if not 2 <= group_size <= 255:
            raise ValueError("group_size must be in [2, 255]")
        self.group_size = group_size
        self.gf = _GF

    def encode(
        self,
        buffers: Sequence[np.ndarray],
        out_p: Optional[np.ndarray] = None,
        out_q: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compute the (P, Q) parity pair for ``buffers``.

        ``out_p``/``out_q`` accept preallocated uint8 arrays (e.g. rows of
        a parity matrix) so the batched stripe paths allocate nothing per
        row; the pair written (or allocated) is returned either way.
        """
        self._check(buffers)
        if out_p is None:
            out_p = np.empty_like(buffers[0])
        if out_q is None:
            out_q = np.empty_like(buffers[0])
        _kernels.get_kernels().encode_pq(buffers, out_p, out_q)
        return out_p, out_q

    def _check(self, buffers: Sequence[np.ndarray]) -> None:
        if len(buffers) != self.group_size:
            raise ValueError(
                f"expected {self.group_size} buffers, got {len(buffers)}"
            )
        size = len(buffers[0])
        for b in buffers:
            if b.dtype != np.uint8 or len(b) != size:
                raise ValueError("buffers must be equal-length uint8 arrays")

    def decode(
        self,
        survivors: Dict[int, np.ndarray],
        p: np.ndarray | None,
        q: np.ndarray | None,
        out: Optional[Dict[int, np.ndarray]] = None,
    ) -> Dict[int, np.ndarray]:
        """Recover up to two lost data buffers.

        ``survivors`` maps surviving indices to their buffers; ``p``/``q``
        are the parities (pass ``None`` for a lost parity).  Handles every
        RAID-6 erasure case: one data loss (via P or Q), two data losses
        (via P and Q), and data+parity losses.

        ``out`` optionally maps missing indices to preallocated result
        buffers (e.g. stripe views of a rebuilt member) — each recovered
        vector is written through the provided array, so reconstruction
        never copies stripes twice.

        Returns ``{index: recovered buffer}`` for each missing data index.
        """
        n = self.group_size
        missing = sorted(set(range(n)) - set(survivors))
        lost_parities = (p is None) + (q is None)
        if len(missing) + lost_parities > 2:
            raise ValueError(
                f"RAID-6 tolerates 2 erasures; lost {len(missing)} data "
                f"buffers and {lost_parities} parities"
            )
        if not missing:
            return {}
        gf = self.gf
        kern = _kernels.get_kernels()
        surv_idx = sorted(survivors)
        surv_rows = [survivors[j] for j in surv_idx]
        template = surv_rows[0] if surv_rows else (p if p is not None else q)
        assert template is not None

        def _out(idx: int) -> np.ndarray:
            if out is not None and idx in out:
                return out[idx]
            return np.empty_like(template)

        if len(missing) == 1:
            x = missing[0]
            res = _out(x)
            if p is not None:
                # one reduce over the stacked survivors+parity, not a
                # Python loop of in-place xors
                np.bitwise_xor.reduce(np.stack([p, *surv_rows]), axis=0, out=res)
                return {x: res}
            # recover through Q: D_x = (Q ^ sum g^j D_j) / g^x
            assert q is not None
            if surv_rows:
                kern.gpow_fold(surv_rows, surv_idx, res)
                np.bitwise_xor(res, q, out=res)
            else:
                np.copyto(res, q)
            kern.scale(gf.inv(gf.pow_g(x)), res, res)
            return {x: res}

        # two data losses: solve
        #   D_x ^ D_y                 = P'   (P minus survivors)
        #   g^x D_x ^ g^y D_y         = Q'   (Q minus survivors)
        if p is None or q is None:
            raise ValueError("two data losses need both parities")
        x, y = missing
        res_x, res_y = _out(x), _out(y)
        # P' lands in res_y (it finishes as D_y), Q' in a scratch vector
        np.bitwise_xor.reduce(np.stack([p, *surv_rows]), axis=0, out=res_y)
        qq = np.empty_like(res_y)
        if surv_rows:
            kern.gpow_fold(surv_rows, surv_idx, qq)
            np.bitwise_xor(qq, q, out=qq)
        else:
            np.copyto(qq, q)
        gx, gy = gf.pow_g(x), gf.pow_g(y)
        denom = gx ^ gy  # g^x + g^y in GF(2^8)
        a = gf.div(gy, denom)
        b = gf.inv(denom)
        # D_x = a*P' ^ b*Q';  D_y = P' ^ D_x
        kern.scale(a, res_y, res_x)
        kern.scale(b, qq, qq)
        np.bitwise_xor(res_x, qq, out=res_x)
        np.bitwise_xor(res_y, res_x, out=res_y)
        return {x: res_x, y: res_y}
