"""GF(2^8) arithmetic and RAID-6-style double-erasure coding.

The paper notes (§2.1) that "more complex encoding methods, such as RAID-6
and Reed-Solomon, [can] tolerate more node failures."  This module provides
that extension: a P+Q parity pair over each group's buffers that recovers
any **two** lost members, at the cost of a second checksum stripe.

Arithmetic is the standard RAID-6 construction over GF(2^8) with the
primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D):

    P = D_0 ^ D_1 ^ ... ^ D_{n-1}
    Q = g^0*D_0 ^ g^1*D_1 ^ ... ^ g^{n-1}*D_{n-1},   g = 0x02

All byte-wise operations are vectorized through numpy lookup tables.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


class GF256:
    """The field GF(2^8) with log/antilog tables for fast vector ops."""

    POLY = 0x11D
    GENERATOR = 0x02

    def __init__(self) -> None:
        exp = np.zeros(512, dtype=np.uint8)
        log = np.zeros(256, dtype=np.int32)
        x = 1
        for i in range(255):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & 0x100:
                x ^= self.POLY
        exp[255:510] = exp[0:255]  # wraparound so exp[a+b] needs no mod
        self._exp = exp
        self._log = log

    # -- scalar ops (used in solving the 2x2 erasure system) -------------------
    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("GF256 division by zero")
        if a == 0:
            return 0
        return int(self._exp[(self._log[a] - self._log[b]) % 255])

    def inv(self, a: int) -> int:
        return self.div(1, a)

    def pow_g(self, k: int) -> int:
        """g^k for the generator g = 2."""
        return int(self._exp[k % 255])

    # -- vector ops ---------------------------------------------------------------
    def vec_mul(self, c: int, v: np.ndarray) -> np.ndarray:
        """Scale a uint8 vector by the field constant ``c``."""
        if v.dtype != np.uint8:
            raise TypeError("GF256 vectors are uint8")
        if c == 0:
            return np.zeros_like(v)
        if c == 1:
            return v.copy()
        table = self._exp[(self._log[np.arange(256)] + self._log[c]) % 255].astype(
            np.uint8
        )
        table[0] = 0
        return table[v]


_GF = GF256()


class RSCodec:
    """P+Q encoder/decoder over a group of equal-length uint8 buffers."""

    def __init__(self, group_size: int):
        if not 2 <= group_size <= 255:
            raise ValueError("group_size must be in [2, 255]")
        self.group_size = group_size
        self.gf = _GF

    def encode(self, buffers: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
        """Compute the (P, Q) parity pair for ``buffers``."""
        self._check(buffers)
        p = np.zeros_like(buffers[0])
        q = np.zeros_like(buffers[0])
        for j, d in enumerate(buffers):
            p ^= d
            q ^= self.gf.vec_mul(self.gf.pow_g(j), d)
        return p, q

    def _check(self, buffers: Sequence[np.ndarray]) -> None:
        if len(buffers) != self.group_size:
            raise ValueError(
                f"expected {self.group_size} buffers, got {len(buffers)}"
            )
        size = len(buffers[0])
        for b in buffers:
            if b.dtype != np.uint8 or len(b) != size:
                raise ValueError("buffers must be equal-length uint8 arrays")

    def decode(
        self,
        survivors: Dict[int, np.ndarray],
        p: np.ndarray | None,
        q: np.ndarray | None,
    ) -> Dict[int, np.ndarray]:
        """Recover up to two lost data buffers.

        ``survivors`` maps surviving indices to their buffers; ``p``/``q``
        are the parities (pass ``None`` for a lost parity).  Handles every
        RAID-6 erasure case: one data loss (via P or Q), two data losses
        (via P and Q), and data+parity losses.

        Returns ``{index: recovered buffer}`` for each missing data index.
        """
        n = self.group_size
        missing = sorted(set(range(n)) - set(survivors))
        lost_parities = (p is None) + (q is None)
        if len(missing) + lost_parities > 2:
            raise ValueError(
                f"RAID-6 tolerates 2 erasures; lost {len(missing)} data "
                f"buffers and {lost_parities} parities"
            )
        if not missing:
            return {}
        gf = self.gf

        if len(missing) == 1:
            x = missing[0]
            if p is not None:
                acc = p.copy()
                for j, d in survivors.items():
                    acc ^= d
                return {x: acc}
            # recover through Q: D_x = (Q ^ sum g^j D_j) / g^x
            assert q is not None
            acc = q.copy()
            for j, d in survivors.items():
                acc ^= gf.vec_mul(gf.pow_g(j), d)
            return {x: gf.vec_mul(gf.inv(gf.pow_g(x)), acc)}

        # two data losses: solve
        #   D_x ^ D_y                 = P'   (P minus survivors)
        #   g^x D_x ^ g^y D_y         = Q'   (Q minus survivors)
        if p is None or q is None:
            raise ValueError("two data losses need both parities")
        x, y = missing
        pp = p.copy()
        qq = q.copy()
        for j, d in survivors.items():
            pp ^= d
            qq ^= gf.vec_mul(gf.pow_g(j), d)
        gx, gy = gf.pow_g(x), gf.pow_g(y)
        denom = gx ^ gy  # g^x + g^y in GF(2^8)
        a = gf.div(gy, denom)
        b = gf.inv(denom)
        dx = gf.vec_mul(a, pp) ^ gf.vec_mul(b, qq)
        dy = pp ^ dx
        return {x: dx, y: dy}
