"""Group partitioning strategies and reliability analysis (paper §3.3).

All processes are partitioned into encoding groups of size ``N``.  The paper
weighs three forces: a larger group leaves more memory for the application
(Fig. 6) but encodes slower and is more likely to suffer a second failure;
and, to tolerate a permanent *node* loss, the processes of one group must
sit on **distinct physical nodes**.

Strategies
----------
``"stride"``
    Group ``g`` takes ranks ``{g, g+G, g+2G, ...}`` where ``G`` is the group
    count.  With block rank-to-node placement (consecutive ranks share a
    node) this naturally spreads a group across nodes — the layout the paper
    uses, favouring neighbouring nodes for performance.
``"block"``
    Group ``g`` takes consecutive ranks ``{gN, ..., gN+N-1}``.  Cheap to
    reason about, but violates node-distinctness when several ranks share a
    node — the validator rejects it in that case.
``"topology"``
    Like stride, but built from the ranklist itself: ranks are bucketed by
    node and groups are filled one rank per node round-robin, so
    node-distinctness holds for any placement.
``"rack-spread"``
    The paper's future-work mapping: groups additionally spread across
    racks/switches so a single *rack* loss takes at most one stripe from
    any group — at the cost of inter-rack encode bandwidth (requires a
    :class:`repro.sim.topology.Topology` and the ranklist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

STRATEGIES = ("stride", "block", "topology", "rack-spread")


@dataclass(frozen=True)
class GroupLayout:
    """A partition of world ranks into encoding groups.

    ``groups[g]`` lists world ranks in group-rank order; ``group_of`` and
    ``group_rank_of`` are per-world-rank lookups.
    """

    groups: List[List[int]]

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def group_size(self) -> int:
        return len(self.groups[0]) if self.groups else 0

    def group_of(self, rank: int) -> int:
        for g, members in enumerate(self.groups):
            if rank in members:
                return g
        raise KeyError(f"rank {rank} not in any group")

    def group_rank_of(self, rank: int) -> int:
        return self.groups[self.group_of(rank)].index(rank)

    def validate_node_distinct(self, ranklist: Sequence[int]) -> None:
        """Raise if any group places two ranks on one node — such a group
        cannot tolerate that node's loss (paper §3.3)."""
        for g, members in enumerate(self.groups):
            nodes = [ranklist[r] for r in members]
            if len(set(nodes)) != len(nodes):
                raise ValueError(
                    f"group {g} has co-located ranks (nodes {nodes}); "
                    "a single node failure would lose two stripes"
                )


def partition_groups(
    n_ranks: int,
    group_size: int,
    *,
    strategy: str = "stride",
    ranklist: Optional[Sequence[int]] = None,
    topology=None,
) -> GroupLayout:
    """Partition ``n_ranks`` world ranks into groups of ``group_size``.

    ``n_ranks`` must be divisible by ``group_size``.  The ``"topology"``
    strategy requires ``ranklist`` (node id per rank); ``"rack-spread"``
    additionally requires ``topology``.
    """
    if group_size < 2:
        raise ValueError("group_size must be >= 2")
    if n_ranks % group_size:
        raise ValueError(
            f"{n_ranks} ranks not divisible into groups of {group_size}"
        )
    n_groups = n_ranks // group_size

    if strategy == "stride":
        groups = [
            [g + i * n_groups for i in range(group_size)] for g in range(n_groups)
        ]
    elif strategy == "block":
        groups = [
            list(range(g * group_size, (g + 1) * group_size))
            for g in range(n_groups)
        ]
    elif strategy == "topology":
        if ranklist is None:
            raise ValueError("topology strategy needs the ranklist")
        if len(ranklist) != n_ranks:
            raise ValueError("ranklist length mismatch")
        by_node: Dict[int, List[int]] = {}
        for r, nid in enumerate(ranklist):
            by_node.setdefault(nid, []).append(r)
        # round-robin one rank per node until all ranks are placed
        buckets = [sorted(v) for _, v in sorted(by_node.items())]
        order: List[int] = []
        depth = 0
        while len(order) < n_ranks:
            for b in buckets:
                if depth < len(b):
                    order.append(b[depth])
            depth += 1
        groups = [
            [order[g * group_size + i] for i in range(group_size)]
            for g in range(n_groups)
        ]
    elif strategy == "rack-spread":
        if ranklist is None or topology is None:
            raise ValueError("rack-spread strategy needs ranklist and topology")
        if len(ranklist) != n_ranks:
            raise ValueError("ranklist length mismatch")
        # bucket ranks by rack, then deal one rank per rack round-robin so
        # consecutive picks land in distinct racks; slice into groups
        by_rack: Dict[int, List[int]] = {}
        for r, nid in enumerate(ranklist):
            by_rack.setdefault(topology.rack_of(nid), []).append(r)
        buckets = [sorted(v) for _, v in sorted(by_rack.items())]
        order: List[int] = []
        depth = 0
        while len(order) < n_ranks:
            progressed = False
            for b in buckets:
                if depth < len(b):
                    order.append(b[depth])
                    progressed = True
            if not progressed:
                raise ValueError("rack bucketing failed to cover all ranks")
            depth += 1
        groups = [
            [order[g * group_size + i] for i in range(group_size)]
            for g in range(n_groups)
        ]
    else:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")

    layout = GroupLayout(groups=groups)
    if ranklist is not None and strategy != "block":
        layout.validate_node_distinct(ranklist)
    return layout


def group_reliability(
    group_size: int,
    n_groups: int,
    p_node_fail: float,
) -> Dict[str, float]:
    """Failure-tolerance statistics for a grouped system (paper §3.3).

    Assuming independent node failures with probability ``p_node_fail``
    within one checkpoint interval and one rank per node:

    * ``p_group_ok``: a single group survives (0 or 1 of its nodes fail);
    * ``p_system_ok``: every group survives — the probability the grouped
      checkpoint can ride out the interval;
    * ``max_tolerable``: the best case — one failure per group, i.e. the
      paper's "if each group has only two processes, the system can
      tolerate failures for half of the processes at the same time".
    """
    if not 0 <= p_node_fail <= 1:
        raise ValueError("p_node_fail must be a probability")
    if group_size < 2 or n_groups < 1:
        raise ValueError("need group_size >= 2 and n_groups >= 1")
    p = p_node_fail
    n = group_size
    p_ok = (1 - p) ** n + n * p * (1 - p) ** (n - 1)
    return {
        "p_group_ok": p_ok,
        "p_system_ok": p_ok**n_groups,
        "max_tolerable": float(n_groups),
        "fraction_tolerable": n_groups / (n_groups * n),
    }
