"""Common machinery of the in-memory checkpoint protocols.

A :class:`Checkpointer` is constructed identically on every rank of an
encoding group (and re-constructed identically after a restart):

1. register workspace arrays with :meth:`alloc` — the protocol decides
   whether they live in SHM (self-checkpoint: the workspace *is* the
   checkpoint) or in ordinary process memory (single/double);
2. call :meth:`commit` — the group agrees on the padded flat size and the
   protocol creates (or re-attaches) its SHM segments;
3. on a fresh start, compute and call :meth:`checkpoint` periodically;
4. after a restart, call :meth:`try_restore` first — it returns ``None``
   when no checkpoint exists (fresh start), a :class:`RestoreReport` when
   state was recovered, or raises
   :class:`~repro.sim.errors.UnrecoverableError`.

Epoch flags live in a small SHM control segment per rank, written strictly
*after* the data they describe (the simulator delivers failures only at
phase/communication points, which models the write-ordering a real
implementation enforces with memory barriers).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.ckpt.encoding import GroupEncoder
from repro.ckpt.state import StateLayout
from repro.sim.errors import ShmError
from repro.sim.mpi import Communicator
from repro.sim.runtime import RankContext


@dataclass(frozen=True)
class CheckpointInfo:
    """Metrics of one completed checkpoint."""

    epoch: int
    protected_bytes: int
    checksum_bytes: int
    encode_seconds: float
    flush_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.encode_seconds + self.flush_seconds


@dataclass(frozen=True)
class RestoreReport:
    """Outcome of a successful :meth:`Checkpointer.try_restore`."""

    epoch: int
    #: ``"checkpoint"`` — recovered from the committed checkpoint (B, C);
    #: ``"workspace"`` — recovered from the live workspace and new checksum
    #: (A, D), the self-checkpoint CASE 2 path.
    source: str
    #: Group ranks whose state was reconstructed from survivors.
    reconstructed: Tuple[int, ...]
    #: The recovered A2 dict for this rank.
    local: Dict[str, Any] = field(default_factory=dict)


@dataclass
class _Status:
    """Per-rank state advertisement exchanged at restore time."""

    has_state: bool
    magic: int
    epochs: Tuple[int, ...]


class Checkpointer(ABC):
    """Base class: naming, layout agreement, control flags, statistics."""

    #: subclass-specific number of epoch counters in the control segment
    N_FLAGS: int = 0
    #: human name used in reports
    METHOD: str = "abstract"

    def __init__(
        self,
        ctx: RankContext,
        group_comm: Communicator,
        *,
        op: str = "xor",
        prefix: str = "ckpt",
        a2_capacity: int = 4096,
    ):
        self.ctx = ctx
        self.group = group_comm
        self.encoder = GroupEncoder(group_comm, op=op)
        self.prefix = prefix
        self.layout = StateLayout(a2_capacity=a2_capacity)
        #: the A2 dict — small per-rank scalars (iteration counters, pivot
        #: bookkeeping) checkpointed alongside the arrays
        self.local: Dict[str, Any] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._committed = False
        self._padded: int = 0
        self._cs_size: int = 0
        self._magic: int = 0
        #: cumulative stats
        self.n_checkpoints = 0
        self.n_restores = 0
        self.total_encode_seconds = 0.0
        self.total_flush_seconds = 0.0

    # -- naming -----------------------------------------------------------------
    def _seg(self, kind: str) -> str:
        return f"{self.prefix}.r{self.ctx.rank}.{kind}"

    # -- registration -----------------------------------------------------------
    def alloc(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Register and allocate one workspace array (the paper's A1)."""
        if self._committed:
            raise RuntimeError("cannot alloc after commit()")
        self.layout.add(name, shape, dtype)
        arr = self._alloc_array(name, shape, dtype)
        self._arrays[name] = arr
        return arr

    @abstractmethod
    def _alloc_array(self, name: str, shape, dtype) -> np.ndarray:
        """Place one workspace array (SHM vs. process memory)."""

    def array(self, name: str) -> np.ndarray:
        return self._arrays[name]

    # -- commit -----------------------------------------------------------------
    def commit(self) -> None:
        """Freeze the layout, agree on sizes group-wide, create segments."""
        if self._committed:
            raise RuntimeError("commit() called twice")
        self.layout.freeze()
        sizes = self.group.allgather(self.layout.raw_size)
        self._padded = self.encoder.padded_size(max(sizes))
        self._cs_size = self.encoder.checksum_size(self._padded)
        self._magic = self._compute_magic()
        self._create_segments()
        self._committed = True

    def _compute_magic(self) -> int:
        h = hashlib.sha256()
        h.update(self.prefix.encode())
        h.update(str(self._padded).encode())
        h.update(str(self.group.size).encode())
        h.update(self.METHOD.encode())
        for name in self.layout.names:
            shape, dtype = self.layout.spec_of(name)
            h.update(f"{name}:{shape}:{dtype}".encode())
        return int.from_bytes(h.digest()[:7], "big")  # fits in int64

    @abstractmethod
    def _create_segments(self) -> None:
        """Create or re-attach this protocol's SHM segments."""

    def _make_ctrl(self) -> np.ndarray:
        """Create/attach the control segment: [magic, flag0, flag1, ...]."""
        pre_existing = self.ctx.shm_exists(self._seg("CTRL"))
        seg = self.ctx.shm_create(
            self._seg("CTRL"), 1 + self.N_FLAGS, np.int64, exist_ok=True
        )
        if pre_existing:
            if int(seg.array[0]) != self._magic:
                raise ShmError(
                    f"rank {self.ctx.rank}: checkpoint control segment has "
                    "mismatched layout magic — state layout changed between runs"
                )
        else:
            seg.array[0] = self._magic
        self._had_state = pre_existing
        return seg.array

    # -- shared helpers ------------------------------------------------------------
    def _require_committed(self) -> None:
        if not self._committed:
            raise RuntimeError("call commit() before checkpoint()/try_restore()")

    def _pack_flat(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Serialize workspace + A2 into a stripe-aligned scratch buffer."""
        return self.layout.pack(self._arrays, self.local, out=out, total_size=self._padded)

    def _charge_copy(self, nbytes: int) -> float:
        """Charge virtual time for a local memory copy; returns seconds."""
        t = nbytes / self.ctx.node.spec.mem_bw_Bps
        self.ctx.elapse(t)
        return t

    def _exchange_status(self, epochs: Tuple[int, ...], has_state: bool) -> List[_Status]:
        """World-wide status exchange (indexed by **world** rank).

        The restore decision must be identical across *all* groups: groups
        checkpoint concurrently, and a failure caught while group 0 was
        committing epoch ``e`` and group 1 still encoding it must roll every
        group to the same application iteration.  The protocols therefore
        align their commit points with world barriers and decide recovery
        from world-wide flag maxima, not group-local ones.

        A rank whose flags are all zero has no *committed* state even if
        its segments exist — e.g. a replacement that died mid-restore, after
        its segments were created but before any epoch committed.  Its
        buffers must not feed a reconstruction, so it advertises itself as
        missing (and is rebuilt like any lost member).
        """
        has_state = has_state and any(e != 0 for e in epochs)
        raw = self.ctx.world.allgather(
            (has_state, self._magic if has_state else 0, epochs)
        )
        return [_Status(has_state=h, magic=m, epochs=e) for h, m, e in raw]

    def _group_missing(self, statuses: List[_Status]) -> List[int]:
        """Group ranks of members that lost their state, from world statuses."""
        return [
            g
            for g, w in enumerate(self.group.members)
            if not statuses[w].has_state
        ]

    @staticmethod
    def _world_max(statuses: List[_Status], flag: int) -> int:
        return max(
            (s.epochs[flag] for s in statuses if s.has_state), default=0
        )

    def _reset_flags(self) -> None:
        """Zero the epoch flags (fresh-start path).

        When no checkpoint ever committed, survivors may still carry flags
        from the interrupted first attempt; left in place they would make
        ranks disagree on the next epoch/slot.  Every protocol's
        ``try_restore`` fresh path must call this.
        """
        self._ctrl[1:] = 0

    def ckpt_world_entry_barrier(self) -> None:
        """Synchronize every rank in the system at checkpoint entry, so all
        groups update the same epoch together."""
        self.ctx.world.barrier()

    @property
    def protected_bytes(self) -> int:
        """Padded per-rank bytes covered by the encoding."""
        self._require_committed()
        return self._padded

    @property
    def checksum_bytes(self) -> int:
        self._require_committed()
        return self._cs_size

    @property
    @abstractmethod
    def overhead_bytes(self) -> int:
        """Per-rank memory the protocol consumes beyond the workspace."""

    # -- the protocol API --------------------------------------------------------------
    @abstractmethod
    def checkpoint(self) -> CheckpointInfo:
        """Protect the current workspace + A2 state."""

    @abstractmethod
    def try_restore(self) -> Optional[RestoreReport]:
        """After a restart: recover state, or return ``None`` if there is
        no checkpoint (fresh start).  Raises ``UnrecoverableError`` when the
        group's state is beyond repair."""
