"""Disk-based full-image checkpointing — the BLCR baseline of Table 3.

BLCR (Berkeley Lab Checkpoint/Restart) serializes the whole process image
to a block device.  We model the device with a bandwidth/latency pair
shared by all processes of a node; the checkpoint time of one rank is::

    latency + image_bytes / (bandwidth / ranks_sharing)

Two devices reproduce Table 3's BLCR+HDD and BLCR+SSD rows.  Contents go
into the cluster's non-volatile ``stable_store``, so recovery after a node
power-off is possible (the paper marks both BLCR rows "YES") — at the cost
of the long write stalls the table shows.

No encoding group is needed: the device itself is the redundancy.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.ckpt.protocol import CheckpointInfo, RestoreReport
from repro.ckpt.state import StateLayout
from repro.sim.runtime import RankContext


@dataclass(frozen=True)
class BlockDevice:
    """A node-local storage device shared by the node's ranks."""

    name: str
    write_Bps: float
    read_Bps: float
    latency_s: float = 5e-3

    def write_time(self, nbytes: int, ranks_sharing: int = 1) -> float:
        return self.latency_s + nbytes / (self.write_Bps / max(1, ranks_sharing))

    def read_time(self, nbytes: int, ranks_sharing: int = 1) -> float:
        return self.latency_s + nbytes / (self.read_Bps / max(1, ranks_sharing))


#: Spinning disk: ~280 MB/s sequential, shared by every rank on the node.
HDD = BlockDevice(name="hdd", write_Bps=280e6, read_Bps=320e6)
#: SATA/NVMe-class SSD.
SSD = BlockDevice(name="ssd", write_Bps=740e6, read_Bps=900e6)
#: Parallel file system: high aggregate bandwidth but shared by the WHOLE
#: job, not just a node ("It would be much slower if a distributed file
#: system is used", paper section 6.2).  Use with
#: ``ranks_sharing = total ranks``.
PFS = BlockDevice(name="pfs", write_Bps=10e9, read_Bps=12e9, latency_s=2e-2)


class StableImageStore:
    """Epoch-tagged checkpoint images in the cluster's stable store.

    A failure can strike while some ranks have written image ``e`` and
    others are still at ``e-1``; restoring each rank's *latest* image would
    resurrect an inconsistent global state.  The store therefore keeps the
    last **two** epochs per rank, and restores the world-wide
    ``min(max available epoch)`` — every rank is guaranteed to hold that
    image as long as epoch skew is at most one, which a world barrier at
    checkpoint entry enforces.
    """

    def __init__(self, store: Dict[str, Any], prefix: str, rank: int):
        self._store = store
        self._prefix = f"{prefix}.r{rank}"

    def _key(self, epoch: int) -> str:
        return f"{self._prefix}.e{epoch}"

    def put(self, epoch: int, blob: bytes) -> None:
        self._store[self._key(epoch)] = blob
        self._store.pop(self._key(epoch - 2), None)

    def get(self, epoch: int) -> Optional[bytes]:
        return self._store.get(self._key(epoch))

    def latest_epoch(self) -> int:
        best = 0
        prefix = f"{self._prefix}.e"
        for key in self._store:
            if key.startswith(prefix):
                best = max(best, int(key[len(prefix) :]))
        return best


class DiskCheckpoint:
    """Full-image checkpoint to a block device (BLCR-like).

    Presents the same alloc/commit/checkpoint/try_restore surface as the
    in-memory :class:`~repro.ckpt.protocol.Checkpointer` so applications
    can swap methods, but needs no group communicator.
    """

    METHOD = "disk"

    def __init__(
        self,
        ctx: RankContext,
        device: BlockDevice = HDD,
        *,
        prefix: str = "blcr",
        a2_capacity: int = 4096,
        ranks_sharing: Optional[int] = None,
    ):
        self.ctx = ctx
        self.device = device
        self.prefix = prefix
        self.layout = StateLayout(a2_capacity=a2_capacity)
        self.local: Dict[str, Any] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._committed = False
        self._ranks_sharing = ranks_sharing
        self._epoch = 0
        self._images = StableImageStore(
            ctx.job.cluster.stable_store, prefix, ctx.rank
        )
        self.n_checkpoints = 0
        self.n_restores = 0
        self.total_write_seconds = 0.0

    def _sharing(self) -> int:
        if self._ranks_sharing is not None:
            return self._ranks_sharing
        return self.ctx.job.cluster.ranks_on_node(
            self.ctx.job.ranklist, self.ctx.node.node_id
        ).__len__()

    # -- same registration surface as the in-memory protocols ---------------------
    def alloc(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        if self._committed:
            raise RuntimeError("cannot alloc after commit()")
        self.layout.add(name, shape, dtype)
        arr = np.zeros(shape, dtype=dtype)
        self.ctx.malloc(arr.nbytes)
        self._arrays[name] = arr
        return arr

    def array(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def commit(self) -> None:
        self.layout.freeze()
        self._committed = True

    @property
    def overhead_bytes(self) -> int:
        """Disk checkpointing keeps nothing in RAM."""
        return 0

    @property
    def protected_bytes(self) -> int:
        return self.layout.raw_size

    # -- protocol -----------------------------------------------------------------
    def checkpoint(self) -> CheckpointInfo:
        if not self._committed:
            raise RuntimeError("call commit() first")
        ctx = self.ctx
        ctx.phase("ckpt.begin")
        # entry barrier bounds the epoch skew between ranks to one, which is
        # what lets a restart agree on a common image (StableImageStore)
        ctx.world.barrier()
        epoch = self._epoch + 1
        flat = self.layout.pack(self._arrays, self.local)
        blob = pickle.dumps(
            {"flat": flat, "epoch": epoch}, protocol=pickle.HIGHEST_PROTOCOL
        )
        t = self.device.write_time(len(blob), self._sharing())
        ctx.elapse(t)
        self._images.put(epoch, blob)
        self._epoch = epoch
        ctx.phase("ckpt.flush")
        self.n_checkpoints += 1
        self.total_write_seconds += t
        return CheckpointInfo(
            epoch=epoch,
            protected_bytes=len(blob),
            checksum_bytes=0,
            encode_seconds=0.0,
            flush_seconds=t,
        )

    def try_restore(self) -> Optional[RestoreReport]:
        if not self._committed:
            raise RuntimeError("call commit() first")
        # the restored epoch is the newest image EVERY rank holds — a
        # straggler that died mid-write simply pins the world one epoch back
        target = self.ctx.world.allreduce_obj(self._images.latest_epoch(), min)
        if target == 0:
            return None
        blob = self._images.get(target)
        if blob is None:  # epoch skew exceeded one: cannot happen with the
            raise RuntimeError(  # entry barrier, but fail loudly if it does
                f"rank {self.ctx.rank} lost checkpoint epoch {target}"
            )
        t = self.device.read_time(len(blob), self._sharing())
        self.ctx.elapse(t)
        payload = pickle.loads(blob)
        self.local = self.layout.unpack_into(payload["flat"], self._arrays)
        self._epoch = target
        self.n_restores += 1
        return RestoreReport(
            epoch=target,
            source="disk",
            reconstructed=(),
            local=dict(self.local),
        )
