"""Multi-level checkpointing — the SCR baseline (Moody et al., SC'10).

SCR-style tiering: frequent, cheap level-1 checkpoints in memory (the
double-copy scheme, matching SCR's partner/XOR redundancy and its ~1/3
available-memory footprint from Table 3's "SCR+Memory" row) and occasional
level-2 flushes of the same image to stable storage, which covers failures
beyond what one group can absorb.

Restore prefers the in-memory level and falls back to disk.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional

import numpy as np

from repro.ckpt.disk import BlockDevice, HDD, StableImageStore
from repro.ckpt.double import DoubleCheckpoint
from repro.ckpt.protocol import CheckpointInfo, RestoreReport
from repro.sim.mpi import Communicator
from repro.sim.runtime import RankContext


class MultiLevelCheckpoint:
    """Memory (level 1, double-copy) + device (level 2) checkpointing.

    Parameters
    ----------
    flush_every:
        Every ``flush_every``-th checkpoint is also written to the device
        (SCR's "checkpoint frequency by level" knob).
    """

    METHOD = "multilevel"

    def __init__(
        self,
        ctx: RankContext,
        group_comm: Communicator,
        *,
        device: BlockDevice = HDD,
        flush_every: int = 10,
        op: str = "xor",
        prefix: str = "scr",
        a2_capacity: int = 4096,
    ):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.ctx = ctx
        self.device = device
        self.flush_every = flush_every
        self.prefix = prefix
        self._mem = DoubleCheckpoint(
            ctx, group_comm, op=op, prefix=f"{prefix}.L1", a2_capacity=a2_capacity
        )
        self._images = StableImageStore(
            ctx.job.cluster.stable_store, f"{prefix}.L2", ctx.rank
        )
        self.n_level2 = 0
        self.total_level2_seconds = 0.0

    # delegate the registration surface to the level-1 protocol
    def alloc(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        return self._mem.alloc(name, shape, dtype)

    def array(self, name: str) -> np.ndarray:
        return self._mem.array(name)

    def commit(self) -> None:
        self._mem.commit()

    @property
    def local(self) -> Dict[str, Any]:
        return self._mem.local

    @local.setter
    def local(self, value: Dict[str, Any]) -> None:
        self._mem.local = value

    @property
    def overhead_bytes(self) -> int:
        return self._mem.overhead_bytes

    @property
    def protected_bytes(self) -> int:
        return self._mem.protected_bytes

    @property
    def n_checkpoints(self) -> int:
        return self._mem.n_checkpoints

    def checkpoint(self) -> CheckpointInfo:
        info = self._mem.checkpoint()
        if self._mem.n_checkpoints % self.flush_every == 0:
            flat = self._mem._pack_flat()
            blob = pickle.dumps(
                {"flat": flat, "epoch": info.epoch},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            sharing = len(
                self.ctx.job.cluster.ranks_on_node(
                    self.ctx.job.ranklist, self.ctx.node.node_id
                )
            )
            t = self.device.write_time(len(blob), sharing)
            self.ctx.elapse(t)
            self._images.put(info.epoch, blob)
            self.ctx.phase("ckpt.level2")
            self.n_level2 += 1
            self.total_level2_seconds += t
        return info

    def try_restore(self) -> Optional[RestoreReport]:
        """World-coordinated two-level restore.

        All ranks must take the *same* path (the level-1 restore runs
        collectives), so feasibility of the in-memory level is agreed
        world-wide first: if any group cannot recover from memory, every
        rank falls back to the level-2 image together.
        """
        world = self.ctx.world
        statuses = self._mem.exchange_status()
        mem_ok = self._mem.restore_feasible(statuses)
        all_mem_ok = world.allreduce_obj(mem_ok, lambda a, b: a and b)
        if all_mem_ok:
            return self._mem.try_restore(statuses=statuses)
        # level-2 target: the newest image every rank holds (0 = none)
        target = world.allreduce_obj(self._images.latest_epoch(), min)
        if target == 0:
            # neither level is whole: reset level-1 flags so the next run
            # starts from a clean epoch-0 state
            self._mem._ctrl[1:] = 0
            return None

        blob = self._images.get(target)
        payload = pickle.loads(blob)
        sharing = len(
            self.ctx.job.cluster.ranks_on_node(
                self.ctx.job.ranklist, self.ctx.node.node_id
            )
        )
        self.ctx.elapse(self.device.read_time(len(blob), sharing))
        self._mem.local = self._mem.layout.unpack_into(
            payload["flat"], self._mem._arrays
        )
        # the level-1 slots no longer match the restored state: reset their
        # flags so future checkpoints rebuild from epoch 1 consistently
        self._mem._ctrl[1:] = 0
        world.barrier()
        self.ctx.phase("restore.level2")
        return RestoreReport(
            epoch=payload["epoch"],
            source="disk",
            reconstructed=(),
            local=dict(self._mem.local),
        )
