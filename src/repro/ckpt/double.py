"""Double in-memory checkpoint (paper Fig. 3) — the state of the art.

Two alternating (checkpoint, checksum) slots; each update overwrites the
*older* slot, so one consistent pair always survives a failure mid-update.
Fully fault tolerant like self-checkpoint, but the second full copy caps
available memory at (N-1)/(3N-1) — barely a third — which is exactly the
cost the paper eliminates.  This is the scheme the SCR-memory row of
Table 3 and the Zheng et al. buddy system use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ckpt.protocol import Checkpointer, CheckpointInfo, RestoreReport
from repro.sim.errors import UnrecoverableError

# control layout: [magic, c0, b0, c1, b1]
_C = (1, 3)
_B = (2, 4)


class DoubleCheckpoint(Checkpointer):
    """Two-copy in-memory checkpoint: fully fault tolerant, memory hungry."""

    N_FLAGS = 4
    METHOD = "double"

    def _alloc_array(self, name: str, shape, dtype) -> np.ndarray:
        arr = np.zeros(shape, dtype=dtype)
        self.ctx.malloc(arr.nbytes)
        return arr

    def _create_segments(self) -> None:
        self._ctrl = self._make_ctrl()
        self._b = [
            self.ctx.shm_create(
                self._seg(f"B{s}"), self._padded, np.uint8, exist_ok=True
            ).array
            for s in (0, 1)
        ]
        self._c = [
            self.ctx.shm_create(
                self._seg(f"C{s}"), self._cs_size, np.uint8, exist_ok=True
            ).array
            for s in (0, 1)
        ]

    @property
    def overhead_bytes(self) -> int:
        return (
            sum(b.nbytes for b in self._b)
            + sum(c.nbytes for c in self._c)
            + self._ctrl.nbytes
        )

    def _epoch(self) -> int:
        return max(int(self._ctrl[i]) for i in (*_C, *_B))

    def checkpoint(self) -> CheckpointInfo:
        self._require_committed()
        ctx = self.ctx
        e = self._epoch() + 1
        slot = e % 2  # overwrite the older slot

        with ctx.span("ckpt", epoch=e, method=self.METHOD, slot=slot):
            ctx.phase("ckpt.begin")
            self.ckpt_world_entry_barrier()
            self._ctrl[_C[slot]] = e  # slot is dirty from here
            ctx.phase("ckpt.update")

            with ctx.span("ckpt.encode", nbytes=int(self._padded)):
                flat = self._pack_flat()
                enc = self.encoder.encode(flat)
                self._c[slot][:] = enc.checksum
                ctx.phase("ckpt.update.mid")

            with ctx.span("ckpt.commit", nbytes=int(flat.nbytes)):
                self.ctx.world.barrier()
                self._b[slot][:] = flat
                flush_s = self._charge_copy(flat.nbytes)
                self._ctrl[_B[slot]] = e
                ctx.phase("ckpt.flush")
                self.ctx.world.barrier()
                ctx.phase("ckpt.done")

        self.n_checkpoints += 1
        self.total_encode_seconds += enc.seconds
        self.total_flush_seconds += flush_s
        return CheckpointInfo(
            epoch=e,
            protected_bytes=self._padded,
            checksum_bytes=self._cs_size,
            encode_seconds=enc.seconds,
            flush_seconds=flush_s,
        )

    def _my_epochs(self) -> tuple:
        return (
            tuple(int(self._ctrl[i]) for i in (1, 2, 3, 4))
            if self._had_state
            else (0, 0, 0, 0)
        )

    def exchange_status(self):
        """World status exchange (one collective); reusable by wrappers like
        the multi-level tier that must pre-check feasibility."""
        self._require_committed()
        return self._exchange_status(self._my_epochs(), self._had_state)

    @staticmethod
    def valid_slots(statuses) -> dict:
        """Slots on which every surviving rank agrees on one clean epoch."""
        valid: dict[int, int] = {}
        for slot in (0, 1):
            cs = {s.epochs[2 * slot] for s in statuses if s.has_state}
            bs = {s.epochs[2 * slot + 1] for s in statuses if s.has_state}
            if cs == bs and len(cs) == 1:
                valid[slot] = cs.pop()
        return valid

    def restore_feasible(self, statuses) -> bool:
        """Can this group recover from the in-memory slots (or start fresh)
        without raising?  Pure function of the exchanged statuses, so every
        rank of the world computes the same value for its own group."""
        if not any(s.has_state for s in statuses):
            return True  # fresh start is fine
        if len(self._group_missing(statuses)) > 1:
            return False
        return bool(self.valid_slots(statuses))

    def try_restore(self, statuses=None) -> Optional[RestoreReport]:
        self._require_committed()
        if statuses is None:
            statuses = self.exchange_status()

        if not any(s.has_state for s in statuses):
            return None
        missing = self._group_missing(statuses)
        if len(missing) > 1:
            raise UnrecoverableError(f"group lost {len(missing)} members")

        valid = self.valid_slots(statuses)
        if not valid:
            raise UnrecoverableError(
                "both double-checkpoint slots are inconsistent — this "
                "requires more than one failure window"
            )
        slot, epoch = max(valid.items(), key=lambda kv: kv[1])
        if epoch == 0:
            self._reset_flags()
            return None

        ctx = self.ctx
        me = self.group.rank
        with ctx.span("restore", epoch=epoch, source="checkpoint", missing=len(missing)):
            ctx.phase("restore.begin")
            # normalize flags: the interrupted slot's stale dirty marks would
            # otherwise make ranks disagree on the next epoch/slot (the
            # replacement starts with zeroed flags); wipe anything that is not
            # the restored slot's clean epoch
            other = 1 - slot
            if (
                self._ctrl[_C[other]] != self._ctrl[_B[other]]
                or int(self._ctrl[_C[other]]) >= epoch
            ):
                self._ctrl[_C[other]] = 0
                self._ctrl[_B[other]] = 0
            with ctx.span("restore.rebuild"):
                if missing:
                    lost = missing[0]
                    if me == lost:
                        rebuilt = self.encoder.recover(None, None, lost)
                        assert rebuilt is not None
                        self._b[slot][:], self._c[slot][:] = rebuilt
                        self._ctrl[_C[slot]] = epoch
                        self._ctrl[_B[slot]] = epoch
                    else:
                        self.encoder.recover(
                            np.array(self._b[slot], copy=True),
                            np.array(self._c[slot], copy=True),
                            lost,
                        )
            with ctx.span("restore.commit"):
                self.local = self.layout.unpack_into(self._b[slot], self._arrays)
                self._charge_copy(self._b[slot].nbytes)
                self.ctx.world.barrier()
                ctx.phase("restore.done")

        self.n_restores += 1
        return RestoreReport(
            epoch=epoch,
            source="checkpoint",
            reconstructed=tuple(missing),
            local=dict(self.local),
        )
