"""Group encoder: stripe checksums over a group communicator.

Wraps the pure stripe math of :mod:`repro.ckpt.stripes` in collective
operations on the simulated runtime.  Two encode paths are provided,
matching the design discussion in paper §2.1:

* :meth:`GroupEncoder.encode` — the paper's **stripe-based rotating-root**
  scheme: conceptually N concurrent reduces, one rooted at each member, so
  no single NIC becomes a hot spot.  Implemented as one fused collective
  priced by :meth:`NetworkModel.stripe_encode_time`.
* :meth:`GroupEncoder.encode_single_root` — the naive alternative (one
  whole-buffer reduce per root in turn), priced with the single-root
  contention term.  Kept for the ablation benchmark.

Recovery (:meth:`recover`) is the same collective shape in reverse: the
survivors contribute buffers and checksum stripes, the replacement rank
contributes nothing and receives its reconstructed state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.ckpt import stripes
from repro.sim.mpi import Communicator


@dataclass(frozen=True)
class EncodeResult:
    """Outcome of one group encode."""

    checksum: np.ndarray  # this rank's checksum stripe (uint8)
    data_bytes: int  # protected bytes per rank
    checksum_bytes: int
    seconds: float  # modeled encode time charged to the virtual clock


class GroupEncoder:
    """Checksum encode/recover over one encoding group.

    Parameters
    ----------
    comm:
        Group communicator; communicator rank == group rank.
    op:
        ``"xor"`` (default, bit-exact) or ``"sum"``.
    """

    def __init__(self, comm: Communicator, op: str = "xor"):
        if comm.size < 2:
            raise ValueError("encoding group must have >= 2 members")
        if op not in stripes.OPS:
            raise ValueError(f"op must be one of {stripes.OPS}")
        self.comm = comm
        self.op = op

    @property
    def group_size(self) -> int:
        return self.comm.size

    def padded_size(self, nbytes: int) -> int:
        return stripes.padded_size(nbytes, self.group_size)

    def checksum_size(self, nbytes_padded: int) -> int:
        return stripes.checksum_size(nbytes_padded, self.group_size)

    # -- encode -----------------------------------------------------------------
    def encode(
        self, flat: np.ndarray, *, effective_bytes: int | None = None
    ) -> EncodeResult:
        """Stripe-encode the group's buffers; returns this rank's checksum.

        ``flat`` must be the padded uint8 buffer, the same length on every
        member (enforced).  ``effective_bytes`` overrides the byte count
        used for cost accounting — the incremental protocol encodes a
        mostly-zero delta buffer but only moves its dirty pages.
        """
        self._check_flat(flat)
        n = self.group_size
        op = self.op
        cost_bytes = int(flat.nbytes) if effective_bytes is None else effective_bytes
        t = self.comm.net.stripe_encode_time(cost_bytes, n)

        def compute(data: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
            sizes = {r: len(b) for r, b in data.items()}
            if len(set(sizes.values())) != 1:
                raise ValueError(f"group members disagree on flat size: {sizes}")
            bufs = [data[r] for r in range(n)]
            cs = stripes.build_checksums(bufs, op)
            return {r: cs[r] for r in range(n)}

        checksum = self.comm.custom_collective(
            flat, compute=compute, cost=lambda data: t
        )
        return EncodeResult(
            checksum=checksum,
            data_bytes=int(flat.nbytes),
            checksum_bytes=int(checksum.nbytes),
            seconds=t,
        )

    def encode_single_root(self, flat: np.ndarray) -> EncodeResult:
        """Ablation path: same checksums, priced as N sequential
        whole-buffer reduces through single roots."""
        self._check_flat(flat)
        n = self.group_size
        op = self.op
        t = n * self.comm.net.single_root_encode_time(int(flat.nbytes), n)

        def compute(data: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
            bufs = [data[r] for r in range(n)]
            cs = stripes.build_checksums(bufs, op)
            return {r: cs[r] for r in range(n)}

        checksum = self.comm.custom_collective(
            flat, compute=compute, cost=lambda data: t
        )
        return EncodeResult(
            checksum=checksum,
            data_bytes=int(flat.nbytes),
            checksum_bytes=int(checksum.nbytes),
            seconds=t,
        )

    # -- recover -----------------------------------------------------------------
    def recover(
        self,
        flat: Optional[np.ndarray],
        checksum: Optional[np.ndarray],
        missing: int,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Group-reconstruct the ``missing`` member's buffer and checksum.

        Every *live* member calls this: survivors pass their buffer and
        checksum stripe, the replacement rank passes ``None`` for both.
        Returns ``(flat, checksum)`` on the replacement rank, ``None``
        elsewhere.  The paper measures recovery as "similar to calculating
        the checksum ... a little longer" (§6.3); we price it as one encode
        plus the delivery of the rebuilt buffer.
        """
        me = self.comm.rank
        n = self.group_size
        op = self.op
        if me == missing:
            if flat is not None or checksum is not None:
                raise ValueError("the missing rank must contribute None")
            contribution: Optional[Tuple[np.ndarray, np.ndarray]] = None
        else:
            if flat is None or checksum is None:
                raise ValueError("survivors must contribute buffer and checksum")
            self._check_flat(flat)
            contribution = (flat, checksum)

        def compute(
            data: Dict[int, Optional[Tuple[np.ndarray, np.ndarray]]]
        ) -> Dict[int, Optional[Tuple[np.ndarray, np.ndarray]]]:
            survivors = {r: v[0] for r, v in data.items() if v is not None}
            cs = {r: v[1] for r, v in data.items() if v is not None}
            rebuilt = stripes.reconstruct(survivors, cs, missing, n, op)
            return {r: (rebuilt if r == missing else None) for r in data}

        def cost(data: Dict[int, object]) -> float:
            nbytes = max(
                (v[0].nbytes for v in data.values() if v is not None), default=0
            )
            return self.comm.net.stripe_encode_time(
                int(nbytes), n
            ) + self.comm.net.p2p_time(int(nbytes))

        return self.comm.custom_collective(contribution, compute=compute, cost=cost)

    def _check_flat(self, flat: np.ndarray) -> None:
        if flat.dtype != np.uint8:
            raise TypeError("flat buffer must be uint8")
        if len(flat) != stripes.padded_size(len(flat), self.group_size):
            raise ValueError(
                f"flat buffer length {len(flat)} is not stripe-aligned for "
                f"group size {self.group_size}"
            )
