"""Double-parity group encoder: the RAID-6 collective over the simulator.

Mirrors :class:`repro.ckpt.encoding.GroupEncoder` but with the (P, Q)
layout of :mod:`repro.ckpt.stripes_rs`: each member receives *two* parity
stripes per encode, and up to **two** lost members can be reconstructed.

Cost: the data volume leaving each member is unchanged (its whole buffer
crosses the network once), but every byte feeds two parity computations, so
we price the encode with one extra round's worth of overhead relative to
the single-parity scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.ckpt import stripes_rs
from repro.sim.mpi import Communicator

ParityPair = Tuple[np.ndarray, np.ndarray]


@dataclass(frozen=True)
class EncodeRSResult:
    parity: ParityPair  # this member's (P stripe, Q stripe)
    data_bytes: int
    checksum_bytes: int  # both stripes together
    seconds: float


class GroupEncoderRS:
    """(P, Q) encode / up-to-two-erasure recover over one group."""

    def __init__(self, comm: Communicator):
        if comm.size < 4:
            raise ValueError("double-parity groups need >= 4 members")
        self.comm = comm

    @property
    def group_size(self) -> int:
        return self.comm.size

    def padded_size(self, nbytes: int) -> int:
        return stripes_rs.padded_size_rs(nbytes, self.group_size)

    def checksum_size(self, nbytes_padded: int) -> int:
        return stripes_rs.checksum_size_rs(nbytes_padded, self.group_size)

    def _encode_cost(self, nbytes: int) -> float:
        n = self.group_size
        base = self.comm.net.stripe_encode_time(nbytes, n)
        # second parity: one extra bandwidth round's worth of work
        extra = (nbytes / self.comm.net.params.per_process_bandwidth_Bps) * (
            self.comm.net.params.stripe_round_overhead
        )
        return base + extra

    def encode(self, flat: np.ndarray) -> EncodeRSResult:
        """Group (P, Q) encode; returns this member's parity pair."""
        self._check_flat(flat)
        n = self.group_size
        t = self._encode_cost(int(flat.nbytes))

        def compute(data: Dict[int, np.ndarray]) -> Dict[int, ParityPair]:
            bufs = [data[r] for r in range(n)]
            parity = stripes_rs.build_parity(bufs, n)
            return {r: parity[r] for r in range(n)}

        parity = self.comm.custom_collective(flat, compute=compute, cost=lambda d: t)
        return EncodeRSResult(
            parity=parity,
            data_bytes=int(flat.nbytes),
            checksum_bytes=int(parity[0].nbytes + parity[1].nbytes),
            seconds=t,
        )

    def recover(
        self,
        flat: Optional[np.ndarray],
        parity: Optional[ParityPair],
        missing: Sequence[int],
    ) -> Optional[Tuple[np.ndarray, ParityPair]]:
        """Reconstruct up to two lost members; every live member calls this.

        Survivors pass their buffer and parity pair; replacement members
        pass ``None`` and receive their rebuilt ``(buffer, (P, Q))``.
        """
        me = self.comm.rank
        n = self.group_size
        missing = sorted(set(missing))
        if not 1 <= len(missing) <= 2:
            raise ValueError("recover handles 1 or 2 missing members")
        if me in missing:
            if flat is not None or parity is not None:
                raise ValueError("missing members must contribute None")
            contribution = None
        else:
            if flat is None or parity is None:
                raise ValueError("survivors must contribute buffer and parity")
            self._check_flat(flat)
            contribution = (flat, parity)

        def compute(data):
            survivors = {r: v[0] for r, v in data.items() if v is not None}
            sp = {r: v[1] for r, v in data.items() if v is not None}
            rebuilt = stripes_rs.reconstruct_rs(survivors, sp, missing, n)
            return {r: rebuilt.get(r) for r in data}

        def cost(data):
            nbytes = max(
                (v[0].nbytes for v in data.values() if v is not None), default=0
            )
            return self._encode_cost(int(nbytes)) + len(missing) * self.comm.net.p2p_time(
                int(nbytes)
            )

        return self.comm.custom_collective(contribution, compute=compute, cost=cost)

    def _check_flat(self, flat: np.ndarray) -> None:
        if flat.dtype != np.uint8:
            raise TypeError("flat buffer must be uint8")
        if len(flat) != stripes_rs.padded_size_rs(len(flat), self.group_size):
            raise ValueError(
                f"buffer length {len(flat)} not stripe-aligned for "
                f"double-parity group of {self.group_size}"
            )
